#!/usr/bin/env python3
"""Generate the structurally-realistic ionic models of the suite.

The 14 classic models are hand-written in
``src/repro/models/easyml/``; this script produces the remaining 29
openCARP-named models (16 medium, 13 large) from a library of
physiological current templates: fast sodium, L-type calcium, the
rectifier/transient potassium family, pumps and exchangers, calcium
handling, intracellular concentrations and Markov channel chains.

Every model draws its own parameter set (conductances, voltage shifts,
time constants, current roster) deterministically from its name, so no
two generated models share equations.  The per-class computational
profile (state count, LUT columns, non-tabulable math calls) is sized
so baseline execution times land in the paper's small/medium/large
bands (§4.1).  See DESIGN.md §2 for the substitution rationale.

Running this script rewrites the generated ``.model`` files in place;
the outputs are committed, so users do not need to run it.
"""

from __future__ import annotations

import hashlib
import pathlib
import struct
import sys
from typing import Dict, List, Tuple

OUT_DIR = pathlib.Path(__file__).resolve().parents[1] / \
    "src" / "repro" / "models" / "easyml"


class Rand:
    """Deterministic per-model value source keyed by (model, label)."""

    def __init__(self, model_name: str):
        self.model_name = model_name

    def value(self, label: str, lo: float, hi: float) -> float:
        digest = hashlib.sha256(
            f"{self.model_name}:{label}".encode()).digest()
        unit = struct.unpack("<Q", digest[:8])[0] / 2.0 ** 64
        return lo + unit * (hi - lo)

    def pick(self, label: str, options: List) -> object:
        digest = hashlib.sha256(
            f"{self.model_name}:{label}".encode()).digest()
        return options[digest[0] % len(options)]


def fmt(x: float, digits: int = 5) -> str:
    return f"{x:.{digits}g}"


class ModelBuilder:
    """Accumulates parameters, state variables and current terms."""

    def __init__(self, name: str, rand: Rand):
        self.name = name
        self.rand = rand
        self.params: List[Tuple[str, float]] = []
        self.body: List[str] = []
        self.currents: List[str] = []
        self.n_states = 0
        #: state name -> integration method forced by the model spec
        self.method_overrides: Dict[str, str] = {}

    def param(self, name: str, value: float) -> str:
        self.params.append((name, value))
        return name

    def line(self, text: str = "") -> None:
        self.body.append(text)

    def state(self, name: str, init: float, diff: str,
              method: str = "") -> None:
        self.line(f"diff_{name} = {diff};")
        self.line(f"{name}_init = {fmt(init)};")
        method = self.method_overrides.get(name, method)
        if method:
            self.line(f"{name}; .method({method});")
        self.n_states += 1

    def gate_ab(self, name: str, alpha: str, beta: str, init: float,
                method: str = "") -> None:
        """An alpha/beta gate; Rush-Larsen by default (auto-detected)."""
        self.line(f"alpha_{name} = {alpha};")
        self.line(f"beta_{name} = {beta};")
        self.state(name, init,
                   f"alpha_{name}*(1.0-{name}) - beta_{name}*{name}",
                   method)

    def gate_it(self, name: str, inf: str, tau: str, init: float,
                method: str = "") -> None:
        """An inf/tau gate; Rush-Larsen by default (auto-detected)."""
        self.line(f"{name}_inf = {inf};")
        self.line(f"tau_{name} = {tau};")
        self.state(name, init, f"({name}_inf - {name})/tau_{name}", method)

    def current(self, name: str, expr: str) -> None:
        self.line(f"{name} = {expr};")
        self.currents.append(name)

    # -- emission -------------------------------------------------------------------

    def render(self, header: str, lookup: bool, iscale: float,
               g_rest: float, e_rest: float) -> str:
        lines = [header]
        lines.append("Vm; .external(); .nodal();"
                     + (" .lookup(-120,80,0.05);" if lookup else ""))
        lines.append("Iion; .external(); .nodal();")
        lines.append("")
        lines.append("group{")
        for pname, pvalue in self.params:
            lines.append(f"  {pname} = {fmt(pvalue)};")
        lines.append("}.param();")
        lines.append("")
        lines.append(f"Vm_init = {fmt(self.rand.value('vm0', -88.0, -78.0))};")
        lines.append("")
        lines.extend(self.body)
        lines.append("")
        total = " + ".join(self.currents)
        lines.append(f"Iion = {fmt(iscale)}*({total})"
                     f" + {fmt(g_rest)}*(Vm - ({fmt(e_rest)}));")
        lines.append("")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Current templates
# ---------------------------------------------------------------------------


def add_ina(b: ModelBuilder, with_j: bool = True) -> None:
    """Fast sodium current: m^3 h (j) gating, LR-style rates."""
    v = b.rand.value
    g = b.param("GNa", v("gna", 7.0, 16.0))
    ena = b.param("ENa", v("ena", 45.0, 60.0))
    sm = fmt(v("ina.sm", 46.0, 49.0))
    km = fmt(v("ina.km", 9.0, 11.0))
    b.line(f"// fast sodium current")
    b.gate_ab("m",
              f"(fabs(Vm + {sm}) < 1e-6) ? 3.2 : "
              f"0.32*(Vm + {sm})/(1.0 - exp(-(Vm + {sm})/{km}))",
              f"0.08*exp(-Vm/{fmt(v('ina.bm', 10.0, 12.0))})",
              0.002)
    sh = fmt(v("ina.sh", 70.0, 76.0))
    b.gate_ab("h",
              f"0.135*exp(-(Vm + {sh})/{fmt(v('ina.kh', 6.0, 7.6))})",
              f"3.56*exp({fmt(v('ina.bh1', 0.069, 0.09))}*Vm)"
              f" + 310000.0*exp(0.35*Vm)",
              0.98)
    gates = "cube(m)*h"
    if with_j:
        sj = fmt(v("ina.sj", 76.0, 82.0))
        b.gate_ab("j",
                  f"0.055*exp(-0.25*(Vm + {sj}))"
                  f"/(1.0 + exp(-0.2*(Vm + {sj})))",
                  f"0.3/(1.0 + exp(-0.1*(Vm + {fmt(v('ina.bj', 30, 34))})))",
                  0.97)
        gates += "*j"
    b.current("INa", f"{g}*{gates}*(Vm - {ena})")
    b.line()


def add_ical(b: ModelBuilder, with_fca: bool = True) -> None:
    """L-type calcium current with voltage and calcium inactivation."""
    v = b.rand.value
    g = b.param("GCaL", v("gcal", 0.1, 0.3))
    sd = fmt(v("ical.sd", 5.0, 11.0))
    kd = fmt(v("ical.kd", 6.0, 8.5))
    b.line("// L-type calcium current")
    b.gate_it("d",
              f"1.0/(1.0 + exp(-(Vm + {sd})/{kd}))",
              f"0.6 + {fmt(v('ical.td', 1.2, 2.6))}"
              f"*exp(-square((Vm + {fmt(v('ical.tds', 32, 42))})/18.0))",
              0.0)
    sf = fmt(v("ical.sf", 24.0, 34.0))
    b.gate_it("f",
              f"1.0/(1.0 + exp((Vm + {sf})/{fmt(v('ical.kf', 6.0, 8.0))}))",
              f"{fmt(v('ical.tf', 18.0, 40.0))} + 180.0"
              f"*exp(-square((Vm + {fmt(v('ical.tfs', 25, 35))})/14.0))",
              1.0)
    gates = "d*f"
    if with_fca:
        # calcium-dependent inactivation: NOT tabulable (depends on Cai)
        b.gate_it("fca",
                  f"1.0/(1.0 + square(square(Cai/{fmt(v('ical.kmf', 0.3, 0.8))})))",
                  "2.0", 1.0)
        gates += "*fca"
    eca = b.param("ECaL", v("eca", 45.0, 65.0))
    b.current("ICaL", f"{g}*{gates}*(Vm - {eca})")
    b.line()


def add_ikr(b: ModelBuilder) -> None:
    v = b.rand.value
    g = b.param("GKr", v("gkr", 0.05, 0.18))
    ek = "EK"
    b.line("// rapid delayed rectifier")
    b.gate_it("xr1",
              f"1.0/(1.0 + exp(-(Vm + {fmt(v('ikr.s1', 20, 30))})"
              f"/{fmt(v('ikr.k1', 6.0, 8.0))}))",
              f"{fmt(v('ikr.t1', 250.0, 500.0))}"
              f"/(1.0 + exp((Vm + {fmt(v('ikr.ts', 40, 50))})/9.0))"
              f" + {fmt(v('ikr.t0', 2.0, 6.0))}",
              0.0)
    b.gate_it("xr2",
              f"1.0/(1.0 + exp((Vm + {fmt(v('ikr.s2', 70, 94))})"
              f"/{fmt(v('ikr.k2', 20.0, 26.0))}))",
              "1.1 + 2.2/(1.0 + exp((Vm - 60.0)/20.0))",
              1.0)
    b.current("IKr", f"{g}*xr1*xr2*(Vm - {ek})")
    b.line()


def add_iks(b: ModelBuilder) -> None:
    v = b.rand.value
    g = b.param("GKs", v("gks", 0.02, 0.12))
    b.line("// slow delayed rectifier")
    b.gate_it("xs",
              f"1.0/(1.0 + exp(-(Vm - {fmt(v('iks.s', 3.0, 10.0))})"
              f"/{fmt(v('iks.k', 12.0, 16.0))}))",
              f"{fmt(v('iks.t', 300.0, 600.0))}"
              f"/(1.0 + square((Vm + 30.0)/30.0)) + 20.0",
              0.0)
    b.current("IKs", f"{g}*square(xs)*(Vm - EKs)")
    b.param("EKs", v("eks", -80.0, -70.0))
    b.line()


def add_ito(b: ModelBuilder) -> None:
    v = b.rand.value
    g = b.param("Gto", v("gto", 0.05, 0.25))
    b.line("// transient outward current")
    b.gate_it("r",
              f"1.0/(1.0 + exp(-(Vm - {fmt(v('ito.sr', 15, 22))})/6.0))",
              f"{fmt(v('ito.tr', 2.5, 5.0))}"
              f"*exp(-square((Vm + 40.0)/30.0)) + 0.8",
              0.0)
    b.gate_it("s",
              f"1.0/(1.0 + exp((Vm + {fmt(v('ito.ss', 19, 29))})/5.0))",
              f"{fmt(v('ito.ts', 25.0, 90.0))}"
              f"*exp(-square((Vm + 45.0)/20.0)) + 3.0",
              1.0)
    b.current("Ito", f"{g}*r*s*(Vm - EK)")
    b.line()


def add_ikur(b: ModelBuilder) -> None:
    """Ultra-rapid atrial potassium current."""
    v = b.rand.value
    b.line("// ultra-rapid delayed rectifier (atrial)")
    b.line(f"gkur = 0.005 + 0.05/(1.0 + exp(-(Vm - 15.0)"
           f"/{fmt(v('ikur.k', 12.0, 14.0))}));")
    b.gate_it("ua",
              "1.0/(1.0 + exp(-(Vm + 30.3)/9.6))",
              f"{fmt(v('ikur.ta', 2.0, 6.0))} + 8.0"
              "/(1.0 + exp((Vm + 5.0)/12.0))",
              0.0)
    b.gate_it("ui",
              f"1.0/(1.0 + exp((Vm - {fmt(v('ikur.si', 95, 105))})/27.0))",
              f"{fmt(v('ikur.ti', 300.0, 700.0))} + 60.0"
              "/(1.0 + exp((Vm - 20.0)/10.0))",
              1.0)
    b.current("IKur", "gkur*cube(ua)*ui*(Vm - EK)")
    b.line()


def add_ik1(b: ModelBuilder) -> None:
    v = b.rand.value
    g = b.param("GK1", v("gk1", 0.1, 0.35))
    b.line("// inward rectifier")
    b.line(f"ak1 = 0.1/(1.0 + exp(0.06*(Vm - EK - 200.0)));")
    b.line(f"bk1 = (3.0*exp(0.0002*(Vm - EK + 100.0))"
           f" + exp(0.1*(Vm - EK - 10.0)))"
           f"/(1.0 + exp(-0.5*(Vm - EK)));")
    b.current("IK1", f"{g}*(ak1/(ak1 + bk1))*(Vm - EK)")
    b.line()


def add_if_funny(b: ModelBuilder) -> None:
    v = b.rand.value
    g = b.param("Gf", v("gf", 0.02, 0.1))
    b.line("// hyperpolarization-activated funny current")
    b.gate_it("y",
              f"1.0/(1.0 + exp((Vm + {fmt(v('if.s', 75, 85))})"
              f"/{fmt(v('if.k', 5.5, 7.5))}))",
              f"{fmt(v('if.t', 700.0, 1500.0))}"
              "/(exp(-(Vm + 120.0)/30.0) + exp((Vm + 20.0)/30.0)) + 50.0",
              0.05)
    b.current("If", f"{g}*y*(Vm + 20.0)")
    b.line()


def add_inak(b: ModelBuilder) -> None:
    """Na/K pump: runtime exp(Vm) terms coupled to Nai (not tabulable)."""
    v = b.rand.value
    p = b.param("PNaK", v("pnak", 0.6, 1.6))
    kmna = b.param("KmNai", v("kmna", 8.0, 14.0))
    b.line("// sodium-potassium pump (state-coupled, stays runtime math)")
    b.line(f"fnak = 1.0/(1.0 + 0.1245*exp(-0.0037*Vm)"
           f" + 0.0365*{fmt(v('inak.sig', 0.8, 1.6))}*exp(-0.037*Vm));")
    b.current("INaK",
              f"{p}*fnak/(1.0 + pow({kmna}/Nai, 1.5))")
    b.line()


def add_inaca(b: ModelBuilder) -> None:
    """Na/Ca exchanger: the classic three-exponential GHK-style term."""
    v = b.rand.value
    k = b.param("kNaCa", v("knaca", 100.0, 400.0))
    b.line("// sodium-calcium exchanger (Nai/Cai coupled runtime math)")
    b.line(f"enaca1 = exp({fmt(v('naca.g', 0.012, 0.014))}*Vm);")
    b.line(f"enaca2 = exp({fmt(v('naca.gm', -0.026, -0.022))}*Vm);")
    b.current("INaCa",
              f"{k}*(enaca1*cube(Nai)*0.0000001*2.0"
              f" - enaca2*cube({fmt(v('naca.nao', 138.0, 142.0))})"
              f"*Cai*0.0000001)"
              f"/(1.0 + {fmt(v('naca.ksat', 0.1, 0.3))}*enaca2)")
    b.line()


def add_background(b: ModelBuilder) -> None:
    v = b.rand.value
    gbna = b.param("GbNa", v("gbna", 0.0005, 0.002))
    gbca = b.param("GbCa", v("gbca", 0.0005, 0.002))
    b.line("// background currents with Nernst potentials (runtime log)")
    b.line(f"ECa = 13.35*log({fmt(v('bg.cao', 1.8, 2.2))}/max(Cai, 1e-9));")
    b.line(f"ENa_b = 26.7*log({fmt(v('bg.nao', 138.0, 142.0))}/max(Nai, 0.1));")
    b.current("IbNa", f"{gbna}*(Vm - ENa_b)")
    b.current("IbCa", f"{gbca}*(Vm - ECa)")
    b.line()


def add_ipca(b: ModelBuilder) -> None:
    v = b.rand.value
    g = b.param("GpCa", v("gpca", 0.05, 0.3))
    b.line("// sarcolemmal calcium pump")
    b.current("IpCa", f"{g}*Cai/(Cai + {fmt(v('ipca.km', 0.0003, 0.001))})")
    b.line()


def add_calcium_subsystem(b: ModelBuilder, with_subspace: bool) -> None:
    """SR calcium cycling: release, uptake, leak, optional subspace."""
    v = b.rand.value
    b.line("// calcium handling: SR release/uptake/leak")
    b.line(f"Jup = {fmt(v('ca.vup', 0.004, 0.008))}*square(Cai)"
           f"/(square(Cai) + {fmt(v('ca.kup', 0.00006, 0.0002))});")
    b.line(f"Jleak = {fmt(v('ca.leak', 0.00002, 0.0001))}*(CaSR - Cai);")
    b.gate_it("relo",
              "1.0/(1.0 + exp(-(Vm + 10.0)/6.0))",
              f"{fmt(v('ca.trel', 2.0, 8.0))}", 0.0)
    b.line(f"Jrel = {fmt(v('ca.vrel', 0.05, 0.2))}*relo*square(CaSR)"
           f"/(square(CaSR) + 0.25)*(CaSR - Cai);")
    b.state("CaSR", v("ca.sr0", 0.2, 1.2),
            "1.0*(Jup - Jrel - Jleak)")
    cai0 = v("ca.cai0", 0.00008, 0.0002)
    sink = "Jrel + Jleak - Jup - 0.0002*(ICaL + IbCa) - 0.001*IpCa" \
        if "IpCa" in b.currents else "Jrel + Jleak - Jup - 0.0002*ICaL"
    b.line("// cytosolic buffering (instantaneous, rational)")
    b.line(f"bcai = 1.0/(1.0 + {fmt(v('ca.buf', 0.05, 0.2))}"
           f"/square(Cai + {fmt(v('ca.kbuf', 0.001, 0.004))}));")
    b.state("Cai", cai0, f"bcai*({sink})",
            method=b.rand.pick("ca.method", ["", "", "rk2"]))
    if with_subspace:
        b.line("// junctional subspace calcium")
        b.state("CaSS", cai0 * 2.0,
                f"0.02*(Cai - CaSS) + 0.001*Jrel - 0.0001*ICaL")
    b.line()


def add_ghk_compartments(b: ModelBuilder, n_units: int) -> None:
    """GHK-style flux compartments: the runtime-math workhorse.

    Each unit couples a local calcium compartment to the membrane with
    Goldman-Hodgkin-Katz style exponentials plus saturating power/log
    terms.  These depend on per-compartment *state*, so none of it is
    tabulable — this is the math SVML vectorizes and scalar libm pays
    full price for, which drives the largest models' >15x speedups
    (§4.1: "calling costly mathematical functions that were efficiently
    vectorized by our optimizer").
    """
    v = b.rand.value
    b.line(f"// {n_units} GHK flux compartments (runtime math, "
           f"state-coupled)")
    b.line("vfrt = Vm*0.03743589;")
    terms = []
    for i in range(1, n_units + 1):
        zp = fmt(v(f"ghk{i}.zp", 0.6, 1.4), 4)
        zm = fmt(v(f"ghk{i}.zm", 0.6, 1.4), 4)
        aff = fmt(v(f"ghk{i}.aff", 0.0005, 0.003), 4)
        expo = fmt(v(f"ghk{i}.n", 1.2, 1.9), 3)
        ca0 = v(f"ghk{i}.ca0", 0.0001, 0.001)
        b.line(f"eg{i}p = exp({zp}*vfrt);")
        b.line(f"eg{i}m = exp(-{zm}*vfrt);")
        b.line(f"sat{i} = pow(fabs(Cmp{i}) + 1e-9, {expo});")
        b.line(f"act{i} = log(1.0 + sat{i}/{fmt(ca0, 4)})"
               f" + 0.1*atan(sat{i}*{fmt(v(f'ghk{i}.at', 5.0, 50.0), 4)});")
        b.line(f"phi{i} = {aff}*(Cmp{i}*eg{i}p"
               f" - {fmt(v(f'ghk{i}.out', 0.5, 2.0), 4)}*0.001*eg{i}m)"
               f"*act{i};")
        b.state(f"Cmp{i}", ca0,
                f"0.002*(0.0005 - Cmp{i}) - 0.01*phi{i}")
        terms.append(f"phi{i}")
    b.current("IGHK", f"{fmt(v('ghk.scale', 0.5, 2.0))}"
              f"*({' + '.join(terms)})")
    b.line()


def add_ghk_light(b: ModelBuilder, n_units: int) -> None:
    """Lighter GHK flux units for medium models (no pow term)."""
    v = b.rand.value
    b.line(f"// {n_units} light GHK flux units (runtime math)")
    b.line("vfrt_l = Vm*0.03743589;")
    terms = []
    for i in range(1, n_units + 1):
        zp = fmt(v(f"ghkl{i}.zp", 0.7, 1.3), 4)
        aff = fmt(v(f"ghkl{i}.aff", 0.0005, 0.003), 4)
        ca0 = v(f"ghkl{i}.ca0", 0.0001, 0.001)
        b.line(f"egl{i}p = exp({zp}*vfrt_l);")
        b.line(f"egl{i}m = exp(-{zp}*vfrt_l);")
        b.line(f"actl{i} = log(1.0 + fabs(Cml{i})/{fmt(ca0, 4)});")
        b.line(f"phil{i} = {aff}*(Cml{i}*egl{i}p"
               f" - {fmt(v(f'ghkl{i}.out', 0.5, 2.0), 4)}*0.001*egl{i}m)"
               f"*actl{i};")
        b.state(f"Cml{i}", ca0,
                f"0.002*(0.0005 - Cml{i}) - 0.01*phil{i}")
        terms.append(f"phil{i}")
    b.current("IGHKl", f"{fmt(v('ghkl.scale', 0.5, 2.0))}"
              f"*({' + '.join(terms)})")
    b.line()


def add_concentrations(b: ModelBuilder) -> None:
    v = b.rand.value
    b.line("// intracellular ion accumulation (slow)")
    na_flux = "INa" if "INa" in b.currents else "IbNa" \
        if "IbNa" in b.currents else "0.0"
    if "INaK" in b.currents:
        na_flux = f"({na_flux} + 3.0*INaK)"
    b.state("Nai", v("conc.nai", 7.0, 12.0), f"-0.00001*{na_flux}")
    k_currents = [c for c in ("IKr", "IK1", "Ito", "IKur", "IKs")
                  if c in b.currents]
    k_flux = " + ".join(k_currents) if k_currents else "0.0"
    if "INaK" in b.currents:
        k_flux = f"({k_flux}) - 2.0*INaK" if k_currents else "-2.0*INaK"
    b.state("Ki", v("conc.ki", 135.0, 145.0), f"-0.00001*({k_flux})")
    b.line()


def add_markov_channel(b: ModelBuilder, prefix: str, n_closed: int,
                       current_name: str, g_lo: float, g_hi: float) -> None:
    """A Markov gating chain: C1..Cn <-> O <-> I, markov_be integrated."""
    v = b.rand.value
    g = b.param(f"G{prefix}", v(f"{prefix}.g", g_lo, g_hi))
    b.line(f"// {prefix}: Markov channel chain "
           f"({n_closed} closed states + open + inactivated)")
    kf = fmt(v(f"{prefix}.kf", 0.08, 0.25))
    kb = fmt(v(f"{prefix}.kb", 0.02, 0.12))
    b.line(f"{prefix}_af = {kf}*exp(Vm/{fmt(v(f'{prefix}.vf', 28.0, 40.0))});")
    b.line(f"{prefix}_ab = {kb}*exp(-Vm/{fmt(v(f'{prefix}.vb', 28.0, 40.0))});")
    names = [f"{prefix}C{i}" for i in range(1, n_closed + 1)]
    open_name, inact_name = f"{prefix}O", f"{prefix}I"
    chain = names + [open_name]
    for i, state_name in enumerate(names):
        inflow = []
        if i > 0:
            inflow.append(f"{prefix}_af*{names[i-1]}")
        else:
            inflow.append(f"{kb}*{open_name}*0.1")
        if i + 1 < len(chain):
            inflow.append(f"{prefix}_ab*{chain[i+1]}")
        outflow = f"({prefix}_af + {prefix}_ab)*{state_name}"
        init = 0.9 if i == 0 else 0.02
        b.state(state_name, init,
                f"{' + '.join(inflow)} - {outflow}", method="markov_be")
    b.state(open_name, 0.01,
            f"{prefix}_af*{names[-1]} + 0.01*{inact_name}"
            f" - ({prefix}_ab + 0.05)*{open_name}", method="markov_be")
    b.state(inact_name, 0.01,
            f"0.05*{open_name} - 0.01*{inact_name}", method="markov_be")
    b.current(current_name, f"{g}*{open_name}*(Vm - EK)")
    b.line()


# ---------------------------------------------------------------------------
# Model rosters
# ---------------------------------------------------------------------------

MEDIUM_MODELS = {
    "LuoRudy94": dict(currents=["ina", "ical", "ik1", "ikr", "inak",
                                "ca", "conc"], ghk_light=2),
    "McAllisterNobleTsien": dict(currents=["ina", "ical", "ik1", "if",
                                           "ito"], ghk_light=1),
    "DiFrancescoNoble": dict(currents=["ina", "ical", "if", "ik1", "inak",
                                       "conc"], ghk_light=2),
    "EarmNoble": dict(currents=["ina", "ical", "ik1", "inaca", "ca"], ghk_light=1),
    "DemirClarkGiles": dict(currents=["ina", "ical", "if", "ikr", "inak",
                                      "bg"], ghk_light=2),
    "Nygren": dict(currents=["ina", "ical", "ito", "ikur", "ik1", "inak",
                             "conc"], ghk_light=2),
    "LindbladAtrial": dict(currents=["ina", "ical", "ito", "ik1", "inaca",
                                     "ca"], ghk_light=1),
    "Maleckar": dict(currents=["ina", "ical", "ito", "ikur", "ikr", "ik1",
                               "inak"], ghk_light=2),
    "Courtemanche": dict(currents=["ina", "ical", "ito", "ikur", "ikr",
                                   "iks", "ik1", "ca"], ghk_light=2),
    "RamirezNattel": dict(currents=["ina", "ical", "ito", "ikr", "iks",
                                    "ik1", "ca"], ghk_light=2),
    "FoxMcHargGilmour": dict(currents=["ina", "ical", "ikr", "iks", "ito",
                                       "ik1", "ipca"], ghk_light=2),
    "PanditGiles": dict(currents=["ina", "ical", "ito", "ik1", "if",
                                  "bg", "ca"], ghk_light=2),
    "KurataSANode": dict(currents=["ical", "ikr", "if", "ito", "inak",
                                   "inaca", "ca"], ghk_light=2),
    "ShannonBers": dict(currents=["ina", "ical", "ito", "ikr", "ik1",
                                  "inaca", "ca", "conc"], ghk_light=2),
    "MahajanShiferaw": dict(currents=["ina", "ical", "ikr", "iks", "ik1",
                                      "inaca", "ca"], ghk_light=2),
    "StewartPurkinje": dict(currents=["ina", "ical", "if", "ikr", "iks",
                                      "ito", "ik1"], ghk_light=2,
                            methods={"xs": "sundnes"}),
}

LARGE_MODELS = {
    # ``ghk`` is the number of GHK flux compartments: it spreads the
    # large class's baseline times from ~6 minutes up to ~2 hours (the
    # paper caps cell counts so "the largest models not to take more
    # than two hours", §4) and concentrates the non-tabulable math that
    # produces the biggest vectorization wins.
    "TenTusscherPanfilov": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"], ghk=3,
        methods={"xs": "sundnes", "Cai": "rk4"}),
    "TenTusscherNNP": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ca", "conc"], ghk=2),
    "OHara": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"],
        markov=[("IKrM", 3, 0.04, 0.1)], ghk=18),
    "GrandiPanditVoigt": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ikur", "ik1",
                  "inak", "inaca", "bg", "ipca", "ca+ss", "conc"],
        ghk=34, lut=False),
    "GrandiBers": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"], ghk=8,
        methods={"Cai": "rk4"}),
    "WangSobie": dict(
        currents=["ina", "ical", "ito", "ik1", "inak", "inaca", "bg",
                  "ca+ss", "conc"],
        markov=[("RyR", 3, 0.05, 0.2), ("LCC", 2, 0.05, 0.15)], ghk=5),
    "IyerMazhariWinslow": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"],
        markov=[("NaM", 4, 0.5, 1.5), ("KvM", 3, 0.02, 0.1)], ghk=38,
        lut=False),
    "BondarenkoSzigeti": dict(
        currents=["ina", "ical", "ito", "ikur", "ik1", "inak", "inaca",
                  "bg", "ca+ss", "conc"],
        markov=[("NaM", 3, 0.5, 1.5)], ghk=7),
    "HundRudy": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"], ghk=6),
    "TomekORd": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"],
        markov=[("IKrM", 4, 0.04, 0.1)], ghk=22),
    "TrovatoPurkinje": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "if", "ik1",
                  "inak", "inaca", "bg", "ca+ss", "conc"], ghk=10),
    "HeijmanRudy": dict(
        currents=["ina", "ical", "ito", "ikr", "iks", "ik1", "inak",
                  "inaca", "bg", "ipca", "ca+ss", "conc"],
        markov=[("PKA", 2, 0.01, 0.05)], ghk=13),
    "KoivumakiAtrial": dict(
        currents=["ina", "ical", "ito", "ikur", "ikr", "ik1", "inak",
                  "inaca", "bg", "ca+ss", "conc"], ghk=9),
}

_REFERENCES = {
    "LuoRudy94": "Luo & Rudy 1994 (dynamic LR phase II)",
    "McAllisterNobleTsien": "McAllister, Noble & Tsien 1975 Purkinje",
    "DiFrancescoNoble": "DiFrancesco & Noble 1985 Purkinje",
    "EarmNoble": "Earm & Noble 1990 atrial",
    "DemirClarkGiles": "Demir, Clark & Giles 1994 SA node",
    "Nygren": "Nygren et al. 1998 human atrial",
    "LindbladAtrial": "Lindblad et al. 1996 rabbit atrial",
    "Maleckar": "Maleckar et al. 2009 human atrial",
    "Courtemanche": "Courtemanche, Ramirez & Nattel 1998 human atrial",
    "RamirezNattel": "Ramirez, Nattel & Courtemanche 2000 canine atrial",
    "FoxMcHargGilmour": "Fox, McHarg & Gilmour 2002 canine ventricular",
    "PanditGiles": "Pandit et al. 2001 rat ventricular",
    "KurataSANode": "Kurata et al. 2002 sinoatrial node",
    "ShannonBers": "Shannon et al. 2004 rabbit ventricular",
    "MahajanShiferaw": "Mahajan et al. 2008 rabbit ventricular",
    "StewartPurkinje": "Stewart et al. 2009 human Purkinje",
    "TenTusscherPanfilov": "ten Tusscher & Panfilov 2006 (TP06)",
    "TenTusscherNNP": "ten Tusscher, Noble, Noble & Panfilov 2004 (TNNP)",
    "OHara": "O'Hara et al. 2011 human ventricular (ORd)",
    "GrandiPanditVoigt": "Grandi et al. 2011 human atrial",
    "GrandiBers": "Grandi, Pasqualini & Bers 2010 human ventricular",
    "WangSobie": "Wang & Sobie 2008 neonatal mouse ventricular",
    "IyerMazhariWinslow": "Iyer, Mazhari & Winslow 2004 human ventricular",
    "BondarenkoSzigeti": "Bondarenko et al. 2004 mouse ventricular",
    "HundRudy": "Hund & Rudy 2004 canine ventricular",
    "TomekORd": "Tomek et al. 2019 (ToR-ORd)",
    "TrovatoPurkinje": "Trovato et al. 2020 human Purkinje",
    "HeijmanRudy": "Heijman et al. 2011 beta-adrenergic CaMKII",
    "KoivumakiAtrial": "Koivumaki et al. 2011 human atrial",
}


def build_model(name: str, spec: Dict, size_class: str) -> str:
    rand = Rand(name)
    b = ModelBuilder(name, rand)
    b.method_overrides = dict(spec.get("methods", ()))
    b.param("EK", rand.value("ek", -90.0, -84.0))
    needs_cai = any(c in spec["currents"]
                    for c in ("ical", "inaca", "bg", "ipca")) or \
        any(c.startswith("ca") for c in spec["currents"])
    needs_nai = any(c in spec["currents"] for c in ("inak", "inaca", "bg"))
    # Concentration states must exist before currents reference them --
    # EasyML is order-free, but inits must be present; the frontend
    # topologically orders the computations.
    currents = spec["currents"]
    emitters = {
        "ina": lambda: add_ina(b, with_j=rand.pick("ina.j", [True, True,
                                                             False])),
        "ical": lambda: add_ical(b, with_fca=needs_cai),
        "ikr": lambda: add_ikr(b),
        "iks": lambda: add_iks(b),
        "ito": lambda: add_ito(b),
        "ikur": lambda: add_ikur(b),
        "ik1": lambda: add_ik1(b),
        "if": lambda: add_if_funny(b),
        "inak": lambda: add_inak(b),
        "inaca": lambda: add_inaca(b),
        "bg": lambda: add_background(b),
        "ipca": lambda: add_ipca(b),
        "ca": lambda: add_calcium_subsystem(b, with_subspace=False),
        "ca+ss": lambda: add_calcium_subsystem(b, with_subspace=True),
        "conc": lambda: add_concentrations(b),
    }
    for current in currents:
        emitters[current]()
    for markov in spec.get("markov", ()):
        add_markov_channel(b, *markov[:2], f"I{markov[0]}",
                           markov[2], markov[3])
    if spec.get("ghk"):
        add_ghk_compartments(b, spec["ghk"])
    if spec.get("ghk_light"):
        add_ghk_light(b, spec["ghk_light"])
    if needs_cai and not any(c.startswith("ca") for c in currents):
        b.state("Cai", rand.value("cai0", 0.00008, 0.0002),
                "0.00005*(0.0001 - Cai)" if "ical" not in currents
                else "-0.000002*ICaL + 0.05*(0.0001 - Cai)")
    if needs_nai and "conc" not in currents:
        b.state("Nai", rand.value("nai0", 7.0, 12.0), "-0.00001*INa"
                if "ina" in currents else "0.0")
    header = (f"// {name}: {_REFERENCES[name]}.\n"
              f"// Structural reproduction for the limpetMLIR benchmark\n"
              f"// suite ({size_class} class); current roster and kinetics\n"
              f"// follow the published model's composition, constants are\n"
              f"// model-specific (see DESIGN.md).")
    iscale = rand.value("iscale", 0.05, 0.12)
    g_rest = rand.value("grest", 0.10, 0.16)
    e_rest = rand.value("erest", -84.0, -78.0)
    return b.render(header, lookup=spec.get("lut", True), iscale=iscale,
                    g_rest=g_rest, e_rest=e_rest)


def main() -> int:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    written = []
    for name, spec in MEDIUM_MODELS.items():
        text = build_model(name, spec, "medium")
        (OUT_DIR / f"{name}.model").write_text(text)
        written.append(name)
    for name, spec in LARGE_MODELS.items():
        text = build_model(name, spec, "large")
        (OUT_DIR / f"{name}.model").write_text(text)
        written.append(name)
    print(f"wrote {len(written)} models to {OUT_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
