#!/usr/bin/env python3
"""The artifact's ``res.sh`` analog (paper appendix §A.6).

Reads the per-model result files ``tools/evaluation.py`` wrote into
``output/`` and produces the figures' speedup tables (as text —
``fig2.txt`` instead of ``fig2.pdf``)::

    python tools/res.py -fig2 true    # generates output/fig2.txt
    python tools/res.py -fig3 true    # generates output/fig3.txt
    python tools/res.py -fig5 true    # generates output/fig5.txt
"""

from __future__ import annotations

import argparse
import math
import pathlib
import sys

OUTPUT_DIR = pathlib.Path(__file__).resolve().parents[1] / "output"
THREADS = (1, 2, 4, 8, 16, 32)
ISAS = ("sse", "avx2", "avx512")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="build figure tables from evaluation output (§A.6)")
    parser.add_argument("-fig2", type=str, default="false")
    parser.add_argument("-fig3", type=str, default="false")
    parser.add_argument("-fig5", type=str, default="false")
    return parser.parse_args(argv)


def truthy(text: str) -> bool:
    return text.lower() in ("true", "1", "yes", "on")


def read_rows(path: pathlib.Path):
    if not path.exists():
        raise SystemExit(
            f"missing {path}; run tools/evaluation.py first (§A.5)")
    rows = []
    with open(path) as handle:
        header = handle.readline()
        for line in handle:
            name, cls, base, vec = line.split("\t")
            rows.append((name, cls, float(base), float(vec)))
    return rows


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_table(rows, title: str) -> str:
    rows = sorted(rows, key=lambda r: r[2])
    lines = [title, f"{'model':<24} {'class':<8} {'speedup':>8}"]
    for name, cls, base, vec in rows:
        lines.append(f"{name:<24} {cls:<8} {base / vec:>7.2f}x")
    lines.append("")
    for cls in ("small", "medium", "large"):
        values = [b / v for _, c, b, v in rows if c == cls]
        if values:
            lines.append(f"geomean {cls:<7}: {geomean(values):.2f}x")
    lines.append(f"geomean overall: "
                 f"{geomean([b / v for _, _, b, v in rows]):.2f}x")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    args = parse_args(argv)
    produced = []
    if truthy(args.fig2):
        rows = read_rows(OUTPUT_DIR / "fig2_avx512_1t.txt")
        (OUTPUT_DIR / "fig2.txt").write_text(speedup_table(
            rows, "Fig. 2 - speedup, 1 thread, AVX-512"))
        produced.append("fig2.txt")
    if truthy(args.fig3):
        rows = read_rows(OUTPUT_DIR / "fig3_avx512_32t.txt")
        (OUTPUT_DIR / "fig3.txt").write_text(speedup_table(
            rows, "Fig. 3 - speedup, 32 threads, AVX-512"))
        produced.append("fig3.txt")
    if truthy(args.fig5):
        lines = ["Fig. 5 - geomean speedup per ISA vs threads",
                 f"{'isa':<8} " + " ".join(f"{t:>7}T" for t in THREADS)]
        for isa in ISAS:
            values = []
            for threads in THREADS:
                rows = read_rows(OUTPUT_DIR / f"fig5_{isa}_{threads}t.txt")
                values.append(geomean([b / v for _, _, b, v in rows]))
            lines.append(f"{isa:<8} "
                         + " ".join(f"{v:>7.2f}x" for v in values))
        (OUTPUT_DIR / "fig5.txt").write_text("\n".join(lines) + "\n")
        produced.append("fig5.txt")
    if not produced:
        print("nothing selected; pass -fig2/-fig3/-fig5 true")
        return 1
    for name in produced:
        print(f"--- output/{name} ---")
        print((OUTPUT_DIR / name).read_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
