#!/usr/bin/env python3
"""The artifact's ``evaluation.sh`` analog (paper appendix §A.5).

The CGO artifact drives the experiments with::

    ./evaluation.sh -fig2 true   # run experiments for Fig. 2
    ./evaluation.sh -fig3 true   # run experiments for Fig. 3
    ./evaluation.sh -fig5 true   # run experiments for Fig. 2-5

and stores results as text files in an ``output`` folder.  This script
reproduces that workflow on the modeled testbed: each flag evaluates
the corresponding experiment over all 43 models and writes the raw
per-model numbers to ``output/*.txt``; ``tools/res.py`` (the ``res.sh``
analog, §A.6) turns them into the figure tables.

By default ``-fig3`` is enabled, exactly like the artifact.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.bench import ModeledBench, THREAD_SWEEP  # noqa: E402
from repro.machine import AVX512, ISAS  # noqa: E402
from repro.models import ALL_MODELS, SIZE_CLASS  # noqa: E402

OUTPUT_DIR = pathlib.Path(__file__).resolve().parents[1] / "output"


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="run the paper's experiments (artifact workflow)")
    parser.add_argument("-fig2", type=str, default="false",
                        help="run experiments for Fig. 2 (1 thread)")
    parser.add_argument("-fig3", type=str, default="true",
                        help="run experiments for Fig. 3 (32 threads)")
    parser.add_argument("-fig5", type=str, default="false",
                        help="run experiments for Fig. 2-5 (full sweep)")
    return parser.parse_args(argv)


def truthy(text: str) -> bool:
    return text.lower() in ("true", "1", "yes", "on")


def write_rows(path: pathlib.Path, rows) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        for row in rows:
            handle.write("\t".join(str(x) for x in row) + "\n")
    print(f"wrote {path} ({len(rows)} rows)")


def run_point(bench: ModeledBench, isa, threads: int):
    rows = [("model", "class", "baseline_s", "limpetmlir_s")]
    for name in ALL_MODELS:
        base = bench.seconds(name, "baseline", isa, threads)
        vec = bench.seconds(name, "limpet_mlir", isa, threads)
        rows.append((name, SIZE_CLASS[name], f"{base:.4f}", f"{vec:.4f}"))
    return rows


def main(argv=None) -> int:
    args = parse_args(argv)
    bench = ModeledBench()
    ran_any = False
    if truthy(args.fig2) or truthy(args.fig5):
        write_rows(OUTPUT_DIR / "fig2_avx512_1t.txt",
                   run_point(bench, AVX512, 1))
        ran_any = True
    if truthy(args.fig3) or truthy(args.fig5):
        write_rows(OUTPUT_DIR / "fig3_avx512_32t.txt",
                   run_point(bench, AVX512, 32))
        ran_any = True
    if truthy(args.fig5):
        for isa in ISAS.values():
            for threads in THREAD_SWEEP:
                write_rows(
                    OUTPUT_DIR / f"fig5_{isa.name}_{threads}t.txt",
                    run_point(bench, isa, threads))
        ran_any = True
    if not ran_any:
        print("nothing selected; try -fig3 true")
        return 1
    print(f"\nall output files are in {OUTPUT_DIR}/ "
          f"(run tools/res.py to build the figure tables, §A.6)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
