#!/usr/bin/env python3
"""Calibration sweep: modeled times/speedups for all 43 models.

Prints per-model baseline time and limpetMLIR speedups at 1 and 32
threads (AVX-512, 8192 cells, 100k steps) plus class geomeans, next to
the paper's headline targets.  Used while tuning the cost-model
constants; the benchmark suite re-asserts the resulting shape.
"""

from __future__ import annotations

import math
import sys

from repro.codegen import BackendMode, generate_baseline, generate_limpet_mlir
from repro.ir.passes import default_pipeline
from repro.machine import AVX512, CostModel, profile_kernel
from repro.models import ALL_MODELS, SIZE_CLASS, load_model

N_CELLS, N_STEPS = 8192, 100_000


def gmean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    cost = CostModel()
    rows = []
    for name in ALL_MODELS:
        model = load_model(name)
        base = generate_baseline(model)
        vec = generate_limpet_mlir(model, 8)
        for kernel in (base, vec):
            default_pipeline(verify_each=False).run(kernel.module,
                                                    fixed_point=True)
        pb = profile_kernel(base.module, base.spec.function_name)
        pv = profile_kernel(vec.module, vec.spec.function_name)
        tb1 = cost.total_time(pb, AVX512, 1, N_CELLS, N_STEPS,
                              BackendMode.BASELINE)
        tv1 = cost.total_time(pv, AVX512, 1, N_CELLS, N_STEPS,
                              BackendMode.LIMPET_MLIR)
        tb32 = cost.total_time(pb, AVX512, 32, N_CELLS, N_STEPS,
                               BackendMode.BASELINE)
        tv32 = cost.total_time(pv, AVX512, 32, N_CELLS, N_STEPS,
                               BackendMode.LIMPET_MLIR)
        rows.append((name, SIZE_CLASS[name], tb1, tb1 / tv1, tb32 / tv32))
    rows.sort(key=lambda r: r[2])
    for name, cls, tb1, s1, s32 in rows:
        print(f"{name:22s} {cls:6s} base1T={tb1:8.1f}s "
              f"s1T={s1:6.2f} s32T={s32:6.2f}")
    print()
    for cls, paper1, paper32 in (("small", None, 0.83),
                                 ("medium", None, 1.34),
                                 ("large", None, 6.03)):
        s1 = [r[3] for r in rows if r[1] == cls]
        s32 = [r[4] for r in rows if r[1] == cls]
        t1 = [r[2] for r in rows if r[1] == cls]
        print(f"{cls:6s}: base1T [{min(t1):7.1f},{max(t1):8.1f}]s  "
              f"gmean1T {gmean(s1):5.2f}  gmean32T {gmean(s32):5.2f}"
              f"  (paper 32T {paper32})")
    all1 = [r[3] for r in rows]
    all32 = [r[4] for r in rows]
    print(f"ALL   : gmean1T {gmean(all1):5.2f} (paper 5.25)  "
          f"gmean32T {gmean(all32):5.2f} (paper 1.93)  "
          f"peak1T {max(all1):5.1f} (paper >15, up to ~26)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
