"""Machine-model tests: instrumentation, cost model, roofline."""

import pytest

from repro.codegen import (BackendMode, generate_baseline, generate_icc_simd,
                           generate_limpet_mlir)
from repro.ir.passes import default_pipeline
from repro.machine import (AVX2, AVX512, CASCADE_LAKE, SSE, CostModel,
                           isa_for_width, machine_ceilings, profile_kernel,
                           roofline_point)


def profiled(model, variant="mlir", width=8):
    if variant == "base":
        kernel = generate_baseline(model)
    elif variant == "icc":
        kernel = generate_icc_simd(model, width)
    elif variant == "aos":
        kernel = generate_limpet_mlir(model, width, data_layout_opt=False)
    else:
        kernel = generate_limpet_mlir(model, width)
    default_pipeline(verify_each=False).run(kernel.module, fixed_point=True)
    return profile_kernel(kernel.module, kernel.spec.function_name)


class TestInstrumentation:
    def test_width_and_layout_detected(self, gate_model):
        p = profiled(gate_model, "mlir", 8)
        assert p.width == 8
        assert p.layout.startswith("aosoa")
        assert p.parallel

    def test_baseline_width_one(self, gate_model):
        p = profiled(gate_model, "base")
        assert p.width == 1 and p.layout == "aos"

    def test_memory_ops_counted(self, gate_model):
        p = profiled(gate_model, "mlir", 8)
        # 3 states + Vm loaded (the unused Iion load is DCE'd away),
        # 3 states + Iion stored
        assert p.contiguous_loads == 4
        assert p.contiguous_stores == 4

    def test_aos_counts_gathers(self, gate_model):
        p = profiled(gate_model, "aos", 8)
        assert p.gathers == 3 and p.scatters == 3

    def test_lut_columns_split_by_call_kind(self, gate_model):
        vec = profiled(gate_model, "mlir", 8)
        assert vec.lut_calls_vector == 1
        assert vec.lut_columns_vector >= 4
        icc = profiled(gate_model, "icc", 8)
        assert icc.lut_calls_scalar == 8       # one per lane
        assert icc.lut_columns_scalar == icc.lut_calls_scalar * \
            vec.lut_columns_vector

    def test_markov_inner_loop_multiplies_counts(self):
        from repro.frontend import load_model
        model = load_model("""
            diff_p = 0.5*(0.3 - p)*q; q = 2.0 + 0.0*p;
            p_init = 0; p; .method(markov_be);
        """, "BE")
        p = profiled(model, "base")
        # refinement loop runs 3 more evaluations of the diff chain
        assert p.simple_fp > 8

    def test_flops_per_cell_backend_invariant(self, gate_model):
        """Roofline flops must not depend on how the code is generated."""
        f_base = profiled(gate_model, "base").flops_per_cell
        f_vec = profiled(gate_model, "mlir", 8).flops_per_cell
        assert f_vec == pytest.approx(f_base, rel=0.15)

    def test_operational_intensity_positive(self, luo_rudy):
        p = profiled(luo_rudy, "mlir", 8)
        assert 0.05 < p.operational_intensity < 50


class TestCostModel:
    @pytest.fixture(scope="class")
    def cost(self):
        return CostModel()

    def test_vector_cheaper_than_baseline_per_cell(self, luo_rudy, cost):
        base = cost.cycles_per_iteration(profiled(luo_rudy, "base"), AVX512)
        vec = cost.cycles_per_iteration(profiled(luo_rudy, "mlir", 8),
                                        AVX512) / 8
        assert vec < base / 3

    def test_wider_isa_lowers_per_cell_cost(self, luo_rudy, cost):
        per_cell = {}
        for width in (2, 4, 8):
            profile = profiled(luo_rudy, "mlir", width)
            isa = isa_for_width(width)
            per_cell[width] = cost.cycles_per_iteration(profile,
                                                        isa) / width
        assert per_cell[8] < per_cell[4] < per_cell[2]

    def test_icc_between_baseline_and_mlir(self, luo_rudy, cost):
        t = {}
        for variant, mode in (("base", BackendMode.BASELINE),
                              ("icc", BackendMode.ICC_SIMD),
                              ("mlir", BackendMode.LIMPET_MLIR)):
            profile = profiled(luo_rudy, variant, 8)
            t[variant] = cost.total_time(profile, AVX512, 1, 8192, 1000,
                                         mode)
        assert t["mlir"] < t["icc"] < t["base"]

    def test_aos_slower_than_aosoa(self, luo_rudy, cost):
        aos = cost.total_time(profiled(luo_rudy, "aos", 8), AVX512, 1,
                              8192, 1000, BackendMode.LIMPET_MLIR)
        aosoa = cost.total_time(profiled(luo_rudy, "mlir", 8), AVX512, 1,
                                8192, 1000, BackendMode.LIMPET_MLIR)
        assert aosoa < aos

    def test_threads_reduce_time_until_overheads(self, luo_rudy, cost):
        profile = profiled(luo_rudy, "mlir", 8)
        t1 = cost.total_time(profile, AVX512, 1, 8192, 100,
                             BackendMode.LIMPET_MLIR)
        t8 = cost.total_time(profile, AVX512, 8, 8192, 100,
                             BackendMode.LIMPET_MLIR)
        assert t8 < t1

    def test_thread_count_clamped_to_cores(self, luo_rudy, cost):
        profile = profiled(luo_rudy, "mlir", 8)
        t32 = cost.step_time(profile, AVX512, 32, 8192)
        t64 = cost.step_time(profile, AVX512, 64, 8192)
        assert t64.seconds == t32.seconds

    def test_step_time_components(self, luo_rudy, cost):
        profile = profiled(luo_rudy, "mlir", 8)
        point = cost.step_time(profile, AVX512, 32, 8192)
        assert point.seconds >= max(point.compute_seconds,
                                    point.memory_seconds)
        assert point.overhead_seconds > 0

    def test_baseline_has_no_vector_overhead(self, luo_rudy, cost):
        profile = profiled(luo_rudy, "base")
        p_base = cost.step_time(profile, AVX512, 1, 8192,
                                BackendMode.BASELINE)
        assert p_base.overhead_seconds == 0.0

    def test_isa_for_width_rejects_odd_width(self):
        with pytest.raises(ValueError):
            isa_for_width(3)

    def test_machine_bandwidth_saturates(self):
        m = CASCADE_LAKE
        assert m.memory_bandwidth_gbs(32, 1e9) == m.dram_bw_gbs
        assert m.memory_bandwidth_gbs(1, 1e9) < m.dram_bw_gbs

    def test_cache_resident_gets_more_bandwidth(self):
        m = CASCADE_LAKE
        assert m.memory_bandwidth_gbs(32, 1e6) > \
            m.memory_bandwidth_gbs(32, 1e9)

    def test_omp_overhead_grows_with_threads(self):
        m = CASCADE_LAKE
        assert m.omp_overhead_seconds(1) == 0.0
        assert m.omp_overhead_seconds(32) > m.omp_overhead_seconds(2)


class TestRoofline:
    def test_ceilings_match_paper(self):
        c = machine_ceilings()
        assert c.peak_gflops == 760.0
        assert c.dram_bw_gbs == 199.0
        assert c.l1_bw_gbs == 1052.0
        assert c.dram_bw_spec_gbs == 140.8

    def test_ridge_point_near_four(self):
        """§4.5: 'around 4 Flops/Byte'."""
        assert 3.0 < machine_ceilings().ridge_point < 4.5

    def test_attainable_follows_roofline(self):
        c = machine_ceilings()
        assert c.attainable_gflops(0.1) == pytest.approx(19.9)
        assert c.attainable_gflops(100.0) == c.peak_gflops

    def test_point_below_roofline(self, luo_rudy):
        profile = profiled(luo_rudy, "mlir", 8)
        point = roofline_point("LuoRudy91", profile)
        ceilings = machine_ceilings()
        attainable = ceilings.attainable_gflops(
            point.operational_intensity)
        # cache effects may push slightly above the DRAM line (like
        # OHara in the paper) but never above peak
        assert point.gflops <= ceilings.peak_gflops

    def test_format_table(self, luo_rudy):
        profile = profiled(luo_rudy, "mlir", 8)
        from repro.machine import format_roofline_table
        text = format_roofline_table(
            [roofline_point("LuoRudy91", profile, size_class="medium")])
        assert "LuoRudy91" in text and "760" in text
