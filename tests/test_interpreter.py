"""IR-interpreter tests: the differential oracle against the lowering."""

import numpy as np
import pytest

from repro.codegen import (generate_baseline, generate_gpu,
                           generate_limpet_mlir)
from repro.ir import IRBuilder, build_module
from repro.ir.dialects import arith, func, memref, scf
from repro.ir.types import f64, index, memref_of
from repro.runtime import KernelRunner, compare_trajectories
from repro.runtime.interpreter import (Interpreter, InterpreterError,
                                       interpret_kernel)


class TestInterpreterBasics:
    def _sum_module(self):
        module, _ = build_module()
        fn = func.func(module, "total", [memref_of(f64), index], [f64],
                       ["buf", "n"])
        b = IRBuilder(fn.entry)
        zero = b.constant(0, index)
        one = b.constant(1, index)
        init = b.constant(0.0, f64)
        loop = scf.for_op(b, zero, fn.args[1], one, [init])
        with b.at_end_of(loop.body):
            value = memref.load(b, fn.args[0], [loop.induction_var])
            scf.yield_op(b, [arith.addf(b, loop.iter_args[0], value)])
        func.ret(b, [loop.results[0]])
        return module

    def test_loop_with_iter_args(self):
        result = Interpreter(self._sum_module()).call(
            "total", np.arange(6.0), 6)
        assert result == 15.0

    def test_missing_function(self):
        with pytest.raises(InterpreterError, match="no function"):
            Interpreter(self._sum_module()).call("ghost")

    def test_arity_checked(self):
        with pytest.raises(InterpreterError, match="arguments"):
            Interpreter(self._sum_module()).call("total", np.zeros(3))

    def test_if_branches(self):
        module, _ = build_module()
        fn = func.func(module, "clamp", [f64], [f64], ["x"])
        b = IRBuilder(fn.entry)
        zero = b.constant(0.0, f64)
        cond = arith.cmpf(b, "olt", fn.args[0], zero)
        branch = scf.if_op(b, cond, [f64])
        with b.at_end_of(branch.then_block):
            scf.yield_op(b, [zero])
        with b.at_end_of(branch.else_block):
            scf.yield_op(b, [fn.args[0]])
        func.ret(b, [branch.results[0]])
        interp = Interpreter(module)
        assert interp.call("clamp", -3.0) == 0.0
        assert interp.call("clamp", 4.0) == 4.0

    def test_math_ops_via_registry(self):
        module, _ = build_module()
        fn = func.func(module, "f", [f64], [f64], ["x"])
        b = IRBuilder(fn.entry)
        from repro.ir.dialects import math as math_dialect
        func.ret(b, [math_dialect.exp(b, fn.args[0])])
        value = Interpreter(module).call("f", 1.0)
        assert value == pytest.approx(np.e)


class TestDifferentialExecution:
    """The headline: interpreter == lowered kernels, per backend."""

    def _run_both(self, generated, n_cells=8, n_steps=5, dt=0.01):
        lowered = KernelRunner(generated, optimize=False)
        state_fast = lowered.make_state(n_cells, perturbation=0.01)
        state_slow = lowered.make_state(n_cells, perturbation=0.01)
        luts = lowered.luts_for(dt)
        for _ in range(n_steps):
            lowered.compute_step(state_fast, dt)
            interpret_kernel(generated, state_slow, luts, dt)
        return state_fast, state_slow

    @pytest.mark.parametrize("backend", ["baseline", "vector", "gpu"])
    def test_interpreter_matches_lowering(self, gate_model, backend):
        if backend == "baseline":
            generated = generate_baseline(gate_model)
        elif backend == "vector":
            generated = generate_limpet_mlir(gate_model, 4)
        else:
            generated = generate_gpu(gate_model)
        fast, slow = self._run_both(generated)
        assert compare_trajectories(fast, slow, rtol=1e-12)

    def test_interpreter_matches_on_registry_model(self, luo_rudy):
        generated = generate_limpet_mlir(luo_rudy, 8)
        fast, slow = self._run_both(generated, n_cells=8, n_steps=3)
        assert compare_trajectories(fast, slow, rtol=1e-12)

    def test_interpreter_matches_optimized_ir(self, gate_model):
        """Passes must not change what the interpreter computes either."""
        from repro.ir.passes import default_pipeline
        generated = generate_limpet_mlir(gate_model, 4)
        raw_fast, raw_slow = self._run_both(generated)
        optimized = generate_limpet_mlir(gate_model, 4)
        default_pipeline(verify_each=False).run(optimized.module,
                                                fixed_point=True)
        opt_fast, opt_slow = self._run_both(optimized)
        assert compare_trajectories(raw_slow, opt_slow, rtol=1e-12)

    def test_interpreter_runs_foreign_models(self):
        from repro.models import load_model
        generated = generate_baseline(load_model("Campbell"))
        fast, slow = self._run_both(generated, n_cells=4, n_steps=4)
        assert compare_trajectories(fast, slow, rtol=1e-12)
