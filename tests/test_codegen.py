"""Code generation tests: kernel structure of all three backends."""

import pytest

from repro.codegen import (BackendMode, generate_baseline, generate_icc_simd,
                           generate_limpet_mlir)
from repro.codegen.common import ExprEmitter, KernelSpec
from repro.easyml import parse_model
from repro.frontend import load_model
from repro.ir import IRBuilder, print_module, verify_module
from repro.ir.core import Block
from repro.ir.dialects import func
from repro.ir.types import f64, vector_of


def ops_of(kernel):
    fn = kernel.module.lookup_func(kernel.spec.function_name)
    return [op.name for op in fn.walk()]


def find_cell_loop(kernel):
    fn = kernel.module.lookup_func(kernel.spec.function_name)
    for op in fn.walk():
        if op.name == "scf.for" and op.attributes.get("cell_loop"):
            return op
    raise AssertionError("no cell loop")


class TestBaselineStructure:
    def test_verifies(self, gate_model):
        kernel = generate_baseline(gate_model)
        verify_module(kernel.module)

    def test_scalar_loop_step_one(self, gate_model):
        loop = find_cell_loop(generate_baseline(gate_model))
        assert loop.attributes["vector_width"] == 1
        step = loop.operands[2].owner
        assert step.attributes["value"] == 1

    def test_aos_layout(self, gate_model):
        kernel = generate_baseline(gate_model)
        assert str(kernel.layout) == "aos"

    def test_uses_scalar_memory_ops(self, gate_model):
        names = ops_of(generate_baseline(gate_model))
        assert "memref.load" in names and "memref.store" in names
        assert "vector.load" not in names

    def test_scalar_lut_call(self, gate_model):
        kernel = generate_baseline(gate_model)
        calls = [op for op in kernel.module.walk()
                 if op.name == "func.call"]
        assert calls and all(
            op.attributes["callee"].startswith("LUT_interpRow_Vm")
            for op in calls)

    def test_no_lut_mode_computes_inline(self, gate_model):
        kernel = generate_baseline(gate_model, use_lut=False)
        names = ops_of(kernel)
        assert "func.call" not in names
        assert "math.exp" in names

    def test_marked_parallel(self, gate_model):
        loop = find_cell_loop(generate_baseline(gate_model))
        assert loop.attributes["parallel"]


class TestLimpetMLIRStructure:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_verifies_at_all_widths(self, gate_model, width):
        kernel = generate_limpet_mlir(gate_model, width)
        verify_module(kernel.module)
        assert find_cell_loop(kernel).attributes["vector_width"] == width

    def test_wrapped_in_omp_parallel(self, gate_model):
        names = ops_of(generate_limpet_mlir(gate_model, 8))
        assert "omp.parallel" in names

    def test_loop_steps_by_width(self, gate_model):
        loop = find_cell_loop(generate_limpet_mlir(gate_model, 8))
        assert loop.operands[2].owner.attributes["value"] == 8

    def test_aosoa_uses_contiguous_vector_ops(self, gate_model):
        names = ops_of(generate_limpet_mlir(gate_model, 8))
        assert "vector.load" in names and "vector.store" in names
        assert "vector.gather" not in names

    def test_aos_mode_uses_gather_scatter(self, gate_model):
        kernel = generate_limpet_mlir(gate_model, 8, data_layout_opt=False)
        names = ops_of(kernel)
        assert "vector.gather" in names and "vector.scatter" in names
        assert str(kernel.layout) == "aos"

    def test_vector_lut_call(self, gate_model):
        kernel = generate_limpet_mlir(gate_model, 8)
        calls = [op for op in kernel.module.walk()
                 if op.name == "func.call"]
        assert all(op.attributes["callee"].startswith(
            "LUT_interpRow_n_elements_vec_8xf64") for op in calls)

    def test_all_value_types_are_width_consistent(self, gate_model):
        loop = find_cell_loop(generate_limpet_mlir(gate_model, 4))
        for op in loop.regions[0].entry.ops:
            for result in op.results:
                if result.type.is_vector:
                    assert result.type.width == 4

    def test_function_signature_arg_names(self, gate_model):
        kernel = generate_limpet_mlir(gate_model, 8)
        expected = ["start", "end", "dt", "t", "sv", "Vm_ext", "Iion_ext",
                    "lut_Vm"]
        assert kernel.spec.argument_names() == expected

    def test_matches_paper_listing3_shape(self, listing1_model, gate_model):
        """The printed IR must show the paper's key constructs."""
        kernel = generate_limpet_mlir(listing1_model, 8)
        from repro.ir.passes import default_pipeline
        default_pipeline(verify_each=False).run(kernel.module,
                                                fixed_point=True)
        text = print_module(kernel.module, pretty=True)
        assert "vector<8xf64>" in text
        assert "omp.parallel" in text
        assert "scf.for" in text
        # the gate model's Vm kinetics are tabulated: the vectorized
        # interp call of Listing 3 appears there
        lut_kernel = generate_limpet_mlir(gate_model, 8)
        lut_text = print_module(lut_kernel.module, pretty=True)
        assert "LUT_interpRow_n_elements_vec" in lut_text


class TestICCSimdStructure:
    def test_verifies(self, gate_model):
        verify_module(generate_icc_simd(gate_model, 8).module)

    def test_keeps_aos_layout(self, gate_model):
        assert str(generate_icc_simd(gate_model, 8).layout) == "aos"

    def test_serialized_lut_per_lane(self, gate_model):
        kernel = generate_icc_simd(gate_model, 4)
        calls = [op for op in kernel.module.walk()
                 if op.name == "func.call"]
        # one scalar call per lane
        assert len(calls) == 4
        names = ops_of(kernel)
        assert "vector.extract" in names and "vector.insert" in names

    def test_vector_math_retained(self, gate_model):
        names = ops_of(generate_icc_simd(gate_model, 8, use_lut=False))
        assert "math.exp" in names


class TestExprEmitter:
    def _emitter(self, width=1, env=None):
        from repro.ir.core import Module
        module = Module()
        fn = func.func(module, "f", [f64, f64], [], ["x", "y"])
        b = IRBuilder(fn.entry)
        base_env = {"x": fn.args[0], "y": fn.args[1]}
        if width > 1:
            from repro.ir.dialects import vector as v
            base_env = {k: v.broadcast(b, val, width)
                        for k, val in base_env.items()}
        base_env.update(env or {})
        return ExprEmitter(b, base_env, width), b

    def _expr(self, text):
        return parse_model(f"r = {text};").statements[0].expr

    def test_square_expands_to_mul(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("square(x)"))
        assert [op.name for op in b.block.ops] == ["arith.mulf"]

    def test_cube_expands_to_muls(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("cube(x)"))
        assert [op.name for op in b.block.ops] == ["arith.mulf"] * 2

    def test_pow_small_int_expands(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("pow(x, 4)"))
        names = [op.name for op in b.block.ops]
        assert "math.powf" not in names
        assert names.count("arith.mulf") == 2  # square-and-multiply

    def test_pow_negative_int_expands_with_reciprocal(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("pow(x, -2)"))
        names = [op.name for op in b.block.ops]
        assert "arith.divf" in names and "math.powf" not in names

    def test_pow_non_integer_stays_call(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("pow(x, 1.5)"))
        assert any(op.name == "math.powf" for op in b.block.ops)

    def test_pow_large_exponent_stays_call(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("pow(x, 9)"))
        assert any(op.name == "math.powf" for op in b.block.ops)

    def test_ternary_becomes_select(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("x > y ? x : y"))
        names = [op.name for op in b.block.ops]
        assert "arith.cmpf" in names and "arith.select" in names

    def test_comparison_as_number(self):
        emitter, b = self._emitter()
        value = emitter.emit(self._expr("(x < y) * 2"))
        assert value.type is f64

    def test_logical_ops_on_conditions(self):
        emitter, b = self._emitter()
        emitter.emit_bool(self._expr("x < y && x > 0 || !(y == 0)"))
        names = [op.name for op in b.block.ops]
        assert "arith.andi" in names and "arith.ori" in names
        assert "arith.xori" in names

    def test_vector_width_constants_broadcast(self):
        emitter, b = self._emitter(width=8)
        value = emitter.emit(self._expr("x + 2"))
        assert value.type == vector_of(8)

    def test_unbound_name_raises(self):
        emitter, _ = self._emitter()
        from repro.easyml.errors import SemanticError
        with pytest.raises(SemanticError, match="no value bound"):
            emitter.emit(self._expr("ghost"))

    def test_min_max(self):
        emitter, b = self._emitter()
        emitter.emit(self._expr("min(x, y) + max(x, y)"))
        names = [op.name for op in b.block.ops]
        assert "arith.minimumf" in names and "arith.maximumf" in names
