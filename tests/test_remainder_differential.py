"""Remainder-lane differential tests: every layout x width, ragged.

The autotuner freely swaps (width, layout, lut) variants under a user's
workload, so every point of that space must be *bitwise* exchangeable.
These tests pick cell counts with ``n_cells % width != 0`` — the padded
remainder block is where layout addressing bugs live — and require the
lowered kernel to agree bitwise (``rtol=0, atol=0``) with the scalar IR
interpreter walking the identical module, plus within solver tolerance
of the scalar baseline backend.
"""

import pytest

from repro.codegen import generate_baseline, generate_limpet_mlir
from repro.runtime import KernelRunner, compare_trajectories
from repro.runtime.interpreter import interpret_kernel
from repro.tuning import LAYOUTS

#: ragged cell counts: one remainder lane, half a block, block-1
_RAGGED = {2: 7, 4: 13, 8: 13}


def _run_both(generated, n_cells, n_steps=4, dt=0.01):
    """The lowered kernel and the interpreter over the same module."""
    lowered = KernelRunner(generated, optimize=False)
    fast = lowered.make_state(n_cells, perturbation=0.01)
    slow = lowered.make_state(n_cells, perturbation=0.01)
    luts = lowered.luts_for(dt)
    for _ in range(n_steps):
        lowered.compute_step(fast, dt)
        interpret_kernel(generated, slow, luts, dt)
    return fast, slow


class TestRaggedLayoutsBitwise:
    """Lowered == interpreter, bitwise, on ragged cell counts."""

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_layout_width_matches_interpreter(self, gate_model, layout,
                                              width):
        n_cells = _RAGGED[width]
        assert n_cells % width != 0
        generated = generate_limpet_mlir(gate_model, width, layout=layout)
        fast, slow = _run_both(generated, n_cells)
        comparison = compare_trajectories(fast, slow, rtol=0, atol=0)
        assert comparison, (
            f"w{width}/{layout}: {comparison.describe()}")

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    def test_lut_off_matches_interpreter(self, gate_model, layout):
        generated = generate_limpet_mlir(gate_model, 8, layout=layout,
                                         use_lut=False)
        fast, slow = _run_both(generated, 13)
        assert compare_trajectories(fast, slow, rtol=0, atol=0)

    def test_registry_model_ragged(self, luo_rudy):
        for layout in sorted(LAYOUTS):
            generated = generate_limpet_mlir(luo_rudy, 8, layout=layout)
            fast, slow = _run_both(generated, 13, n_steps=3)
            assert compare_trajectories(fast, slow, rtol=0, atol=0), layout


class TestRaggedVsScalarBaseline:
    """Every vector variant lands on the scalar backend's trajectory."""

    @pytest.mark.parametrize("layout", sorted(LAYOUTS))
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_matches_baseline_backend(self, gate_model, layout, width):
        n_cells = _RAGGED[width]
        base = KernelRunner(generate_baseline(gate_model))
        vec = KernelRunner(generate_limpet_mlir(gate_model, width,
                                                layout=layout))
        r_base = base.simulate(n_cells, 40, 0.01, perturbation=0.01)
        r_vec = vec.simulate(n_cells, 40, 0.01, perturbation=0.01)
        assert r_vec.state.n_alloc % width == 0   # padded
        assert compare_trajectories(r_base.state, r_vec.state, rtol=1e-9)
