"""Crash-safe persistent tiers: checksummed kernel-cache entries and
tuning records, corruption quarantine, advisory locking, concurrent
mutation from threads and processes, in-memory fallbacks, and the
watchdog's bounded-retry abort policy."""

import json
import multiprocessing as mp
import threading

import numpy as np
import pytest

from repro.resilience import WatchdogConfig, corrupt_cache_entry
from repro.runtime import KernelCache, file_lock, locking_available
from repro.runtime.kernel_cache import payload_checksum
from repro.tuning.database import TuningDB, record_checksum

pytestmark = pytest.mark.skipif(not locking_available(),
                                reason="platform lacks fcntl locking")


def store_entry(cache, key="k1", source="def f(): pass"):
    cache.store(key, source=source, mode="vector", width=8,
                arg_names=["sv"], function_name="f", fused=True,
                arena=False)


# ---------------------------------------------------------------------------
# Kernel cache: checksums and quarantine
# ---------------------------------------------------------------------------


class TestKernelCacheChecksums:
    def test_round_trip_verifies(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache)
        payload = cache.load("k1")
        assert payload["source"] == "def f(): pass"
        assert payload["checksum"] == payload_checksum(payload)

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache)
        corrupted = corrupt_cache_entry(cache, mode="truncate")
        assert corrupted is not None
        assert cache.load("k1") is None
        assert cache.stats.corrupt == 1
        # moved aside, not deleted: available for post-mortem
        quarantine = cache.root / "quarantine"
        assert list(quarantine.glob("*.json"))
        assert cache.persistent_stats().corrupt == 1

    def test_scrambled_checksum_quarantined(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache)
        corrupt_cache_entry(cache, mode="scramble")
        assert cache.load("k1") is None
        assert cache.stats.corrupt == 1

    def test_rebuild_after_quarantine(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache)
        corrupt_cache_entry(cache, mode="truncate")
        assert cache.load("k1") is None   # quarantined: miss
        store_entry(cache)                # rebuild
        assert cache.load("k1") is not None

    def test_quarantine_does_not_poison_other_entries(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache, "aaa")
        store_entry(cache, "bbb")
        corrupt_cache_entry(cache.root / "aaa.json", mode="truncate")
        assert cache.load("aaa") is None
        assert cache.load("bbb") is not None

    def test_corrupt_counter_in_metrics(self, tmp_path):
        from repro.obs import metrics
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache)
        before = getattr(metrics.default_registry()
                         .get("kernel_cache_corrupt_total"), "value", 0)
        corrupt_cache_entry(cache, mode="truncate")
        cache.load("k1")
        after = metrics.default_registry() \
            .get("kernel_cache_corrupt_total").value
        assert after == before + 1

    def test_corrupt_nothing_returns_none(self, tmp_path):
        assert corrupt_cache_entry(tmp_path) is None

    def test_corrupt_rejects_unknown_mode(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        store_entry(cache)
        with pytest.raises(ValueError):
            corrupt_cache_entry(cache, mode="summon")


# ---------------------------------------------------------------------------
# Kernel cache: unwritable directory -> in-memory fallback
# ---------------------------------------------------------------------------


class TestKernelCacheFallback:
    def unwritable_root(self, tmp_path):
        # a path UNDER an existing file can never be mkdir'd — this
        # stays unwritable even for root (unlike chmod tricks)
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        return blocker / "kernels"

    def test_falls_back_to_memory(self, tmp_path):
        cache = KernelCache(self.unwritable_root(tmp_path))
        assert cache.in_memory
        store_entry(cache)
        assert cache.load("k1")["source"] == "def f(): pass"
        assert cache.load("nope") is None
        stats = cache.persistent_stats()
        assert stats.entries == 1 and stats.bytes == 0

    def test_fallback_increments_metric(self, tmp_path):
        from repro.obs import metrics
        before = getattr(metrics.default_registry()
                         .get("cache_memory_fallbacks_total"), "value", 0)
        KernelCache(self.unwritable_root(tmp_path))
        after = metrics.default_registry() \
            .get("cache_memory_fallbacks_total").value
        assert after == before + 1

    def test_fallback_logs_diagnostic(self, tmp_path, caplog):
        import logging
        with caplog.at_level(logging.WARNING, logger="repro.resilience"):
            KernelCache(self.unwritable_root(tmp_path))
        assert any("kernel_cache" in r.message for r in caplog.records)


# ---------------------------------------------------------------------------
# Kernel cache: concurrent mutation (threads + processes)
# ---------------------------------------------------------------------------


def _cache_worker(root, worker, n_ops):
    cache = KernelCache(root)
    for i in range(n_ops):
        store_entry(cache, f"w{worker}-{i}")
        assert cache.load(f"w{worker}-{i}") is not None


class TestKernelCacheConcurrency:
    N_WORKERS = 4
    N_OPS = 8

    def test_thread_stress_no_lost_entries_or_stats(self, tmp_path):
        root = tmp_path / "kernels"
        threads = [threading.Thread(target=_cache_worker,
                                    args=(root, w, self.N_OPS))
                   for w in range(self.N_WORKERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cache = KernelCache(root)
        for w in range(self.N_WORKERS):
            for i in range(self.N_OPS):
                assert cache.load(f"w{w}-{i}") is not None
        stats = cache.persistent_stats()
        assert stats.entries == self.N_WORKERS * self.N_OPS
        # every hit was counted exactly once: the per-worker verify
        # loads plus this process's sweep
        assert stats.hits == 2 * self.N_WORKERS * self.N_OPS

    def test_process_stress_no_lost_entries_or_stats(self, tmp_path):
        root = tmp_path / "kernels"
        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=_cache_worker,
                             args=(root, w, self.N_OPS))
                 for w in range(self.N_WORKERS)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        cache = KernelCache(root)
        stats = cache.persistent_stats()
        assert stats.entries == self.N_WORKERS * self.N_OPS
        assert stats.hits == self.N_WORKERS * self.N_OPS

    def test_quarantine_under_concurrent_readers(self, tmp_path):
        # readers racing a corrupt entry: exactly one quarantine file,
        # every reader sees a miss, none crashes
        root = tmp_path / "kernels"
        cache = KernelCache(root)
        store_entry(cache)
        corrupt_cache_entry(cache, mode="scramble")
        results = []

        def read():
            results.append(KernelCache(root).load("k1"))

        threads = [threading.Thread(target=read) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [None] * 6
        assert cache.load("k1") is None


# ---------------------------------------------------------------------------
# Tuning DB: checksums, quarantine, fallback, concurrency
# ---------------------------------------------------------------------------


class TestTuningDBCrashSafety:
    def test_record_round_trip(self, tmp_path):
        db = TuningDB(tmp_path / "tuning.json")
        db.put("key1", {"config": {"width": 8}, "score": 1.5})
        record = db.get("key1")
        assert record["score"] == 1.5
        assert record["checksum"] == record_checksum(record)

    def test_tampered_record_quarantined(self, tmp_path):
        path = tmp_path / "tuning.json"
        db = TuningDB(path)
        db.put("key1", {"config": {"width": 8}, "score": 1.5})
        db.put("key2", {"config": {"width": 4}, "score": 2.5})
        data = json.loads(path.read_text())
        data["entries"]["key1"]["score"] = 99.0    # bit rot
        path.write_text(json.dumps(data))
        assert db.get("key1") is None
        assert db.get("key2") is not None          # others untouched
        # removed from the DB, preserved in the sidecar
        assert "key1" not in db.entries()
        sidecar = json.loads(db._quarantine_path().read_text())
        assert sidecar["key1"]["reason"] == "checksum mismatch"
        assert sidecar["key1"]["record"]["score"] == 99.0

    def test_unparsable_file_quarantined(self, tmp_path):
        path = tmp_path / "tuning.json"
        db = TuningDB(path)
        db.put("key1", {"config": {}, "score": 1.0})
        path.write_text('{"format": 2, "entries": {"key1"')   # torn write
        assert db.get("key1") is None
        assert len(db) == 0                        # restarted empty
        corpses = list(tmp_path.glob("tuning.json.corrupt-*"))
        assert len(corpses) == 1
        db.put("key2", {"config": {}, "score": 2.0})  # usable again
        assert db.get("key2") is not None

    def test_unwritable_path_falls_back_to_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        db = TuningDB(blocker / "tuning.json")
        db.put("key1", {"config": {}, "score": 1.0})
        assert db.in_memory
        assert db.get("key1")["score"] == 1.0

    def test_concurrent_thread_puts_lose_nothing(self, tmp_path):
        db_path = tmp_path / "tuning.json"

        def put_many(worker):
            db = TuningDB(db_path)
            for i in range(6):
                db.put(f"w{worker}-{i}", {"config": {}, "score": float(i)})

        threads = [threading.Thread(target=put_many, args=(w,))
                   for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(TuningDB(db_path)) == 24

    def test_concurrent_process_puts_lose_nothing(self, tmp_path):
        db_path = tmp_path / "tuning.json"
        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=_db_put_many, args=(db_path, w))
                 for w in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        db = TuningDB(db_path)
        assert len(db) == 24
        for w in range(4):
            for i in range(6):
                assert db.get(f"w{w}-{i}")["score"] == float(i)


def _db_put_many(db_path, worker):
    db = TuningDB(db_path)
    for i in range(6):
        db.put(f"w{worker}-{i}", {"config": {}, "score": float(i)})


# ---------------------------------------------------------------------------
# Advisory file locking
# ---------------------------------------------------------------------------


class TestFileLock:
    def test_acquire_and_release(self, tmp_path):
        lock = tmp_path / ".lock"
        with file_lock(lock) as acquired:
            assert acquired
        with file_lock(lock) as acquired:   # released: reacquirable
            assert acquired

    def test_exclusion_times_out(self, tmp_path):
        lock = tmp_path / ".lock"
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with file_lock(lock):
                entered.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert entered.wait(5.0)
            # flock is per-fd: a second open of the same path in this
            # process still contends
            with file_lock(lock, timeout=0.05) as acquired:
                assert not acquired        # held elsewhere: proceed unlocked
        finally:
            release.set()
            thread.join()

    def test_shared_locks_coexist(self, tmp_path):
        lock = tmp_path / ".lock"
        with file_lock(lock, shared=True) as first:
            assert first
            with file_lock(lock, shared=True, timeout=0.2) as second:
                assert second

    def test_unwritable_lock_path_proceeds_unlocked(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with file_lock(blocker / "x" / ".lock", timeout=0.1) as acquired:
            assert not acquired


# ---------------------------------------------------------------------------
# Watchdog: bounded retry budget with abort_report
# ---------------------------------------------------------------------------


class TestWatchdogRetryBudget:
    def _runner(self):
        from repro.codegen import generate_limpet_mlir
        from repro.models import load_model
        from repro.runtime import KernelRunner
        return KernelRunner(generate_limpet_mlir(load_model("Plonsey")))

    def test_exhausted_policy_validated(self):
        with pytest.raises(ValueError):
            WatchdogConfig(exhausted_policy="explode")
        with pytest.raises(ValueError):
            WatchdogConfig(max_retries=-1)
        with pytest.raises(ValueError):
            WatchdogConfig(min_dt=0.0)

    def test_abort_report_terminates_with_structured_report(self):
        runner = self._runner()
        state = runner.make_state(8)

        def always_poison(s):            # NaN returns after every rollback
            s.externals["Vm"][0] = np.nan

        config = WatchdogConfig(check_interval=5, max_retries=2,
                                exhausted_policy="abort_report")
        result = runner.run(state, 50, 0.01, watchdog=config,
                            step_hook=always_poison)
        health = result.health
        assert health.aborted and not health.ok
        assert health.budget_exhausted
        assert health.retries == 2
        assert health.diverged_cells == [0]
        assert "retry budget exhausted" in health.summary()
        assert health.to_dict()["budget_exhausted"] is True
        # rolled back to the last healthy checkpoint, not NaN soup
        assert np.isfinite(state.sv).all()

    def test_abort_report_respects_dt_floor(self):
        runner = self._runner()
        state = runner.make_state(8)

        def always_poison(s):
            s.externals["Vm"][0] = np.nan

        config = WatchdogConfig(check_interval=5, max_retries=50,
                                min_dt=0.004,
                                exhausted_policy="abort_report")
        result = runner.run(state, 50, 0.01, watchdog=config,
                            step_hook=always_poison)
        assert result.health.budget_exhausted
        # 0.01 -> 0.005 allowed, 0.0025 < min_dt halts the backoff
        assert result.health.retries == 1

    def test_default_policy_still_raises(self):
        from repro.resilience import NumericalDivergenceError
        runner = self._runner()
        state = runner.make_state(8)

        def always_poison(s):
            s.externals["Vm"][0] = np.nan

        with pytest.raises(NumericalDivergenceError):
            runner.run(state, 50, 0.01,
                       watchdog=WatchdogConfig(check_interval=5,
                                               max_retries=1),
                       step_hook=always_poison)
