"""Spline LUT interpolation tests (paper §7 future work, implemented)."""

import math

import numpy as np
import pytest

from repro.codegen import generate_baseline, generate_limpet_mlir
from repro.frontend import load_model
from repro.runtime import KernelRunner, compare_trajectories
from repro.runtime.lut_runtime import (build_all_luts, lut_interp_row,
                                       lut_interp_row_spline,
                                       lut_interp_row_spline_vec,
                                       lut_interp_row_vec)

COARSE_MODEL = """
Vm; .external(); .lookup(-10,10,1.0);
a = exp(Vm/10);
b = 1/(1+exp(-Vm/4));
diff_x = a*b - x; x_init = 0;
"""


@pytest.fixture
def coarse_lut():
    model = load_model(COARSE_MODEL, "Coarse")
    return build_all_luts(model, dt=0.01)[0]


class TestSplineInterp:
    def test_exact_at_grid_points(self, coarse_lut):
        for i in range(coarse_lut.n_rows):
            key = coarse_lut.lo + i * coarse_lut.step
            spline = lut_interp_row_spline(coarse_lut, key)
            assert spline[0] == pytest.approx(coarse_lut.rows[i, 0],
                                              abs=1e-13)

    def test_order_of_magnitude_more_accurate_than_linear(self,
                                                          coarse_lut):
        keys = np.linspace(-8.5, 8.5, 69)
        exact = np.exp(keys / 10)
        linear = lut_interp_row_vec(coarse_lut, keys)[0]
        spline = lut_interp_row_spline_vec(coarse_lut, keys)[0]
        err_linear = np.abs(linear - exact).max()
        err_spline = np.abs(spline - exact).max()
        assert err_spline < err_linear / 50

    def test_convergence_order_four(self):
        """Halving the step must cut the midpoint error ~16x."""
        def spline_error(step):
            model = load_model(COARSE_MODEL.replace("1.0", str(step)),
                               "C2")
            lut = build_all_luts(model)[0]
            keys = np.linspace(-5.0, 5.0, 101) + step / 2
            exact = np.exp(keys / 10)
            return np.abs(lut_interp_row_spline_vec(lut, keys)[0]
                          - exact).max()

        ratio = spline_error(1.0) / spline_error(0.5)
        assert ratio > 8.0

    def test_clamps_at_table_ends(self, coarse_lut):
        low = lut_interp_row_spline(coarse_lut, -999.0)
        assert low[0] == pytest.approx(coarse_lut.rows[0, 0], abs=1e-12)

    def test_nan_key_propagates(self, coarse_lut):
        row = lut_interp_row_spline(coarse_lut, float("nan"))
        assert math.isnan(row[0])

    def test_scalar_matches_vector(self, coarse_lut):
        for key in (-9.7, -2.3, 0.0, 4.45, 9.99):
            scalar = lut_interp_row_spline(coarse_lut, key)
            vector = lut_interp_row_spline_vec(coarse_lut,
                                               np.array([key]))
            assert scalar[0] == pytest.approx(vector[0][0], abs=1e-15)


class TestSplineCodegen:
    def test_spline_symbols_in_ir(self, gate_model):
        kernel = generate_limpet_mlir(gate_model, 8,
                                      lut_interpolation="spline")
        calls = [op.attributes["callee"] for op in kernel.module.walk()
                 if op.name == "func.call"]
        assert all(c.startswith("LUT_interpRowSpline_n_elements_vec")
                   for c in calls)

    def test_invalid_mode_rejected(self, gate_model):
        with pytest.raises(ValueError, match="interpolation"):
            generate_limpet_mlir(gate_model, 8, lut_interpolation="bezier")
        with pytest.raises(ValueError, match="interpolation"):
            generate_baseline(gate_model, lut_interpolation="bezier")

    def test_backend_equivalence_spline(self, gate_model):
        base = KernelRunner(generate_baseline(gate_model,
                                              lut_interpolation="spline"))
        vec = KernelRunner(generate_limpet_mlir(
            gate_model, 8, lut_interpolation="spline"))
        r1 = base.simulate(10, 120, 0.01, perturbation=0.01)
        r2 = vec.simulate(10, 120, 0.01, perturbation=0.01)
        assert compare_trajectories(r1.state, r2.state)

    def test_spline_trajectory_closer_to_exact(self):
        """End-to-end: spline LUT tracks the non-LUT kinetics better
        than linear LUT on the same (coarse) table."""
        source = COARSE_MODEL
        model = load_model(source, "Coarse")
        exact = KernelRunner(generate_limpet_mlir(model, 8, use_lut=False))
        linear = KernelRunner(generate_limpet_mlir(model, 8))
        spline = KernelRunner(generate_limpet_mlir(
            model, 8, lut_interpolation="spline"))
        runs = {}
        for name, runner in (("exact", exact), ("linear", linear),
                             ("spline", spline)):
            state = runner.make_state(4, vm_init=3.7)
            runner.run(state, 300, 0.01)
            runs[name] = state.state_of("x")[0]
        err_linear = abs(runs["linear"] - runs["exact"])
        err_spline = abs(runs["spline"] - runs["exact"])
        assert err_spline < err_linear / 10

    def test_spline_profile_costs_more(self, gate_model):
        from repro.ir.passes import default_pipeline
        from repro.machine import AVX512, CostModel, profile_kernel
        cost = CostModel()
        cycles = {}
        for mode in ("linear", "spline"):
            kernel = generate_limpet_mlir(gate_model, 8,
                                          lut_interpolation=mode)
            default_pipeline(verify_each=False).run(kernel.module,
                                                    fixed_point=True)
            profile = profile_kernel(kernel.module,
                                     kernel.spec.function_name)
            cycles[mode] = cost.cycles_per_iteration(profile, AVX512)
        assert cycles["spline"] > cycles["linear"]
