"""Property-based tests (hypothesis) on core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.codegen.layout import aos, aosoa, pack_state, soa, unpack_state
from repro.easyml import parse_model, tokenize
from repro.easyml.ast_nodes import (Binary, Call, Expr, Name, Number,
                                    Ternary, Unary)
from repro.frontend.preprocessor import Preprocessor
from repro.runtime.expr_eval import eval_expr
from repro.runtime.lut_runtime import (LUTData, lut_interp_row,
                                       lut_interp_row_vec)

# ---------------------------------------------------------------------------
# expression strategies
# ---------------------------------------------------------------------------

_finite = st.floats(min_value=-100.0, max_value=100.0,
                    allow_nan=False, allow_infinity=False)
_var_names = st.sampled_from(["x", "y", "z"])


def expressions(max_depth=4):
    """Random EasyML expression trees over variables x, y, z."""
    leaves = st.one_of(
        _finite.map(lambda v: Number(round(v, 6))),
        _var_names.map(Name))

    def extend(children):
        safe_unary = st.sampled_from(["sin", "cos", "tanh", "square",
                                      "fabs", "atan"])
        return st.one_of(
            st.tuples(st.sampled_from(["+", "-", "*"]), children,
                      children).map(lambda t: Binary(*t)),
            st.tuples(children,).map(lambda t: Unary("-", t[0])),
            st.tuples(safe_unary, children).map(
                lambda t: Call(t[0], (t[1],))),
            st.tuples(st.sampled_from(["<", ">", "<=", ">="]),
                      children, children).map(
                lambda t: Ternary(Binary(t[0], t[1], t[2]), t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=12)


class TestLexerProperties:
    @given(st.lists(st.sampled_from(
        ["x", "42", "3.5", "+", "-", "*", "/", "(", ")", ";", "=",
         "exp", "if", "else", "<", ">=", "&&"]), min_size=0, max_size=30))
    def test_token_stream_matches_input_words(self, words):
        """Lexing whitespace-joined tokens recovers exactly those tokens."""
        source = " ".join(words)
        tokens = tokenize(source)
        assert [t.text for t in tokens[:-1]] == words

    @given(st.text(alphabet="abcdefxyz_0123456789 +-*/()<>=;,.?:",
                   max_size=60))
    def test_lexer_never_crashes_on_valid_alphabet(self, text):
        assume(not text.strip().startswith("."))
        try:
            tokens = tokenize(text)
        except Exception as err:  # only LexerError is acceptable
            from repro.easyml import LexerError
            assert isinstance(err, LexerError)
            return
        assert tokens[-1].kind.name == "EOF"


class TestPreprocessorProperties:
    @given(expressions())
    @settings(max_examples=60, deadline=None)
    def test_fold_preserves_value(self, expr):
        """Folding with known constants == direct evaluation."""
        env = {"x": 1.25, "y": -0.5, "z": 3.0}
        pre = Preprocessor(env)
        direct = eval_expr(expr, env)
        assume(math.isfinite(direct))
        folded_value = pre.try_eval(expr)
        assert folded_value is not None
        assert folded_value == pytest.approx(direct, rel=1e-12,
                                             abs=1e-12)

    @given(expressions())
    @settings(max_examples=60, deadline=None)
    def test_partial_fold_preserves_runtime_value(self, expr):
        """Folding only some constants never changes the result."""
        pre = Preprocessor({"y": -0.5, "z": 3.0})   # x stays runtime
        folded = pre.fold(expr)
        full_env = {"x": 0.75, "y": -0.5, "z": 3.0}
        before = eval_expr(expr, full_env)
        after = eval_expr(folded, full_env)
        assume(math.isfinite(before))
        assert after == pytest.approx(before, rel=1e-12, abs=1e-12)

    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_str_reparse_identity(self, expr):
        """str() of any expression is valid EasyML for the same tree."""
        reparsed = parse_model(f"r = {expr};").statements[0].expr
        env = {"x": 0.3, "y": 1.7, "z": -2.2}
        assert eval_expr(reparsed, env) == pytest.approx(
            eval_expr(expr, env), rel=1e-12, abs=1e-12, nan_ok=True)


class TestCodegenSemanticsProperty:
    @given(expressions())
    @settings(max_examples=40, deadline=None)
    def test_emitted_ir_matches_reference_eval(self, expr):
        """EasyML -> IR -> lowered Python == direct NumPy evaluation,
        in both scalar and vector form, before and after passes."""
        from repro.codegen.common import ExprEmitter
        from repro.ir import IRBuilder, build_module
        from repro.ir.dialects import func, vector as vec_dialect
        from repro.ir.passes import default_pipeline
        from repro.ir.types import f64, memref_of, index
        from repro.ir.dialects import memref as memref_dialect
        from repro.runtime import lower_function

        env_values = {"x": 0.8, "y": -1.3, "z": 2.4}
        expected = eval_expr(expr, env_values)
        assume(math.isfinite(expected))

        module, _ = build_module()
        fn = func.func(module, "f", [f64, f64, f64], [f64],
                       ["x", "y", "z"])
        b = IRBuilder(fn.entry)
        env = dict(zip(["x", "y", "z"], fn.args))
        result = ExprEmitter(b, env, width=1).emit(expr)
        func.ret(b, [result])
        default_pipeline(verify_each=False).run(module, fixed_point=True)
        kernel = lower_function(module, "f", mode="scalar")
        got = kernel.fn(env_values["x"], env_values["y"], env_values["z"])
        assert got == pytest.approx(expected, rel=1e-10, abs=1e-10)


class TestLayoutProperties:
    layouts = st.sampled_from(["aos", "soa", "aosoa2", "aosoa8"])

    @staticmethod
    def _make(kind, n_states):
        return {"aos": aos(n_states), "soa": soa(n_states),
                "aosoa2": aosoa(n_states, 2),
                "aosoa8": aosoa(n_states, 8)}[kind]

    @given(layouts, st.integers(1, 6), st.integers(1, 40),
           st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_round_trip(self, kind, n_states, n_cells, seed):
        layout = self._make(kind, n_states)
        rng = np.random.default_rng(seed)
        padded = layout.padded_cells(n_cells)
        values = rng.normal(size=(padded, n_states))
        buffer = pack_state(values, layout)
        recovered = unpack_state(buffer, layout, padded)
        np.testing.assert_array_equal(recovered, values)

    @given(layouts, st.integers(1, 6), st.integers(1, 40))
    @settings(max_examples=80, deadline=None)
    def test_offsets_are_a_bijection(self, kind, n_states, n_cells):
        layout = self._make(kind, n_states)
        padded = layout.padded_cells(n_cells)
        cells = np.arange(padded)
        seen = set()
        for slot in range(n_states):
            for off in layout.offsets(cells, slot, padded):
                assert off not in seen
                seen.add(int(off))
        assert max(seen) < layout.buffer_size(padded)


class TestLUTProperties:
    @given(st.floats(min_value=-50, max_value=50, allow_nan=False),
           st.integers(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_scalar_vector_interp_agree(self, key, seed):
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(11, 3))
        lut = LUTData("v", -5.0, 1.0, rows, ["a", "b", "c"])
        scalar = lut_interp_row(lut, key)
        vec = lut_interp_row_vec(lut, np.array([key]))
        for c in range(3):
            assert vec[c][0] == scalar[c]

    @given(st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_interp_within_row_envelope(self, key):
        """Linear interpolation never leaves [min, max] of its bracket."""
        rows = np.linspace(0, 1, 11)[:, None] ** 2
        lut = LUTData("v", -5.0, 1.0, rows, ["a"])
        value = lut_interp_row(lut, key)[0]
        assert rows.min() - 1e-12 <= value <= rows.max() + 1e-12

    @given(st.integers(0, 10))
    def test_exact_at_grid(self, idx):
        rows = np.arange(22.0).reshape(11, 2)
        lut = LUTData("v", -5.0, 1.0, rows, ["a", "b"])
        key = -5.0 + idx
        assert lut_interp_row(lut, key) == tuple(rows[idx])


class TestPassSemanticsProperty:
    @given(st.integers(0, 2 ** 31), st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_pipeline_preserves_gate_model_trajectories(self, seed,
                                                        n_cells):
        """Random initial states: optimized == unoptimized kernels."""
        from repro.codegen import generate_limpet_mlir
        from repro.frontend import load_model
        from repro.runtime import KernelRunner, compare_trajectories
        from tests.conftest import GATE_SOURCE

        model = load_model(GATE_SOURCE, "GateTest")
        raw = KernelRunner(generate_limpet_mlir(model, 4), optimize=False)
        opt = KernelRunner(generate_limpet_mlir(model, 4), optimize=True)
        rng1 = np.random.default_rng(seed)
        rng2 = np.random.default_rng(seed)
        s1 = raw.make_state(n_cells, perturbation=0.02, rng=rng1)
        s2 = opt.make_state(n_cells, perturbation=0.02, rng=rng2)
        raw.run(s1, 30, 0.01)
        opt.run(s2, 30, 0.01)
        assert compare_trajectories(s1, s2, rtol=1e-12)
