"""Lexer tests for EasyML."""

import pytest

from repro.easyml import LexerError, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_identifier(self):
        assert kinds("Vm") == [TokenKind.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert texts("diff_u1 _x a9") == ["diff_u1", "_x", "a9"]

    def test_keywords(self):
        assert kinds("if else group") == [TokenKind.IF, TokenKind.ELSE,
                                          TokenKind.GROUP]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("iffy grouped elsewhere") == [TokenKind.IDENT] * 3

    def test_operators(self):
        assert kinds("+ - * / % = ; , . ( ) { } ? :") == [
            TokenKind.PLUS, TokenKind.MINUS, TokenKind.STAR,
            TokenKind.SLASH, TokenKind.PERCENT, TokenKind.ASSIGN,
            TokenKind.SEMI, TokenKind.COMMA, TokenKind.DOT,
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACE,
            TokenKind.RBRACE, TokenKind.QUESTION, TokenKind.COLON]

    def test_comparisons(self):
        assert kinds("< <= > >= == !=") == [
            TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE,
            TokenKind.EQ, TokenKind.NE]

    def test_logical(self):
        assert kinds("&& || ! and or not") == [
            TokenKind.AND, TokenKind.OR, TokenKind.NOT, TokenKind.AND,
            TokenKind.OR, TokenKind.NOT]

    def test_eof_token_present(self):
        assert tokenize("x")[-1].kind is TokenKind.EOF
        assert tokenize("")[-1].kind is TokenKind.EOF


class TestNumbers:
    @pytest.mark.parametrize("literal,value", [
        ("1", 1.0), ("1.5", 1.5), (".5", 0.5), ("2.", 2.0),
        ("1e3", 1000.0), ("1.5e-2", 0.015), ("2.5E+4", 25000.0),
        ("0.0000001", 1e-7),
    ])
    def test_literal_values(self, literal, value):
        token = tokenize(literal)[0]
        assert token.kind is TokenKind.NUMBER
        assert token.number_value == value

    def test_negative_is_two_tokens(self):
        assert kinds("-1") == [TokenKind.MINUS, TokenKind.NUMBER]

    def test_number_value_on_non_number_raises(self):
        with pytest.raises(ValueError):
            tokenize("x")[0].number_value

    def test_dot_not_followed_by_digit_is_dot(self):
        # '.external' must lex as DOT + IDENT, not a number
        assert kinds(".external") == [TokenKind.DOT, TokenKind.IDENT]


class TestComments:
    def test_line_comment_slash(self):
        assert texts("x // comment\ny") == ["x", "y"]

    def test_line_comment_hash(self):
        assert texts("x # comment\ny") == ["x", "y"]

    def test_block_comment(self):
        assert texts("x /* multi\nline */ y") == ["x", "y"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("x /* never closed")

    def test_comment_at_end_without_newline(self):
        assert texts("x // trailing") == ["x"]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(LexerError) as err:
            tokenize("x\n  $")
        assert "2:3" in str(err.value)


class TestStrings:
    def test_string_literal(self):
        token = tokenize('"mV"')[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "mV"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize('"open')


class TestRealisticSource:
    def test_listing1_line(self):
        source = "Vm; .external(); .nodal(); .lookup(-100,100,0.05);"
        token_kinds = kinds(source)
        assert token_kinds[0] is TokenKind.IDENT
        assert TokenKind.DOT in token_kinds
        assert token_kinds.count(TokenKind.SEMI) == 4

    def test_whole_model_tokenizes(self, hodgkin_huxley):
        from repro.models import model_entry
        source = model_entry("HodgkinHuxley").path.read_text()
        tokens = tokenize(source)
        assert len(tokens) > 100
        assert tokens[-1].kind is TokenKind.EOF
