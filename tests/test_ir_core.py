"""Unit tests for the SSA core: values, ops, blocks, regions, modules."""

import pytest

from repro.ir import dialects  # noqa: F401 - registers ops
from repro.ir.core import (Block, IRError, Module, Operation, Region,
                           defining_block, enclosing_op, is_defined_in,
                           op_info, registered_ops)
from repro.ir.types import f64, index


def make_add(lhs, rhs):
    return Operation("arith.addf", [lhs, rhs], [f64])


@pytest.fixture
def block_with_args():
    return Block([f64, f64], ["a", "b"])


class TestUseDefChains:
    def test_operand_registers_use(self, block_with_args):
        a, b = block_with_args.args
        op = make_add(a, b)
        assert (op, 0) in a.uses
        assert (op, 1) in b.uses

    def test_replace_all_uses(self, block_with_args):
        a, b = block_with_args.args
        op1 = make_add(a, b)
        op2 = make_add(op1.result, b)
        op1.result.replace_all_uses_with(a)
        assert op2.operands[0] is a
        assert op1.result.num_uses == 0

    def test_replace_with_self_is_noop(self, block_with_args):
        a, b = block_with_args.args
        op = make_add(a, b)
        a.replace_all_uses_with(a)
        assert op.operands[0] is a

    def test_set_operand_moves_use(self, block_with_args):
        a, b = block_with_args.args
        op = make_add(a, a)
        op.set_operand(1, b)
        assert op.operands == [a, b]
        assert (op, 1) in b.uses
        assert (op, 1) not in a.uses

    def test_drop_all_operands(self, block_with_args):
        a, b = block_with_args.args
        op = make_add(a, b)
        op.drop_all_operands()
        assert a.num_uses == 0 and b.num_uses == 0

    def test_non_value_operand_rejected(self):
        with pytest.raises(IRError):
            Operation("arith.addf", [42], [f64])


class TestOperation:
    def test_single_result_accessor(self, block_with_args):
        a, b = block_with_args.args
        assert make_add(a, b).result.type is f64

    def test_result_accessor_rejects_zero_results(self):
        op = Operation("func.return", [], [])
        with pytest.raises(IRError):
            _ = op.result

    def test_dialect_name(self, block_with_args):
        a, b = block_with_args.args
        assert make_add(a, b).dialect == "arith"

    def test_purity_from_registry(self, block_with_args):
        a, b = block_with_args.args
        assert make_add(a, b).is_pure
        assert not Operation("memref.store", [a, _memref()], []).is_pure

    def test_terminator_trait(self):
        assert Operation("func.return", [], []).is_terminator

    def test_unregistered_op_has_no_info(self):
        assert Operation("bogus.op", [], []).info is None

    def test_uids_are_unique(self, block_with_args):
        a, b = block_with_args.args
        assert make_add(a, b).uid != make_add(a, b).uid


def _memref():
    from repro.ir.types import memref_of
    block = Block([memref_of(f64)])
    return block.args[0]


class TestBlockStructure:
    def test_append_sets_parent(self, block_with_args):
        a, b = block_with_args.args
        op = block_with_args.append(make_add(a, b))
        assert op.parent is block_with_args

    def test_double_append_rejected(self, block_with_args):
        a, b = block_with_args.args
        op = block_with_args.append(make_add(a, b))
        with pytest.raises(IRError):
            Block().append(op)

    def test_insert_before(self, block_with_args):
        a, b = block_with_args.args
        op1 = block_with_args.append(make_add(a, b))
        op2 = make_add(a, b)
        block_with_args.insert_before(op1, op2)
        assert block_with_args.ops == [op2, op1]

    def test_terminator_property(self, block_with_args):
        a, b = block_with_args.args
        block_with_args.append(make_add(a, b))
        assert block_with_args.terminator is None
        block_with_args.append(Operation("func.return", [], []))
        assert block_with_args.terminator is not None

    def test_add_argument(self):
        block = Block()
        arg = block.add_argument(f64, "x")
        assert arg.type is f64 and arg.index == 0
        assert block.args == [arg]


class TestEraseAndMove:
    def test_erase_removes_from_block(self, block_with_args):
        a, b = block_with_args.args
        op = block_with_args.append(make_add(a, b))
        op.erase()
        assert block_with_args.ops == []
        assert a.num_uses == 0

    def test_erase_with_live_uses_rejected(self, block_with_args):
        a, b = block_with_args.args
        op1 = block_with_args.append(make_add(a, b))
        block_with_args.append(make_add(op1.result, b))
        with pytest.raises(IRError):
            op1.erase()

    def test_move_before(self, block_with_args):
        a, b = block_with_args.args
        op1 = block_with_args.append(make_add(a, b))
        op2 = block_with_args.append(make_add(a, b))
        op2.move_before(op1)
        assert block_with_args.ops == [op2, op1]


class TestCloneAndWalk:
    def test_clone_remaps_operands(self, block_with_args):
        a, b = block_with_args.args
        op = make_add(a, b)
        other = Block([f64, f64]).args
        clone = op.clone({a: other[0], b: other[1]})
        assert clone.operands == list(other)
        assert clone.results[0] is not op.results[0]

    def test_clone_with_region(self):
        inner = Block([index])
        region = Region([inner])
        outer = Operation("scf.for", [], [], regions=[region])
        value_map = {}
        clone = outer.clone(value_map)
        assert len(clone.regions) == 1
        assert clone.regions[0].entry is not inner
        assert inner.args[0] in value_map

    def test_walk_visits_nested(self):
        inner_block = Block()
        inner_block.append(Operation("omp.terminator", [], []))
        op = Operation("omp.parallel", [], [],
                       regions=[Region([inner_block])])
        names = [o.name for o in op.walk()]
        assert names == ["omp.parallel", "omp.terminator"]


class TestModule:
    def test_append_and_funcs(self):
        module = Module("m")
        fn = Operation("func.func", [], [], {"sym_name": "f"})
        module.append(fn)
        assert module.funcs() == [fn]
        assert module.lookup_func("f") is fn
        assert module.lookup_func("missing") is None

    def test_walk(self):
        module = Module("m")
        module.append(Operation("func.func", [], [], {"sym_name": "f"}))
        assert [o.name for o in module.walk()] == ["func.func"]


class TestScoping:
    def test_defining_block(self, block_with_args):
        a, _ = block_with_args.args
        assert defining_block(a) is block_with_args
        op = block_with_args.append(make_add(a, a))
        assert defining_block(op.result) is block_with_args

    def test_is_defined_in(self):
        body = Block([index])
        loop = Operation("scf.for", [], [], regions=[Region([body])])
        iv = body.args[0]
        assert is_defined_in(iv, loop)
        outer = Block([f64])
        assert not is_defined_in(outer.args[0], loop)

    def test_enclosing_op_of_block_arg(self):
        body = Block([index])
        loop = Operation("scf.for", [], [], regions=[Region([body])])
        assert enclosing_op(body.args[0]) is loop


class TestRegistry:
    def test_known_ops_registered(self):
        names = registered_ops()
        for name in ("arith.addf", "math.exp", "scf.for", "vector.gather",
                     "memref.load", "func.call", "omp.parallel", "cf.br"):
            assert name in names

    def test_op_info_traits(self):
        assert op_info("arith.addf").pure
        assert op_info("arith.addf").commutative
        assert not op_info("arith.subf").commutative
        assert op_info("scf.yield").terminator
