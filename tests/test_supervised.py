"""Supervised multiprocess tier: bitwise differential, crash/stall
recovery, the degradation ladder, lifecycle hygiene, signal shutdown."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.codegen import generate_limpet_mlir
from repro.models import load_model
from repro.resilience import FaultPlan, NumericalDivergenceError
from repro.runtime import (KernelRunner, SupervisedExecutionError,
                           SupervisedRunner, SupervisionConfig,
                           close_all_runners, compare_trajectories,
                           multiprocess_supported)
from repro.runtime.shutdown import (register_cleanup, run_cleanups,
                                    unregister_cleanup)

needs_mp = pytest.mark.skipif(not multiprocess_supported(),
                              reason="platform lacks fork/shared_memory")

#: the differential matrix: a trivial model, a LUT model, a stiff LUT
#: model — with ragged cell counts that exercise the width remainder
DIFF_CASES = [("Plonsey", 13), ("FitzHughNagumo", 37), ("LuoRudy91", 29)]

#: fast supervision settings for tests that provoke stalls
FAST = dict(heartbeat_interval=0.02, heartbeat_timeout=0.3,
            task_timeout=2.0, retry_backoff=0.01)


def make_generated(name):
    return generate_limpet_mlir(load_model(name))


def run_single(name, n_cells, n_steps, dt=0.01):
    runner = KernelRunner(make_generated(name))
    state = runner.make_state(n_cells)
    runner.run(state, n_steps, dt)
    return state


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------


class TestSupervisionConfig:
    def test_defaults_valid(self):
        config = SupervisionConfig()
        assert config.max_retries >= 1
        assert config.heartbeat_timeout > config.heartbeat_interval

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval": 0.0},
        {"heartbeat_interval": 1.0, "heartbeat_timeout": 0.5},
        {"task_timeout": 0.0},
        {"max_retries": -1},
        {"retry_backoff": -0.1},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionConfig(**kwargs)


# ---------------------------------------------------------------------------
# Bitwise differential vs the single-process runner
# ---------------------------------------------------------------------------


@needs_mp
class TestBitwiseDifferential:
    @pytest.mark.parametrize("name,n_cells", DIFF_CASES)
    def test_supervised_matches_single_bitwise(self, name, n_cells):
        expected = run_single(name, n_cells, 120)
        with SupervisedRunner(make_generated(name),
                              n_workers=3) as supervised:
            state = supervised.make_state(n_cells)
            supervised.run(state, 120, 0.01)
            assert supervised.tier == "supervised"
        comparison = compare_trajectories(expected, state, rtol=0, atol=0)
        assert comparison, comparison.mismatches
        # belt and braces: exact array equality on every snapshot key
        left, right = expected.snapshot(), state.snapshot()
        for key in left:
            assert np.array_equal(left[key], right[key]), key

    def test_bitwise_after_worker_kill(self):
        expected = run_single("FitzHughNagumo", 37, 80)
        plan = FaultPlan(kill_worker=0, kill_worker_at_task=3)
        with SupervisedRunner(make_generated("FitzHughNagumo"),
                              n_workers=3, fault_plan=plan,
                              config=SupervisionConfig(**FAST)) as sup:
            state = sup.make_state(37)
            sup.run(state, 80, 0.01)
            assert sup.tier == "supervised"
            assert any("restarted worker" in d.message
                       for d in sup.diagnostics)
        assert compare_trajectories(expected, state, rtol=0, atol=0)

    def test_single_shard_runs_inline(self):
        # one worker -> one shard: supervised path degenerates to the
        # plain compute step, still bitwise identical
        expected = run_single("Plonsey", 5, 40)
        with SupervisedRunner(make_generated("Plonsey"),
                              n_workers=1) as sup:
            state = sup.make_state(5)
            sup.run(state, 40, 0.01)
        assert compare_trajectories(expected, state, rtol=0, atol=0)

    def test_state_arrays_restored_after_run(self):
        # the run moves state into shared memory; afterwards the state
        # must be rebound to ordinary heap arrays and the segment gone
        with SupervisedRunner(make_generated("Plonsey"),
                              n_workers=2) as sup:
            state = sup.make_state(16)
            sv_before = state.sv
            sup.run(state, 10, 0.01)
            assert sup._state_shm is None
            assert state.sv is sv_before


# ---------------------------------------------------------------------------
# Crash and stall recovery
# ---------------------------------------------------------------------------


@needs_mp
class TestCrashRecovery:
    def test_worker_kill_restarts_and_retries(self):
        plan = FaultPlan(kill_worker=1, kill_worker_at_task=2)
        with SupervisedRunner(make_generated("Plonsey"), n_workers=3,
                              fault_plan=plan,
                              config=SupervisionConfig(**FAST)) as sup:
            state = sup.make_state(24)
            result = sup.run(state, 30, 0.01)
            assert result.n_steps == 30
            assert sup.tier == "supervised"
            restarts = [d for d in sup.diagnostics
                        if "restarted worker 1" in d.message]
            assert len(restarts) == 1
            assert np.isfinite(state.sv).all()

    def test_worker_stall_detected_by_heartbeat(self):
        plan = FaultPlan(stall_worker=0, stall_worker_at_task=2,
                         stall_worker_seconds=30.0)
        with SupervisedRunner(make_generated("Plonsey"), n_workers=2,
                              fault_plan=plan,
                              config=SupervisionConfig(**FAST)) as sup:
            state = sup.make_state(16)
            start = time.monotonic()
            sup.run(state, 20, 0.01)
            elapsed = time.monotonic() - start
            assert sup.tier == "supervised"
            assert any("restarted worker 0" in d.message
                       for d in sup.diagnostics)
            # detection is bounded by the heartbeat timeout, not the
            # 30 s the worker would have slept
            assert elapsed < 15.0

    def test_retries_exhausted_raises_when_degradation_off(self):
        plan = FaultPlan(kill_worker=0, kill_worker_at_task=1)
        config = SupervisionConfig(max_retries=0, degrade=False, **FAST)

        class KillEveryLife(SupervisedRunner):
            # re-arm the fault on every spawn so the retry also dies
            def _fault_for_slot(self, slot):
                spawns = self._spawns[slot]
                self._spawns[slot] = 0
                try:
                    return super()._fault_for_slot(slot)
                finally:
                    self._spawns[slot] = spawns

        with KillEveryLife(make_generated("Plonsey"), n_workers=2,
                           fault_plan=plan, config=config) as sup:
            state = sup.make_state(16)
            with pytest.raises(SupervisedExecutionError) as excinfo:
                sup.run(state, 10, 0.01)
            assert excinfo.value.slot == 0
            assert excinfo.value.attempts == 1


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------


@needs_mp
class TestDegradationLadder:
    def _always_dying(self, **kwargs):
        plan = FaultPlan(kill_worker=0, kill_worker_at_task=1)
        config = SupervisionConfig(max_retries=0, **FAST)

        class KillEveryLife(SupervisedRunner):
            def _fault_for_slot(self, slot):
                spawns = self._spawns[slot]
                self._spawns[slot] = 0
                try:
                    return super()._fault_for_slot(slot)
                finally:
                    self._spawns[slot] = spawns

        return KillEveryLife(make_generated("FitzHughNagumo"),
                             n_workers=2, fault_plan=plan, config=config,
                             **kwargs)

    def test_degrades_to_threads_and_completes(self):
        expected = run_single("FitzHughNagumo", 19, 60)
        with self._always_dying() as sup:
            state = sup.make_state(19)
            result = sup.run(state, 60, 0.01)
            assert sup.tier == "threads"
            assert result.n_steps == 60
            assert any("degrading supervised -> threads" in d.message
                       for d in sup.diagnostics)
        # the thread tier restarted from the initial checkpoint, so the
        # result is still bitwise identical to single-process
        assert compare_trajectories(expected, state, rtol=0, atol=0)

    def test_subsequent_runs_stay_on_degraded_tier(self):
        with self._always_dying() as sup:
            state = sup.make_state(19)
            sup.run(state, 10, 0.01)
            assert sup.tier == "threads"
            sup.run(sup.make_state(19), 10, 0.01)
            assert sup.tier == "threads"
            # no new degradation diagnostics from the second run
            degradations = [d for d in sup.diagnostics
                            if "degrading" in d.message]
            assert len(degradations) == 1

    def test_divergence_is_not_degraded(self):
        # a watchdog verdict is numerics, not infrastructure: it must
        # escape unchanged instead of burning a degradation
        from repro.resilience import WatchdogConfig
        with SupervisedRunner(make_generated("FitzHughNagumo"),
                              n_workers=2) as sup:
            state = sup.make_state(19)

            def always_poison(s):
                s.externals["Vm"][0] = np.nan

            with pytest.raises(NumericalDivergenceError):
                sup.run(state, 50, 0.01,
                        watchdog=WatchdogConfig(check_interval=5,
                                                max_retries=1),
                        step_hook=always_poison)
            assert sup.tier == "supervised"

    def test_watchdog_dt_halving_stays_bitwise(self):
        # adaptive dt under supervision: workers rebuild LUTs per
        # quantized dt, so recovery trajectories match single-process
        from repro.resilience import FaultInjector, WatchdogConfig
        def run(runner):
            inject = FaultInjector(FaultPlan(nan_at_step=30,
                                             nan_cells=(0, 2)))
            state = runner.make_state(21)
            result = runner.run(state, 100, 0.01,
                                watchdog=WatchdogConfig(check_interval=10),
                                step_hook=inject.step_hook)
            assert result.health.retries == 1
            return state

        expected = run(KernelRunner(make_generated("LuoRudy91")))
        with SupervisedRunner(make_generated("LuoRudy91"),
                              n_workers=3) as sup:
            got = run(sup)
            assert sup.tier == "supervised"
        assert compare_trajectories(expected, got, rtol=0, atol=0)

    def test_unsupported_platform_constructs_on_thread_tier(self,
                                                            monkeypatch):
        import repro.runtime.supervised as supervised_mod
        monkeypatch.setattr(supervised_mod, "_shm_mod", None)
        sup = SupervisedRunner(make_generated("Plonsey"), n_workers=2)
        try:
            assert sup.tier == "threads"
            state = sup.make_state(8)
            assert sup.run(state, 5, 0.01).n_steps == 5
        finally:
            sup.close()


# ---------------------------------------------------------------------------
# Construction refusals inherited from the thread tier
# ---------------------------------------------------------------------------


class TestConstructionRefusals:
    def test_soa_refused_for_multiple_workers(self):
        generated = generate_limpet_mlir(load_model("Plonsey"),
                                         layout="soa")
        with pytest.raises(ValueError, match="SoA"):
            SupervisedRunner(generated, n_workers=2)

    def test_soa_allowed_for_one_worker(self):
        generated = generate_limpet_mlir(load_model("Plonsey"),
                                         layout="soa")
        sup = SupervisedRunner(generated, n_workers=1)
        sup.close()


# ---------------------------------------------------------------------------
# Lifecycle hygiene
# ---------------------------------------------------------------------------


@needs_mp
class TestLifecycle:
    def test_close_reaps_workers_and_segments(self):
        sup = SupervisedRunner(make_generated("Plonsey"), n_workers=2)
        state = sup.make_state(16)
        sup.run(state, 5, 0.01)
        sup.close()
        assert sup._procs == [] and sup._state_shm is None
        assert sup._hb_shm is None
        sup.close()                     # idempotent

    def test_close_all_runners_sweeps_registry(self):
        sup = SupervisedRunner(make_generated("Plonsey"), n_workers=2)
        close_all_runners()
        assert sup._procs == []

    def test_cleanup_registry_runs_lifo_once(self):
        calls = []
        register_cleanup(lambda: calls.append("a"), "test-a")
        register_cleanup(lambda: calls.append("b"), "test-b")
        try:
            run_cleanups()
            assert calls == ["b", "a"]
            run_cleanups()              # registrations survive, idempotent
            assert calls == ["b", "a", "b", "a"]
        finally:
            unregister_cleanup("test-a")
            unregister_cleanup("test-b")

    def test_metrics_registered_up_front(self):
        from repro.obs import metrics
        SupervisedRunner(make_generated("Plonsey"), n_workers=2).close()
        snap = metrics.snapshot()
        for name in ("worker_restarts_total", "shard_retries_total",
                     "degradations_total", "supervised_workers"):
            assert name in snap


# ---------------------------------------------------------------------------
# Signal shutdown (subprocess: real SIGTERM against a live run)
# ---------------------------------------------------------------------------


_SIGNAL_SCRIPT = """
import os, sys, time
from repro.codegen import generate_limpet_mlir
from repro.models import load_model
from repro.runtime import SupervisedRunner, install_signal_handlers

install_signal_handlers()
sup = SupervisedRunner(generate_limpet_mlir(load_model("LuoRudy91")),
                       n_workers=2)
state = sup.make_state(64)


def tattle(s):
    # long enough for the parent to interrupt mid-run
    print("RUNNING", flush=True)
    time.sleep(0.002)


try:
    sup.run(state, 100000, 0.01, step_hook=tattle)
except SystemExit as err:
    print("EXIT", err.code, flush=True)
    raise
"""


@needs_mp
class TestSignalShutdown:
    def test_sigterm_terminates_cleanly(self, tmp_path):
        script = tmp_path / "victim.py"
        script.write_text(_SIGNAL_SCRIPT)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(p) for p in sys.path if p])
        proc = subprocess.Popen([sys.executable, str(script)],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True,
                                env=env)
        try:
            assert "RUNNING" in proc.stdout.readline()
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 128 + signal.SIGTERM
        assert "EXIT 143" in out
        # no orphaned worker output, no shared-memory leak warnings
        assert "leaked shared_memory" not in out
