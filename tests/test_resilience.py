"""Tests for the resilience layer: fallback chain, sandboxed passes,
numerical watchdog, fault injection — plus the executor fixes that ride
along (NaN-strict trajectory comparison, vm_trace, LUT cache bounds)."""

import numpy as np
import pytest

from repro.codegen import UnsupportedModelError, generate_limpet_mlir
from repro.frontend import load_model as load_model_source
from repro.models import UNSUPPORTED_MODELS
from repro.resilience import (DEFAULT_CHAIN, Diagnostic, FaultInjector,
                              FaultPlan, InjectedFault,
                              NumericalDivergenceError, NumericalWatchdog,
                              ResilientCompileError, Severity,
                              WatchdogConfig, compile_resilient,
                              format_trail, load_reproducer, poison_state,
                              sandboxed_pipeline)
from repro.runtime import KernelRunner, compare_trajectories
from repro.ir import verify_module

#: a model with no Vm external at all (pure relaxation ODE)
NO_VM_SOURCE = """
x_init = 0.5;
diff_x = -0.1*x;
"""


@pytest.fixture
def runner(gate_model):
    return KernelRunner(generate_limpet_mlir(gate_model, 8))


# ---------------------------------------------------------------------------
# Diagnostics
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_round_trip(self):
        diag = Diagnostic.from_exception(
            "compile", "limpet_mlir", ValueError("boom"), tier=1)
        clone = Diagnostic.from_dict(diag.to_dict())
        assert clone.message == "boom"
        assert clone.error_type == "ValueError"
        assert clone.data["tier"] == 1
        assert clone.severity is Severity.WARNING

    def test_describe_and_trail(self):
        diag = Diagnostic("pass", "cse", "quarantined",
                          severity=Severity.ERROR)
        assert "error" in diag.describe() and "pass/cse" in diag.describe()
        assert "quarantined" in format_trail([diag])
        assert format_trail([]) == "(no diagnostics)"


# ---------------------------------------------------------------------------
# Backend fallback chain
# ---------------------------------------------------------------------------


class TestFallbackChain:
    @pytest.mark.parametrize("name", UNSUPPORTED_MODELS)
    def test_foreign_models_fall_back_to_baseline(self, name):
        compiled = compile_resilient(name)
        assert compiled.backend == "baseline"
        assert compiled.fell_back
        skipped = [d for d in compiled.diagnostics
                   if d.error_type == "UnsupportedModelError"]
        assert {d.component for d in skipped} == {"limpet_mlir", "icc_simd"}
        # the fallback kernel actually runs
        result = compiled.runner.simulate(4, 5)
        assert np.isfinite(result.state.sv).all()

    def test_supported_model_does_not_fall_back(self, gate_model):
        compiled = compile_resilient(gate_model)
        assert compiled.backend == "limpet_mlir"
        assert not compiled.fell_back
        info = [d for d in compiled.diagnostics
                if d.severity is Severity.INFO]
        assert info and "limpet_mlir" in info[-1].message

    def test_strict_mode_fails_fast(self):
        with pytest.raises(UnsupportedModelError):
            compile_resilient("ARPF", strict=True)

    def test_all_tiers_failing_raises_with_trail(self, gate_model):
        inject = FaultInjector(FaultPlan(fail_backends=DEFAULT_CHAIN))
        with pytest.raises(ResilientCompileError) as excinfo:
            compile_resilient(gate_model, inject=inject)
        diags = excinfo.value.diagnostics
        assert {d.component for d in diags} == set(DEFAULT_CHAIN)
        assert all(d.error_type == "InjectedFault" for d in diags)

    def test_partial_chain_respected(self, gate_model):
        compiled = compile_resilient(gate_model, chain=("baseline",))
        assert compiled.backend == "baseline"
        assert not compiled.fell_back      # baseline was the request

    def test_bad_chain_rejected(self, gate_model):
        with pytest.raises(ValueError):
            compile_resilient(gate_model, chain=())
        with pytest.raises(ResilientCompileError):
            compile_resilient(gate_model, chain=("no_such_backend",))


# ---------------------------------------------------------------------------
# Sandboxed pass manager
# ---------------------------------------------------------------------------


class TestSandbox:
    def test_pass_exception_quarantines_and_rolls_back(self, gate_model,
                                                       tmp_path):
        inject = FaultInjector(FaultPlan(fail_pass="cse"))
        compiled = compile_resilient(gate_model, inject=inject,
                                     reproducer_dir=tmp_path)
        sandbox = compiled.sandbox
        assert sandbox.quarantined == {"cse"}
        verify_module(compiled.kernel.module)
        # quarantined pass ran exactly once (skipped every later round)
        assert sandbox.statistics["cse"].runs == 1
        assert sandbox.statistics["cse"].changed == 0

    def test_reproducer_bundle_round_trips(self, gate_model, tmp_path):
        inject = FaultInjector(FaultPlan(fail_pass="licm"))
        compiled = compile_resilient(gate_model, inject=inject,
                                     reproducer_dir=tmp_path)
        [bundle] = compiled.sandbox.reproducers
        assert (bundle / "module.ir").exists()
        assert (bundle / "traceback.txt").exists()
        module, meta = load_reproducer(bundle)
        assert meta["pass"] == "licm"
        assert meta["error_type"] == "InjectedFault"
        verify_module(module)              # pre-pass IR is valid IR
        assert "InjectedFault" in (bundle / "traceback.txt").read_text()

    def test_ir_corruption_caught_by_verifier(self, gate_model, tmp_path):
        inject = FaultInjector(FaultPlan(corrupt_after_pass="canonicalize"))
        compiled = compile_resilient(gate_model, inject=inject,
                                     reproducer_dir=tmp_path)
        assert "canonicalize" in compiled.sandbox.quarantined
        verify_module(compiled.kernel.module)
        verify_diags = [d for d in compiled.diagnostics
                        if d.stage == "verify"]
        assert verify_diags and \
            verify_diags[0].error_type == "VerificationError"

    def test_quarantined_kernel_matches_clean_kernel(self, gate_model,
                                                     tmp_path):
        inject = FaultInjector(FaultPlan(fail_pass="cse"))
        faulty = compile_resilient(gate_model, inject=inject,
                                   reproducer_dir=tmp_path)
        clean = compile_resilient(gate_model)
        r1 = faulty.runner.simulate(16, 40, perturbation=0.01)
        r2 = clean.runner.simulate(16, 40, perturbation=0.01)
        assert compare_trajectories(r1.state, r2.state)

    def test_sandbox_without_reproducer_dir(self, gate_model):
        inject = FaultInjector(FaultPlan(fail_pass="dce"))
        compiled = compile_resilient(gate_model, inject=inject)
        assert compiled.sandbox.quarantined == {"dce"}
        assert compiled.sandbox.reproducers == []

    def test_sandboxed_pipeline_optimizes_like_default(self, gate_model):
        kernel_a = generate_limpet_mlir(gate_model, 8)
        kernel_b = generate_limpet_mlir(gate_model, 8)
        from repro.ir.passes import default_pipeline
        from repro.ir import print_module
        sandboxed_pipeline().run(kernel_a.module, fixed_point=True)
        default_pipeline(verify_each=False).run(kernel_b.module,
                                                fixed_point=True)
        assert print_module(kernel_a.module) == print_module(kernel_b.module)


# ---------------------------------------------------------------------------
# Numerical watchdog
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            WatchdogConfig(policy="explode")
        with pytest.raises(ValueError):
            WatchdogConfig(check_interval=0)
        with pytest.raises(ValueError):
            WatchdogConfig(dt_factor=1.5)

    def test_clean_guarded_run_matches_unguarded(self, runner):
        r1 = runner.simulate(8, 60, perturbation=0.01)
        r2 = runner.simulate(8, 60, perturbation=0.01,
                             watchdog=WatchdogConfig())
        assert compare_trajectories(r1.state, r2.state, rtol=0, atol=0)
        assert r2.health.ok and r2.health.retries == 0

    def test_halve_dt_recovers_from_injected_nan(self, runner):
        inject = FaultInjector(FaultPlan(nan_at_step=30, nan_cells=(0, 2)))
        state = runner.make_state(8)
        result = runner.run(state, 100, 0.01,
                            watchdog=WatchdogConfig(check_interval=10),
                            step_hook=inject.step_hook)
        health = result.health
        assert health.ok
        assert health.retries == 1
        assert health.nan_events == 1
        assert health.final_dt == pytest.approx(0.005)
        assert np.isfinite(state.sv).all()
        assert health.events[0].action == "rolled_back"

    def test_backoff_is_bounded(self, runner):
        state = runner.make_state(8)

        def always_poison(s):            # NaN returns after every rollback
            s.externals["Vm"][0] = np.nan

        config = WatchdogConfig(check_interval=5, max_retries=2)
        with pytest.raises(NumericalDivergenceError) as excinfo:
            runner.run(state, 50, 0.01, watchdog=config,
                       step_hook=always_poison)
        assert excinfo.value.report.retries == 2

    def test_min_dt_floor(self, runner):
        state = runner.make_state(8)

        def always_poison(s):
            s.externals["Vm"][0] = np.nan

        config = WatchdogConfig(check_interval=5, max_retries=50,
                                min_dt=0.004)
        with pytest.raises(NumericalDivergenceError) as excinfo:
            runner.run(state, 50, 0.01, watchdog=config,
                       step_hook=always_poison)
        # 0.01 -> 0.005 allowed, 0.0025 < min_dt stops the backoff
        assert excinfo.value.report.retries == 1

    def test_raise_policy(self, runner):
        inject = FaultInjector(FaultPlan(nan_at_step=10))
        state = runner.make_state(8)
        with pytest.raises(NumericalDivergenceError) as excinfo:
            runner.run(state, 100, 0.01,
                       watchdog=WatchdogConfig(policy="raise",
                                               check_interval=5),
                       step_hook=inject.step_hook)
        assert excinfo.value.report.nan_events == 1

    def test_abort_cell_report(self, runner):
        inject = FaultInjector(FaultPlan(nan_at_step=10, nan_cells=(3,),
                                         nan_array="Vm"))
        state = runner.make_state(8)
        result = runner.run(
            state, 100, 0.01,
            watchdog=WatchdogConfig(policy="abort_cell_report",
                                    check_interval=5),
            step_hook=inject.step_hook)
        health = result.health
        assert health.aborted and not health.ok
        assert health.diverged_cells == [3]
        # the state was rolled back to the last healthy checkpoint
        assert np.isfinite(state.sv).all()
        assert np.isfinite(state.externals["Vm"][:state.n_cells]).all()

    def test_scan_names_bad_arrays(self, runner):
        guard = NumericalWatchdog()
        state = runner.make_state(4)
        assert guard.scan(state) == []
        poison_state(state, cells=(1,), array="Iion")
        assert guard.scan(state) == ["Iion"]
        poison_state(state, cells=(0,), array="sv", value=np.inf)
        assert "sv" in guard.scan(state)

    def test_health_report_serializes(self, runner):
        result = runner.simulate(4, 20, watchdog=WatchdogConfig())
        payload = result.health.to_dict()
        assert payload["policy"] == "halve_dt"
        assert payload["checks"] >= 1
        assert "summary" not in payload    # summary is derived, not data
        assert "ok" in result.health.summary()

    def test_vm_trace_trimmed_on_rollback(self, runner):
        inject = FaultInjector(FaultPlan(nan_at_step=30))
        state = runner.make_state(8)
        result = runner.run(state, 60, 0.01, record_vm=True,
                            watchdog=WatchdogConfig(check_interval=10),
                            step_hook=inject.step_hook)
        assert result.health.retries >= 1
        # trace only contains the surviving (committed) steps
        assert np.isfinite(result.vm_trace).all()


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_backend_failure_is_deterministic(self):
        inject = FaultInjector(FaultPlan(fail_backends=("limpet_mlir",)))
        with pytest.raises(InjectedFault):
            inject.maybe_fail_backend("limpet_mlir")
        inject.maybe_fail_backend("baseline")   # not in the plan: no-op

    def test_nan_fires_exactly_once(self, runner):
        plan = FaultPlan(nan_at_step=5, nan_cells=(0,))
        inject = FaultInjector(plan)
        state = runner.make_state(4)
        for _ in range(10):
            inject.step_hook(state)
        assert inject.fired
        matrix = state.state_matrix()
        assert np.isnan(matrix[0]).all()
        assert np.isfinite(matrix[1:]).all()

    def test_pass_proxy_fires_on_nth_invocation(self, gate_model):
        inject = FaultInjector(FaultPlan(fail_pass="cse", fail_pass_at=2))
        pipeline = inject.wrap_pipeline(sandboxed_pipeline())
        module = generate_limpet_mlir(gate_model, 8).module
        pipeline.run(module, fixed_point=True)
        assert pipeline.quarantined == {"cse"}
        assert pipeline.statistics["cse"].runs == 2


# ---------------------------------------------------------------------------
# Executor fixes riding along (satellites)
# ---------------------------------------------------------------------------


class TestCompareTrajectoriesNaN:
    def test_two_nan_runs_do_not_agree(self, runner):
        s1 = runner.simulate(4, 10).state
        s2 = runner.simulate(4, 10).state
        s1.externals["Vm"][0] = np.nan
        s2.externals["Vm"][0] = np.nan
        comparison = compare_trajectories(s1, s2)
        assert not comparison
        assert comparison.nan_keys == ["Vm"]
        assert "Vm" in comparison.mismatches

    def test_inf_counts_as_divergence(self, runner):
        s1 = runner.simulate(4, 10).state
        s2 = runner.simulate(4, 10).state
        s1.externals["Iion"][1] = np.inf
        s2.externals["Iion"][1] = np.inf
        assert not compare_trajectories(s1, s2)

    def test_reports_which_keys_disagree(self, runner):
        s1 = runner.simulate(4, 10).state
        s2 = runner.simulate(4, 10).state
        s2.externals["Vm"][0] += 1.0
        comparison = compare_trajectories(s1, s2)
        assert not comparison
        assert comparison.mismatches == ["Vm"]
        assert "Vm" in comparison.describe()

    def test_equivalent_is_truthy_with_empty_mismatches(self, runner):
        s1 = runner.simulate(4, 10).state
        s2 = runner.simulate(4, 10).state
        comparison = compare_trajectories(s1, s2)
        assert comparison and comparison.mismatches == []


class TestVmTraceRegression:
    def test_no_vm_external_returns_none(self):
        model = load_model_source(NO_VM_SOURCE, "NoVm")
        runner = KernelRunner(generate_limpet_mlir(model, 8))
        result = runner.simulate(4, 10, record_vm=True)
        assert result.vm_trace is None     # never uninitialized memory

    def test_with_vm_trace_is_filled(self, runner):
        result = runner.simulate(4, 10, record_vm=True)
        assert result.vm_trace is not None
        assert result.vm_trace.shape == (10,)
        assert np.isfinite(result.vm_trace).all()


class TestLUTCache:
    def test_float_noise_dt_shares_entry(self, runner):
        a = runner.luts_for(0.01)
        b = runner.luts_for(0.01 + 1e-16)
        assert a is b                       # quantized key, no rebuild
        assert len(runner._lut_cache) == 1

    def test_cache_is_bounded(self, runner):
        from repro.runtime.executor import _LUT_CACHE_MAX
        dt = 0.01
        for _ in range(3 * _LUT_CACHE_MAX):
            runner.luts_for(dt)
            dt *= 0.5                       # watchdog-style halving
        assert len(runner._lut_cache) <= _LUT_CACHE_MAX

    def test_lru_keeps_most_recent(self, runner):
        from repro.runtime.executor import _LUT_CACHE_MAX
        dts = [0.01 * (0.5 ** i) for i in range(_LUT_CACHE_MAX + 2)]
        for dt in dts:
            runner.luts_for(dt)
        recent = runner.luts_for(dts[-1])
        assert runner.luts_for(dts[-1]) is recent


# ---------------------------------------------------------------------------
# Resilient sweep (bench integration)
# ---------------------------------------------------------------------------


class TestResilientSweep:
    def test_sweep_survives_injected_faults(self, tmp_path):
        from repro.bench import format_sweep_table, resilient_sweep
        names = ["Plonsey", "FitzHughNagumo", "ARPF"]

        def factory(name):
            return FaultInjector(FaultPlan(
                fail_backends=("limpet_mlir",) if name == "Plonsey" else (),
                nan_at_step=20 if name == "FitzHughNagumo" else None))

        records = resilient_sweep(
            names, n_cells=8, n_steps=30,
            watchdog=WatchdogConfig(check_interval=10),
            reproducer_dir=tmp_path, inject_factory=factory)
        assert [r.model for r in records] == names
        assert all(r.ok for r in records)
        by_name = {r.model: r for r in records}
        assert by_name["Plonsey"].backend == "icc_simd"
        assert by_name["Plonsey"].fell_back
        assert by_name["FitzHughNagumo"].health.retries >= 1
        assert by_name["ARPF"].backend == "baseline"
        table = format_sweep_table(records)
        assert "3/3 models completed" in table

    def test_sweep_records_total_compile_failure(self):
        from repro.bench import resilient_sweep
        from repro.resilience import DEFAULT_CHAIN

        def factory(name):
            return FaultInjector(FaultPlan(fail_backends=DEFAULT_CHAIN))

        [record] = resilient_sweep(["Plonsey"], n_cells=4, n_steps=5,
                                   inject_factory=factory)
        assert not record.ok
        assert record.backend is None
        assert record.status == "FAILED"
        assert any(d.error_type == "InjectedFault"
                   for d in record.diagnostics)
