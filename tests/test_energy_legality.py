"""Tests for the §7 energy model and the §5 legality analysis."""

import pytest

from repro.codegen import (BackendMode, check_simd_legality,
                           generate_baseline, generate_limpet_mlir)
from repro.frontend import load_model
from repro.ir.passes import default_pipeline
from repro.machine import (AVX512, SSE, CostModel, EnergyModel,
                           compare_energy, profile_kernel)
from repro.models import load_model as load_registry_model


def profiled(model, vectorized=True, width=8):
    kernel = generate_limpet_mlir(model, width) if vectorized \
        else generate_baseline(model)
    default_pipeline(verify_each=False).run(kernel.module, fixed_point=True)
    return profile_kernel(kernel.module, kernel.spec.function_name)


@pytest.fixture(scope="module")
def luo_profiles():
    model = load_registry_model("LuoRudy91")
    return profiled(model, vectorized=False), profiled(model)


class TestEnergyModel:
    def test_vectorization_saves_energy(self, luo_profiles):
        """The §7 question: SIMD wins on energy, not just time."""
        base, vec = compare_energy(*luo_profiles, AVX512, 1, 8192, 1000)
        assert vec.joules < base.joules
        assert vec.seconds < base.seconds

    def test_energy_delay_product_improves_at_low_threads(self,
                                                          luo_profiles):
        for threads in (1, 8):
            base, vec = compare_energy(*luo_profiles, AVX512, threads,
                                       8192, 1000)
            assert vec.energy_delay_product < base.energy_delay_product

    def test_edp_improves_at_32t_for_large_models(self):
        """At 32 threads only large models keep a clear win (the same
        small/medium compression Fig. 3 shows carries over to energy)."""
        model = load_registry_model("TenTusscherPanfilov")
        base, vec = compare_energy(profiled(model, vectorized=False),
                                   profiled(model), AVX512, 32, 8192,
                                   1000)
        assert vec.energy_delay_product < base.energy_delay_product

    def test_components_sum(self, luo_profiles):
        model = EnergyModel()
        point = model.run_energy(luo_profiles[1], AVX512, 32, 8192, 1000)
        assert point.joules == pytest.approx(
            point.dynamic_joules + point.static_joules)

    def test_average_power_within_package_envelope(self, luo_profiles):
        model = EnergyModel()
        point = model.run_energy(luo_profiles[0], AVX512, 32, 8192, 100,
                                 BackendMode.BASELINE)
        # a 2-socket Cascade Lake node draws ~100-400 W
        assert 10.0 < point.average_watts < 500.0

    def test_more_threads_trade_static_for_time(self, luo_profiles):
        model = EnergyModel()
        p1 = model.run_energy(luo_profiles[1], AVX512, 1, 8192, 1000)
        p32 = model.run_energy(luo_profiles[1], AVX512, 32, 8192, 1000)
        assert p32.seconds < p1.seconds
        # dynamic energy is work-proportional: roughly thread-invariant
        assert p32.dynamic_joules == pytest.approx(p1.dynamic_joules,
                                                   rel=1e-6)

    def test_wider_isa_lowers_energy(self):
        model = load_registry_model("LuoRudy91")
        energy = {}
        for width, isa in ((2, SSE), (8, AVX512)):
            profile = profiled(model, width=width)
            energy[width] = EnergyModel().run_energy(
                profile, isa, 1, 8192, 1000).joules
        assert energy[8] < energy[2]


class TestLegality:
    def test_clean_model_passes_all_criteria(self):
        report = check_simd_legality(load_registry_model("HodgkinHuxley"))
        assert report.vectorizable
        assert report.findings == []

    def test_foreign_call_is_a_blocker(self):
        report = check_simd_legality(load_registry_model("Campbell"))
        assert not report.vectorizable
        assert any(f.criterion == "expressible" and f.severity == "blocker"
                   for f in report.findings)

    def test_wide_state_warns_on_access_regularity(self):
        report = check_simd_legality(
            load_registry_model("IyerMazhariWinslow"))
        assert report.vectorizable
        assert any(f.criterion == "regular-access"
                   for f in report.warnings)

    def test_conditional_heavy_model_warns(self):
        model = load_model("""
            Vm; .external(); Iion; .external();
            a = (Vm > 0) ? exp(Vm/10) : exp(-Vm/20);
            b = (Vm > -40) ? a*2 : a/2;
            c = (Vm > -60) ? b+1 : b-1;
            diff_x = (Vm > -50) ? (a - x) : (b + c - x);
            x_init = 0;
            Iion = (Vm < 0) ? 0.1*(Vm+80) : 0.2*(Vm+80);
        """, "Branchy")
        report = check_simd_legality(model)
        assert report.vectorizable        # selects are legal, just costly
        assert any(f.criterion == "simd-friendly-control-flow"
                   for f in report.warnings)

    def test_verdict_matches_backend_behaviour(self):
        """The report's verdict must agree with what codegen does."""
        from repro.codegen import UnsupportedModelError
        from repro.models import ALL_MODELS, UNSUPPORTED_MODELS
        for name in list(ALL_MODELS[:5]) + UNSUPPORTED_MODELS:
            model = load_registry_model(name)
            report = check_simd_legality(model)
            try:
                generate_limpet_mlir(model, 8)
                generated = True
            except UnsupportedModelError:
                generated = False
            assert generated == report.vectorizable, name

    def test_describe_readable(self):
        report = check_simd_legality(load_registry_model("Tong"))
        text = report.describe()
        assert "NOT VECTORIZABLE" in text
        assert "ach_release" in text
