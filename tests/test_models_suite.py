"""Integration tests over the full 43-model suite.

These are the repository's core guarantees: every registered model
parses, analyzes, generates code on every backend, and — crucially —
the scalar baseline and the vectorized limpetMLIR kernels compute
*identical trajectories* (the compiler-correctness property the paper's
artifact checks by comparing simulation outputs).
"""

import numpy as np
import pytest

from repro.bench import BenchConfig
from repro.codegen import (generate_baseline, generate_icc_simd,
                           generate_limpet_mlir)
from repro.ir import verify_module
from repro.models import (ALL_MODELS, HAND_WRITTEN, LARGE_MODELS,
                          MEDIUM_MODELS, SIZE_CLASS, SMALL_MODELS,
                          list_models, load_model, model_entry,
                          verify_registry)
from repro.runtime import KernelRunner, compare_trajectories


class TestRegistry:
    def test_split_is_8_22_13(self):
        verify_registry()
        assert len(SMALL_MODELS) == 8
        assert len(MEDIUM_MODELS) == 22
        assert len(LARGE_MODELS) == 13

    def test_all_files_exist(self):
        for entry in list_models():
            assert entry.path.exists(), entry.name

    def test_size_class_filter(self):
        assert len(list_models("large")) == 13

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            model_entry("NotAModel")

    def test_load_is_cached(self):
        assert load_model("HodgkinHuxley") is load_model("HodgkinHuxley")

    def test_paper_named_models_present(self):
        for name in ("Pathmanathan", "ISAC_Hu", "Stress_Niederer",
                     "StressLumens", "GrandiPanditVoigt", "OHara",
                     "WangSobie", "Courtemanche", "Maleckar",
                     "HodgkinHuxley", "DrouhardRoberge", "IKChCheng",
                     "Plonsey"):
            assert name in ALL_MODELS, name


@pytest.mark.parametrize("name", ALL_MODELS)
class TestEveryModel:
    def test_analyzes(self, name):
        model = load_model(name)
        assert model.states, name
        assert "Iion" in model.outputs

    def test_kernels_verify(self, name):
        model = load_model(name)
        for kernel in (generate_baseline(model),
                       generate_limpet_mlir(model, 8),
                       generate_icc_simd(model, 4)):
            verify_module(kernel.module)

    def test_baseline_vs_limpet_mlir_equivalence(self, name):
        """The headline correctness property, per model."""
        model = load_model(name)
        config = BenchConfig(n_cells=12, n_steps=150)
        stim = config.stimulus_for(model)
        base = KernelRunner(generate_baseline(model))
        vec = KernelRunner(generate_limpet_mlir(model, 8))
        r1 = base.simulate(12, 150, 0.01, stim, perturbation=0.005)
        r2 = vec.simulate(12, 150, 0.01, stim, perturbation=0.005)
        assert compare_trajectories(r1.state, r2.state), name
        vm = r2.state.externals["Vm"]
        assert np.isfinite(vm).all(), name


class TestSuiteProperties:
    @pytest.fixture(scope="class")
    def analyzed(self):
        return {name: load_model(name) for name in ALL_MODELS}

    def test_large_models_have_more_states_than_small(self, analyzed):
        small_max = max(len(analyzed[n].states) for n in SMALL_MODELS)
        large_min = min(len(analyzed[n].states) for n in LARGE_MODELS)
        assert large_min > small_max

    def test_all_integration_methods_exercised(self, analyzed):
        from repro.frontend import Method
        used = {m for model in analyzed.values()
                for m in model.methods.values()}
        assert used == set(Method)

    def test_isac_hu_has_no_lut(self, analyzed):
        """§4.1: ISAC_Hu does not use lookup tables."""
        assert analyzed["ISAC_Hu"].lut_tables == []

    def test_most_models_use_luts(self, analyzed):
        with_lut = sum(1 for m in analyzed.values() if m.lut_tables)
        assert with_lut >= 30

    def test_gates_present_in_membrane_models(self, analyzed):
        for name in ("HodgkinHuxley", "BeelerReuter", "LuoRudy91",
                     "Courtemanche", "TenTusscherPanfilov", "OHara"):
            assert analyzed[name].gates, name

    def test_markov_models_use_markov_be(self, analyzed):
        from repro.frontend import Method
        for name in ("WangSobie", "IyerMazhariWinslow",
                     "BondarenkoSzigeti"):
            methods = set(analyzed[name].methods.values())
            assert Method.MARKOV_BE in methods, name

    def test_generated_models_are_distinct(self, analyzed):
        """No two synthesized models share their parameter values."""
        signatures = {}
        for name in ALL_MODELS:
            if name in HAND_WRITTEN:
                continue
            model = analyzed[name]
            sig = tuple(sorted(model.params.items()))
            assert sig not in signatures.values(), name
            signatures[name] = sig

    def test_hand_written_models_marked(self):
        assert "HodgkinHuxley" in HAND_WRITTEN
        assert "OHara" not in HAND_WRITTEN

    def test_state_counts_span_paper_range(self, analyzed):
        counts = [len(m.states) for m in analyzed.values()]
        assert min(counts) == 1
        assert max(counts) >= 25


class TestLongerStability:
    """Longer runs on one model per class stay physical."""

    @pytest.mark.parametrize("name", ["MitchellSchaeffer", "LuoRudy91",
                                      "TenTusscherPanfilov"])
    def test_five_thousand_steps_bounded(self, name):
        model = load_model(name)
        config = BenchConfig()
        runner = KernelRunner(generate_limpet_mlir(model, 8))
        result = runner.simulate(16, 5000, 0.01,
                                 config.stimulus_for(model),
                                 perturbation=0.005, record_vm=True)
        vm = result.vm_trace
        assert np.isfinite(vm).all()
        if abs(model.external_init.get("Vm", 0.0)) > 5:
            assert vm.min() > -150 and vm.max() < 90
