"""CLI tests: every subcommand runs and prints what it promises."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestList:
    def test_lists_all_models(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "47 models shipped" in out
        assert "43 limpetMLIR-supported" in out
        assert "HodgkinHuxley" in out and "OHara" in out
        assert "no (foreign)" in out

    def test_mentions_class_split(self, capsys):
        _, out = run_cli(capsys, "list")
        assert "8 small / 22 medium / 13 large" in out

    def test_legality_subcommand(self, capsys):
        code, out = run_cli(capsys, "legality", "HodgkinHuxley")
        assert code == 0 and "VECTORIZABLE" in out
        code, out = run_cli(capsys, "legality", "ARPF")
        assert code == 1 and "NOT VECTORIZABLE" in out


class TestDescribe:
    def test_describe_prints_analysis(self, capsys):
        code, out = run_cli(capsys, "describe", "HodgkinHuxley")
        assert code == 0
        assert "states (3)" in out
        assert "rush_larsen" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "Nope"])


class TestIR:
    def test_default_backend_vectorized(self, capsys):
        code, out = run_cli(capsys, "ir", "Plonsey")
        assert code == 0
        assert "vector<8xf64>" in out

    def test_width_selects_lanes(self, capsys):
        _, out = run_cli(capsys, "ir", "Plonsey", "--width", "2")
        assert "vector<2xf64>" in out

    def test_baseline_scalar(self, capsys):
        _, out = run_cli(capsys, "ir", "Plonsey", "--backend", "baseline")
        assert "vector<" not in out

    def test_pretty_mode(self, capsys):
        _, out = run_cli(capsys, "ir", "Plonsey", "--pretty")
        assert "scf.for %i" in out

    def test_no_opt_keeps_redundancy(self, capsys):
        _, optimized = run_cli(capsys, "ir", "HodgkinHuxley")
        _, raw = run_cli(capsys, "ir", "HodgkinHuxley", "--no-opt")
        assert len(raw.splitlines()) > len(optimized.splitlines())


class TestRunAndCompare:
    def test_run_reports_timing(self, capsys):
        code, out = run_cli(capsys, "run", "Plonsey", "--cells", "64",
                            "--steps", "20")
        assert code == 0
        assert "ns/cell-step" in out

    def test_compare_checks_equivalence(self, capsys):
        code, out = run_cli(capsys, "compare", "HodgkinHuxley",
                            "--cells", "64", "--steps", "30")
        assert code == 0
        assert "trajectories equivalent: True" in out
        assert "speedup" in out


class TestFigures:
    def test_fig5_table(self, capsys):
        code, out = run_cli(capsys, "figure", "fig5")
        assert code == 0
        assert "sse" in out and "avx512" in out
        assert "paper: 2.90x" in out

    def test_fig6_table(self, capsys):
        code, out = run_cli(capsys, "figure", "fig6")
        assert code == 0
        assert "GrandiPanditVoigt" in out
        assert "760 GFlops/s" in out


class TestResilientRun:
    def test_foreign_model_falls_back_with_exit_code(self, capsys):
        from repro.cli import EXIT_FELL_BACK
        code, out = run_cli(capsys, "run", "ARPF", "--cells", "8",
                            "--steps", "5")
        assert code == EXIT_FELL_BACK
        assert "[baseline" in out
        assert "fell back to 'baseline'" in out
        assert "UnsupportedModelError" in out

    def test_strict_disables_fallback(self, capsys):
        from repro.cli import EXIT_COMPILE_FAILED
        code, _ = run_cli(capsys, "run", "ARPF", "--cells", "8",
                          "--steps", "5", "--strict")
        assert code == EXIT_COMPILE_FAILED

    def test_watchdog_flag_prints_health(self, capsys):
        code, out = run_cli(capsys, "run", "Plonsey", "--cells", "8",
                            "--steps", "20", "--watchdog", "halve_dt")
        assert code == 0
        assert "health: ok" in out

    def test_baseline_request_is_not_a_fallback(self, capsys):
        code, out = run_cli(capsys, "run", "ARPF", "--cells", "8",
                            "--steps", "5", "--backend", "baseline")
        assert code == 0
        assert "fell back" not in out

    def test_no_trailing_assertion_dispatch(self):
        """Every declared subcommand dispatches via argparse defaults."""
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["list"])
        assert callable(args.func)


class TestFaultsCommand:
    def test_smoke_drill_passes(self, capsys):
        code, out = run_cli(capsys, "faults", "--smoke")
        assert code == 0
        assert "9/9 scenarios passed" in out
        assert "PASS pass-exception" in out
        assert "PASS runtime-nan" in out
        assert "PASS worker-crash" in out
        assert "PASS worker-stall" in out
        assert "PASS degradation" in out
        assert "PASS cache-corruption" in out
        assert "PASS sweep" in out
        assert "supervised tier under worker kills" in out

    def test_reproducer_dir_is_honored(self, capsys, tmp_path):
        code, _ = run_cli(capsys, "faults", "--smoke",
                          "--reproducer-dir", str(tmp_path))
        assert code == 0
        bundles = list(tmp_path.iterdir())
        assert bundles, "no reproducer bundles written"
        assert any((b / "meta.json").exists() for b in bundles)


class TestTuneCommand:
    def test_tune_writes_db_and_hits_on_rerun(self, capsys, tmp_path):
        db = str(tmp_path / "tune.json")
        code, out = run_cli(capsys, "tune", "--model", "FitzHughNagumo",
                            "--cells", "48", "--steps", "3",
                            "--repeats", "2", "--top-k", "2",
                            "--db", db, "--check")
        assert code == 0
        assert "measured" in out and "(default)" in out
        code, out = run_cli(capsys, "tune", "--model", "FitzHughNagumo",
                            "--cells", "48", "--steps", "3",
                            "--repeats", "2", "--top-k", "2", "--db", db)
        assert code == 0
        assert "tuning DB hit, 0 measurements" in out

    def test_tune_json_output(self, capsys, tmp_path):
        import json
        db = str(tmp_path / "tune.json")
        out_path = tmp_path / "result.json"
        code, _ = run_cli(capsys, "tune", "--model", "FitzHughNagumo",
                          "--cells", "48", "--steps", "3",
                          "--repeats", "2", "--top-k", "2",
                          "--db", db, "--json", str(out_path))
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["workload"]["model"] == "FitzHughNagumo"
        assert data["speedup_vs_default"] >= 1.0
        assert data["candidates"]

    def test_tune_clear(self, capsys, tmp_path):
        db = str(tmp_path / "tune.json")
        run_cli(capsys, "tune", "--model", "FitzHughNagumo",
                "--cells", "48", "--steps", "3", "--repeats", "2",
                "--top-k", "1", "--db", db)
        code, out = run_cli(capsys, "tune", "--clear", "--db", db)
        assert code == 0
        assert "cleared 1 tuning record(s)" in out

    def test_tune_requires_model_or_mode(self, capsys):
        code = main(["tune"])
        assert code == 2

    def test_perf_width_flag(self, capsys):
        code, out = run_cli(capsys, "perf", "--model", "FitzHughNagumo",
                            "--cells", "48", "--steps", "5",
                            "--runs", "2", "--width", "4")
        assert code == 0
        assert "BENCH_PR2" in out


class TestSweep:
    def test_sweep_prints_bench_table(self, capsys, tmp_path):
        import json
        out_path = tmp_path / "sweep.json"
        code, out = run_cli(capsys, "sweep", "LuoRudy91",
                            "--param", "GK=0.5:1.0:3",
                            "--cells", "8", "--steps", "5",
                            "--runs", "2", "--width", "4",
                            "--json", str(out_path))
        assert code == 0
        assert "BENCH_PR7" in out
        assert "batched vs loop-of-3" in out
        data = json.loads(out_path.read_text())
        assert data["benchmark"] == "BENCH_PR7"
        assert data["config"]["instances"] == 3
        names = {v["name"] for v in data["variants"]}
        assert names == {"loop", "batched"}

    def test_sweep_requires_param(self, capsys):
        code = main(["sweep", "LuoRudy91"])
        assert code == 2

    def test_sweep_rejects_malformed_param(self, capsys):
        assert main(["sweep", "LuoRudy91", "--param", "GK"]) == 2
        assert main(["sweep", "LuoRudy91",
                     "--param", "GK=zero:one"]) == 2

    def test_sweep_rejects_unknown_param(self, capsys):
        code = main(["sweep", "LuoRudy91", "--param", "nope=0.1:1.0:2"])
        assert code == 2
