"""Integration-method tests: structure and numerical behaviour.

The convergence tests solve ODEs with known closed forms through the
*full pipeline* (EasyML -> frontend -> codegen -> lowering -> run), so
they validate the emitted update formulas, not a reference Python
implementation.
"""

import math

import numpy as np
import pytest

from repro.codegen import generate_baseline, generate_limpet_mlir
from repro.frontend import Method, load_model
from repro.runtime import KernelRunner


def run_decay(method, dt, n_steps, rate=0.7, x0=1.0, width=1):
    """Integrate dx/dt = -rate*x from x0; return x(T) from the kernel."""
    source = f"""
        diff_x = -{rate}*x;
        x_init = {x0};
        x; .method({method});
    """
    model = load_model(source, f"Decay_{method}")
    kernel = generate_baseline(model) if width == 1 else \
        generate_limpet_mlir(model, width)
    runner = KernelRunner(kernel)
    state = runner.make_state(1)
    runner.run(state, n_steps, dt)
    return state.state_of("x")[0]


def error_at(method, dt, rate=0.7, horizon=2.0):
    steps = int(round(horizon / dt))
    exact = math.exp(-rate * horizon)
    return abs(run_decay(method, dt, steps) - exact)


class TestConvergenceOrders:
    """Halving dt must cut the error by ~2^order."""

    @pytest.mark.parametrize("method,order", [
        ("fe", 1), ("rk2", 2), ("rk4", 4)])
    def test_explicit_method_order(self, method, order):
        err_coarse = error_at(method, 0.1)
        err_fine = error_at(method, 0.05)
        ratio = err_coarse / err_fine
        assert 2 ** order * 0.6 < ratio < 2 ** order * 1.7, \
            f"{method}: ratio {ratio}"

    def test_rk4_much_more_accurate_than_fe(self):
        assert error_at("rk4", 0.1) < error_at("fe", 0.1) / 100

    def test_markov_be_first_order(self):
        # values must stay in [0,1]: decay from 1 qualifies
        err_coarse = error_at("markov_be", 0.1)
        err_fine = error_at("markov_be", 0.05)
        assert 1.4 < err_coarse / err_fine < 2.8

    def test_markov_be_is_implicit_damped(self):
        """Backward Euler decays *slower* than the exact solution:
        x/(1+r*dt) > x*exp(-r*dt), the signature of the implicit step
        (forward Euler errs the other way)."""
        exact = math.exp(-0.7 * 2.0)
        be_value = run_decay("markov_be", 0.1, 20)
        fe_value = run_decay("fe", 0.1, 20)
        assert be_value > exact > fe_value


class TestRushLarsen:
    def _gate_value(self, method, dt, n_steps):
        source = f"""
            Vm; .external();
            m_inf = 0.8 + 0.0*Vm;
            tau_m = 2.0 + 0.0*Vm;
            diff_m = (m_inf - m)/tau_m;
            m_init = 0.1;
            m; .method({method});
        """
        model = load_model(source, "RLGate")
        runner = KernelRunner(generate_baseline(model))
        state = runner.make_state(1)
        runner.run(state, n_steps, dt)
        return state.state_of("m")[0]

    def test_rush_larsen_exact_for_constant_rates(self):
        """RL integrates the linear gate ODE exactly at ANY dt."""
        value = self._gate_value("rush_larsen", 0.5, 10)
        exact = 0.8 + (0.1 - 0.8) * math.exp(-5.0 / 2.0)
        assert abs(value - exact) < 1e-12

    def test_sundnes_matches_rl_for_state_independent_rates(self):
        rl = self._gate_value("rush_larsen", 0.25, 8)
        srl = self._gate_value("sundnes", 0.25, 8)
        assert abs(rl - srl) < 1e-12

    def test_rush_larsen_unconditionally_stable(self):
        """Huge dt/tau must not blow up (fe would)."""
        value = self._gate_value("rush_larsen", 50.0, 5)
        assert 0.0 <= value <= 1.0

    def test_fe_unstable_where_rl_is_stable(self):
        source = """
            m_inf = 0.8; tau_m = 2.0;
            diff_m = (0.8 - m)/2.0;
            m_init = 0.1;
            m; .method(fe);
        """
        model = load_model(source, "FEGate")
        runner = KernelRunner(generate_baseline(model))
        state = runner.make_state(1)
        runner.run(state, 20, 50.0)   # dt/tau = 25 >> 2
        assert abs(state.state_of("m")[0]) > 1.0  # oscillating divergence

    def test_alpha_beta_form_equivalent_to_inf_tau(self):
        """alpha/beta gates follow the same trajectory when
        alpha = inf/tau, beta = (1-inf)/tau."""
        inf, tau = 0.8, 2.0
        alpha, beta = inf / tau, (1 - inf) / tau
        src_ab = f"""
            alpha_m = {alpha} + 0.0*m0; beta_m = {beta} + 0.0*m0;
            diff_m = alpha_m*(1-m) - beta_m*m;
            m_init = 0.1;
            diff_m0 = 0.0; m0_init = 0.0;
        """
        model = load_model(src_ab, "ABGate")
        assert model.methods["m"] is Method.RUSH_LARSEN
        runner = KernelRunner(generate_baseline(model))
        state = runner.make_state(1)
        runner.run(state, 10, 0.5)
        exact = inf + (0.1 - inf) * math.exp(-5.0 / tau)
        assert abs(state.state_of("m")[0] - exact) < 1e-12


class TestMarkovBE:
    def test_clamps_to_unit_interval(self):
        source = """
            diff_p = 5.0*(1.5 - p);
            p_init = 0.9;
            p; .method(markov_be);
        """
        model = load_model(source, "Clamp")
        runner = KernelRunner(generate_baseline(model))
        state = runner.make_state(1)
        runner.run(state, 50, 0.1)
        assert state.state_of("p")[0] <= 1.0

    def test_refinement_loop_emitted(self, gate_model):
        source = """
            diff_p = 0.5*(0.3 - p);
            p_init = 0.0;
            p; .method(markov_be);
        """
        model = load_model(source, "BE")
        kernel = generate_baseline(model)
        inner_loops = [op for op in kernel.module.walk()
                       if op.name == "scf.for"
                       and not op.attributes.get("cell_loop")]
        assert len(inner_loops) == 1
        assert len(inner_loops[0].operands) == 4  # lb, ub, step, iter arg


class TestStageReemission:
    def test_rk2_reemits_state_dependent_chain(self, gate_model):
        """rk2 for 'c' must re-evaluate Iion_raw at the midpoint, like
        Listing 2 lines 20-26 re-evaluate diff_u1."""
        kernel = generate_baseline(gate_model, use_lut=False)
        fn = kernel.module.lookup_func(kernel.spec.function_name)
        # Iion_raw involves cube(m)*h*(Vm-50)*c -> 4 mulfs; emitted twice
        mulf_count = sum(1 for op in fn.walk()
                         if op.name == "arith.mulf")
        base_model = load_model("""
            Vm; .external();
            diff_c = 0.01*(0.5 - c); c_init = 0.4;
        """, "NoStage")
        assert mulf_count > 8

    def test_vector_and_scalar_rk_agree(self):
        for method in ("fe", "rk2", "rk4"):
            scalar = run_decay(method, 0.1, 10, width=1)
            vector = run_decay(method, 0.1, 10, width=8)
            assert scalar == pytest.approx(vector, rel=1e-14), method
