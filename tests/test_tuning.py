"""Autotuner tests: space legality, DB keying, the tuning pipeline."""

import json

import pytest

from repro.codegen import generate_limpet_mlir
from repro.machine import PythonRuntimeCostModel, isa_for_width
from repro.models import load_model
from repro.runtime import KernelRunner
from repro.tuning import (TUNE_DB_VERSION, TuningConfig, TuningDB,
                          Workload, autotune, check_tuning_report,
                          default_config_for, enumerate_space,
                          integrator_summary, lookup_config,
                          predict_ranking, profile_variants,
                          tuning_db_key, variant_key)


@pytest.fixture(scope="module")
def fhn():
    return load_model("FitzHughNagumo")


@pytest.fixture
def db(tmp_path):
    return TuningDB(path=tmp_path / "tuning.json")


class TestTuningConfig:
    def test_defaults_mirror_pr2(self):
        config = TuningConfig()
        assert (config.width, config.layout, config.lut) == \
            (8, "aosoa", "linear")
        assert config.fuse and not config.arena and config.shards == 1

    @pytest.mark.parametrize("kwargs", [
        {"width": 3}, {"layout": "csr"}, {"lut": "cubic"}, {"shards": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TuningConfig(**kwargs)

    def test_dict_round_trip(self):
        config = TuningConfig(width=4, layout="soa", lut="off",
                              fuse=False, arena=True, shards=1)
        assert TuningConfig.from_dict(config.as_dict()) == config

    def test_lut_off_maps_to_valid_interpolation(self):
        config = TuningConfig(lut="off")
        assert not config.use_lut
        assert config.lut_interpolation == "linear"


class TestSpaceLegality:
    def test_default_config_is_in_space(self, fhn):
        assert default_config_for(fhn) in enumerate_space(fhn)

    def test_no_lut_model_gets_only_off(self, fhn):
        assert not fhn.lut_tables
        assert {c.lut for c in enumerate_space(fhn)} == {"off"}

    def test_lut_model_gets_all_modes(self):
        ohara = load_model("OHara")
        assert {c.lut for c in enumerate_space(ohara)} == \
            {"linear", "spline", "off"}

    def test_scalar_points_are_plain_aos(self, fhn):
        for c in enumerate_space(fhn):
            if c.width == 1:
                assert c.layout == "aos" and not c.arena and c.shards == 1

    def test_arena_never_sharded(self, fhn):
        space = enumerate_space(fhn, shard_counts=(1, 2))
        assert any(c.shards > 1 for c in space)
        assert not any(c.arena and c.shards > 1 for c in space)

    def test_soa_never_sharded(self, fhn):
        space = enumerate_space(fhn, shard_counts=(1, 2))
        assert not any(c.layout == "soa" and c.shards > 1 for c in space)

    def test_foreign_model_is_scalar_only(self):
        model = load_model("Campbell")
        assert model.foreign_functions
        space = enumerate_space(model)
        assert space and all(c.width == 1 for c in space)
        assert default_config_for(model).width == 1


class TestDBKey:
    def test_key_is_stable(self, fhn):
        workload = Workload.from_model(fhn, 64, 0.01)
        assert tuning_db_key(workload) == tuning_db_key(workload)

    def test_key_changes_with_source_hash(self, fhn):
        workload = Workload.from_model(fhn, 64, 0.01)
        assert tuning_db_key(workload, source_hash="a" * 64) != \
            tuning_db_key(workload, source_hash="b" * 64)

    def test_key_changes_with_pipeline_fingerprint(self, fhn):
        workload = Workload.from_model(fhn, 64, 0.01)
        assert tuning_db_key(workload, pipeline_fingerprint="p1") != \
            tuning_db_key(workload, pipeline_fingerprint="p2")

    def test_key_changes_with_lowering_version(self, fhn, monkeypatch):
        import repro.runtime.lowering as lowering
        workload = Workload.from_model(fhn, 64, 0.01)
        before = tuning_db_key(workload)
        monkeypatch.setattr(lowering, "LOWERING_VERSION",
                            lowering.LOWERING_VERSION + 1)
        assert tuning_db_key(workload) != before

    def test_key_changes_with_workload_shape(self, fhn):
        a = tuning_db_key(Workload.from_model(fhn, 64, 0.01))
        b = tuning_db_key(Workload.from_model(fhn, 128, 0.01))
        c = tuning_db_key(Workload.from_model(fhn, 64, 0.02))
        assert len({a, b, c}) == 3

    def test_integrator_is_part_of_identity(self, fhn):
        summary = integrator_summary(fhn)
        workload = Workload.from_model(fhn, 64, 0.01)
        assert workload.integrator == summary
        other = Workload(model=workload.model, n_cells=64, dt=0.01,
                         integrator=summary + "+Method.MARKOV_BE")
        assert tuning_db_key(workload) != tuning_db_key(other)


class TestTuningDB:
    def test_round_trip(self, db):
        config = TuningConfig(width=4, layout="soa", lut="off")
        db.put("k1", {"config": config.as_dict()})
        assert db.get_config("k1") == config
        assert db.get("k1")["stored_at"] > 0
        assert len(db) == 1

    def test_miss_and_delete(self, db):
        assert db.get("nope") is None
        db.put("k1", {"config": TuningConfig().as_dict()})
        assert db.delete("k1") and not db.delete("k1")

    def test_schema_version_mismatch_is_a_miss(self, db):
        db.put("k1", {"config": TuningConfig().as_dict()})
        data = json.loads(db.path.read_text())
        data["format"] = TUNE_DB_VERSION + 1
        db.path.write_text(json.dumps(data))
        assert db.get("k1") is None and len(db) == 0

    def test_corrupt_record_is_a_miss(self, db):
        db.put("k1", {"config": {"width": "wide"}})
        assert db.get_config("k1") is None

    def test_corrupt_file_is_empty(self, db):
        db.path.write_text("{not json")
        assert len(db) == 0
        db.put("k1", {"config": TuningConfig().as_dict()})
        assert len(db) == 1

    def test_clear(self, db):
        db.put("k1", {"config": TuningConfig().as_dict()})
        db.put("k2", {"config": TuningConfig().as_dict()})
        assert db.clear() == 2 and len(db) == 0


class TestCostRanking:
    def test_profiles_cover_only_ir_variants(self, fhn):
        space = enumerate_space(fhn, shard_counts=(1,))
        profiles = profile_variants(fhn, space)
        assert set(profiles) == {variant_key(c) for c in space}
        assert len(profiles) < len(space)   # flags don't regenerate IR

    def test_ranking_is_total_and_ordered(self, fhn):
        space = enumerate_space(fhn, shard_counts=(1,))
        ranked = predict_ranking(
            fhn, Workload.from_model(fhn, 256, 0.01), space)
        assert [c.predicted_rank for c in ranked] == \
            list(range(len(space)))
        seconds = [c.predicted_seconds for c in ranked]
        assert seconds == sorted(seconds)
        assert all(s > 0 for s in seconds)

    def test_scalar_predicted_slowest(self, fhn):
        space = enumerate_space(fhn, shard_counts=(1,))
        ranked = predict_ranking(
            fhn, Workload.from_model(fhn, 256, 0.01), space)
        assert ranked[-1].config.width == 1
        assert ranked[0].config.width > 1

    def test_arena_is_a_penalty(self, fhn):
        model = PythonRuntimeCostModel()
        profile = next(iter(profile_variants(
            fhn, [TuningConfig(lut="off")]).values()))
        isa = isa_for_width(8)
        plain = model.step_time(profile, isa, 1, 1024, arena=False)
        arena = model.step_time(profile, isa, 1, 1024, arena=True)
        assert arena.seconds > plain.seconds


class TestAutotune:
    def test_second_tune_is_a_db_hit(self, fhn, db):
        first = autotune(fhn, n_cells=48, n_steps=3, top_k=2,
                         repeats=2, db=db)
        assert not first.from_db and first.measurements > 0
        second = autotune(fhn, n_cells=48, n_steps=3, top_k=2,
                          repeats=2, db=db)
        assert second.from_db and second.measurements == 0
        assert second.winner == first.winner

    def test_winner_never_slower_than_default(self, fhn, db):
        result = autotune(fhn, n_cells=48, n_steps=3, top_k=2,
                          repeats=2, db=db)
        assert result.winner_seconds <= result.default_seconds
        assert result.speedup_vs_default >= 1.0

    def test_default_always_measured(self, fhn, db):
        result = autotune(fhn, n_cells=48, n_steps=3, top_k=1,
                          repeats=2, db=db)
        defaults = [c for c in result.candidates if c.is_default]
        assert len(defaults) == 1
        assert defaults[0].measured_seconds is not None

    def test_force_remeasures(self, fhn, db):
        autotune(fhn, n_cells=48, n_steps=3, top_k=2, repeats=2, db=db)
        result = autotune(fhn, n_cells=48, n_steps=3, top_k=2,
                          repeats=2, db=db, force=True)
        assert not result.from_db and result.measurements > 0


class TestRunnerIntegration:
    def _record(self, db, model, n_cells, config):
        workload = Workload.from_model(model, n_cells, 0.01)
        db.put(tuning_db_key(workload), {"config": config.as_dict()})

    def test_tune_true_applies_db_config(self, fhn, db):
        config = TuningConfig(width=4, layout="soa", lut="off",
                              fuse=False)
        self._record(db, fhn, 64, config)
        runner = KernelRunner(generate_limpet_mlir(fhn), tune=True,
                              tune_cells=64, tune_db=db)
        assert runner.tuned_config == config
        assert runner.kernel.width == 4
        assert not runner.fuse
        runner.simulate(10, 5)              # tuned variant executes

    def test_tune_true_miss_keeps_kernel(self, fhn, db):
        generated = generate_limpet_mlir(fhn)
        runner = KernelRunner(generated, tune=True, tune_cells=64,
                              tune_db=db)
        assert runner.tuned_config is None
        assert runner.generated is generated

    def test_sharded_record_is_skipped(self, fhn, db):
        self._record(db, fhn, 64, TuningConfig(lut="off", shards=2))
        runner = KernelRunner(generate_limpet_mlir(fhn), tune=True,
                              tune_cells=64, tune_db=db)
        assert runner.tuned_config is None

    def test_lookup_config_is_db_only(self, fhn, db):
        assert lookup_config(fhn, 64, 0.01, db=db) is None
        config = TuningConfig(width=4, layout="aos", lut="off")
        self._record(db, fhn, 64, config)
        assert lookup_config(fhn, 64, 0.01, db=db) == config

    def test_compile_resilient_tune_passthrough(self, fhn, db):
        from repro.resilience import compile_resilient
        config = TuningConfig(width=4, layout="aos", lut="off")
        self._record(db, fhn, 64, config)
        compiled = compile_resilient(fhn, tune=True, tune_cells=64,
                                     tune_db=db)
        assert compiled.runner.tuned_config == config


class TestReportChecks:
    def _report(self, speedups, agreements):
        rows = [{"model": f"M{i}", "speedup_tuned_vs_default": s,
                 "top1_in_measured_top3": a}
                for i, (s, a) in enumerate(zip(speedups, agreements))]
        n_ok = sum(1 for s in speedups if s >= 1.1)
        return {"models": rows, "summary": {
            "models_with_min_speedup": n_ok,
            "worst_slowdown": min(speedups),
            "top1_agreement": sum(agreements) / len(agreements)}}

    def test_passing_report(self):
        report = self._report([1.5, 1.3, 1.2, 1.0, 1.0],
                              [True, True, True, True, False])
        assert check_tuning_report(report) == []

    def test_slower_than_default_fails(self):
        report = self._report([1.5, 1.3, 1.2, 0.9, 1.0],
                              [True] * 5)
        assert any("SLOWER" in f for f in check_tuning_report(report))

    def test_too_few_speedups_fails(self):
        report = self._report([1.5, 1.3, 1.0, 1.0, 1.0], [True] * 5)
        assert any("models reached" in f
                   for f in check_tuning_report(report))

    def test_low_agreement_fails(self):
        report = self._report([1.5, 1.3, 1.2, 1.0, 1.0],
                              [True, True, False, False, False])
        assert any("top-3" in f for f in check_tuning_report(report))
