"""Hypothesis-generated random ionic models: full-pipeline equivalence.

Generates syntactically valid EasyML models with random expression
structure, random gate/method assignments and random LUT usage, then
asserts the repository's core guarantee on each: the scalar baseline,
the vectorized limpetMLIR kernel and the GPU SIMT kernel all compute
identical trajectories (NaNs included — instability must be *the same*
instability everywhere).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import (generate_baseline, generate_gpu,
                           generate_limpet_mlir)
from repro.frontend import load_model
from repro.runtime import KernelRunner, compare_trajectories

_SAFE_UNARY = ("exp", "tanh", "square", "cube", "fabs", "cos", "sin")


@st.composite
def random_model_source(draw):
    """A random but analyzable EasyML model over Vm and 1-3 states."""
    n_states = draw(st.integers(1, 3))
    n_intermediates = draw(st.integers(0, 3))
    use_lut = draw(st.booleans())
    rng_consts = st.floats(min_value=-3.0, max_value=3.0,
                           allow_nan=False, allow_infinity=False)

    def small_expr(depth, names):
        if depth == 0 or draw(st.booleans()):
            if names and draw(st.booleans()):
                return draw(st.sampled_from(names))
            return repr(round(draw(rng_consts), 4))
        kind = draw(st.sampled_from(["bin", "call", "ternary"]))
        if kind == "bin":
            op = draw(st.sampled_from(["+", "-", "*"]))
            return (f"({small_expr(depth - 1, names)} {op} "
                    f"{small_expr(depth - 1, names)})")
        if kind == "call":
            fn = draw(st.sampled_from(_SAFE_UNARY))
            return f"{fn}({small_expr(depth - 1, names)})"
        return (f"(({small_expr(depth - 1, names)} > 0) ? "
                f"{small_expr(depth - 1, names)} : "
                f"{small_expr(depth - 1, names)})")

    lines = ["Iion; .external();"]
    lookup = " .lookup(-60,60,0.5);" if use_lut else ""
    lines.insert(0, f"Vm; .external();{lookup}")
    lines.append("Vm_init = -20.0;")
    states = [f"s{i}" for i in range(n_states)]
    inter_names = []
    for i in range(n_intermediates):
        name = f"w{i}"
        expr = small_expr(2, ["Vm"] + inter_names)
        lines.append(f"{name} = {expr};")
        inter_names.append(name)
    usable = ["Vm"] + inter_names
    for i, state in enumerate(states):
        method = draw(st.sampled_from(["", "", "rk2", "rk4", "markov_be"]))
        rhs = small_expr(2, usable + [state])
        # damp toward a bounded attractor so most runs stay finite
        lines.append(f"diff_{state} = 0.01*({rhs}) - 0.1*{state};")
        lines.append(f"{state}_init = "
                     f"{repr(round(draw(rng_consts), 3))};")
        if method:
            lines.append(f"{state}; .method({method});")
    iion = small_expr(2, usable + states)
    lines.append(f"Iion = 0.01*({iion}) + 0.1*(Vm + 20.0);")
    return "\n".join(lines)


def _same_instability(a, b) -> bool:
    """True when both runs diverged with the same NaN/inf footprint.

    ``compare_trajectories`` refuses to call two NaN-containing runs
    equal (the watchdog depends on that), but for *backend
    equivalence* an unstable random model is fine as long as every
    backend blows up in the same cells of the same keys.  Padding may
    differ between backends, so masks are compared on the common
    prefix (the logical cells come first)."""
    sa, sb = a.snapshot(), b.snapshot()
    if set(sa) != set(sb):
        return False
    for key in sa:
        ma = ~np.isfinite(np.asarray(sa[key], dtype=float).ravel())
        mb = ~np.isfinite(np.asarray(sb[key], dtype=float).ravel())
        n = min(ma.size, mb.size)
        if not (ma[:n] == mb[:n]).all():
            return False
    return True


def _assert_equivalent(reference, other, source,
                       rtol: float = 1e-9) -> None:
    comparison = compare_trajectories(reference, other, rtol=rtol)
    if comparison:
        return
    only_nan = (not comparison.missing_keys
                and comparison.nan_keys
                and set(comparison.mismatches)
                <= set(comparison.nan_keys))
    assert only_nan and _same_instability(reference, other), \
        f"{comparison.describe()}\n{source}"


class TestRandomModelEquivalence:
    @given(random_model_source(), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_three_backends_agree(self, source, seed):
        model = load_model(source, "Random")
        runners = [
            KernelRunner(generate_baseline(model)),
            KernelRunner(generate_limpet_mlir(model, 4)),
            KernelRunner(generate_gpu(model)),
        ]
        states = []
        for runner in runners:
            rng = np.random.default_rng(seed)
            state = runner.make_state(6, perturbation=0.02, rng=rng)
            runner.run(state, 40, 0.01)
            states.append(state)
        _assert_equivalent(states[0], states[1], source)
        _assert_equivalent(states[0], states[2], source)

    @given(random_model_source())
    @settings(max_examples=15, deadline=None)
    def test_pass_pipeline_semantics_preserved(self, source):
        model = load_model(source, "Random")
        raw = KernelRunner(generate_limpet_mlir(model, 4), optimize=False)
        opt = KernelRunner(generate_limpet_mlir(model, 4), optimize=True)
        s1 = raw.make_state(4, perturbation=0.01)
        s2 = opt.make_state(4, perturbation=0.01)
        raw.run(s1, 25, 0.01)
        opt.run(s2, 25, 0.01)
        _assert_equivalent(s1, s2, source, rtol=1e-12)

    @given(random_model_source())
    @settings(max_examples=10, deadline=None)
    def test_ir_round_trips_through_text(self, source):
        from repro.ir import parse_module, print_module, verify_module
        model = load_model(source, "Random")
        kernel = generate_limpet_mlir(model, 4)
        text = print_module(kernel.module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text
