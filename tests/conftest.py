"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.frontend import load_model
from repro.models import load_model as load_registry_model


@pytest.fixture(autouse=True)
def _isolated_telemetry(tmp_path, monkeypatch):
    """Keep fleet telemetry hermetic per test: fresh metrics registry,
    empty flight ring, flight dumps into the test's tmp dir (never
    ~/.cache), and no ambient run ledger unless a test sets one."""
    from repro.obs import flight, metrics
    metrics.reset()
    flight.recorder().clear()
    monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(tmp_path / "flight"))
    monkeypatch.delenv("LIMPET_LEDGER", raising=False)
    monkeypatch.delenv("LIMPET_TRACE_CONTEXT", raising=False)
    yield
    metrics.reset()
    flight.recorder().clear()

#: the paper's Listing 1 (modified Pathmanathan), verbatim structure
LISTING1_SOURCE = """
Vm; .external(); .nodal(); .lookup(-100,100,0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();
group{ Cm = 200; beta = 1; xi = 3; }.param();
u1_init = 0; u2_init = 0; u3_init = 0; Vm_init = 0;
diff_u3 = 0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1;.method(rk2);
Iion = (-(Cm/2.)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
"""

#: a compact but feature-complete model: LUT, both gate forms, an
#: rk2 state, an output expression
GATE_SOURCE = """
Vm; .external(); .lookup(-100,50,0.1);
Iion; .external();
GNa = 23; .param();
m_inf = 1/(1+exp(-(Vm+40)/7));
tau_m = 0.1 + 2*exp(-square((Vm+40)/30));
diff_m = (m_inf - m)/tau_m;
m_init = 0.05;
alpha_h = 0.07*exp(-Vm/20);
beta_h = 1/(1+exp(-(Vm+30)/10));
diff_h = alpha_h*(1-h) - beta_h*h;
h_init = 0.6;
diff_c = 0.01*(0.5 - c) - 0.001*Iion_raw;
c_init = 0.4;
c; .method(rk2);
Iion_raw = GNa*cube(m)*h*(Vm-50)*c;
Iion = 0.01*Iion_raw + 0.1*(Vm+80);
"""


@pytest.fixture
def listing1_model():
    return load_model(LISTING1_SOURCE, "Pathmanathan")


@pytest.fixture
def gate_model():
    return load_model(GATE_SOURCE, "GateTest")


@pytest.fixture(scope="session")
def hodgkin_huxley():
    return load_registry_model("HodgkinHuxley")


@pytest.fixture(scope="session")
def luo_rudy():
    return load_registry_model("LuoRudy91")
