"""Tests for the §A.5/§A.6 artifact workflow scripts and state buffers."""

import importlib.util
import pathlib
import sys

import numpy as np
import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"


def load_tool(name):
    spec = importlib.util.spec_from_file_location(name,
                                                  TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tools(tmp_path_factory):
    evaluation = load_tool("evaluation")
    res = load_tool("res")
    out = tmp_path_factory.mktemp("artifact_output")
    evaluation.OUTPUT_DIR = out
    res.OUTPUT_DIR = out
    return evaluation, res, out


class TestArtifactWorkflow:
    def test_default_runs_fig3(self, tools, capsys):
        evaluation, _, out = tools
        assert evaluation.main([]) == 0
        assert (out / "fig3_avx512_32t.txt").exists()

    def test_fig2_then_res(self, tools, capsys):
        evaluation, res, out = tools
        assert evaluation.main(["-fig2", "true"]) == 0
        assert res.main(["-fig2", "true"]) == 0
        table = (out / "fig2.txt").read_text()
        assert "geomean overall" in table
        assert table.count("\n") > 43

    def test_res_without_evaluation_explains(self, tools, tmp_path):
        _, res, _ = tools
        saved = res.OUTPUT_DIR
        res.OUTPUT_DIR = tmp_path
        try:
            with pytest.raises(SystemExit, match="evaluation"):
                res.main(["-fig2", "true"])
        finally:
            res.OUTPUT_DIR = saved

    def test_nothing_selected_errors(self, tools, capsys):
        _, res, _ = tools
        assert res.main([]) == 1

    def test_output_rows_cover_all_models(self, tools):
        evaluation, _, out = tools
        evaluation.main(["-fig3", "true"])
        lines = (out / "fig3_avx512_32t.txt").read_text().splitlines()
        assert len(lines) == 44  # header + 43 models


class TestSimulationStateDetails:
    @pytest.fixture
    def runner(self, gate_model):
        from repro.codegen import generate_limpet_mlir
        from repro.runtime import KernelRunner
        return KernelRunner(generate_limpet_mlir(gate_model, 8))

    def test_padding_replicates_last_cell(self, runner):
        state = runner.make_state(10, perturbation=0.05)
        from repro.codegen.layout import unpack_state
        full = unpack_state(state.sv, state.layout, state.n_alloc)
        np.testing.assert_array_equal(full[10], full[9])
        np.testing.assert_array_equal(full[15], full[9])

    def test_vm_init_override(self, runner):
        state = runner.make_state(4, vm_init=-33.0)
        assert (state.external("Vm") == -33.0).all()

    def test_state_of_unknown_raises(self, runner):
        state = runner.make_state(4)
        with pytest.raises(ValueError):
            state.state_of("not_a_state")

    def test_snapshot_is_a_copy(self, runner):
        state = runner.make_state(4)
        snap = state.snapshot()
        snap["Vm"][:] = 999.0
        assert not (state.external("Vm") == 999.0).any()

    def test_set_state_pads(self, runner):
        state = runner.make_state(5)
        matrix = state.state_matrix()
        matrix[:, 0] = np.arange(5.0)
        state.set_state(matrix)
        assert state.state_of(state.model.states[0])[4] == 4.0
        from repro.codegen.layout import unpack_state
        full = unpack_state(state.sv, state.layout, state.n_alloc)
        assert full[7, 0] == 4.0  # padding mirrors the last real cell


class TestSVMLModule:
    def test_templates_cover_math_dialect(self):
        from repro.ir.dialects.math import BINARY_OPS, UNARY_OPS
        from repro.runtime.svml import VECTOR_MATH_TEMPLATES
        for op in list(UNARY_OPS) + list(BINARY_OPS):
            assert op in VECTOR_MATH_TEMPLATES, op

    def test_ufunc_lookup(self):
        import numpy as np
        from repro.runtime.svml import vector_math_ufunc
        assert vector_math_ufunc("math.exp") is np.exp
        with pytest.raises(KeyError):
            vector_math_ufunc("math.mystery")
