"""Parser tests: statements, markup, expressions and precedence."""

import pytest

from repro.easyml import (Assign, Binary, Call, Declare, Group, If, Markup,
                          Name, Number, SyntaxErrorEasyML, Ternary, Unary,
                          free_names, parse_model)


def parse_one(source):
    statements = parse_model(source).statements
    assert len(statements) == 1
    return statements[0]


def parse_expr(text):
    stmt = parse_one(f"x = {text};")
    assert isinstance(stmt, Assign)
    return stmt.expr


class TestStatements:
    def test_assignment(self):
        stmt = parse_one("x = 1 + 2;")
        assert isinstance(stmt, Assign) and stmt.target == "x"

    def test_bare_declaration(self):
        stmt = parse_one("Vm;")
        assert isinstance(stmt, Declare) and stmt.name == "Vm"
        assert stmt.markups == ()

    def test_declaration_with_trailing_markups(self):
        stmt = parse_one("Vm; .external(); .lookup(-100,100,0.05);")
        assert isinstance(stmt, Declare)
        assert [m.name for m in stmt.markups] == ["external", "lookup"]
        assert stmt.markups[1].args == (-100.0, 100.0, 0.05)

    def test_assignment_with_markup_becomes_declaration(self):
        stmt = parse_one("Cm = 200; .param();")
        assert isinstance(stmt, Declare)
        assert stmt.init == Number(200.0)

    def test_method_markup_string_argument(self):
        stmt = parse_one("u1; .method(rk2);")
        assert stmt.markups[0] == Markup("method", ("rk2",))

    def test_group(self):
        stmt = parse_one("group{ u1; u2; u3; }.nodal();")
        assert isinstance(stmt, Group)
        assert [m.name for m in stmt.members] == ["u1", "u2", "u3"]
        assert stmt.markups[0].name == "nodal"

    def test_group_with_initializers(self):
        stmt = parse_one("group{ Cm = 200; beta = 1; }.param();")
        assert stmt.members[0].init == Number(200.0)

    def test_group_markup_merged_in_declarations(self):
        model = parse_model("group{ a = 1; b = 2; }.param();")
        decls = model.declarations()
        assert all("param" in [m.name for m in d.markups] for d in decls)

    def test_if_else(self):
        stmt = parse_one("if (Vm > 0) { a = 1; } else { a = 2; }")
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        stmt = parse_one("if (Vm > 0) { a = 1; }")
        assert stmt.else_body == ()

    def test_else_if_chain(self):
        stmt = parse_one(
            "if (Vm > 0) { a = 1; } else if (Vm > -40) { a = 2; }"
            " else { a = 3; }")
        assert isinstance(stmt.else_body[0], If)

    def test_braceless_if_body(self):
        stmt = parse_one("if (Vm > 0) a = 1;")
        assert isinstance(stmt.then_body[0], Assign)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        assert parse_expr("1 + 2 * 3") == Binary(
            "+", Number(1.0), Binary("*", Number(2.0), Number(3.0)))

    def test_left_associativity(self):
        assert parse_expr("8 - 4 - 2") == Binary(
            "-", Binary("-", Number(8.0), Number(4.0)), Number(2.0))

    def test_parentheses_override(self):
        assert parse_expr("(1 + 2) * 3") == Binary(
            "*", Binary("+", Number(1.0), Number(2.0)), Number(3.0))

    def test_unary_minus(self):
        assert parse_expr("-x") == Unary("-", Name("x"))

    def test_unary_plus_dropped(self):
        assert parse_expr("+x") == Name("x")

    def test_double_negation(self):
        assert parse_expr("--x") == Unary("-", Unary("-", Name("x")))

    def test_call_with_arguments(self):
        assert parse_expr("pow(x, 2)") == Call(
            "pow", (Name("x"), Number(2.0)))

    def test_nested_calls(self):
        expr = parse_expr("exp(square(x))")
        assert expr == Call("exp", (Call("square", (Name("x"),)),))

    def test_caret_power_becomes_pow_call(self):
        assert parse_expr("x^2") == Call("pow", (Name("x"), Number(2.0)))

    def test_ternary(self):
        expr = parse_expr("a > b ? 1 : 0")
        assert isinstance(expr, Ternary)
        assert expr.then == Number(1.0)

    def test_nested_ternary_right_associative(self):
        expr = parse_expr("a > 0 ? 1 : b > 0 ? 2 : 3")
        assert isinstance(expr.otherwise, Ternary)

    def test_comparison_chain_precedence(self):
        expr = parse_expr("a + 1 < b * 2")
        assert expr.op == "<"
        assert expr.lhs.op == "+" and expr.rhs.op == "*"

    def test_logical_precedence(self):
        expr = parse_expr("a < b && c > d || e == f")
        assert expr.op == "or"
        assert expr.lhs.op == "and"

    def test_not_operator(self):
        assert parse_expr("!x") == Unary("!", Name("x"))

    def test_modulo(self):
        assert parse_expr("a % b").op == "%"


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(SyntaxErrorEasyML):
            parse_model("x = 1")

    def test_unbalanced_paren(self):
        with pytest.raises(SyntaxErrorEasyML):
            parse_model("x = (1 + 2;")

    def test_bad_markup_argument(self):
        with pytest.raises(SyntaxErrorEasyML):
            parse_model("Vm; .lookup(-, 100, 0.05);")

    def test_group_member_must_be_simple(self):
        with pytest.raises(SyntaxErrorEasyML):
            parse_model("group{ if (a) { b = 1; } }.nodal();")

    def test_error_reports_location(self):
        with pytest.raises(SyntaxErrorEasyML) as err:
            parse_model("x = ;")
        assert "1:" in str(err.value)


class TestHelpers:
    def test_free_names(self):
        expr = parse_expr("a*b + exp(c) - 2")
        assert free_names(expr) == {"a", "b", "c"}

    def test_assignments_flattened_through_if(self):
        model = parse_model(
            "x = 1; if (x > 0) { y = 2; } else { y = 3; } z = 4;")
        targets = [a.target for a in model.assignments()]
        assert targets == ["x", "y", "y", "z"]

    def test_str_round_trip_reparses(self):
        """str(expr) must be valid EasyML producing the same tree."""
        expr = parse_expr("-(a + b)*exp(c/d) + (e < f ? 1 : g)")
        again = parse_expr(str(expr))
        assert again == expr

    def test_all_registry_models_parse(self):
        from repro.models import ALL_MODELS, model_entry
        from repro.easyml import parse_model_file
        for name in ALL_MODELS:
            ast = parse_model_file(model_entry(name).path)
            assert ast.statements, name
