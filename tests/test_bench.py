"""Bench harness tests: timing protocol, variants, figure data."""

import pytest

from repro.bench import (BenchConfig, ModeledBench, figure_isa_sweep,
                         figure_roofline, figure_scaling, figure_speedups,
                         format_isa_sweep, format_scaling_table,
                         format_speedup_table, generate_variant, geomean,
                         kernel_profile, run_measured, sweep_average_geomean,
                         trimmed_mean)
from repro.codegen import BackendMode
from repro.machine import AVX512, SSE
from repro.models import load_model


class TestTimingProtocol:
    def test_trimmed_mean_drops_extrema(self):
        # paper: 5 runs, drop min and max, average the middle 3
        assert trimmed_mean([10.0, 1.0, 2.0, 3.0, 0.1]) == 2.0

    def test_trimmed_mean_short_input(self):
        assert trimmed_mean([5.0]) == 5.0
        assert trimmed_mean([1.0, 3.0]) in (1.0, 2.0, 3.0)

    def test_trimmed_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean([])

    def test_geomean(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])


class TestVariants:
    def test_all_variants_generate(self, gate_model):
        from repro.bench import VARIANTS
        for variant in VARIANTS:
            kernel = generate_variant(gate_model, variant, width=4)
            assert kernel.module is not None, variant

    def test_unknown_variant_rejected(self, gate_model):
        with pytest.raises(ValueError):
            generate_variant(gate_model, "turbo")

    def test_variant_modes(self, gate_model):
        assert generate_variant(gate_model, "baseline").spec.mode is \
            BackendMode.BASELINE
        assert generate_variant(gate_model, "icc_simd").spec.mode is \
            BackendMode.ICC_SIMD

    def test_kernel_profile_cached(self):
        p1 = kernel_profile("Plonsey", "limpet_mlir", 8)
        p2 = kernel_profile("Plonsey", "limpet_mlir", 8)
        assert p1 is p2


class TestBenchConfig:
    def test_paper_defaults(self):
        config = BenchConfig()
        assert config.n_cells == 8192
        assert config.n_steps == 100_000
        assert config.dt == 0.01

    def test_stimulus_scaled_for_normalized_models(self):
        config = BenchConfig()
        ms = load_model("MitchellSchaeffer")
        lr = load_model("LuoRudy91")
        assert abs(config.stimulus_for(ms).amplitude) < 1.0
        assert abs(config.stimulus_for(lr).amplitude) >= 10.0


class TestModeledBench:
    @pytest.fixture(scope="class")
    def bench(self):
        return ModeledBench()

    def test_speedup_positive(self, bench):
        assert bench.speedup("LuoRudy91", AVX512, 1) > 1.0

    def test_run_record(self, bench):
        run = bench.run("Plonsey", "baseline", AVX512, 4)
        assert run.size_class == "small"
        assert run.seconds > 0

    def test_isa_affects_vector_not_baseline(self, bench):
        base_sse = bench.seconds("LuoRudy91", "baseline", SSE, 1)
        base_avx = bench.seconds("LuoRudy91", "baseline", AVX512, 1)
        assert base_sse == base_avx
        vec_sse = bench.seconds("LuoRudy91", "limpet_mlir", SSE, 1)
        vec_avx = bench.seconds("LuoRudy91", "limpet_mlir", AVX512, 1)
        assert vec_avx < vec_sse


class TestMeasured:
    def test_run_measured_smoke(self):
        result = run_measured("HodgkinHuxley", "limpet_mlir", 8,
                              n_cells=64, n_steps=10, runs=2)
        assert result.seconds > 0
        assert result.model == "HodgkinHuxley"

    def test_measured_vector_beats_baseline(self):
        base = run_measured("LuoRudy91", "baseline", n_cells=256,
                            n_steps=25, runs=3)
        vec = run_measured("LuoRudy91", "limpet_mlir", 8, n_cells=256,
                           n_steps=25, runs=3)
        assert vec.seconds < base.seconds


class TestFigureData:
    def test_fig2_ordering_and_classes(self):
        bars = figure_speedups(threads=1, models=("Plonsey", "LuoRudy91",
                                                  "OHara"))
        times = [b.baseline_seconds for b in bars]
        assert times == sorted(times)
        assert [b.size_class for b in bars] == ["small", "medium", "large"]

    def test_fig2_format(self):
        bars = figure_speedups(threads=1, models=("Plonsey", "OHara"))
        text = format_speedup_table(bars, "Fig. 2")
        assert "Plonsey" in text and "geomean overall" in text

    def test_fig4_series_complete(self):
        series = figure_scaling(thread_sweep=(1, 32))
        assert len(series) == 6   # 3 classes x 2 variants
        text = format_scaling_table(series)
        assert "large" in text and "limpet_mlir" in text

    def test_fig5_rows(self):
        rows = figure_isa_sweep(thread_sweep=(1,),
                                models=("Plonsey", "LuoRudy91"))
        assert [r.isa for r in rows] == ["sse", "avx2", "avx512"]
        text = format_isa_sweep(rows)
        assert "overall geomean" in text

    def test_fig6_points(self):
        points, ceilings = figure_roofline(models=("LuoRudy91", "OHara"))
        assert len(points) == 2
        assert ceilings.peak_gflops == 760.0

    def test_sweep_average_geomean(self):
        value = sweep_average_geomean("limpet_mlir", thread_sweep=(1,),
                                      models=("LuoRudy91",))
        bench = ModeledBench()
        assert value == pytest.approx(bench.speedup("LuoRudy91", AVX512, 1))
