"""Tests for the reference NumPy expression evaluator."""

import math

import numpy as np
import pytest

from repro.easyml import parse_model
from repro.easyml.errors import SemanticError
from repro.frontend.model import Computation
from repro.runtime.expr_eval import eval_expr, evaluate_plan


def expr_of(text):
    return parse_model(f"r = {text};").statements[0].expr


class TestScalarEvaluation:
    @pytest.mark.parametrize("text,env,expected", [
        ("1 + 2*3", {}, 7.0),
        ("x / y", {"x": 1.0, "y": 4.0}, 0.25),
        ("square(x) + cube(2)", {"x": 3.0}, 17.0),
        ("exp(0) + log(1)", {}, 1.0),
        ("x % 3", {"x": 7.0}, 1.0),
        ("min(x, 2) + max(x, 2)", {"x": 5.0}, 7.0),
        ("-x", {"x": 2.0}, -2.0),
        ("pow(2, 10)", {}, 1024.0),
        ("fabs(-3)", {}, 3.0),
        ("atan2(0, 1)", {}, 0.0),
    ])
    def test_arithmetic(self, text, env, expected):
        assert eval_expr(expr_of(text), env) == pytest.approx(expected)

    @pytest.mark.parametrize("text,expected", [
        ("1 < 2", 1.0), ("2 <= 1", 0.0), ("3 == 3", 1.0),
        ("3 != 3", 0.0), ("1 && 0", 0.0), ("1 || 0", 1.0),
        ("!0", 1.0), ("!5", 0.0),
    ])
    def test_boolean_as_float(self, text, expected):
        assert eval_expr(expr_of(text), {}) == expected

    def test_ternary(self):
        assert eval_expr(expr_of("x > 0 ? 10 : 20"), {"x": 1.0}) == 10.0
        assert eval_expr(expr_of("x > 0 ? 10 : 20"), {"x": -1.0}) == 20.0

    def test_unbound_variable(self):
        with pytest.raises(SemanticError):
            eval_expr(expr_of("ghost"), {})

    def test_unknown_function(self):
        with pytest.raises(SemanticError):
            eval_expr(expr_of("frobnicate(1)"), {})

    def test_ieee_semantics(self):
        assert eval_expr(expr_of("1/x"), {"x": 0.0}) == math.inf
        assert math.isnan(eval_expr(expr_of("log(x)"), {"x": -1.0}))


class TestArrayEvaluation:
    def test_elementwise_over_arrays(self):
        x = np.array([1.0, 2.0, 3.0])
        result = eval_expr(expr_of("square(x) + 1"), {"x": x})
        np.testing.assert_array_equal(result, [2.0, 5.0, 10.0])

    def test_ternary_uses_where(self):
        x = np.array([-1.0, 1.0])
        result = eval_expr(expr_of("x > 0 ? x : -x"), {"x": x})
        np.testing.assert_array_equal(result, [1.0, 1.0])

    def test_ternary_where_evaluates_both_branches_safely(self):
        """The guarded-singularity idiom used by the models."""
        x = np.array([0.0, 1.0])
        expr = expr_of("fabs(x) < 1e-9 ? 1 : x/(1-exp(-x))")
        result = eval_expr(expr, {"x": x})
        assert result[0] == 1.0
        assert result[1] == pytest.approx(1.0 / (1 - math.exp(-1.0)))

    def test_mixed_scalar_array_broadcast(self):
        x = np.array([1.0, 2.0])
        result = eval_expr(expr_of("x * k"), {"x": x, "k": 3.0})
        np.testing.assert_array_equal(result, [3.0, 6.0])

    def test_logical_over_arrays(self):
        x = np.array([0.0, 1.0, 2.0])
        result = eval_expr(expr_of("x > 0 && x < 2"), {"x": x})
        np.testing.assert_array_equal(result, [0.0, 1.0, 0.0])

    def test_erf_vectorized_close_to_math(self):
        x = np.linspace(-3, 3, 13)
        result = eval_expr(expr_of("erf(x)"), {"x": x})
        expected = [math.erf(v) for v in x]
        np.testing.assert_allclose(result, expected, atol=2e-7)


class TestEvaluatePlan:
    def test_sequential_extension(self):
        plan = [Computation("a", expr_of("x + 1")),
                Computation("b", expr_of("a * 2"))]
        env = {"x": 3.0}
        evaluate_plan(plan, env)
        assert env["a"] == 4.0 and env["b"] == 8.0

    def test_matches_kernel_for_model_computations(self, gate_model):
        """Reference evaluator reproduces one compute step exactly."""
        from repro.codegen import generate_baseline
        from repro.runtime import KernelRunner
        runner = KernelRunner(generate_baseline(gate_model, use_lut=False))
        state = runner.make_state(1)
        env = {name: state.state_of(name)[0]
               for name in gate_model.states}
        env["Vm"] = state.externals["Vm"][0]
        env.update(gate_model.params)
        env.update(gate_model.folded_constants)
        evaluate_plan(gate_model.computations, env)
        runner.compute_step(state, 0.01)
        assert state.externals["Iion"][0] == pytest.approx(env["Iion"],
                                                           rel=1e-12)
