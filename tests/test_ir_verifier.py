"""Verifier tests: each structural invariant has a failing case."""

import pytest

from repro.ir import IRBuilder, build_module, verify_module
from repro.ir.core import Block, Operation, Region
from repro.ir.dialects import arith, func, scf
from repro.ir.types import FunctionType, f64, i1, index
from repro.ir.verifier import VerificationError, verify_op_isolated


def empty_func(module, name="f", inputs=(), results=()):
    return func.func(module, name, list(inputs), list(results))


class TestModuleVerification:
    def test_valid_module_passes(self):
        module, _ = build_module()
        fn = empty_func(module)
        IRBuilder(fn.entry).create("func.return", [], [])
        verify_module(module)

    def test_unregistered_op_rejected(self):
        module, _ = build_module()
        fn = empty_func(module)
        b = IRBuilder(fn.entry)
        b.create("made.up", [], [])
        b.create("func.return", [], [])
        with pytest.raises(VerificationError, match="unregistered"):
            verify_module(module)

    def test_unregistered_op_allowed_with_flag(self):
        module, _ = build_module()
        fn = empty_func(module)
        b = IRBuilder(fn.entry)
        b.create("made.up", [], [])
        b.create("func.return", [], [])
        verify_module(module, allow_unregistered=True)

    def test_use_before_def_rejected(self):
        module, _ = build_module()
        fn = empty_func(module)
        block = fn.entry
        b = IRBuilder(block)
        late = Operation("arith.constant", [], [f64], {"value": 1.0})
        use = Operation("arith.negf", [late.result], [f64])
        block.append(use)
        block.append(late)
        b.create("func.return", [], [])
        with pytest.raises(VerificationError, match="define-before-use"):
            verify_module(module)

    def test_value_from_sibling_region_rejected(self):
        module, _ = build_module()
        fn = empty_func(module)
        b = IRBuilder(fn.entry)
        cond = b.constant(True, i1)
        branch = scf.if_op(b, cond, [])
        with b.at_end_of(branch.then_block):
            leaked = b.constant(1.0, f64)
            scf.yield_op(b)
        with b.at_end_of(branch.else_block):
            b.create("arith.negf", [leaked], [f64])
            scf.yield_op(b)
        b.create("func.return", [], [])
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_terminator_must_be_last(self):
        module, _ = build_module()
        fn = empty_func(module)
        b = IRBuilder(fn.entry)
        b.create("func.return", [], [])
        b.constant(1.0, f64)
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(module)


class TestPerOpVerifiers:
    def test_addf_type_mismatch(self):
        block = Block([f64, index])
        op = Operation("arith.addf", list(block.args), [f64])
        with pytest.raises(Exception, match="mismatched"):
            verify_op_isolated(op)

    def test_addf_rejects_integers(self):
        block = Block([index, index])
        op = Operation("arith.addf", list(block.args), [index])
        with pytest.raises(Exception, match="float"):
            verify_op_isolated(op)

    def test_cmpf_bad_predicate(self):
        block = Block([f64, f64])
        op = Operation("arith.cmpf", list(block.args), [i1],
                       {"predicate": "bogus"})
        with pytest.raises(Exception, match="predicate"):
            verify_op_isolated(op)

    def test_scf_for_requires_yield_arity(self):
        body = Block([index, f64])
        body.append(Operation("scf.yield", [], []))
        bounds = Block([index, index, index, f64])
        op = Operation("scf.for", list(bounds.args), [f64],
                       regions=[Region([body])])
        with pytest.raises(Exception, match="arity"):
            verify_op_isolated(op)

    def test_scf_for_body_arg_count(self):
        body = Block([index, f64, f64])   # one extra arg
        body.append(Operation("scf.yield", [], []))
        bounds = Block([index, index, index])
        op = Operation("scf.for", list(bounds.args), [],
                       regions=[Region([body])])
        with pytest.raises(Exception, match="induction"):
            verify_op_isolated(op)

    def test_func_return_type_checked(self):
        module, _ = build_module()
        fn = func.func(module, "f", [f64], [f64])
        b = IRBuilder(fn.entry)
        b.create("func.return", [], [])  # returns nothing, f64 expected
        with pytest.raises(VerificationError, match="signature"):
            verify_module(module)

    def test_func_entry_args_must_match_signature(self):
        bad = Operation("func.func", [], [], {
            "sym_name": "f",
            "function_type": FunctionType((f64,), ())},
            [Region([Block()])])   # entry block has no args
        with pytest.raises(Exception, match="entry block args"):
            verify_op_isolated(bad)

    def test_memref_load_index_count(self):
        from repro.ir.types import memref_of
        block = Block([memref_of(f64, None, None), index])
        op = Operation("memref.load", [block.args[0], block.args[1]], [f64])
        with pytest.raises(Exception, match="indices"):
            verify_op_isolated(op)

    def test_vector_gather_width_mismatch(self):
        from repro.ir.types import memref_of, vector_of
        block = Block([memref_of(f64), vector_of(4, index)])
        op = Operation("vector.gather", list(block.args), [vector_of(8)])
        with pytest.raises(Exception, match="width"):
            verify_op_isolated(op)

    def test_vector_extract_position_bounds(self):
        from repro.ir.types import vector_of
        block = Block([vector_of(4)])
        op = Operation("vector.extract", [block.args[0]], [f64],
                       {"position": 4})
        with pytest.raises(Exception, match="position"):
            verify_op_isolated(op)

    def test_lookup_spec_validation(self):
        from repro.frontend.symbols import LookupSpec
        with pytest.raises(ValueError):
            LookupSpec(0.0, 1.0, -0.1)
        with pytest.raises(ValueError):
            LookupSpec(1.0, 1.0, 0.1)
        assert LookupSpec(-100.0, 100.0, 0.05).n_rows == 4001
