"""Data-layout tests (§3.4.1): addressing, packing, contiguity."""

import numpy as np
import pytest

from repro.codegen.layout import (Layout, LayoutKind, aos, aosoa, pack_state,
                                  soa, unpack_state)


class TestAddressing:
    def test_aos_offsets(self):
        layout = aos(n_states=3)
        # cell-major: [c0s0 c0s1 c0s2 c1s0 ...]
        assert layout.offset(0, 0, 10) == 0
        assert layout.offset(0, 2, 10) == 2
        assert layout.offset(1, 0, 10) == 3
        assert layout.offset(4, 1, 10) == 13

    def test_soa_offsets(self):
        layout = soa(n_states=3)
        assert layout.offset(0, 0, 10) == 0
        assert layout.offset(9, 0, 10) == 9
        assert layout.offset(0, 1, 10) == 10
        assert layout.offset(4, 2, 10) == 24

    def test_aosoa_offsets(self):
        layout = aosoa(n_states=3, block=4)
        # block 0: s0 lanes 0-3, s1 lanes 0-3, s2 lanes 0-3, block 1...
        assert layout.offset(0, 0, 8) == 0
        assert layout.offset(3, 0, 8) == 3
        assert layout.offset(0, 1, 8) == 4
        assert layout.offset(4, 0, 8) == 12   # second block starts
        assert layout.offset(5, 2, 8) == 21

    def test_vectorized_offsets_match_scalar(self):
        for layout in (aos(5), soa(5), aosoa(5, 8)):
            cells = np.arange(16)
            for slot in range(5):
                vectorized = layout.offsets(cells, slot, 16)
                scalar = [layout.offset(int(c), slot, 16) for c in cells]
                assert list(vectorized) == scalar, str(layout)

    def test_slot_out_of_range(self):
        with pytest.raises(IndexError):
            aos(2).offset(0, 2, 4)

    def test_offsets_within_buffer(self):
        for layout in (aos(4), soa(4), aosoa(4, 8)):
            size = layout.buffer_size(10)
            cells = np.arange(10)
            for slot in range(4):
                offs = layout.offsets(cells, slot, 10)
                assert offs.max() < size


class TestPadding:
    def test_aosoa_pads_to_blocks(self):
        layout = aosoa(3, block=8)
        assert layout.padded_cells(10) == 16
        assert layout.padded_cells(16) == 16

    def test_aos_needs_no_padding(self):
        assert aos(3).padded_cells(10) == 10

    def test_buffer_size(self):
        assert aos(3).buffer_size(10) == 30
        assert aosoa(3, 8).buffer_size(10) == 48


class TestContiguity:
    def test_aosoa_contiguous_at_block_width(self):
        assert aosoa(4, 8).vector_load_is_contiguous(8)
        assert aosoa(4, 8).vector_load_is_contiguous(4)

    def test_aosoa_not_contiguous_beyond_block(self):
        assert not aosoa(4, 4).vector_load_is_contiguous(8)

    def test_aos_not_contiguous(self):
        assert not aos(4).vector_load_is_contiguous(8)

    def test_aos_single_state_degenerate_contiguous(self):
        assert aos(1).vector_load_is_contiguous(8)

    def test_soa_always_contiguous(self):
        assert soa(4).vector_load_is_contiguous(8)

    def test_gather_stride(self):
        assert aos(7).gather_stride == 7
        assert aosoa(7, 8).gather_stride == 1


class TestPackUnpack:
    @pytest.mark.parametrize("make", [lambda: aos(4), lambda: soa(4),
                                      lambda: aosoa(4, 8)])
    def test_round_trip(self, make):
        layout = make()
        rng = np.random.default_rng(7)
        values = rng.normal(size=(13, 4))
        padded = np.zeros((layout.padded_cells(13), 4))
        padded[:13] = values
        buffer = pack_state(padded, layout)
        recovered = unpack_state(buffer, layout, layout.padded_cells(13))
        np.testing.assert_array_equal(recovered[:13], values)

    def test_pack_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_state(np.zeros((4, 3)), aos(5))

    def test_aosoa_blocks_are_physically_contiguous(self):
        """The whole point: one slot's lanes sit side by side."""
        layout = aosoa(2, block=4)
        values = np.arange(8.0).reshape(4, 2)  # 4 cells, 2 states
        buffer = pack_state(values, layout)
        # slot 0 of cells 0..3 at positions 0..3
        np.testing.assert_array_equal(buffer[0:4], values[:, 0])
        np.testing.assert_array_equal(buffer[4:8], values[:, 1])

    def test_str_forms(self):
        assert str(aos(3)) == "aos"
        assert str(soa(3)) == "soa"
        assert str(aosoa(3, 8)) == "aosoa(block=8)"

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Layout(LayoutKind.AOSOA, 3, 0)
        with pytest.raises(ValueError):
            Layout(LayoutKind.AOS, -1)
