"""Tests for canonicalize, CSE, LICM, DCE and the pass manager."""

import pytest

from repro.ir import IRBuilder, build_module, verify_module
from repro.ir.dialects import arith, func, math, memref, scf
from repro.ir.passes import (CSE, DCE, LICM, Canonicalize, PassManager,
                             default_pipeline)
from repro.ir.types import f64, index, memref_of


def make_func(module, inputs=(f64, f64), results=(f64,), hints=("x", "y")):
    fn = func.func(module, "f", list(inputs), list(results),
                   arg_hints=list(hints))
    return fn, IRBuilder(fn.entry)


def body_ops(module, name="f"):
    return module.lookup_func(name).regions[0].entry.ops


class TestCanonicalize:
    def test_constant_folding(self):
        module, _ = build_module()
        fn, b = make_func(module)
        c2 = b.constant(2.0, f64)
        c3 = b.constant(3.0, f64)
        folded = arith.mulf(b, c2, c3)
        func.ret(b, [arith.addf(b, folded, fn.args[0])])
        Canonicalize().run(module)
        DCE().run(module)
        values = [op.attributes.get("value") for op in body_ops(module)
                  if op.name == "arith.constant"]
        assert 6.0 in values

    def test_math_call_folding(self):
        module, _ = build_module()
        fn, b = make_func(module)
        c = b.constant(0.0, f64)
        func.ret(b, [arith.addf(b, math.exp(b, c), fn.args[0])])
        Canonicalize().run(module)
        assert not any(op.name == "math.exp" for op in body_ops(module))

    def test_add_zero_identity(self):
        module, _ = build_module()
        fn, b = make_func(module)
        zero = b.constant(0.0, f64)
        func.ret(b, [arith.addf(b, fn.args[0], zero)])
        Canonicalize().run(module)
        DCE().run(module)
        assert [op.name for op in body_ops(module)] == ["func.return"]

    def test_mul_one_identity_either_side(self):
        module, _ = build_module()
        fn, b = make_func(module)
        one = b.constant(1.0, f64)
        v = arith.mulf(b, one, fn.args[0])
        func.ret(b, [arith.mulf(b, v, one)])
        Canonicalize().run(module)
        DCE().run(module)
        assert [op.name for op in body_ops(module)] == ["func.return"]

    def test_mul_zero_absorbs(self):
        module, _ = build_module()
        fn, b = make_func(module)
        zero = b.constant(0.0, f64)
        func.ret(b, [arith.mulf(b, fn.args[0], zero)])
        Canonicalize().run(module)
        ret = body_ops(module)[-1]
        owner = ret.operands[0].owner
        assert owner.name == "arith.constant"
        assert owner.attributes["value"] == 0.0

    def test_sub_zero_rhs_only(self):
        module, _ = build_module()
        fn, b = make_func(module)
        zero = b.constant(0.0, f64)
        kept = arith.subf(b, zero, fn.args[0])  # 0 - x must NOT fold to x
        func.ret(b, [arith.subf(b, kept, zero)])
        Canonicalize().run(module)
        names = [op.name for op in body_ops(module)]
        assert names.count("arith.subf") == 1

    def test_select_constant_condition(self):
        module, _ = build_module()
        fn, b = make_func(module)
        from repro.ir.types import i1
        t = b.constant(True, i1)
        func.ret(b, [arith.select(b, t, fn.args[0], fn.args[1])])
        Canonicalize().run(module)
        DCE().run(module)
        assert not any(op.name == "arith.select"
                       for op in body_ops(module))

    def test_division_by_zero_not_crashing(self):
        module, _ = build_module()
        fn, b = make_func(module)
        one = b.constant(1.0, f64)
        zero = b.constant(0.0, f64)
        func.ret(b, [arith.divf(b, one, zero)])
        Canonicalize().run(module)  # must not raise
        verify_module(module)


class TestCSE:
    def test_duplicate_pure_op_merged(self):
        module, _ = build_module()
        fn, b = make_func(module)
        s1 = arith.addf(b, fn.args[0], fn.args[1])
        s2 = arith.addf(b, fn.args[0], fn.args[1])
        func.ret(b, [arith.mulf(b, s1, s2)])
        assert CSE().run(module)
        adds = [op for op in body_ops(module) if op.name == "arith.addf"]
        assert len(adds) == 1

    def test_commutative_operands_merged(self):
        module, _ = build_module()
        fn, b = make_func(module)
        s1 = arith.addf(b, fn.args[0], fn.args[1])
        s2 = arith.addf(b, fn.args[1], fn.args[0])
        func.ret(b, [arith.mulf(b, s1, s2)])
        assert CSE().run(module)

    def test_non_commutative_not_merged(self):
        module, _ = build_module()
        fn, b = make_func(module)
        s1 = arith.subf(b, fn.args[0], fn.args[1])
        s2 = arith.subf(b, fn.args[1], fn.args[0])
        func.ret(b, [arith.mulf(b, s1, s2)])
        assert not CSE().run(module)

    def test_different_attributes_not_merged(self):
        module, _ = build_module()
        fn, b = make_func(module, results=())
        arith.cmpf(b, "olt", fn.args[0], fn.args[1])
        arith.cmpf(b, "ogt", fn.args[0], fn.args[1])
        func.ret(b)
        assert not CSE().run(module)

    def test_impure_ops_never_merged(self):
        module, _ = build_module()
        fn, b = make_func(module, inputs=(memref_of(f64), index),
                          results=(), hints=("m", "i"))
        value = b.constant(1.0, f64)
        memref.store(b, value, fn.args[0], [fn.args[1]])
        memref.store(b, value, fn.args[0], [fn.args[1]])
        func.ret(b)
        assert not CSE().run(module)
        stores = [op for op in body_ops(module)
                  if op.name == "memref.store"]
        assert len(stores) == 2

    def test_outer_value_reused_in_nested_region(self):
        module, _ = build_module()
        fn, b = make_func(module, inputs=(f64, index), results=(),
                          hints=("x", "n"))
        outer = arith.addf(b, fn.args[0], fn.args[0])
        zero = b.constant(0, index)
        one = b.constant(1, index)
        loop = scf.for_op(b, zero, fn.args[1], one)
        with b.at_end_of(loop.body):
            inner = arith.addf(b, fn.args[0], fn.args[0])
            arith.mulf(b, inner, inner)
            scf.yield_op(b)
        func.ret(b)
        assert CSE().run(module)
        loop_ops = module.lookup_func("f").regions[0].entry.ops
        for_op = next(op for op in loop_ops if op.name == "scf.for")
        inner_adds = [op for op in for_op.regions[0].entry.ops
                      if op.name == "arith.addf"]
        assert inner_adds == []  # merged with the outer add
        assert outer.num_uses > 0


class TestLICM:
    def _loop_module(self):
        module, _ = build_module()
        fn, b = make_func(module, inputs=(f64, index, memref_of(f64)),
                          results=(), hints=("x", "n", "buf"))
        zero = b.constant(0, index)
        one = b.constant(1, index)
        loop = scf.for_op(b, zero, fn.args[1], one)
        return module, fn, b, loop

    def test_invariant_hoisted(self):
        module, fn, b, loop = self._loop_module()
        with b.at_end_of(loop.body):
            inv = arith.mulf(b, fn.args[0], fn.args[0])
            value = memref.load(b, fn.args[2], [loop.induction_var])
            memref.store(b, arith.addf(b, value, inv), fn.args[2],
                         [loop.induction_var])
            scf.yield_op(b)
        func.ret(b)
        assert LICM().run(module)
        body = loop.body
        assert not any(op.name == "arith.mulf" for op in body.ops)
        verify_module(module)

    def test_iv_dependent_not_hoisted(self):
        module, fn, b, loop = self._loop_module()
        with b.at_end_of(loop.body):
            value = memref.load(b, fn.args[2], [loop.induction_var])
            arith.mulf(b, value, value)
            scf.yield_op(b)
        func.ret(b)
        LICM().run(module)
        assert any(op.name == "arith.mulf" for op in loop.body.ops)

    def test_impure_not_hoisted(self):
        module, fn, b, loop = self._loop_module()
        with b.at_end_of(loop.body):
            zero_i = b.constant(0, index)
            value = memref.load(b, fn.args[2], [zero_i])
            # load is pure and gets hoisted; store must stay
            memref.store(b, value, fn.args[2], [zero_i])
            scf.yield_op(b)
        func.ret(b)
        LICM().run(module)
        assert any(op.name == "memref.store" for op in loop.body.ops)

    def test_chain_hoisted_transitively(self):
        module, fn, b, loop = self._loop_module()
        with b.at_end_of(loop.body):
            a = arith.mulf(b, fn.args[0], fn.args[0])
            arith.addf(b, a, fn.args[0])
            scf.yield_op(b)
        func.ret(b)
        LICM().run(module)
        names = [op.name for op in loop.body.ops]
        assert names == ["scf.yield"]


class TestDCE:
    def test_unused_pure_removed(self):
        module, _ = build_module()
        fn, b = make_func(module, results=())
        arith.addf(b, fn.args[0], fn.args[1])
        func.ret(b)
        assert DCE().run(module)
        assert [op.name for op in body_ops(module)] == ["func.return"]

    def test_dead_chain_removed_in_one_sweep(self):
        module, _ = build_module()
        fn, b = make_func(module, results=())
        a = arith.addf(b, fn.args[0], fn.args[1])
        c = arith.mulf(b, a, a)
        math.exp(b, c)
        func.ret(b)
        DCE().run(module)
        assert [op.name for op in body_ops(module)] == ["func.return"]

    def test_impure_kept(self):
        module, _ = build_module()
        fn, b = make_func(module, inputs=(memref_of(f64), index),
                          results=(), hints=("m", "i"))
        memref.store(b, b.constant(0.0, f64), fn.args[0], [fn.args[1]])
        func.ret(b)
        DCE().run(module)
        assert any(op.name == "memref.store" for op in body_ops(module))

    def test_used_value_kept(self):
        module, _ = build_module()
        fn, b = make_func(module)
        s = arith.addf(b, fn.args[0], fn.args[1])
        func.ret(b, [s])
        assert not DCE().run(module)


class TestPassManager:
    def test_fixed_point_converges(self, luo_rudy):
        from repro.codegen import generate_limpet_mlir
        kernel = generate_limpet_mlir(luo_rudy, width=8)
        pm = default_pipeline()
        pm.run(kernel.module, fixed_point=True)
        # a second run must be a no-op
        assert not pm.run(kernel.module, fixed_point=True)

    def test_statistics_collected(self):
        module, _ = build_module()
        fn, b = make_func(module, results=())
        arith.addf(b, fn.args[0], fn.args[1])
        func.ret(b)
        pm = PassManager([DCE()])
        pm.run(module)
        stats = pm.statistics["dce"]
        assert stats.runs == 1 and stats.changed == 1
        assert "dce" in pm.summary()

    def test_verify_each_catches_broken_pass(self):
        class Breaker(DCE):
            name = "breaker"

            def run(self, module):
                for op in module.walk():
                    if op.name == "func.return":
                        op.parent.ops.remove(op)
                        op.parent = None
                        return True
                return False

        module, _ = build_module()
        fn, b = make_func(module, results=())
        func.ret(b)
        # removing the terminator leaves valid-but-empty body; verifier
        # still passes here, so instead break typing:
        pm = PassManager([Breaker()], verify_each=False)
        pm.run(module)  # no verification -> no raise

    def test_pipeline_preserves_semantics(self, gate_model):
        """Optimized and unoptimized kernels produce identical runs."""
        import numpy as np
        from repro.codegen import generate_limpet_mlir
        from repro.runtime import KernelRunner, compare_trajectories
        raw = KernelRunner(generate_limpet_mlir(gate_model, 8),
                           optimize=False)
        opt = KernelRunner(generate_limpet_mlir(gate_model, 8),
                           optimize=True)
        r1 = raw.simulate(32, 200, 0.01, perturbation=0.01)
        r2 = opt.simulate(32, 200, 0.01, perturbation=0.01)
        assert compare_trajectories(r1.state, r2.state, rtol=1e-12)

    def test_fixed_point_stops_at_max_iterations(self):
        from repro.ir.passes.pass_manager import Pass

        class Churn(Pass):
            name = "churn"

            def run(self, module):
                return True             # never converges

        module, _ = build_module()
        fn, b = make_func(module, results=())
        func.ret(b)
        pm = PassManager([Churn()], verify_each=False, max_iterations=3)
        assert pm.run(module, fixed_point=True)
        assert pm.statistics["churn"].runs == 3

    def test_single_run_ignores_max_iterations(self):
        from repro.ir.passes.pass_manager import Pass

        class Churn(Pass):
            name = "churn"

            def run(self, module):
                return True

        module, _ = build_module()
        fn, b = make_func(module, results=())
        func.ret(b)
        pm = PassManager([Churn()], verify_each=False, max_iterations=5)
        pm.run(module, fixed_point=False)
        assert pm.statistics["churn"].runs == 1

    def test_statistics_account_runs_changed_and_time(self):
        from repro.ir.passes.pass_manager import Pass

        class Alternating(Pass):
            name = "alternating"

            def __init__(self):
                self.calls = 0

            def run(self, module):
                self.calls += 1
                return self.calls == 1  # changes once, then stabilizes

        module, _ = build_module()
        fn, b = make_func(module, results=())
        func.ret(b)
        pm = PassManager([Alternating()], verify_each=False)
        pm.run(module, fixed_point=True)
        stats = pm.statistics["alternating"]
        assert stats.runs == 2          # change round + stable round
        assert stats.changed == 1
        assert stats.seconds >= 0.0

    def test_verify_each_failure_propagates(self):
        from repro.ir.core import Operation
        from repro.ir.passes.pass_manager import Pass
        from repro.ir.verifier import VerificationError

        class Corrupter(Pass):
            name = "corrupter"

            def run(self, module):
                module.append(Operation("bogus.op"))
                return True

        module, _ = build_module()
        fn, b = make_func(module, results=())
        func.ret(b)
        pm = PassManager([Corrupter()], verify_each=True)
        with pytest.raises(VerificationError):
            pm.run(module)

    def test_pass_exception_propagates_without_sandbox(self):
        from repro.ir.passes.pass_manager import Pass

        class Boom(Pass):
            name = "boom"

            def run(self, module):
                raise RuntimeError("kaboom")

        module, _ = build_module()
        fn, b = make_func(module, results=())
        func.ret(b)
        with pytest.raises(RuntimeError, match="kaboom"):
            PassManager([Boom()]).run(module)


class TestSandboxedPassManager:
    """The resilience-layer sandbox: quarantine + rollback + reproducer."""

    def _make_module(self):
        module, _ = build_module()
        fn, b = make_func(module)
        c1 = b.constant(1.0, f64)
        v = arith.mulf(b, fn.args[0], c1)   # foldable work for the passes
        func.ret(b, [arith.addf(b, v, v)])
        return module

    def test_faulty_pass_quarantined_and_module_intact(self, tmp_path):
        from repro.ir import print_module, verify_module
        from repro.resilience import (FaultInjector, FaultPlan,
                                      SandboxedPassManager)

        module = self._make_module()
        pm = SandboxedPassManager([Canonicalize(), CSE(), DCE()],
                                  reproducer_dir=tmp_path)
        FaultInjector(FaultPlan(fail_pass="cse")).wrap_pipeline(pm)
        pm.run(module, fixed_point=True)
        assert pm.quarantined == {"cse"}
        verify_module(module)
        # the surviving passes still did their work
        assert "arith.mulf" not in print_module(module)

    def test_quarantined_pass_skipped_in_later_rounds(self, tmp_path):
        from repro.resilience import (FaultInjector, FaultPlan,
                                      SandboxedPassManager)

        module = self._make_module()
        pm = SandboxedPassManager([Canonicalize(), CSE(), DCE()],
                                  reproducer_dir=tmp_path,
                                  max_iterations=8)
        FaultInjector(FaultPlan(fail_pass="cse")).wrap_pipeline(pm)
        pm.run(module, fixed_point=True)
        assert pm.statistics["cse"].runs == 1   # never re-entered

    def test_reproducer_written_and_loadable(self, tmp_path):
        from repro.ir import verify_module
        from repro.resilience import (FaultInjector, FaultPlan,
                                      SandboxedPassManager,
                                      load_reproducer)

        module = self._make_module()
        pm = SandboxedPassManager([Canonicalize(), CSE()],
                                  reproducer_dir=tmp_path)
        FaultInjector(FaultPlan(fail_pass="canonicalize")).wrap_pipeline(pm)
        pm.run(module)
        [bundle] = pm.reproducers
        reloaded, meta = load_reproducer(bundle)
        verify_module(reloaded)
        assert meta["pass"] == "canonicalize"
        assert meta["pipeline_position"] == 0

    def test_verify_failure_rolls_back(self, tmp_path):
        from repro.ir import print_module, verify_module
        from repro.resilience import (FaultInjector, FaultPlan,
                                      SandboxedPassManager)

        module = self._make_module()
        before = print_module(module)
        pm = SandboxedPassManager([Canonicalize()],
                                  reproducer_dir=tmp_path)
        FaultInjector(FaultPlan(
            corrupt_after_pass="canonicalize")).wrap_pipeline(pm)
        pm.run(module)
        verify_module(module)
        assert print_module(module) == before   # rolled back exactly
        assert [d.stage for d in pm.diagnostics] == ["verify"]
