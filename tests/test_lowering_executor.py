"""Lowering and executor tests: IR -> Python kernels -> simulations."""

import numpy as np
import pytest

from repro.codegen import generate_baseline, generate_limpet_mlir
from repro.frontend import load_model
from repro.ir import IRBuilder, build_module
from repro.ir.dialects import arith, func, memref, scf, vector
from repro.ir.types import f64, index, memref_of
from repro.runtime import (KernelRunner, Stimulus, compare_trajectories,
                           lower_function)
from repro.runtime.lowering import LoweringError


class TestLoweringBasics:
    def _make_sum_function(self, cell_loop: bool):
        """sum += buf[i] over an scf.for with iter_args."""
        module, _ = build_module()
        fn = func.func(module, "total", [memref_of(f64), index], [f64],
                       ["buf", "n"])
        b = IRBuilder(fn.entry)
        zero = b.constant(0, index)
        one = b.constant(1, index)
        init = b.constant(0.0, f64)
        loop = scf.for_op(b, zero, fn.args[1], one, [init])
        if cell_loop:
            loop.op.attributes["cell_loop"] = True
        with b.at_end_of(loop.body):
            value = memref.load(b, fn.args[0], [loop.induction_var])
            scf.yield_op(b, [arith.addf(b, loop.iter_args[0], value)])
        func.ret(b, [loop.results[0]])
        return module

    def test_scalar_loop_with_iter_args(self):
        module = self._make_sum_function(cell_loop=False)
        kernel = lower_function(module, "total")
        data = np.arange(5.0)
        assert kernel.fn(data, 5) == 10.0

    def test_source_is_kept(self):
        module = self._make_sum_function(cell_loop=False)
        kernel = lower_function(module, "total")
        assert "def total(" in kernel.source
        assert "for " in kernel.source

    def test_vector_cell_loop_with_iter_args_rejected(self):
        module = self._make_sum_function(cell_loop=True)
        with pytest.raises(LoweringError, match="iter_args"):
            lower_function(module, "total", mode="vector")

    def test_missing_function(self):
        module, _ = build_module()
        with pytest.raises(LoweringError, match="no function"):
            lower_function(module, "ghost")

    def test_vector_flattened_store(self):
        """A width-4 vectorized doubling kernel over 8 cells."""
        module, _ = build_module()
        fn = func.func(module, "double", [index, index, memref_of(f64)],
                       [], ["start", "end", "buf"])
        b = IRBuilder(fn.entry)
        four = b.constant(4, index)
        loop = scf.for_op(b, fn.args[0], fn.args[1], four, iv_hint="i")
        loop.op.attributes["cell_loop"] = True
        loop.op.attributes["vector_width"] = 4
        with b.at_end_of(loop.body):
            vec = vector.load(b, fn.args[2], [loop.induction_var], 4)
            two = vector.broadcast(b, b.constant(2.0, f64), 4)
            vector.store(b, arith.mulf(b, vec, two), fn.args[2],
                         [loop.induction_var])
            scf.yield_op(b)
        func.ret(b)
        kernel = lower_function(module, "double")
        assert kernel.mode == "vector" and kernel.width == 4
        data = np.arange(8.0)
        kernel.fn(0, 8, data)
        np.testing.assert_array_equal(data, np.arange(8.0) * 2)

    def test_gather_scatter_lowering(self):
        module, _ = build_module()
        fn = func.func(module, "rev", [index, index, memref_of(f64),
                                       memref_of(f64)],
                       [], ["start", "end", "src", "dst"])
        b = IRBuilder(fn.entry)
        w = b.constant(4, index)
        loop = scf.for_op(b, fn.args[0], fn.args[1], w, iv_hint="i")
        loop.op.attributes["cell_loop"] = True
        loop.op.attributes["vector_width"] = 4
        with b.at_end_of(loop.body):
            lanes = vector.step(b, 4)
            base = vector.broadcast(b, loop.induction_var, 4)
            idx = arith.addi(b, base, lanes)
            two = vector.broadcast(b, b.constant(2, index), 4)
            strided = arith.muli(b, idx, two)
            gathered = vector.gather(b, fn.args[2], strided)
            vector.scatter(b, gathered, fn.args[3], idx)
            scf.yield_op(b)
        func.ret(b)
        kernel = lower_function(module, "rev")
        src = np.arange(16.0)
        dst = np.zeros(8)
        kernel.fn(0, 8, src, dst)
        np.testing.assert_array_equal(dst, src[::2])

    def test_scalar_if_lowering(self):
        module, _ = build_module()
        fn = func.func(module, "absval", [f64], [f64], ["x"])
        b = IRBuilder(fn.entry)
        zero = b.constant(0.0, f64)
        cond = arith.cmpf(b, "olt", fn.args[0], zero)
        branch = scf.if_op(b, cond, [f64])
        with b.at_end_of(branch.then_block):
            scf.yield_op(b, [arith.negf(b, fn.args[0])])
        with b.at_end_of(branch.else_block):
            scf.yield_op(b, [fn.args[0]])
        func.ret(b, [branch.results[0]])
        kernel = lower_function(module, "absval")
        assert kernel.fn(-3.0) == 3.0
        assert kernel.fn(4.0) == 4.0

    def test_guarded_scalar_math(self):
        """Scalar engines must produce IEEE results, not exceptions."""
        from repro.runtime.lowering import (_g_div, _g_exp, _g_log,
                                            _g_pow, _g_sqrt)
        assert _g_exp(10000.0) == float("inf")
        assert _g_log(0.0) == float("-inf")
        assert np.isnan(_g_log(-1.0))
        assert np.isnan(_g_sqrt(-1.0))
        assert _g_div(1.0, 0.0) == float("inf")
        assert np.isnan(_g_div(0.0, 0.0))
        assert _g_pow(-1.0, 0.5) != _g_pow(-1.0, 0.5)  # nan


class TestExecutor:
    def test_state_snapshot_keys(self, gate_model):
        runner = KernelRunner(generate_baseline(gate_model))
        state = runner.make_state(4)
        snap = state.snapshot()
        assert set(snap) == {"m", "h", "c", "Vm", "Iion"}

    def test_stimulus_timing(self):
        stim = Stimulus(amplitude=-30.0, duration=2.0, period=100.0)
        assert stim.current(0.0) == -30.0
        assert stim.current(1.99) == -30.0
        assert stim.current(2.0) == 0.0
        assert stim.current(100.5) == -30.0
        assert stim.current(99.0) == 0.0

    def test_stimulus_start_offset(self):
        stim = Stimulus(amplitude=-30.0, duration=1.0, period=50.0,
                        start=10.0)
        assert stim.current(5.0) == 0.0
        assert stim.current(10.5) == -30.0

    def test_solver_stage_updates_vm(self, gate_model):
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        state = runner.make_state(8)
        vm_before = state.externals["Vm"].copy()
        runner.compute_step(state, 0.01)
        runner.solver_step(state, 0.01, None)
        assert not np.array_equal(vm_before, state.externals["Vm"])

    def test_no_iion_output_leaves_vm_alone(self):
        model = load_model("""
            Vm; .external();
            diff_x = -x + 0.0*Vm; x_init = 1;
        """, "NoOut")
        runner = KernelRunner(generate_baseline(model))
        state = runner.make_state(4)
        vm_before = state.externals["Vm"].copy()
        runner.run(state, 10, 0.01)
        np.testing.assert_array_equal(vm_before, state.externals["Vm"])

    def test_run_result_metadata(self, gate_model):
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        result = runner.simulate(16, 25, dt=0.02, record_vm=True)
        assert result.n_steps == 25 and result.dt == 0.02
        assert result.vm_trace.shape == (25,)
        assert result.seconds_per_step > 0
        assert result.state.time == pytest.approx(0.5)
        assert result.state.steps_done == 25

    def test_padding_lanes_do_not_corrupt_results(self, gate_model):
        """n_cells not divisible by the width must work and agree."""
        base = KernelRunner(generate_baseline(gate_model))
        vec = KernelRunner(generate_limpet_mlir(gate_model, 8))
        r1 = base.simulate(13, 60, 0.01, perturbation=0.01)
        r2 = vec.simulate(13, 60, 0.01, perturbation=0.01)
        assert r2.state.n_alloc == 16
        assert compare_trajectories(r1.state, r2.state)

    def test_state_matrix_round_trip(self, gate_model):
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        state = runner.make_state(10, perturbation=0.02)
        matrix = state.state_matrix()
        state.set_state(matrix * 2.0)
        np.testing.assert_allclose(state.state_matrix(), matrix * 2.0)

    def test_deterministic_across_runs(self, gate_model):
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        r1 = runner.simulate(8, 40, perturbation=0.01)
        r2 = runner.simulate(8, 40, perturbation=0.01)
        assert compare_trajectories(r1.state, r2.state, rtol=0, atol=0)

    def test_compare_trajectories_detects_difference(self, gate_model):
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        r1 = runner.simulate(8, 10)
        r2 = runner.simulate(8, 11)
        assert not compare_trajectories(r1.state, r2.state)


class TestKernelSourceQuality:
    def test_baseline_source_is_pure_scalar(self, gate_model):
        runner = KernelRunner(generate_baseline(gate_model))
        assert "np." not in runner.kernel.source.replace("np.arange", "")
        assert "for " in runner.kernel.source

    def test_vector_source_has_no_python_cell_loop(self, gate_model):
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        # markov/BE inner loops would use 'for'; this model has none
        assert "for " not in runner.kernel.source
        assert "np.arange" in runner.kernel.source
