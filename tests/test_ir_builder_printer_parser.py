"""Builder, printer and parser tests (round-trip included)."""

import pytest

from repro.ir import (IRBuilder, build_module, parse_module, print_module,
                      print_op, verify_module)
from repro.ir.core import Block, IRError, Operation
from repro.ir.dialects import arith, cf, func, math, memref, omp, scf, vector
from repro.ir.parser import ParseError
from repro.ir.types import f64, i1, index, memref_of, vector_of


class TestBuilder:
    def test_requires_insertion_point(self):
        builder = IRBuilder()
        with pytest.raises(IRError):
            builder.create("arith.constant", [], [f64], {"value": 1.0})

    def test_constant_interning_per_block(self):
        block = Block()
        builder = IRBuilder(block)
        c1 = builder.constant(2.0, f64)
        c2 = builder.constant(2.0, f64)
        assert c1 is c2
        assert len(block.ops) == 1

    def test_distinct_constants_not_merged(self):
        builder = IRBuilder(Block())
        assert builder.constant(2.0, f64) is not builder.constant(3.0, f64)

    def test_same_value_different_type_not_merged(self):
        builder = IRBuilder(Block())
        assert builder.constant(2, index) is not builder.constant(2.0, f64)

    def test_insert_before_anchor(self):
        block = Block()
        builder = IRBuilder(block)
        ret = builder.create("func.return", [], [])
        builder.set_insertion_point_before(ret)
        const = builder.create("arith.constant", [], [f64], {"value": 1.0})
        assert block.ops == [const, ret]

    def test_at_end_of_restores_position(self):
        block_a, block_b = Block(), Block()
        builder = IRBuilder(block_a)
        with builder.at_end_of(block_b):
            builder.create("arith.constant", [], [f64], {"value": 1.0})
        builder.create("arith.constant", [], [f64], {"value": 2.0})
        assert len(block_a.ops) == 1 and len(block_b.ops) == 1


def build_sample_module():
    """A module touching most syntax: func, loop, if, call, memrefs."""
    module, _ = build_module("sample")
    mem_ty = memref_of(f64)
    func.func(module, "helper", [f64], [f64], declaration=True)
    fn = func.func(module, "main", [mem_ty, index], [f64], ["buf", "n"])
    b = IRBuilder(fn.entry)
    buf, n = fn.args
    zero = b.constant(0, index)
    one = b.constant(1, index)
    init = b.constant(0.0, f64)
    loop = scf.for_op(b, zero, n, one, [init], iv_hint="i")
    with b.at_end_of(loop.body):
        value = memref.load(b, buf, [loop.induction_var])
        cond = arith.cmpf(b, "olt", value, b.constant(0.0, f64))
        branch = scf.if_op(b, cond, [f64])
        with b.at_end_of(branch.then_block):
            scf.yield_op(b, [arith.negf(b, value)])
        with b.at_end_of(branch.else_block):
            call = func.call(b, "helper", [value], [f64])
            scf.yield_op(b, [call.results[0]])
        total = arith.addf(b, loop.iter_args[0], branch.results[0])
        scf.yield_op(b, [total])
    func.ret(b, [loop.results[0]])
    return module


class TestPrinter:
    def test_generic_form_mentions_ops(self):
        text = print_module(build_sample_module())
        for fragment in ("module @sample", "func.func @main",
                         "func.func private @helper", "scf.for(",
                         "scf.if(", "memref.load(", "func.return("):
            assert fragment in text, fragment

    def test_pretty_form_sugar(self):
        text = print_module(build_sample_module(), pretty=True)
        assert "scf.for %i = " in text
        assert "iter_args(" in text
        assert " = memref.load %buf[%i] : memref<?xf64>" in text
        assert "scf.if " in text and "} else {" in text

    def test_pretty_constant_vector(self):
        module, b = build_module()
        fn = func.func(module, "f", [], [])
        fb = IRBuilder(fn.entry)
        c = fb.constant(2.0, f64)
        vector.broadcast(fb, c, 8)
        func.ret(fb)
        text = print_module(module, pretty=True)
        assert "vector.broadcast" in text

    def test_print_single_op(self):
        block = Block([f64, f64], ["a", "b"])
        op = Operation("arith.addf", list(block.args), [f64])
        assert "arith.addf(%a, %b)" in print_op(op)

    def test_name_hints_deduplicated(self):
        block = Block([f64, f64], ["x", "x"])
        op = Operation("arith.addf", list(block.args), [f64])
        text = print_op(op)
        assert "%x" in text and "%x_1" in text


class TestParserRoundTrip:
    def test_sample_module_round_trips(self):
        module = build_sample_module()
        text = print_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text

    def test_kernel_module_round_trips(self, luo_rudy):
        from repro.codegen import generate_limpet_mlir
        kernel = generate_limpet_mlir(luo_rudy, width=4)
        text = print_module(kernel.module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert print_module(reparsed) == text

    def test_attributes_round_trip(self):
        module, _ = build_module("attrs")
        fn = func.func(module, "f", [f64], [])
        b = IRBuilder(fn.entry)
        b.create("arith.cmpf", [fn.args[0], fn.args[0]], [i1],
                 {"predicate": "olt"})
        func.ret(b)
        reparsed = parse_module(print_module(module))
        op = reparsed.lookup_func("f").regions[0].entry.ops[0]
        assert op.attributes["predicate"] == "olt"

    def test_block_reference_attribute_round_trips(self):
        module, _ = build_module("branches")
        fn = func.func(module, "f", [i1], [])
        b = IRBuilder(fn.entry)
        exit_block = Block()
        fn.op.regions[0].add_block(exit_block)
        cf.cond_br(b, fn.args[0], exit_block, exit_block)
        with b.at_end_of(exit_block):
            func.ret(b)
        reparsed = parse_module(print_module(module))
        fn2 = reparsed.lookup_func("f")
        br = fn2.regions[0].blocks[0].ops[-1]
        assert br.attributes["true_dest"] is fn2.regions[0].blocks[1]


class TestParserErrors:
    def test_missing_module_header(self):
        with pytest.raises(ParseError):
            parse_module("func.func @f() -> () {\n}\n")

    def test_undefined_value_use(self):
        text = ("module @m {\n"
                "  func.func @f() -> () {\n"
                "    %0 = arith.negf(%ghost) : (f64) -> (f64)\n"
                "    func.return() : () -> ()\n"
                "  }\n"
                "}\n")
        with pytest.raises(ParseError):
            parse_module(text)

    def test_malformed_op_line(self):
        text = ("module @m {\n"
                "  func.func @f() -> () {\n"
                "    this is not an op\n"
                "  }\n"
                "}\n")
        with pytest.raises(ParseError):
            parse_module(text)

    def test_comments_and_blank_lines_skipped(self):
        text = ("module @m {\n\n"
                "  // a comment\n"
                "  func.func @f() -> () {\n"
                "    func.return() : () -> ()\n"
                "  }\n"
                "}\n")
        module = parse_module(text)
        assert module.lookup_func("f") is not None


class TestDialectBuilders:
    def test_vector_ops_types(self):
        module, _ = build_module()
        fn = func.func(module, "f", [memref_of(f64), index], [])
        b = IRBuilder(fn.entry)
        buf, i = fn.args
        vec = vector.load(b, buf, [i], 8)
        assert vec.type == vector_of(8)
        scalar = vector.extract(b, vec, 3)
        assert scalar.type is f64
        back = vector.insert(b, scalar, vec, 0)
        assert back.type == vector_of(8)
        lanes = vector.step(b, 8)
        assert lanes.type == vector_of(8, index)
        func.ret(b)
        verify_module(module)

    def test_gather_requires_passthru_with_mask(self):
        module, _ = build_module()
        fn = func.func(module, "f", [memref_of(f64)], [])
        b = IRBuilder(fn.entry)
        lanes = vector.step(b, 4)
        mask = vector.broadcast(b, b.constant(True, i1), 4)
        with pytest.raises(IRError):
            vector.gather(b, fn.args[0], lanes, mask=mask)

    def test_mismatched_binary_types_rejected(self):
        module, _ = build_module()
        fn = func.func(module, "f", [f64, index], [])
        b = IRBuilder(fn.entry)
        with pytest.raises(IRError):
            arith.addf(b, fn.args[0], fn.args[1])

    def test_omp_parallel_structure(self):
        module, _ = build_module()
        fn = func.func(module, "f", [], [])
        b = IRBuilder(fn.entry)
        par = omp.parallel(b)
        assert par.body.terminator.name == "omp.terminator"
        assert par.schedule == "static"
        func.ret(b)
        verify_module(module)

    def test_math_builders_preserve_type(self):
        module, _ = build_module()
        fn = func.func(module, "f", [f64], [])
        b = IRBuilder(fn.entry)
        vec = vector.broadcast(b, fn.args[0], 4)
        assert math.exp(b, vec).type == vector_of(4)
        assert math.powf(b, vec, vec).type == vector_of(4)
        func.ret(b)
