"""GPU (SIMT) backend tests — the §7 heterogeneous extension."""

import numpy as np
import pytest

from repro.codegen import (UnsupportedModelError, generate_baseline,
                           generate_gpu, generate_limpet_mlir)
from repro.frontend import load_model
from repro.ir import verify_module
from repro.ir.passes import default_pipeline
from repro.machine import (AVX512, CostModel, GPUCostModel, V100,
                           profile_kernel)
from repro.models import load_model as load_reg
from repro.runtime import KernelRunner, Stimulus, compare_trajectories


def profiled_gpu(model):
    kernel = generate_gpu(model)
    default_pipeline(verify_each=False).run(kernel.module, fixed_point=True)
    return profile_kernel(kernel.module, kernel.spec.function_name)


class TestGPUCodegen:
    def test_kernel_verifies(self, gate_model):
        verify_module(generate_gpu(gate_model).module)

    def test_launch_structure(self, gate_model):
        kernel = generate_gpu(gate_model)
        names = [op.name for op in kernel.module.walk()]
        assert "gpu.launch" in names
        assert "gpu.global_id" in names and "gpu.grid_dim" in names
        assert "gpu.terminator" in names

    def test_soa_layout(self, gate_model):
        assert str(generate_gpu(gate_model).layout) == "soa"

    def test_cell_loop_marked_simt(self, gate_model):
        kernel = generate_gpu(gate_model)
        loop = next(op for op in kernel.module.walk()
                    if op.name == "scf.for"
                    and op.attributes.get("cell_loop"))
        assert loop.attributes.get("simt")

    def test_foreign_models_rejected(self):
        with pytest.raises(UnsupportedModelError, match="device"):
            generate_gpu(load_reg("Campbell"))

    def test_profile_flags_simt(self, gate_model):
        assert profiled_gpu(gate_model).simt


class TestGPUExecution:
    @pytest.mark.parametrize("name", ["HodgkinHuxley", "LuoRudy91",
                                      "MitchellSchaeffer"])
    def test_equivalent_to_baseline(self, name):
        model = load_reg(name)
        gpu_runner = KernelRunner(generate_gpu(model))
        cpu_runner = KernelRunner(generate_baseline(model))
        stim = Stimulus(amplitude=-20.0 if
                        abs(model.external_init.get("Vm", 0)) > 5
                        else -0.3, duration=1.0, period=200.0)
        r1 = gpu_runner.simulate(24, 150, 0.01, stim, perturbation=0.01)
        r2 = cpu_runner.simulate(24, 150, 0.01, stim, perturbation=0.01)
        assert compare_trajectories(r1.state, r2.state), name

    def test_simt_engine_flattens(self, gate_model):
        runner = KernelRunner(generate_gpu(gate_model))
        assert runner.kernel.mode == "simt"
        # the cell loop is flattened: no per-cell Python loop remains
        assert "np.arange" in runner.kernel.source

    def test_spline_mode_combines(self, gate_model):
        kernel = generate_gpu(gate_model)
        runner = KernelRunner(kernel)
        result = runner.simulate(16, 50, 0.01)
        assert np.isfinite(result.state.external("Vm")).all()


class TestGPUCostModel:
    def test_launch_overhead_floor(self, gate_model):
        cost = GPUCostModel()
        point = cost.step_time(profiled_gpu(gate_model), n_cells=16)
        assert point.seconds >= V100.launch_overhead_us * 1e-6

    def test_occupancy_penalty_below_saturation(self, luo_rudy):
        cost = GPUCostModel()
        profile = profiled_gpu(luo_rudy)
        t_small = cost.step_time(profile, 1024).seconds
        t_large = cost.step_time(profile, 1_048_576).seconds
        # 1024x more cells must cost far less than 1024x more time
        assert t_large < t_small * 300

    def test_gpu_wins_at_scale(self):
        """At mesh scale (10^6 cells — 'a human heart contains about
        2 billion muscle cells', §2.1) the device beats 32 CPU cores on
        every class."""
        cpu, gpu = CostModel(), GPUCostModel()
        for name in ("Plonsey", "Courtemanche", "IyerMazhariWinslow"):
            model = load_reg(name)
            kv = generate_limpet_mlir(model, 8)
            default_pipeline(verify_each=False).run(kv.module,
                                                    fixed_point=True)
            pv = profile_kernel(kv.module, kv.spec.function_name)
            pg = profiled_gpu(model)
            t_cpu = cpu.total_time(pv, AVX512, 32, 1_000_000, 100)
            t_gpu = gpu.total_time(pg, 1_000_000, 100)
            assert t_gpu < t_cpu, name

    def test_cpu_wins_small_meshes_on_medium_models(self):
        """At the paper's 8192-cell bench size, 32 Cascade Lake cores
        beat an under-occupied V100 on medium models — the rationale
        for StarPU-style heterogeneous scheduling (§7)."""
        cpu, gpu = CostModel(), GPUCostModel()
        model = load_reg("Courtemanche")
        kv = generate_limpet_mlir(model, 8)
        default_pipeline(verify_each=False).run(kv.module,
                                                fixed_point=True)
        pv = profile_kernel(kv.module, kv.spec.function_name)
        t_cpu = cpu.total_time(pv, AVX512, 32, 8192, 1000)
        t_gpu = gpu.total_time(profiled_gpu(model), 8192, 1000)
        assert t_cpu < t_gpu
