"""PR5 observability: trace spans, pass instrumentation, metrics,
per-op kernel profiler."""

import json
import threading

import numpy as np
import pytest

from repro.codegen import generate_limpet_mlir
from repro.ir.passes import default_pipeline
from repro.ir.passes.pass_manager import PassInstrumentation, PassManager
from repro.models import load_model
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.passes import (IRSnapshotInstrumentation,
                              OpCountInstrumentation,
                              PrintIRInstrumentation, count_ops_by_dialect,
                              op_count_delta)
from repro.obs.profiler import (KernelProfileReport, calibrated_cost_model,
                                classify_op, measured_op_costs)
from repro.obs.trace import Tracer
from repro.runtime import KernelRunner, ShardedRunner


def make_runner(name, **kwargs):
    return KernelRunner(generate_limpet_mlir(load_model(name)), **kwargs)


@pytest.fixture
def no_tracer():
    """Run with tracing guaranteed off, restoring any active tracer."""
    previous = obs_trace.active_tracer()
    obs_trace.deactivate(None)
    yield
    obs_trace.deactivate(previous)


# ---------------------------------------------------------------------------
# Trace spans: nesting + Chrome export round-trip
# ---------------------------------------------------------------------------


class TestTracer:
    def test_span_nesting(self):
        tracer = Tracer()
        with tracer.span("outer", model="X"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner2"]
        assert outer.duration >= outer.children[0].duration

    def test_instant_attaches_to_current_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("marker", why="test")
        (outer,) = tracer.roots
        (mark,) = outer.children
        assert mark.kind == "instant" and mark.args["why"] == "test"

    def test_chrome_export_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("compile", model="OHara"):
            with tracer.span("passes"):
                tracer.instant("note")
        path = tracer.write(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert {e["name"] for e in events} == {"compile", "passes", "note"}
        for event in events:
            assert set(("name", "ph", "ts", "pid", "tid")) <= set(event)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"
        assert payload["otherData"]["trace_id"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2 and all("dur" in e for e in complete)
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "t"
        # child events sit inside the parent's [ts, ts+dur] window
        by_name = {e["name"]: e for e in events}
        outer, inner = by_name["compile"], by_name["passes"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1

    def test_summary_tree_renders_nesting_and_args(self):
        tracer = Tracer()
        with tracer.span("outer", model="X"):
            with tracer.span("inner", op_delta={"arith": -3}):
                pass
        text = tracer.summary_tree()
        assert "outer" in text and "  inner" in text
        assert "model=X" in text and "Δ[arith-3]" in text

    def test_module_level_span_noop_when_inactive(self, no_tracer):
        span = obs_trace.span("anything", key=1)
        assert span is obs_trace._NULL_SPAN
        with span as s:
            s.annotate(more=2)       # must be a silent no-op
        obs_trace.instant("nothing")
        obs_trace.annotate(k=3)

    def test_activate_deactivate_restores_previous(self, no_tracer):
        first, second = Tracer(), Tracer()
        prev0 = obs_trace.activate(first)
        assert obs_trace.active_tracer() is first
        prev1 = obs_trace.activate(second)
        assert prev1 is first
        with obs_trace.span("on-second"):
            pass
        obs_trace.deactivate(prev1)
        assert obs_trace.active_tracer() is first
        obs_trace.deactivate(prev0)
        assert obs_trace.active_tracer() is None
        assert [r.name for r in second.roots] == ["on-second"]
        assert first.roots == []

    def test_threaded_spans_merge_into_roots(self):
        tracer = Tracer()

        def work(i):
            with tracer.span(f"thread{i}"):
                pass

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(r.name for r in tracer.roots) == \
            [f"thread{i}" for i in range(4)]


# ---------------------------------------------------------------------------
# Pass instrumentation: op-count deltas on a canned pipeline
# ---------------------------------------------------------------------------


class TestPassInstrumentation:
    def test_op_count_delta_helper(self):
        before = {"arith": 10, "vector": 4}
        after = {"arith": 7, "vector": 4, "scf": 1}
        assert op_count_delta(before, after) == {"arith": -3, "scf": 1}

    def test_op_counts_on_default_pipeline(self):
        module = generate_limpet_mlir(load_model("Plonsey")).module
        baseline = count_ops_by_dialect(module)
        assert baseline.get("arith", 0) > 0
        instr = OpCountInstrumentation()
        pipeline = default_pipeline(verify_each=False)
        assert pipeline.add_instrumentation(instr) is pipeline
        pipeline.run(module, fixed_point=True)
        assert instr.records, "no per-pass records collected"
        names = {rec.pass_name for rec in instr.records}
        assert {"canonicalize", "cse", "dce"} <= names
        # optimization shrinks the module overall
        net = sum(rec.total_delta for rec in instr.records)
        assert net < 0
        # the records chain: each pass's 'after' is the next's 'before'
        for prev, cur in zip(instr.records, instr.records[1:]):
            assert prev.after == cur.before
        # and an unchanged pass reports an empty delta
        unchanged = [r for r in instr.records if not r.changed]
        assert unchanged and all(r.delta == {} for r in unchanged)
        assert "canonicalize" in instr.summary()

    def test_instrumented_run_matches_uninstrumented(self):
        from repro.ir.printer import print_module
        plain = generate_limpet_mlir(load_model("HodgkinHuxley")).module
        instrumented = generate_limpet_mlir(
            load_model("HodgkinHuxley")).module
        default_pipeline(verify_each=False).run(plain, fixed_point=True)
        pipeline = default_pipeline(verify_each=False)
        pipeline.add_instrumentation(OpCountInstrumentation())
        pipeline.add_instrumentation(IRSnapshotInstrumentation())
        pipeline.run(instrumented, fixed_point=True)
        assert print_module(plain) == print_module(instrumented)

    def test_print_ir_after_change_only(self):
        module = generate_limpet_mlir(load_model("Plonsey")).module
        instr = PrintIRInstrumentation(after_all=False)
        pipeline = default_pipeline(verify_each=False)
        pipeline.add_instrumentation(instr)
        pipeline.run(module, fixed_point=True)
        assert instr.dumps
        assert all("IR dump after" in text for _, text in instr.dumps)
        # the fixed-point tail (no-change iteration) must not dump
        assert len(instr.dumps) < 2 * len(pipeline.passes)

    def test_error_hook_fires(self):
        class Boom(Exception):
            pass

        class FailingPass:
            name = "boom"

            def run(self, module):
                raise Boom("no")

        class Recorder(PassInstrumentation):
            def __init__(self):
                self.errors = []

            def on_pass_error(self, pass_, module, error, seconds):
                self.errors.append((pass_.name, type(error).__name__))

        module = generate_limpet_mlir(load_model("Plonsey")).module
        pm = PassManager([FailingPass()])
        rec = Recorder()
        pm.add_instrumentation(rec)
        with pytest.raises(Boom):
            pm.run(module)
        assert rec.errors == [("boom", "Boom")]


# ---------------------------------------------------------------------------
# Metrics registry: semantics + thread safety under ShardedRunner
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("widgets_total", "widgets made")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("level")
        g.set(2.5)
        g.inc(0.5)
        assert g.value == 3.0
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = reg.snapshot()
        assert snap["widgets_total"]["value"] == 5
        assert snap["lat_seconds"]["count"] == 3
        assert snap["lat_seconds"]["buckets"] == {"0.1": 1, "1": 2}
        assert snap["lat_seconds"]["min"] == 0.05
        assert snap["lat_seconds"]["max"] == 5.0

    def test_get_or_create_and_kind_mismatch(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", "cache hits").inc(7)
        reg.gauge("ratio").set(1.25)
        reg.histogram("secs", buckets=(0.1,)).observe(0.05)
        text = reg.to_prometheus()
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert "hits_total 7" in text
        assert "ratio 1.25" in text
        assert 'secs_bucket{le="0.1"} 1' in text
        assert 'secs_bucket{le="+Inf"} 1' in text
        assert "secs_count 1" in text
        assert text.endswith("\n")

    def test_counter_thread_safety(self):
        reg = MetricsRegistry()
        c = reg.counter("contended_total")

        def bump():
            for _ in range(5000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40000

    def test_sharded_runner_populates_shard_gauges(self):
        obs_metrics.reset()
        generated = generate_limpet_mlir(load_model("Plonsey"))
        with ShardedRunner(generated, n_threads=2) as runner:
            state = runner.make_state(64)
            runner.run(state, 5, 0.01)
        registry = obs_metrics.default_registry()
        assert registry.get("shard_count").value == 2
        assert registry.get("shard_imbalance_ratio").value >= 1.0

    def test_kernel_cache_metrics(self, tmp_path):
        from repro.runtime import KernelCache
        obs_metrics.reset()
        model = load_model("Plonsey")
        cache = KernelCache(tmp_path / "kc")
        KernelRunner(generate_limpet_mlir(model), cache=cache)
        second = KernelRunner(generate_limpet_mlir(model), cache=cache)
        assert second.cache_hit
        registry = obs_metrics.default_registry()
        assert registry.get("kernel_cache_misses_total").value == 1
        assert registry.get("kernel_cache_hits_total").value == 1


# ---------------------------------------------------------------------------
# Satellite: atomic stats.json writes
# ---------------------------------------------------------------------------


class TestAtomicStats:
    def test_bump_is_atomic_and_leaves_no_tmp(self, tmp_path):
        from repro.runtime import KernelCache
        cache = KernelCache(tmp_path / "kc")
        for _ in range(3):
            cache._bump("misses")
        stats = cache.persistent_stats()
        assert stats.misses == 3
        leftovers = [p for p in (tmp_path / "kc").iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []

    def test_concurrent_bumps_keep_stats_valid_json(self, tmp_path):
        from repro.runtime import KernelCache
        cache = KernelCache(tmp_path / "kc")

        def bump():
            for _ in range(25):
                cache._bump("hits")

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # last-writer-wins may drop counts, but the file always parses
        stats = cache.persistent_stats()
        assert 1 <= stats.hits <= 100

    def test_tmp_names_invisible_to_eviction_glob(self, tmp_path):
        from repro.runtime import KernelCache
        cache = KernelCache(tmp_path / "kc", max_entries=1)
        cache._bump("hits")
        cache.store("a" * 64, "def k(): pass", "vector", 8, [], "k",
                    fused=False, arena=False)
        assert cache.persistent_stats().hits == 1


# ---------------------------------------------------------------------------
# Per-op kernel profiler: differential + attribution
# ---------------------------------------------------------------------------


class TestKernelProfiler:
    def test_classify_op(self):
        assert classify_op("arith.mulf") == "simple"
        assert classify_op("arith.divf") == "div"
        assert classify_op("math.exp") == "exp"
        assert classify_op("math.powf") == "pow"
        assert classify_op("vector.load") == "move"
        assert classify_op("vector.gather") == "gather"
        assert classify_op("func.call", "LUT_interpRow_x") == "lut"
        assert classify_op("func.call", "foreign_f") == "other"

    def test_unprofiled_kernel_refuses_report(self):
        runner = make_runner("Plonsey")
        with pytest.raises(ValueError):
            runner.profile_report()

    def test_profiled_run_bitwise_identical(self):
        profiled = make_runner("LuoRudy91", profile=True)
        plain = make_runner("LuoRudy91")
        res_p = profiled.run(profiled.make_state(48), 40, 0.01)
        res_u = plain.run(plain.make_state(48), 40, 0.01)
        snap_p, snap_u = res_p.state.snapshot(), res_u.state.snapshot()
        assert set(snap_p) == set(snap_u)
        for key in snap_p:
            assert np.array_equal(snap_p[key], snap_u[key]), key

    def test_profile_report_attributes_compute_time(self):
        profiled = make_runner("OHara", profile=True)
        plain = make_runner("OHara")
        plain.run(plain.make_state(1024), 5, 0.01)       # warm-up
        best_compute = float("inf")
        for _ in range(3):
            res = plain.run(plain.make_state(1024), 30, 0.01,
                            time_breakdown=True)
            best_compute = min(best_compute, res.compute_seconds)
        profiled.run(profiled.make_state(1024), 30, 0.01)
        report = profiled.profile_report(invocations=30)
        assert report.total_seconds > 0
        assert report.attributed_fraction(best_compute) >= 0.95
        # every counter slot has a provenance record, and the hot table
        # names IR ops
        assert len(report.entries) == \
            len(profiled.kernel.profile_counters)
        table = report.hot_table(5)
        assert "hot ops" in table and "OHara" in table
        assert any(e.op.startswith(("arith.", "vector.", "math.",
                                    "func.", "memref.", "scf."))
                   for e in report.entries)

    def test_profiler_source_attribution_present(self):
        profiled = make_runner("HodgkinHuxley", profile=True)
        profiled.run(profiled.make_state(32), 10, 0.01)
        report = profiled.profile_report()
        by_dialect = report.by_dialect()
        assert by_dialect and all(v >= 0 for v in by_dialect.values())
        data = report.as_dict()
        assert data["entries"] and "by_class" in data

    def test_measured_costs_feed_cost_model(self):
        profiled = make_runner("LuoRudy91", profile=True)
        profiled.run(profiled.make_state(128), 20, 0.01)
        report = profiled.profile_report(invocations=20)
        costs = measured_op_costs(report, n_cells=128)
        assert costs and all(ns > 0 for ns in costs.values())
        assert "simple" in costs
        model = calibrated_cost_model(report, n_cells=128)
        assert model.EL_SIMPLE_NS == pytest.approx(costs["simple"])
        # classes never measured keep the class-level default
        untouched = type(model).EL_POW_NS
        if "pow" not in costs:
            assert model.EL_POW_NS == untouched

    def test_profile_mode_bypasses_cache(self, tmp_path):
        from repro.runtime import KernelCache
        cache = KernelCache(tmp_path / "kc")
        runner = KernelRunner(generate_limpet_mlir(load_model("Plonsey")),
                              cache=cache, profile=True)
        assert runner.cache is None and not runner.cache_hit
        assert runner.kernel.profile_counters is not None


# ---------------------------------------------------------------------------
# End-to-end: tracing a compile+run captures the whole stage tree
# ---------------------------------------------------------------------------


class TestEndToEndTrace:
    def test_compile_and_run_span_tree(self, no_tracer):
        load_model.cache_clear()
        tracer = Tracer()
        previous = obs_trace.activate(tracer)
        try:
            model = load_model("Plonsey")
            runner = KernelRunner(generate_limpet_mlir(model))
            runner.run(runner.make_state(32), 10, 0.01)
        finally:
            obs_trace.deactivate(previous)
        names = {r.name for r in tracer.roots}
        assert {"parse", "frontend", "irgen", "passes", "verify",
                "lowering", "run"} <= names
        passes_root = next(r for r in tracer.roots if r.name == "passes")
        pass_spans = [c for c in passes_root.children
                      if c.name.startswith("pass:")]
        assert pass_spans, "no per-pass child spans"
        assert any("op_delta" in c.args for c in pass_spans)
        events = tracer.to_chrome()["traceEvents"]
        assert any(e.get("args", {}).get("op_delta") is not None
                   for e in events)

    def test_disabled_tracing_leaves_runner_untouched(self, no_tracer):
        runner = make_runner("Plonsey")
        assert runner.pipeline is None or \
            not getattr(runner.pipeline, "instrumentations", [])
        result = runner.run(runner.make_state(16), 5, 0.01)
        assert result.n_steps == 5
