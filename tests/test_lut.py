"""Lookup-table tests: tabulation, interpolation, RL columns (§3.4.2)."""

import math

import numpy as np
import pytest

from repro.frontend import load_model
from repro.runtime.lut_runtime import (LUTData, build_all_luts, build_lut,
                                       lut_interp_row, lut_interp_row_vec)

LUT_MODEL = """
Vm; .external(); .lookup(-10,10,0.5);
a = exp(Vm/10);
b = 1/(1+exp(-Vm/5));
diff_x = a*b - x; x_init = 0;
x; .method(fe);
"""


@pytest.fixture
def lut():
    model = load_model(LUT_MODEL, "LUT")
    return build_all_luts(model, dt=0.01)[0]


class TestBuild:
    def test_shape(self, lut):
        assert lut.n_rows == 41
        assert lut.n_cols == 2
        assert lut.column_names == ["a", "b"]

    def test_grid_endpoints(self, lut):
        assert lut.lo == -10.0
        assert lut.hi == 10.0

    def test_exact_at_grid_points(self, lut):
        row = lut_interp_row(lut, 0.0)
        assert row[0] == pytest.approx(1.0, abs=1e-15)
        assert row[1] == pytest.approx(0.5, abs=1e-15)

    def test_columns_can_reference_earlier_columns(self):
        model = load_model("""
            Vm; .external(); .lookup(0,1,0.25);
            a = exp(Vm);
            c = a / (1 + a);
            diff_x = c - x; x_init = 0;
        """, "Chain")
        table = build_all_luts(model)[0]
        assert table.column_names == ["a", "c"]
        row = lut_interp_row(table, 0.0)
        assert row[1] == pytest.approx(1 / 2, abs=1e-12)

    def test_memory_bytes(self, lut):
        assert lut.memory_bytes() == 41 * 2 * 8


class TestScalarInterp:
    def test_interpolation_error_bound(self, lut):
        """Linear interpolation error <= h^2/8 * max|f''| on exp."""
        h = 0.5
        bound = h ** 2 / 8 * math.exp(1.0) / 100  # f'' of exp(v/10)
        for v in np.linspace(-9.9, 9.9, 57):
            approx = lut_interp_row(lut, float(v))[0]
            assert abs(approx - math.exp(v / 10)) <= bound * 1.01

    def test_clamps_below(self, lut):
        assert lut_interp_row(lut, -999.0) == lut_interp_row(lut, -10.0)

    def test_clamps_above(self, lut):
        assert lut_interp_row(lut, 999.0) == lut_interp_row(lut, 10.0)

    def test_nan_key_gives_nan_row(self, lut):
        row = lut_interp_row(lut, float("nan"))
        assert all(math.isnan(v) for v in row)

    def test_midpoint_is_average(self, lut):
        exact_mid = (lut.rows[0, 0] + lut.rows[1, 0]) / 2
        assert lut_interp_row(lut, -9.75)[0] == pytest.approx(exact_mid)


class TestVectorInterp:
    def test_matches_scalar_exactly(self, lut):
        keys = np.linspace(-12, 12, 101)
        vec_rows = lut_interp_row_vec(lut, keys)
        for i, key in enumerate(keys):
            scalar = lut_interp_row(lut, float(key))
            for c in range(lut.n_cols):
                assert vec_rows[c][i] == scalar[c], (key, c)

    def test_handles_2d_lanes(self, lut):
        keys = np.zeros((3, 8))
        rows = lut_interp_row_vec(lut, keys)
        assert rows[0].shape == (3, 8)

    def test_nan_lanes_propagate(self, lut):
        keys = np.array([0.0, np.nan, 5.0])
        rows = lut_interp_row_vec(lut, keys)
        assert np.isnan(rows[0][1]) and np.isfinite(rows[0][[0, 2]]).all()


class TestRLDecayColumns:
    def test_decay_column_value(self):
        model = load_model("""
            Vm; .external(); .lookup(-10,10,0.5);
            m_inf = 1/(1+exp(-Vm/5));
            tau_m = 2 + exp(-Vm/10);
            diff_m = (m_inf - m)/tau_m; m_init = 0;
        """, "RL")
        dt = 0.02
        table = build_all_luts(model, dt=dt)[0]
        idx = table.column_names.index("_rl_decay_m")
        # at Vm = 0 exactly (grid point): tau = 3
        row = lut_interp_row(table, 0.0)
        assert row[idx] == pytest.approx(math.exp(-dt / 3.0), abs=1e-14)

    def test_tables_depend_on_dt(self):
        model = load_model("""
            Vm; .external(); .lookup(-10,10,0.5);
            m_inf = 1/(1+exp(-Vm/5));
            tau_m = 2 + exp(-Vm/10);
            diff_m = (m_inf - m)/tau_m; m_init = 0;
        """, "RL")
        t1 = build_all_luts(model, dt=0.01)[0]
        t2 = build_all_luts(model, dt=0.05)[0]
        idx = t1.column_names.index("_rl_decay_m")
        assert not np.allclose(t1.rows[:, idx], t2.rows[:, idx])

    def test_runner_rebuilds_luts_on_dt_change(self, gate_model):
        from repro.codegen import generate_limpet_mlir
        from repro.runtime import KernelRunner
        runner = KernelRunner(generate_limpet_mlir(gate_model, 8))
        first = runner.luts_for(0.01)
        second = runner.luts_for(0.02)
        assert first is not second
        assert runner.luts_for(0.01) is first  # cached


class TestLUTAccuracyEndToEnd:
    def test_lut_vs_exact_trajectory_close(self, gate_model):
        """Interpolated kinetics track the exact ones tightly."""
        from repro.codegen import generate_limpet_mlir
        from repro.runtime import KernelRunner
        lut = KernelRunner(generate_limpet_mlir(gate_model, 8))
        exact = KernelRunner(generate_limpet_mlir(gate_model, 8,
                                                  use_lut=False))
        r1 = lut.simulate(16, 500, 0.01, perturbation=0.01)
        r2 = exact.simulate(16, 500, 0.01, perturbation=0.01)
        m1, m2 = r1.state.state_of("m"), r2.state.state_of("m")
        np.testing.assert_allclose(m1, m2, rtol=1e-4, atol=1e-7)
