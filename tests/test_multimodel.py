"""Multimodel (parent/offspring) tests — paper §3.3.2."""

import numpy as np
import pytest

from repro.codegen import generate_limpet_mlir
from repro.codegen.multimodel import generate_plugin
from repro.frontend import load_model
from repro.ir import verify_module
from repro.models import load_model as load_registry_model
from repro.runtime import (HierarchicalSimulation, KernelRunner, Stimulus,
                           compare_trajectories)

PLUGIN_SOURCE = """
Vm; .external();
Iion; .external();
gK = 0.02; .param();
diff_r = 0.05*(1/(1+exp(-(Vm+60)/10)) - r);
r_init = 0.0;
Iion = gK*r*(Vm + 90.0);
"""


@pytest.fixture
def plugin_model():
    return load_model(PLUGIN_SOURCE, "KPlugin")


class TestPluginCodegen:
    def test_verifies(self, plugin_model):
        kernel = generate_plugin(plugin_model, width=8)
        verify_module(kernel.module)

    def test_signature_has_parent_arguments(self, plugin_model):
        kernel = generate_plugin(plugin_model, width=8)
        fn = kernel.module.lookup_func(kernel.spec.function_name)
        hints = [a.name_hint for a in fn.regions[0].entry.args]
        assert "parent_map" in hints
        assert "parent_Vm" in hints and "parent_Iion" in hints

    def test_uses_masked_gather_and_scatter(self, plugin_model):
        kernel = generate_plugin(plugin_model, width=8)
        gathers = [op for op in kernel.module.walk()
                   if op.name == "vector.gather"]
        scatters = [op for op in kernel.module.walk()
                    if op.name == "vector.scatter"]
        assert gathers and all(len(op.operands) == 4 for op in gathers)
        assert scatters and all(len(op.operands) == 4 for op in scatters)


class TestHierarchy:
    def test_coupled_cells_feel_the_plugin(self, plugin_model):
        parent = load_registry_model("LuoRudy91")
        sim = HierarchicalSimulation(parent, n_cells=32, width=8)
        sim.attach_plugin(plugin_model, list(range(16)))
        sim.run(300, 0.01)
        vm = sim.parent_vm()
        assert np.isfinite(vm).all()
        coupled, uncoupled = vm[:16], vm[16:]
        assert abs(coupled.mean() - uncoupled.mean()) > 1e-10

    def test_uncoupled_hierarchy_matches_standalone_parent(self,
                                                           plugin_model):
        """A plugin whose every lane is unparented must not disturb
        the parent at all (the fall-through path)."""
        parent = load_registry_model("HodgkinHuxley")
        solo = KernelRunner(generate_limpet_mlir(parent, 8))
        state = solo.make_state(16)
        solo.run(state, 100, 0.01)

        sim = HierarchicalSimulation(parent, n_cells=16, width=8)
        sim.attach_plugin(plugin_model, [-1] * 8)
        sim.run(100, 0.01)
        np.testing.assert_allclose(sim.parent_vm(),
                                   state.external("Vm"), rtol=1e-12)

    def test_unparented_lane_uses_local_storage(self, plugin_model):
        parent = load_registry_model("HodgkinHuxley")
        sim = HierarchicalSimulation(parent, n_cells=8, width=8)
        plugin = sim.attach_plugin(plugin_model, [0, -1])
        sim.run(200, 0.01)
        r = sim.plugin_state(0, "r")
        # lane 0 sees the parent's Vm (~-75), lane 1 its local Vm (0.0
        # default): different activation levels
        assert abs(r[0] - r[1]) > 1e-6

    def test_multiple_plugins_accumulate(self, plugin_model):
        parent = load_registry_model("LuoRudy91")
        one = HierarchicalSimulation(parent, n_cells=16, width=8)
        one.attach_plugin(plugin_model, list(range(16)))
        one.run(100, 0.01)

        two = HierarchicalSimulation(parent, n_cells=16, width=8)
        two.attach_plugin(plugin_model, list(range(16)))
        two.attach_plugin(plugin_model, list(range(16)))
        two.run(100, 0.01)
        # two copies of the same current pull Vm measurably further
        assert np.abs(one.parent_vm() - two.parent_vm()).max() > 1e-6

    def test_map_out_of_range_rejected(self, plugin_model):
        parent = load_registry_model("HodgkinHuxley")
        sim = HierarchicalSimulation(parent, n_cells=8)
        with pytest.raises(ValueError, match="past the parent"):
            sim.attach_plugin(plugin_model, [99])

    def test_map_must_be_1d(self, plugin_model):
        parent = load_registry_model("HodgkinHuxley")
        sim = HierarchicalSimulation(parent, n_cells=8)
        with pytest.raises(ValueError, match="one-dimensional"):
            sim.attach_plugin(plugin_model, [[0, 1]])

    def test_registry_plugin_models_attachable(self):
        """The suite's plugin-style models work as actual plugins."""
        parent = load_registry_model("LuoRudy91")
        sim = HierarchicalSimulation(parent, n_cells=16, width=8)
        sim.attach_plugin(load_registry_model("IKChCheng"),
                          list(range(16)))
        sim.run(200, 0.01, Stimulus(amplitude=-25.0, duration=1.0,
                                    period=100.0))
        assert np.isfinite(sim.parent_vm()).all()
