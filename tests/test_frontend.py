"""Frontend analysis tests: classification, ordering, gates, LUTs."""

import pytest

from repro.easyml import SemanticError, parse_model
from repro.frontend import Method, VarKind, analyze, load_model
from repro.frontend.preprocessor import Preprocessor


class TestListing1(object):
    """The paper's own example must analyze exactly as described."""

    def test_externals(self, listing1_model):
        assert listing1_model.externals == ["Vm", "Iion"]

    def test_states_from_diff(self, listing1_model):
        assert set(listing1_model.states) == {"u1", "u2", "u3"}

    def test_params_resolved(self, listing1_model):
        assert listing1_model.params == {"Cm": 200.0, "beta": 1.0,
                                         "xi": 3.0}

    def test_methods(self, listing1_model):
        assert listing1_model.methods["u1"] is Method.RK2
        assert listing1_model.methods["u2"] is Method.FE
        assert listing1_model.methods["u3"] is Method.FE

    def test_inits(self, listing1_model):
        assert listing1_model.init_values == {"u1": 0.0, "u2": 0.0,
                                              "u3": 0.0}
        assert listing1_model.external_init["Vm"] == 0.0

    def test_outputs(self, listing1_model):
        assert listing1_model.outputs == ["Iion"]

    def test_constant_diff_folded(self, listing1_model):
        from repro.easyml.ast_nodes import Number
        assert listing1_model.diffs["u3"] == Number(0.0)

    def test_lookup_spec(self, listing1_model):
        var = listing1_model.variables["Vm"]
        assert var.lookup is not None
        assert var.lookup.n_rows == 4001


class TestClassification:
    def test_intermediate_kind(self, gate_model):
        assert gate_model.variables["Iion_raw"].kind is \
            VarKind.INTERMEDIATE

    def test_param_assignment_rejected(self):
        with pytest.raises(SemanticError, match="cannot be assigned"):
            load_model("a = 1; .param(); a = 2;")

    def test_double_assignment_rejected(self):
        with pytest.raises(SemanticError, match="SSA"):
            load_model("x = 1*y; x = 2*y; y_init=0; diff_y = x;")

    def test_undefined_variable_rejected(self):
        with pytest.raises(SemanticError, match="undefined"):
            load_model("diff_x = ghost; x_init = 0;")

    def test_cycle_rejected(self):
        with pytest.raises(SemanticError, match="cyclic"):
            load_model("a = b + 1; b = a + 1; diff_x = a; x_init = 0;")

    def test_param_without_value_rejected(self):
        with pytest.raises(SemanticError, match="no value"):
            load_model("g; .param(); diff_x = g; x_init = 0;")

    def test_external_with_diff_rejected(self):
        with pytest.raises(SemanticError, match="solver"):
            load_model("Vm; .external(); diff_Vm = 1;")

    def test_nonconstant_init_rejected(self):
        with pytest.raises(SemanticError, match="constant"):
            load_model("diff_x = -x; x_init = x + 1;")

    def test_param_dependent_init_allowed(self):
        model = load_model("a = 2; .param(); diff_x = -x; x_init = a*3;")
        assert model.init_values["x"] == 6.0

    def test_unknown_method_rejected(self):
        with pytest.raises(SemanticError, match="unknown integration"):
            load_model("diff_x = -x; x_init = 0; x; .method(euler99);")

    def test_unknown_markup_warns(self):
        model = load_model("x; .sparkle(); diff_x = -x; x_init = 0;")
        assert any("sparkle" in w for w in model.warnings)

    def test_missing_init_defaults_with_warning(self):
        model = load_model("diff_x = -x;")
        assert model.init_values["x"] == 0.0
        assert any("x_init" in w for w in model.warnings)


class TestOrdering:
    def test_out_of_order_definitions_sorted(self):
        model = load_model("""
            diff_x = b; x_init = 0;
            b = a * 2;
            a = x + 1;
        """)
        order = [c.target for c in model.computations]
        assert order.index("a") < order.index("b")

    def test_diff_value_readable_by_outputs(self):
        model = load_model("""
            Iion; .external();
            diff_x = -0.1*x; x_init = 1;
            Iion = diff_x * 2;
        """)
        targets = [c.target for c in model.computations]
        assert "diff_x" in targets  # kept because Iion reads it

    def test_unread_diff_not_in_plan(self, listing1_model):
        targets = [c.target for c in listing1_model.computations]
        assert "diff_u1" not in targets


class TestPreprocessing:
    def test_constant_intermediate_folded(self):
        model = load_model("""
            k = 2; .param();
            halfk = k / 2;
            diff_x = -halfk*x; x_init = 1;
        """)
        assert model.folded_constants["halfk"] == 1.0
        assert all(c.target != "halfk" for c in model.computations)

    def test_constant_propagates_through_chain(self):
        model = load_model("""
            a = 3; b = a * 2; c = b + a;
            diff_x = -x*c; x_init = 1;
        """)
        assert model.folded_constants["c"] == 9.0

    def test_constant_condition_selects_branch(self):
        pre = Preprocessor({"k": 5.0})
        from repro.easyml import parse_model as pm
        expr = pm("y = k > 3 ? 10 : 20;").statements[0].expr
        assert pre.eval(expr) == 10.0

    def test_fold_keeps_runtime_parts(self):
        pre = Preprocessor({"k": 2.0})
        from repro.easyml import parse_model as pm
        from repro.easyml.ast_nodes import Binary, Number
        expr = pm("y = (k*3) + v;").statements[0].expr
        folded = pre.fold(expr)
        assert isinstance(folded, Binary)
        assert folded.lhs == Number(6.0)

    def test_math_functions_evaluate(self):
        pre = Preprocessor()
        from repro.easyml import parse_model as pm
        expr = pm("y = square(3) + cube(2) + fabs(-1);").statements[0].expr
        assert pre.eval(expr) == 18.0

    def test_eval_raises_on_runtime_value(self):
        pre = Preprocessor()
        from repro.easyml import parse_model as pm
        expr = pm("y = v + 1;").statements[0].expr
        with pytest.raises(SemanticError):
            pre.eval(expr)


class TestGates:
    def test_inf_tau_gate_detected(self, gate_model):
        gate = gate_model.gates["m"]
        assert gate.form == "inf_tau"
        assert gate.inf == "m_inf" and gate.tau == "tau_m"

    def test_alpha_beta_gate_detected(self, gate_model):
        gate = gate_model.gates["h"]
        assert gate.form == "alpha_beta"

    def test_gates_default_to_rush_larsen(self, gate_model):
        assert gate_model.methods["m"] is Method.RUSH_LARSEN
        assert gate_model.methods["h"] is Method.RUSH_LARSEN

    def test_explicit_method_wins_over_gate(self):
        model = load_model("""
            Vm; .external();
            m_inf = 1/(1+exp(-Vm/7)); tau_m = 2;
            diff_m = (m_inf - m)/tau_m; m_init = 0;
            m; .method(fe);
        """)
        assert model.methods["m"] is Method.FE

    def test_rush_larsen_without_gate_rejected(self):
        with pytest.raises(SemanticError, match="rush_larsen"):
            load_model("diff_x = -x; x_init = 0; x; .method(rush_larsen);")

    def test_non_gate_defaults_to_fe(self, gate_model):
        assert gate_model.methods["c"] is Method.RK2  # explicit
        model = load_model("diff_x = -x; x_init = 0;")
        assert model.methods["x"] is Method.FE


class TestIfConversion:
    def test_both_branch_assignment_becomes_ternary(self):
        model = load_model("""
            Vm; .external();
            if (Vm > 0) { a = 1*Vm; } else { a = 2*Vm; }
            diff_x = a - x; x_init = 0;
        """)
        from repro.easyml.ast_nodes import Ternary
        comp = next(c for c in model.computations if c.target == "a")
        assert isinstance(comp.expr, Ternary)

    def test_branch_local_temporaries_run_speculatively(self):
        model = load_model("""
            Vm; .external();
            if (Vm > 0) { t = Vm * 2; a = t + 1; } else { a = 0*Vm; }
            diff_x = a - x; x_init = 0;
        """)
        targets = {c.target for c in model.computations}
        assert "t" in targets and "a" in targets

    def test_same_temp_in_both_branches_renamed(self):
        model = load_model("""
            Vm; .external();
            if (Vm > 0) { t = Vm; a = t; } else { t = -Vm; a = t + 1; }
            diff_x = a - x; x_init = 0;
        """)
        targets = {c.target for c in model.computations}
        assert "t__then" in targets and "t__else" in targets

    def test_double_assignment_within_branch_rejected(self):
        with pytest.raises(SemanticError, match="single-assignment"):
            load_model("""
                Vm; .external();
                if (Vm > 0) { a = 1; a = 2; } else { a = 3; }
                diff_x = a*x; x_init = 0;
            """)

    def test_nested_if_converts(self):
        model = load_model("""
            Vm; .external();
            if (Vm > 0) {
              if (Vm > 20) { a = 1*Vm; } else { a = 2*Vm; }
            } else { a = 3*Vm; }
            diff_x = a - x; x_init = 0;
        """)
        assert any(c.target == "a" for c in model.computations)


class TestLUTGrouping:
    def test_costly_vm_expressions_tabulated(self, gate_model):
        table = gate_model.lut_tables[0]
        assert table.var == "Vm"
        assert {"m_inf", "tau_m", "alpha_h", "beta_h"} <= \
            set(table.column_names)

    def test_state_dependent_not_tabulated(self, gate_model):
        names = set(gate_model.lut_tables[0].column_names)
        assert "Iion_raw" not in names

    def test_cheap_expressions_not_tabulated(self):
        model = load_model("""
            Vm; .external(); .lookup(-100,100,0.1);
            a = Vm * 2 + 1;
            diff_x = a - x; x_init = 0;
        """)
        assert model.lut_tables == []

    def test_rl_decay_columns_added(self, gate_model):
        names = set(gate_model.lut_tables[0].column_names)
        assert "_rl_decay_m" in names
        assert "_rl_decay_h" in names and "_rl_inf_h" in names

    def test_rl_decay_not_added_for_non_rl_gates(self):
        model = load_model("""
            Vm; .external(); .lookup(-100,100,0.1);
            m_inf = 1/(1+exp(-Vm/7));
            tau_m = 1 + exp(-Vm/20);
            diff_m = (m_inf - m)/tau_m; m_init = 0;
            m; .method(fe);
        """)
        names = set(model.lut_tables[0].column_names)
        assert "_rl_decay_m" not in names

    def test_computations_excluding_lut(self, gate_model):
        lut_names = gate_model.lut_column_names
        rest = gate_model.computations_excluding_lut()
        assert all(c.target not in lut_names for c in rest)


class TestStageComputations:
    def test_state_dependent_chain_selected(self, gate_model):
        stage = [c.target for c in gate_model.stage_computations("c")]
        assert "Iion_raw" in stage  # depends on c, feeds diff_c

    def test_voltage_only_columns_excluded(self, gate_model):
        stage = [c.target for c in gate_model.stage_computations("m")]
        assert "m_inf" not in stage and "tau_m" not in stage

    def test_describe_mentions_everything(self, gate_model):
        text = gate_model.describe()
        assert "GateTest" in text
        assert "rush_larsen" in text and "LUT on Vm" in text
