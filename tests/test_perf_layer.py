"""PR2 performance layer: fusion, buffer arena, kernel cache, sharding."""

import json

import numpy as np
import pytest

from repro.codegen import generate_limpet_mlir
from repro.ir.dialects.arith import trunc_div, trunc_rem
from repro.ir.passes import default_pipeline
from repro.ir.passes.pass_manager import PassManager
from repro.models import load_model
from repro.runtime import (KernelCache, KernelRunner, ShardedRunner,
                           compare_trajectories, kernel_cache_key,
                           shard_bounds)
from repro.runtime.interpreter import interpret_kernel

#: differential suite: a trivial model, two LUT models, two Markov-BE
#: models (OHara is the paper's flagship; WangSobie is the other family)
DIFF_MODELS = ["Plonsey", "HodgkinHuxley", "LuoRudy91", "OHara",
               "WangSobie"]


def make_runner(name, **kwargs):
    return KernelRunner(generate_limpet_mlir(load_model(name)), **kwargs)


# ---------------------------------------------------------------------------
# Satellite: C-style integer division/remainder
# ---------------------------------------------------------------------------


class TestTruncatedIntegerOps:
    @pytest.mark.parametrize("a,b", [(7, 2), (-7, 2), (7, -2), (-7, -2),
                                     (6, 3), (-6, 3), (0, 5), (1, 7)])
    def test_scalar_matches_c_semantics(self, a, b):
        # C truncates toward zero; Python's // floors
        expected_div = int(a / b)
        assert trunc_div(a, b) == expected_div
        assert trunc_rem(a, b) == a - expected_div * b

    def test_identity_holds(self):
        for a in range(-20, 21):
            for b in list(range(-5, 0)) + list(range(1, 6)):
                assert trunc_div(a, b) * b + trunc_rem(a, b) == a

    def test_exact_beyond_float_mantissa(self):
        # int(a / b) round-trips through float64 and loses bits >= 2^53
        a = (1 << 62) + 1
        assert trunc_div(a, 1) == a
        assert int(a / 1) != a          # the old lowering's bug
        assert trunc_rem((1 << 60) + 3, 1 << 30) == 3

    def test_division_by_zero_is_zero(self):
        assert trunc_div(5, 0) == 0
        assert trunc_rem(5, 0) == 0

    def test_vector_matches_scalar(self):
        a = np.array([7, -7, 7, -7, 9, 0, 100, -100])
        b = np.array([2, 2, -2, -2, 4, 3, -7, 7])
        expected_div = np.array([trunc_div(int(x), int(y))
                                 for x, y in zip(a, b)])
        expected_rem = np.array([trunc_rem(int(x), int(y))
                                 for x, y in zip(a, b)])
        np.testing.assert_array_equal(trunc_div(a, b), expected_div)
        np.testing.assert_array_equal(trunc_rem(a, b), expected_rem)
        assert np.issubdtype(trunc_rem(a, b).dtype, np.integer)

    def test_vector_division_by_zero(self):
        np.testing.assert_array_equal(
            trunc_div(np.array([4, 5]), np.array([0, 5])),
            np.array([0, 1]))

    def test_lowering_emits_integer_helpers(self):
        from repro.runtime.lowering import _SCALAR_EXPR, _VECTOR_EXPR
        for table in (_SCALAR_EXPR, _VECTOR_EXPR):
            assert "_idiv" in table["arith.divsi"]
            assert "_irem" in table["arith.remsi"]


# ---------------------------------------------------------------------------
# Tentpole 1: fused lowering + buffer arena
# ---------------------------------------------------------------------------


class TestFusedLowering:
    @pytest.mark.parametrize("name", DIFF_MODELS)
    def test_fused_matches_unfused_bitwise(self, name):
        unfused = make_runner(name, fuse=False)
        fused = make_runner(name)
        assert fused.kernel.fused and not unfused.kernel.fused
        a = unfused.simulate(13, 60, 0.01).state
        b = fused.simulate(13, 60, 0.01).state
        assert compare_trajectories(a, b, rtol=0, atol=0)

    @pytest.mark.parametrize("name", DIFF_MODELS)
    def test_arena_matches_fused_bitwise(self, name):
        fused = make_runner(name)
        arena = make_runner(name, arena=True)
        a = fused.simulate(13, 60, 0.01).state
        b = arena.simulate(13, 60, 0.01).state
        assert compare_trajectories(a, b, rtol=0, atol=0)

    @pytest.mark.parametrize("name", ["Plonsey", "HodgkinHuxley", "OHara"])
    def test_fused_matches_interpreter(self, name):
        generated = generate_limpet_mlir(load_model(name))
        runner = KernelRunner(generated)
        dt, n_steps = 0.01, 5
        fast = runner.make_state(8, perturbation=0.01)
        slow = runner.make_state(8, perturbation=0.01)
        luts = runner.luts_for(dt)
        for _ in range(n_steps):
            runner.compute_step(fast, dt)
            interpret_kernel(generated, slow, luts, dt)
        assert compare_trajectories(fast, slow, rtol=1e-12)

    def test_fused_source_is_shorter(self):
        unfused = make_runner("LuoRudy91", fuse=False)
        fused = make_runner("LuoRudy91")
        assert len(fused.kernel.source.splitlines()) < \
            0.6 * len(unfused.kernel.source.splitlines())

    def test_arena_reuses_buffers_across_steps(self):
        runner = make_runner("LuoRudy91", arena=True)
        arena = runner.kernel.arena
        assert arena is not None
        runner.simulate(16, 10, 0.01)
        first_allocs = arena.allocs
        assert first_allocs > 0
        runner.simulate(16, 10, 0.01)   # same shapes: all slots reused
        assert arena.allocs == first_allocs
        assert arena.hits > 0
        assert arena.nbytes > 0


# ---------------------------------------------------------------------------
# Tentpole 2: persistent kernel cache
# ---------------------------------------------------------------------------


class TestKernelCache:
    def test_miss_then_hit(self, tmp_path):
        cache = KernelCache(tmp_path)
        first = make_runner("HodgkinHuxley", cache=cache)
        assert not first.cache_hit
        second = make_runner("HodgkinHuxley", cache=cache)
        assert second.cache_hit
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert second.kernel.source == first.kernel.source

    def test_cached_kernel_runs_identically(self, tmp_path):
        cache = KernelCache(tmp_path)
        fresh = make_runner("LuoRudy91", cache=cache)
        cached = make_runner("LuoRudy91", cache=cache)
        assert cached.cache_hit
        a = fresh.simulate(13, 60, 0.01).state
        b = cached.simulate(13, 60, 0.01).state
        assert compare_trajectories(a, b, rtol=0, atol=0)

    def test_key_changes_with_model_source(self):
        g1 = generate_limpet_mlir(load_model("Plonsey"))
        g2 = generate_limpet_mlir(load_model("HodgkinHuxley"))
        fp = default_pipeline().fingerprint()
        assert kernel_cache_key(g1, fp, True, False, True) != \
            kernel_cache_key(g2, fp, True, False, True)

    def test_key_changes_with_kernel_spec(self):
        model = load_model("Plonsey")
        g4 = generate_limpet_mlir(model, 4)
        g8 = generate_limpet_mlir(load_model("Plonsey"), 8)
        fp = default_pipeline().fingerprint()
        assert kernel_cache_key(g4, fp, True, False, True) != \
            kernel_cache_key(g8, fp, True, False, True)

    def test_key_changes_with_pipeline(self, tmp_path):
        """A pipeline change MUST miss (the ISSUE's invalidation case)."""
        cache = KernelCache(tmp_path)
        make_runner("Plonsey", cache=cache)
        short = PassManager(default_pipeline().passes[:2],
                            verify_each=False)
        third = make_runner("Plonsey", cache=cache, pipeline=short)
        assert not third.cache_hit
        assert cache.stats.misses == 2

    def test_key_changes_with_pass_version(self):
        g = generate_limpet_mlir(load_model("Plonsey"))
        pipe = default_pipeline()
        key_a = kernel_cache_key(g, pipe.fingerprint(), True, False, True)
        pipe.passes[0].version = 99
        key_b = kernel_cache_key(g, pipe.fingerprint(), True, False, True)
        assert key_a != key_b

    def test_key_changes_with_lowering_version(self, monkeypatch):
        from repro.runtime import lowering
        g = generate_limpet_mlir(load_model("Plonsey"))
        fp = default_pipeline().fingerprint()
        key_a = kernel_cache_key(g, fp, True, False, True)
        monkeypatch.setattr(lowering, "LOWERING_VERSION",
                            lowering.LOWERING_VERSION + 1)
        key_b = kernel_cache_key(g, fp, True, False, True)
        assert key_a != key_b

    def test_key_changes_with_fuse_and_arena_flags(self):
        g = generate_limpet_mlir(load_model("Plonsey"))
        fp = default_pipeline().fingerprint()
        keys = {kernel_cache_key(g, fp, fuse, arena, True)
                for fuse in (True, False) for arena in (True, False)}
        assert len(keys) == 4

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = KernelCache(tmp_path)
        runner = make_runner("Plonsey", cache=cache)
        cache._path(runner.cache_key).write_text("{not json")
        again = make_runner("Plonsey", cache=cache)
        assert not again.cache_hit
        # ...and the bad entry was overwritten with a good one
        assert make_runner("Plonsey", cache=cache).cache_hit

    def test_eviction_keeps_bound(self, tmp_path):
        cache = KernelCache(tmp_path, max_entries=2)
        for name in ("Plonsey", "HodgkinHuxley", "LuoRudy91"):
            make_runner(name, cache=cache)
        entries = [p for p in cache.root.glob("*.json")
                   if p.name != "stats.json"]
        assert len(entries) == 2
        assert cache.stats.evictions >= 1

    def test_persistent_stats_across_instances(self, tmp_path):
        cache_a = KernelCache(tmp_path)
        make_runner("Plonsey", cache=cache_a)        # miss
        cache_b = KernelCache(tmp_path)              # a "new process"
        make_runner("Plonsey", cache=cache_b)        # hit
        stats = cache_b.persistent_stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.entries == 1 and stats.bytes > 0

    def test_clear(self, tmp_path):
        cache = KernelCache(tmp_path)
        make_runner("Plonsey", cache=cache)
        assert cache.clear() == 1
        assert cache.persistent_stats().entries == 0


# ---------------------------------------------------------------------------
# Tentpole 2b: prebound compute_step arguments
# ---------------------------------------------------------------------------


class TestPreboundArgs:
    def test_prebind_survives_run_and_reuses_args(self):
        runner = make_runner("HodgkinHuxley")
        state = runner.make_state(8)
        runner.run(state, 5, 0.01)
        bound = runner._bound
        assert bound is not None and bound[0] is state
        runner.run(state, 5, 0.01)
        assert runner._bound is bound   # same binding object: no rebuild

    def test_set_state_keeps_buffer_identity(self):
        """set_state writes in place: buffer identity is load-bearing
        (shared-memory views held by supervised workers and prebound
        kernel args must keep seeing this state)."""
        runner = make_runner("HodgkinHuxley")
        fresh = make_runner("HodgkinHuxley")
        state = runner.make_state(8)
        runner.run(state, 5, 0.01)              # binds to sv
        old_sv = state.sv
        mid = state.state_matrix()[:state.n_cells].copy()
        state.set_state(mid)                    # same values, SAME buffer
        assert state.sv is old_sv
        runner.compute_step(state, 0.01)
        assert runner._bound[3][4] is state.sv  # binding still valid
        # behavioral check: identical trajectory on a fresh runner whose
        # state never had its buffer swapped
        ref = fresh.make_state(8)
        fresh.run(ref, 5, 0.01)
        fresh.compute_step(ref, 0.01)
        np.testing.assert_array_equal(state.sv, ref.sv)

    def test_dt_change_rebinds(self):
        runner = make_runner("HodgkinHuxley")
        state = runner.make_state(8)
        runner.compute_step(state, 0.01)
        first = runner._bound
        runner.compute_step(state, 0.02)
        assert runner._bound is not first

    def test_throughput_properties(self):
        runner = make_runner("Plonsey")
        result = runner.simulate(32, 50, 0.01)
        assert result.steps_per_second == pytest.approx(
            50 / result.elapsed_seconds)
        assert result.cell_steps_per_second == pytest.approx(
            result.steps_per_second * 32)

    def test_lut_cache_stats(self):
        runner = make_runner("LuoRudy91")
        runner.luts_for(0.01)
        runner.luts_for(0.01)
        runner.luts_for(0.02)
        stats = runner.lut_cache_stats()
        assert stats["misses"] == 2 and stats["hits"] == 1
        assert stats["entries"] == 2 and stats["bytes"] > 0


# ---------------------------------------------------------------------------
# Tentpole 3: sharded execution
# ---------------------------------------------------------------------------


class TestShardedRunner:
    def test_shard_bounds_cover_and_align(self):
        bounds = shard_bounds(n_alloc=40, n_shards=4, width=8)
        assert bounds[0][0] == 0 and bounds[-1][1] == 40
        for (s0, e0), (s1, e1) in zip(bounds, bounds[1:]):
            assert e0 == s1                      # disjoint and contiguous
        for start, _ in bounds:
            assert start % 8 == 0                # block-aligned cuts

    def test_shard_bounds_small_n(self):
        assert shard_bounds(8, 4, 8) == [(0, 8)]
        assert shard_bounds(0, 4, 8) == []

    @pytest.mark.parametrize("name", ["LuoRudy91", "OHara"])
    def test_sharded_matches_single_bitwise(self, name):
        single = make_runner(name)
        a = single.simulate(37, 60, 0.01).state
        with ShardedRunner(generate_limpet_mlir(load_model(name)),
                           n_threads=4) as sharded:
            assert len(sharded.shards_for(a)) > 1
            b = sharded.simulate(37, 60, 0.01).state
        assert compare_trajectories(a, b, rtol=0, atol=0)

    def test_honors_omp_parallel_marker(self):
        with ShardedRunner(generate_limpet_mlir(load_model("Plonsey")),
                           n_threads=2) as runner:
            assert runner.parallel_marked

    def test_rejects_arena(self):
        with pytest.raises(ValueError, match="arena"):
            ShardedRunner(generate_limpet_mlir(load_model("Plonsey")),
                          n_threads=2, arena=True)

    def test_single_shard_needs_no_pool(self):
        with ShardedRunner(generate_limpet_mlir(load_model("Plonsey")),
                           n_threads=1) as runner:
            runner.simulate(8, 5, 0.01)
            assert runner._pool is None

    def test_kernel_exceptions_propagate(self):
        with ShardedRunner(generate_limpet_mlir(load_model("Plonsey")),
                           n_threads=2) as runner:
            state = runner.make_state(64)
            assert len(runner.shards_for(state)) == 2
            state.sv = np.zeros(1)      # kernels fail inside the pool
            with pytest.raises((IndexError, ValueError)):
                runner.compute_step(state, 0.01)


# ---------------------------------------------------------------------------
# Bench report plumbing (no timing loops: synthetic reports)
# ---------------------------------------------------------------------------


def _synthetic_report(fused_run=0.5, cached_construct=0.01,
                      sharded_run=0.3, cpus=4):
    def variant(name, construct, run, hit=False, threads=1):
        return {"name": name, "construct_seconds": construct,
                "run_seconds": run, "total_seconds": construct + run,
                "steps_per_second": 100 / run,
                "cell_steps_per_second": 100 * 4096 / run,
                "cache_hit": hit, "threads": threads}

    variants = [variant("baseline", 0.1, 1.0),
                variant("fused", 0.08, fused_run),
                variant("fused_cached", cached_construct, fused_run,
                        hit=True),
                variant("sharded", 0.08, sharded_run, threads=4)]
    base_total, base_run = 1.1, 1.0
    speedups = {v["name"]: {"total": base_total / v["total_seconds"],
                            "run": base_run / v["run_seconds"]}
                for v in variants}
    speedups["sharded"]["vs_fused_run"] = fused_run / sharded_run
    return {"benchmark": "BENCH_PR2",
            "config": {"model": "OHara", "n_cells": 4096, "n_steps": 100,
                       "dt": 0.01, "threads": 4, "runs": 5,
                       "n_states": 41},
            "machine": {"platform": "test", "python": "3",
                        "available_cpus": cpus},
            "variants": variants,
            "speedups_vs_baseline": speedups}


class TestPerfReportPlumbing:
    def test_check_report_passes_on_good_numbers(self):
        from repro.bench.perf import check_report
        assert check_report(_synthetic_report()) == []

    def test_check_report_flags_slow_fused(self):
        from repro.bench.perf import check_report
        failures = check_report(_synthetic_report(fused_run=1.5))
        assert any("fused run slower" in f for f in failures)

    def test_check_report_flags_cold_cache(self):
        from repro.bench.perf import check_report
        report = _synthetic_report()
        report["variants"][2]["cache_hit"] = False
        assert any("cache" in f for f in check_report(report))

    def test_check_report_sharded_gated_on_cpus(self):
        from repro.bench.perf import check_report
        # regression on a multicore box -> flagged
        bad = _synthetic_report(sharded_run=0.9, cpus=4)
        assert any("sharded" in f for f in check_report(bad))
        # same numbers on a 1-cpu box -> not flagged (nothing to scale)
        assert check_report(_synthetic_report(sharded_run=0.9,
                                              cpus=1)) == []

    def test_format_perf_table(self):
        from repro.bench.report import format_perf_table
        text = format_perf_table(_synthetic_report())
        assert "BENCH_PR2" in text and "fused_cached" in text
        assert "Mcell-steps/s" in text

    def test_write_report_round_trips(self, tmp_path):
        from repro.bench.perf import write_report
        path = tmp_path / "BENCH_PR2.json"
        write_report(_synthetic_report(), path)
        loaded = json.loads(path.read_text())
        assert loaded["benchmark"] == "BENCH_PR2"
        assert len(loaded["variants"]) == 4
