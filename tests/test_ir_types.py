"""Unit tests for the IR type system."""

import pytest

from repro.ir.types import (FloatType, FunctionType, IntegerType, MemRefType,
                            VectorType, broadcast_type, element_type, f32,
                            f64, i1, i32, i64, index, memref_of, parse_type,
                            vector_of, vector_width)


class TestScalarTypes:
    def test_float_str(self):
        assert str(f64) == "f64"
        assert str(f32) == "f32"

    def test_integer_str(self):
        assert str(i1) == "i1"
        assert str(i32) == "i32"
        assert str(i64) == "i64"

    def test_index_str(self):
        assert str(index) == "index"

    def test_float_predicates(self):
        assert f64.is_float
        assert not f64.is_integer
        assert not f64.is_vector

    def test_integer_predicates(self):
        assert i32.is_integer
        assert not i32.is_float

    def test_index_is_integer_like(self):
        assert index.is_integer

    def test_bad_float_width_rejected(self):
        with pytest.raises(ValueError):
            FloatType(17)

    def test_bad_integer_width_rejected(self):
        with pytest.raises(ValueError):
            IntegerType(3)

    def test_equality_by_value(self):
        assert FloatType(64) == f64
        assert IntegerType(32) == i32
        assert FloatType(32) != f64


class TestVectorTypes:
    def test_str(self):
        assert str(vector_of(8)) == "vector<8xf64>"
        assert str(vector_of(4, i1)) == "vector<4xi1>"

    def test_predicates(self):
        vec = vector_of(8)
        assert vec.is_vector
        assert vec.is_float

    def test_integer_vector(self):
        vec = vector_of(4, index)
        assert vec.is_integer

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            VectorType(0, f64)

    def test_nested_vector_rejected(self):
        with pytest.raises(ValueError):
            VectorType(4, vector_of(2))

    def test_vector_of_memref_rejected(self):
        with pytest.raises(ValueError):
            VectorType(4, memref_of(f64))


class TestMemRefTypes:
    def test_dynamic_dim_str(self):
        assert str(memref_of(f64)) == "memref<?xf64>"

    def test_static_shape_str(self):
        assert str(memref_of(f64, 4, 8)) == "memref<4x8xf64>"

    def test_mixed_shape_str(self):
        assert str(memref_of(f64, None, 3)) == "memref<?x3xf64>"

    def test_rank(self):
        assert memref_of(f64).rank == 1
        assert memref_of(f64, None, None).rank == 2


class TestFunctionType:
    def test_single_result_str(self):
        ft = FunctionType((f64, f64), (f64,))
        assert str(ft) == "(f64, f64) -> f64"

    def test_multi_result_str(self):
        ft = FunctionType((f64,), (f64, f64))
        assert str(ft) == "(f64) -> (f64, f64)"

    def test_no_result_str(self):
        ft = FunctionType((index,), ())
        assert str(ft) == "(index) -> ()"


class TestHelpers:
    def test_element_type_scalar_identity(self):
        assert element_type(f64) is f64

    def test_element_type_vector(self):
        assert element_type(vector_of(8)) == f64

    def test_element_type_memref(self):
        assert element_type(memref_of(i32)) == i32

    def test_vector_width(self):
        assert vector_width(f64) == 1
        assert vector_width(vector_of(8)) == 8

    def test_broadcast_type_width_one_is_identity(self):
        assert broadcast_type(f64, 1) is f64

    def test_broadcast_type_widens(self):
        assert broadcast_type(f64, 4) == vector_of(4)

    def test_broadcast_type_of_vector_rebroadcasts_element(self):
        assert broadcast_type(vector_of(2), 4) == vector_of(4)


class TestParseType:
    @pytest.mark.parametrize("ty", [f64, f32, i1, i32, i64, index,
                                    vector_of(8), vector_of(2, i1),
                                    memref_of(f64), memref_of(f64, None,
                                                              None),
                                    memref_of(i32, 16)])
    def test_round_trip(self, ty):
        assert parse_type(str(ty)) == ty

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_type("f65")

    def test_whitespace_tolerated(self):
        assert parse_type("  f64 ") is f64
