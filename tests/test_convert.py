"""Tests for the Figure-1 external-format translators."""

import numpy as np
import pytest

from repro.codegen import generate_baseline, generate_limpet_mlir
from repro.convert import (CellMLError, MMTError, SBMLError,
                           cellml_to_easyml, mmt_to_easyml, parse_cellml,
                           parse_mmt, parse_sbml, sbml_to_easyml)
from repro.frontend import load_model
from repro.runtime import KernelRunner, compare_trajectories

CELLML_FHN = """<?xml version="1.0"?>
<model xmlns="http://www.cellml.org/cellml/1.0#" name="fhn_1961">
 <component name="membrane">
  <variable name="V" initial_value="-1.2"/>
  <variable name="w" initial_value="-0.6"/>
  <variable name="a" initial_value="0.7"/>
  <variable name="b" initial_value="0.8"/>
  <variable name="eps" initial_value="0.08"/>
  <variable name="time"/>
  <math xmlns="http://www.w3.org/1998/Math/MathML">
   <apply><eq/>
    <apply><diff/><bvar><ci>time</ci></bvar><ci>V</ci></apply>
    <apply><minus/>
     <apply><minus/><ci>V</ci>
      <apply><divide/>
       <apply><power/><ci>V</ci><cn>3</cn></apply><cn>3</cn></apply>
     </apply>
     <ci>w</ci>
    </apply>
   </apply>
   <apply><eq/>
    <apply><diff/><bvar><ci>time</ci></bvar><ci>w</ci></apply>
    <apply><times/><ci>eps</ci>
     <apply><minus/>
      <apply><plus/><ci>V</ci><ci>a</ci></apply>
      <apply><times/><ci>b</ci><ci>w</ci></apply>
     </apply>
    </apply>
   </apply>
  </math>
 </component>
</model>"""

CELLML_PIECEWISE = """<?xml version="1.0"?>
<model xmlns="http://www.cellml.org/cellml/1.0#" name="pw">
 <component name="c">
  <variable name="V" initial_value="-80"/>
  <variable name="g" initial_value="2.0"/>
  <variable name="x" initial_value="0.1"/>
  <variable name="time"/>
  <math xmlns="http://www.w3.org/1998/Math/MathML">
   <apply><eq/><ci>rate</ci>
    <piecewise>
     <piece><cn>1.5</cn>
      <apply><lt/><ci>V</ci><cn>-40</cn></apply></piece>
     <otherwise><apply><exp/>
      <apply><divide/><ci>V</ci><cn>25</cn></apply></apply></otherwise>
    </piecewise>
   </apply>
   <apply><eq/>
    <apply><diff/><bvar><ci>time</ci></bvar><ci>x</ci></apply>
    <apply><times/><ci>rate</ci>
     <apply><minus/><cn>1</cn><ci>x</ci></apply></apply>
   </apply>
   <apply><eq/>
    <apply><diff/><bvar><ci>time</ci></bvar><ci>V</ci></apply>
    <apply><times/>
     <apply><minus/><ci>g</ci></apply><ci>x</ci></apply>
   </apply>
  </math>
 </component>
</model>"""

MMT_SOURCE = """
[[model]]
# initial conditions
membrane.V = -84.0
ina.m = 0.002
ina.h = 0.98

[membrane]
C = 1.0
dot(V) = -(i_ion)
i_ion = ina.INa + 0.14 * (V + 85.0)

[ina]
use membrane.V as V
GNa = 4.0
ENa = 50.0
alpha = 0.9 * exp(-(V + 42.65) / 18.0)
beta = 1.4 * exp((V + 39.75) / 25.0)
dot(m) = alpha * (1 - m) - beta * m
dot(h) = if(V < -60.0, 0.1, 0.01) * (0.95 - h)
INa = GNa * m^3 * h * (V - ENa)
"""

SBML_SOURCE = """<?xml version="1.0"?>
<sbml xmlns="http://www.sbml.org/sbml/level2" level="2" version="4">
 <model id="toy_membrane">
  <listOfParameters>
   <parameter id="V" value="-80.0"/>
   <parameter id="g_leak" value="0.15"/>
   <parameter id="E_leak" value="-80.0"/>
   <parameter id="Iion" value="0"/>
   <parameter id="w" value="0.0"/>
  </listOfParameters>
  <listOfRules>
   <assignmentRule variable="Iion">
    <math xmlns="http://www.w3.org/1998/Math/MathML">
     <apply><plus/>
      <apply><times/><ci>g_leak</ci>
       <apply><minus/><ci>V</ci><ci>E_leak</ci></apply></apply>
      <apply><times/><cn>0.01</cn><ci>w</ci></apply>
     </apply>
    </math>
   </assignmentRule>
   <rateRule variable="w">
    <math xmlns="http://www.w3.org/1998/Math/MathML">
     <apply><minus/>
      <apply><times/><cn>0.003</cn>
       <apply><plus/><ci>V</ci><cn>80.0</cn></apply></apply>
      <apply><times/><cn>0.02</cn><ci>w</ci></apply>
     </apply>
    </math>
   </rateRule>
  </listOfRules>
 </model>
</sbml>"""


class TestCellML:
    def test_parse_structure(self):
        model = parse_cellml(CELLML_FHN)
        assert model.name == "fhn_1961"
        assert {"V", "w", "a", "b", "eps"} <= set(model.variables)
        assert len(model.odes) == 2

    def test_converted_model_analyzes(self):
        source = cellml_to_easyml(CELLML_FHN, lookup_vm=False)
        model = load_model(source, "FHN_CellML")
        assert model.states == ["w"]
        assert model.params == {"a": 0.7, "b": 0.8, "eps": 0.08}
        assert model.external_init["Vm"] == -1.2

    def test_voltage_ode_becomes_current(self):
        source = cellml_to_easyml(CELLML_FHN, lookup_vm=False)
        assert "Iion = -(" in source
        assert "diff_V" not in source

    def test_converted_model_runs_and_matches_native(self):
        """The CellML FitzHugh-Nagumo must track the suite's native
        FitzHughNagumo model (same equations, same trajectory)."""
        from repro.models import load_model as load_native
        source = cellml_to_easyml(CELLML_FHN, lookup_vm=False)
        converted = load_model(source, "FHN_CellML")
        native = load_native("FitzHughNagumo")
        kc = KernelRunner(generate_limpet_mlir(converted, 8))
        kn = KernelRunner(generate_limpet_mlir(native, 8))
        rc = kc.simulate(8, 400, 0.05)
        rn = kn.simulate(8, 400, 0.05)
        np.testing.assert_allclose(rc.state.external("Vm"),
                                   rn.state.external("Vm"), rtol=5e-3,
                                   atol=5e-3)

    def test_piecewise_becomes_ternary(self):
        source = cellml_to_easyml(CELLML_PIECEWISE, lookup_vm=False)
        assert "?" in source and ":" in source
        model = load_model(source, "PW")
        runner = KernelRunner(generate_baseline(model))
        result = runner.simulate(4, 50, 0.01)
        assert np.isfinite(result.state.external("Vm")).all()

    def test_scientific_notation_cn(self):
        xml = CELLML_FHN.replace('<cn>3</cn>',
                                 '<cn type="e-notation">3<sep/>0</cn>', 1)
        source = cellml_to_easyml(xml, lookup_vm=False)
        assert "3e0" in source

    def test_malformed_xml_rejected(self):
        with pytest.raises(CellMLError, match="malformed"):
            parse_cellml("<model>")

    def test_wrong_root_rejected(self):
        with pytest.raises(CellMLError, match="expected <model>"):
            parse_cellml("<sbml/>")

    def test_non_time_derivative_rejected(self):
        xml = CELLML_FHN.replace("<ci>time</ci>", "<ci>space</ci>")
        with pytest.raises(CellMLError, match="time derivatives"):
            parse_cellml(xml)


class TestMMT:
    def test_parse_flattens_names(self):
        model = parse_mmt(MMT_SOURCE)
        targets = [t for t, _, _ in model.assignments]
        assert "ina_INa" in targets
        assert model.voltage == "membrane_V"
        assert model.current == "membrane_i_ion"
        assert model.initials["ina_m"] == 0.002

    def test_converted_model_analyzes_and_runs(self):
        source = mmt_to_easyml(MMT_SOURCE, lookup_vm=False)
        model = load_model(source, "MMT")
        assert set(model.states) == {"ina_m", "ina_h"}
        assert model.init_values["ina_m"] == 0.002
        runner = KernelRunner(generate_limpet_mlir(model, 8))
        result = runner.simulate(8, 300, 0.01)
        vm = result.state.external("Vm")
        assert np.isfinite(vm).all()

    def test_power_operator_rewritten(self):
        source = mmt_to_easyml(MMT_SOURCE, lookup_vm=False)
        assert "^" not in source
        assert "pow(ina_m, 3)" in source

    def test_if_function_becomes_ternary(self):
        source = mmt_to_easyml(MMT_SOURCE, lookup_vm=False)
        assert "if(" not in source
        assert "?" in source

    def test_equivalence_between_backends(self):
        source = mmt_to_easyml(MMT_SOURCE, lookup_vm=False)
        model = load_model(source, "MMT")
        base = KernelRunner(generate_baseline(model))
        vec = KernelRunner(generate_limpet_mlir(model, 4))
        r1 = base.simulate(6, 100, 0.01, perturbation=0.01)
        r2 = vec.simulate(6, 100, 0.01, perturbation=0.01)
        assert compare_trajectories(r1.state, r2.state)

    def test_statement_outside_component_rejected(self):
        with pytest.raises(MMTError, match="outside"):
            parse_mmt("x = 1")

    def test_unparsable_line_rejected(self):
        with pytest.raises(MMTError):
            parse_mmt("[c]\nx ~ y")

    def test_model_without_current_rejected(self):
        with pytest.raises(MMTError, match="i_ion"):
            mmt_to_easyml("[[model]]\n[c]\nx = 1.0\n")


class TestSBML:
    def test_parse_structure(self):
        model = parse_sbml(SBML_SOURCE)
        assert model.name == "toy_membrane"
        assert model.parameters["g_leak"] == 0.15
        assert len(model.rates) == 1

    def test_converted_model_analyzes_and_runs(self):
        source = sbml_to_easyml(SBML_SOURCE, lookup_vm=False)
        model = load_model(source, "SBML")
        assert model.states == ["w"]
        assert "Iion" in model.outputs
        runner = KernelRunner(generate_limpet_mlir(model, 8))
        result = runner.simulate(8, 200, 0.01)
        assert np.isfinite(result.state.external("Vm")).all()

    def test_vm_initial_from_parameter(self):
        source = sbml_to_easyml(SBML_SOURCE, lookup_vm=False)
        model = load_model(source, "SBML")
        assert model.external_init["Vm"] == -80.0

    def test_missing_model_rejected(self):
        with pytest.raises(SBMLError, match="no <model>"):
            parse_sbml('<sbml xmlns="http://www.sbml.org/sbml/level2"/>')

    def test_wrong_root_rejected(self):
        with pytest.raises(SBMLError, match="expected <sbml>"):
            parse_sbml("<model/>")

    def test_unsupported_rule_rejected(self):
        bad = SBML_SOURCE.replace("rateRule", "algebraicRule")
        with pytest.raises(SBMLError):
            parse_sbml(bad)
