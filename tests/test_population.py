"""Population-batched execution: bitwise differential vs loop-of-N,
cache/tuning-DB keying on the population shape, throughput accounting,
spec validation, legality findings, foreign fallback, sharding plans."""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.codegen import (check_population_legality, generate_baseline,
                           generate_limpet_mlir)
from repro.frontend import load_model as load_source
from repro.frontend.analysis import SemanticError
from repro.models import load_model
from repro.obs import metrics as _metrics
from repro.population import (PopulationRunner, PopulationSpec,
                              instance_shard_plan, load_promoted_model,
                              parse_range, sweep)
from repro.runtime import (KernelCache, KernelRunner, ShardedRunner,
                           kernel_cache_key, multiprocess_supported)
from repro.runtime.executor import RunResult
from repro.tuning import TuningConfig, Workload, enumerate_space
from repro.tuning.database import tuning_db_key

needs_mp = pytest.mark.skipif(not multiprocess_supported(),
                              reason="platform lacks fork/shared_memory")

#: a small LUT model with a promotable conductance — fast to compile
MODEL, PARAM = "LuoRudy91", "GK"


def promoted(name=MODEL, params=(PARAM,)):
    return load_promoted_model(name, tuple(params))


def loop_of_n(generated, spec, c, n_steps, dt=0.01, **runner_kwargs):
    """The pre-population shape: N sequential single-instance runs of
    the *same* promoted kernel, stacked instance-major."""
    runner = KernelRunner(generated, **runner_kwargs)
    blocks = []
    for i in range(spec.n_instances):
        values = {name: float(spec.values[name][i])
                  for name in spec.values}
        state = runner.make_state(c, param_values=values)
        runner.run(state, n_steps, dt)
        blocks.append(state.state_matrix())
    return blocks


# ---------------------------------------------------------------------------
# PopulationSpec
# ---------------------------------------------------------------------------


class TestPopulationSpec:
    def test_basic(self):
        spec = PopulationSpec({"GK": [0.1, 0.2, 0.3]})
        assert spec.n_instances == 3
        assert spec.param_names == ("GK",)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PopulationSpec({})

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="3 values"):
            PopulationSpec({"a": [1.0, 2.0], "b": [1.0, 2.0, 3.0]})

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            PopulationSpec({"a": [1.0, np.nan]})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PopulationSpec({"a": []})

    def test_scalar_promoted_to_one_instance(self):
        assert PopulationSpec({"a": 2.0}).n_instances == 1

    def test_fingerprint_is_shape_not_values(self):
        a = PopulationSpec({"GK": [0.1, 0.2]})
        b = PopulationSpec({"GK": [5.0, 9.0]})
        assert a.fingerprint() == b.fingerprint() == "params=GK;n=2"

    def test_fingerprint_sorts_names(self):
        a = PopulationSpec({"b": [1.0], "a": [2.0]})
        b = PopulationSpec({"a": [1.0], "b": [2.0]})
        assert a.fingerprint() == b.fingerprint() == "params=a,b;n=1"

    def test_fingerprint_distinguishes_n(self):
        assert PopulationSpec({"a": [1.0]}).fingerprint() != \
            PopulationSpec({"a": [1.0, 2.0]}).fingerprint()

    def test_parse_range(self):
        assert parse_range("0.1:1.0:4") == (0.1, 1.0, 4)
        assert parse_range("0.5:2.0") == (0.5, 2.0, 16)

    @pytest.mark.parametrize("text", ["1.0", "a:b:4", "1:2:0", "1:2:3:4"])
    def test_parse_range_rejects(self, text):
        with pytest.raises(ValueError):
            parse_range(text)

    def test_from_ranges_scales_declared_value(self):
        model = load_model(MODEL)
        spec = PopulationSpec.from_ranges(model, {PARAM: "0.5:1.0:3"})
        expected = np.linspace(0.5, 1.0, 3) * model.params[PARAM]
        assert np.array_equal(spec.values[PARAM], expected)

    def test_from_ranges_absolute(self):
        model = load_model(MODEL)
        spec = PopulationSpec.from_ranges(model, {PARAM: "0.5:1.0:3"},
                                          absolute=True)
        assert np.array_equal(spec.values[PARAM],
                              np.linspace(0.5, 1.0, 3))

    def test_from_ranges_unknown_param(self):
        with pytest.raises(ValueError, match="not a declared"):
            PopulationSpec.from_ranges(load_model(MODEL),
                                       {"nope": "0.1:1.0:4"})

    def test_from_ranges_count_mismatch(self):
        model = load_model("Courtemanche")
        with pytest.raises(ValueError, match="instances"):
            PopulationSpec.from_ranges(
                model, {"GKr": "0.1:1.0:4", "GNa": "0.1:1.0:8"})


# ---------------------------------------------------------------------------
# Parameter promotion (frontend + codegen ABI)
# ---------------------------------------------------------------------------


class TestPromotion:
    def test_promoted_param_becomes_kernel_argument(self):
        generated = generate_limpet_mlir(promoted(), width=4)
        names = generated.spec.argument_names()
        assert f"param_{PARAM}" in names
        # between the externals and the LUT tables
        assert names.index(f"param_{PARAM}") < \
            min(i for i, n in enumerate(names) if n.startswith("lut_"))

    def test_unpromoted_model_has_no_param_arguments(self):
        generated = generate_limpet_mlir(load_model(MODEL), width=4)
        assert not [n for n in generated.spec.argument_names()
                    if n.startswith("param_")]

    def test_unknown_promote_name_rejected(self):
        with pytest.raises(SemanticError):
            load_promoted_model(MODEL, ("not_a_param",))

    def test_promoted_analysis_is_cached(self):
        assert promoted() is promoted()

    def test_init_param_uses_recorded(self):
        model = load_source("g = 2; .param(); diff_x = -g*x; x_init = g;",
                            promote_params=("g",))
        assert "g" in model.init_param_uses
        assert model.promoted_params == ("g",)


# ---------------------------------------------------------------------------
# Legality
# ---------------------------------------------------------------------------


class TestPopulationLegality:
    def test_legal_promotion_is_clean(self):
        report = check_population_legality(promoted(), (PARAM,))
        assert report.vectorizable
        assert not report.findings

    def test_unknown_name_is_blocker(self):
        report = check_population_legality(load_model(MODEL), ("nope",))
        assert not report.vectorizable

    def test_foreign_model_warns_not_blocks(self):
        model = load_promoted_model("ARPF", ("GK",))
        report = check_population_legality(model, ("GK",))
        assert report.vectorizable
        assert any("foreign" in f.message for f in report.findings)

    def test_init_use_warns(self):
        model = load_source("g = 2; .param(); diff_x = -g*x; x_init = g;",
                            promote_params=("g",))
        report = check_population_legality(model, ("g",))
        assert report.vectorizable
        assert any("_init" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# Instance-axis shard planning
# ---------------------------------------------------------------------------


class TestInstanceShardPlan:
    def test_even_split(self):
        assert instance_shard_plan(4, 8, 2, 4) == [(0, 16), (16, 32)]

    def test_uneven_instances(self):
        plan = instance_shard_plan(5, 8, 2, 4)
        assert plan == [(0, 24), (24, 40)]

    def test_ragged_cells_returns_none(self):
        assert instance_shard_plan(4, 7, 2, 4) is None

    def test_more_shards_than_instances_clamped(self):
        plan = instance_shard_plan(2, 8, 16, 4)
        assert plan == [(0, 8), (8, 16)]

    def test_bounds_are_instance_aligned_and_cover(self):
        plan = instance_shard_plan(7, 16, 3, 8)
        assert plan[0][0] == 0 and plan[-1][1] == 7 * 16
        for start, end in plan:
            assert start % 16 == 0 and end % 16 == 0


# ---------------------------------------------------------------------------
# Bitwise differential: batched vs loop-of-N, same promoted kernel
# ---------------------------------------------------------------------------


SPEC3 = {PARAM: "0.25:1.0:3"}


def make_spec(model):
    return PopulationSpec.from_ranges(model, SPEC3)


class TestBitwiseDifferential:
    @pytest.mark.parametrize("layout,width", [
        ("aos", 2), ("aos", 4), ("aosoa", 4), ("aosoa", 8), ("soa", 4),
    ])
    def test_layouts_and_widths(self, layout, width):
        model = promoted()
        spec = make_spec(model)
        pop = PopulationRunner(model, spec, width=width, layout=layout)
        result = pop.simulate(cells_per_instance=13, n_steps=8)
        loop = loop_of_n(pop.generated, spec, 13, 8)
        for i in range(spec.n_instances):
            assert np.array_equal(result.instance_state_matrix(i),
                                  loop[i]), f"instance {i} diverged"
        pop.close()

    def test_instances_actually_differ(self):
        model = promoted()
        spec = make_spec(model)
        with PopulationRunner(model, spec, width=4) as pop:
            result = pop.simulate(cells_per_instance=8, n_steps=8)
        assert not np.array_equal(result.instance_state_matrix(0),
                                  result.instance_state_matrix(2))

    def test_sharded_instance_axis(self):
        model = promoted()
        spec = make_spec(model)
        pop = PopulationRunner(model, spec, width=4, n_threads=3,
                               shard_axis="instances")
        result = pop.simulate(cells_per_instance=8, n_steps=8)
        assert isinstance(pop.runner_for(8), ShardedRunner)
        loop = loop_of_n(pop.generated, spec, 8, 8)
        for i in range(spec.n_instances):
            assert np.array_equal(result.instance_state_matrix(i), loop[i])
        pop.close()

    def test_sharded_ragged_falls_back_to_cell_axis(self):
        model = promoted()
        spec = make_spec(model)
        # 23 % 4 != 0: no instance-aligned plan exists — must still run
        pop = PopulationRunner(model, spec, width=4, n_threads=2,
                               shard_axis="instances")
        assert pop._shard_plan(23, 2) is None
        result = pop.simulate(cells_per_instance=23, n_steps=6)
        loop = loop_of_n(pop.generated, spec, 23, 6)
        for i in range(spec.n_instances):
            assert np.array_equal(result.instance_state_matrix(i), loop[i])
        pop.close()

    @needs_mp
    def test_supervised_tier(self):
        model = promoted()
        spec = make_spec(model)
        pop = PopulationRunner(model, spec, width=4, n_workers=2)
        try:
            result = pop.simulate(cells_per_instance=8, n_steps=6)
            loop = loop_of_n(pop.generated, spec, 8, 6)
            for i in range(spec.n_instances):
                assert np.array_equal(result.instance_state_matrix(i),
                                      loop[i])
        finally:
            pop.close()

    def test_foreign_model_batches_through_baseline(self):
        model = load_promoted_model("ARPF", ("GK",))
        spec = PopulationSpec.from_ranges(model, {"GK": "0.5:1.0:2"})
        with PopulationRunner(model, spec) as pop:
            assert pop.foreign
            result = pop.simulate(cells_per_instance=5, n_steps=4)
        generated = generate_baseline(model)
        loop = loop_of_n(generated, spec, 5, 4)
        for i in range(spec.n_instances):
            assert np.array_equal(result.instance_state_matrix(i), loop[i])

    def test_stimulus_applies_to_every_instance(self):
        from repro.runtime import Stimulus
        model = promoted()
        spec = make_spec(model)
        stim = Stimulus(amplitude=-40.0, duration=0.5, period=100.0)
        with PopulationRunner(model, spec, width=4) as pop:
            state = pop.make_state(4)
            result = pop.run(state, 10, 0.01, stimulus=stim,
                             record_vm=True)
        for i in range(spec.n_instances):
            assert result.vm_trace_of(i).max() > \
                result.vm_trace_of(i)[0]


# ---------------------------------------------------------------------------
# Results: per-instance views + throughput accounting
# ---------------------------------------------------------------------------


class TestPopulationResult:
    @pytest.fixture(scope="class")
    def result(self):
        model = promoted()
        spec = make_spec(model)
        with PopulationRunner(model, spec, width=4) as pop:
            return pop.simulate(cells_per_instance=8, n_steps=6,
                                record_vm=True)

    def test_vm_traces_shape(self, result):
        assert result.vm_traces.shape == (6, 3)
        assert result.vm_trace_of(1).shape == (6,)

    def test_instance_param(self, result):
        model = load_model(MODEL)
        assert result.instance_param(PARAM, 2) == \
            pytest.approx(model.params[PARAM])

    def test_index_out_of_range(self, result):
        with pytest.raises(IndexError):
            result.instance_state_matrix(3)
        with pytest.raises(IndexError):
            result.vm_trace_of(-1)

    def test_flat_throughput_spans_all_instances(self, result):
        # the flat state has N x c cells, so no extra multiplier
        assert result.flat.instances == 1
        assert result.flat.state.n_cells == 24
        assert result.cell_steps_per_second == \
            pytest.approx(result.flat.cell_steps_per_second)

    def test_carved_results_keep_kernel_throughput(self, result):
        carved = result.instance_result(1)
        assert carved.instances == 3
        assert carved.state.n_cells == 8
        # 8 cells x 3 instances == the flat 24-cell throughput
        assert carved.cell_steps_per_second == \
            pytest.approx(result.cell_steps_per_second)
        assert np.array_equal(carved.state.state_matrix(),
                              result.instance_state_matrix(1))

    def test_plain_run_result_defaults_to_one_instance(self):
        runner = KernelRunner(generate_limpet_mlir(load_model(MODEL),
                                                   width=4))
        run = runner.simulate(8, 4, dt=0.01)
        assert run.instances == 1
        assert run.cell_steps_per_second == \
            pytest.approx(run.steps_per_second * 8)


# ---------------------------------------------------------------------------
# Cache + tuning-DB keying on the population shape
# ---------------------------------------------------------------------------


class TestPopulationKeys:
    def test_kernel_cache_key_gains_population_line(self):
        generated = generate_limpet_mlir(promoted(), width=4)
        plain = kernel_cache_key(generated, "pipe", True, False, True)
        keyed = kernel_cache_key(generated, "pipe", True, False, True,
                                 population="params=GK;n=4")
        assert plain != keyed
        # shape-keyed: N matters, values never enter the key
        other_n = kernel_cache_key(generated, "pipe", True, False, True,
                                   population="params=GK;n=8")
        assert keyed != other_n

    def test_empty_population_leaves_legacy_keys_unchanged(self):
        generated = generate_limpet_mlir(load_model(MODEL), width=4)
        assert kernel_cache_key(generated, "pipe", True, False, True) == \
            kernel_cache_key(generated, "pipe", True, False, True,
                             population="")

    def test_one_compile_serves_same_shape_sweeps(self, tmp_path):
        model = promoted()
        cache = KernelCache(tmp_path / "kernels")
        spec_a = PopulationSpec.from_ranges(model, {PARAM: "0.2:1.0:3"})
        with PopulationRunner(model, spec_a, width=4,
                              cache=cache) as pop:
            pop.runner_for(8)
            assert not pop.cache_hit        # cold: this is the compile
            key_a = pop.cache_key
        # different values, same shape: pure cache hit
        spec_b = PopulationSpec.from_ranges(model, {PARAM: "0.5:2.0:3"})
        with PopulationRunner(model, spec_b, width=4,
                              cache=cache) as pop:
            pop.runner_for(8)
            assert pop.cache_hit
            assert pop.cache_key == key_a
        # different N: different shape, different entry
        spec_c = PopulationSpec.from_ranges(model, {PARAM: "0.2:1.0:5"})
        with PopulationRunner(model, spec_c, width=4,
                              cache=cache) as pop:
            pop.runner_for(8)
            assert not pop.cache_hit
            assert pop.cache_key != key_a

    def test_tuning_db_key_gains_population_line(self):
        model = load_model(MODEL)
        plain = tuning_db_key(Workload.from_model(model, 64, 0.01))
        keyed = tuning_db_key(Workload.from_model(
            model, 64, 0.01, population="params=GK;n=4"))
        other = tuning_db_key(Workload.from_model(
            model, 64, 0.01, population="params=GK;n=8"))
        assert len({plain, keyed, other}) == 3
        # no population: byte-identical to the legacy key (no format bump)
        again = tuning_db_key(Workload.from_model(model, 64, 0.01))
        assert plain == again

    def test_tuning_space_gains_instance_axis(self):
        model = load_model(MODEL)
        space = enumerate_space(model, shard_counts=(1, 2),
                                population_instances=4)
        axes = {c.shard_axis for c in space}
        assert axes == {"cells", "instances"}
        # without a population there is nothing to shard by instance
        plain = enumerate_space(model, shard_counts=(1, 2))
        assert {c.shard_axis for c in plain} == {"cells"}

    def test_tuning_config_validates_shard_axis(self):
        with pytest.raises(ValueError):
            TuningConfig(shard_axis="diagonal")


# ---------------------------------------------------------------------------
# sweep(): the one-call API + metrics
# ---------------------------------------------------------------------------


class TestSweepAPI:
    def test_sweep_runs_and_reports_shape(self, tmp_path):
        cache = KernelCache(tmp_path / "kernels")
        result = sweep(MODEL, {PARAM: "0.5:1.0:3"},
                       cells_per_instance=6, n_steps=4, cache=cache)
        assert result.n_instances == 3
        assert result.cells_per_instance == 6
        assert result.flat.state.n_cells == 18
        assert not result.compile_reused

    def test_second_sweep_reuses_compile_and_counts_it(self, tmp_path):
        _metrics.reset()
        cache = KernelCache(tmp_path / "kernels")
        sweep(MODEL, {PARAM: "0.5:1.0:3"}, cells_per_instance=6,
              n_steps=2, cache=cache)
        result = sweep(MODEL, {PARAM: "0.1:0.9:3"}, cells_per_instance=6,
                       n_steps=2, cache=cache)
        assert result.compile_reused
        reuse = _metrics.default_registry().get(
            "sweep_compile_reuse_total")
        assert reuse is not None and reuse.value >= 1
        gauge = _metrics.default_registry().get("population_instances")
        assert gauge is not None and gauge.value == 3

    def test_sweep_rejects_unknown_param(self):
        with pytest.raises(SemanticError, match="unknown parameter"):
            sweep(MODEL, {"nope": "0.1:1.0:2"}, cells_per_instance=4,
                  n_steps=1)

    def test_run_rejects_misshapen_state(self):
        model = promoted()
        spec = make_spec(model)
        with PopulationRunner(model, spec, width=4) as pop:
            runner = pop.runner_for(4)
            bad = runner.make_state(7)     # 7 % 3 != 0
            with pytest.raises(ValueError, match="multiple"):
                pop.run(bad, 2, 0.01)
