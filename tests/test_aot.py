"""AOT artifact bundles: build-all, the read-only tier, the audit.

The contract under test (DESIGN.md §12): ``build_bundle`` compiles the
zoo once into a versioned bundle; a fresh process pointed at it cold-
starts with zero compile work and a bitwise-identical trajectory; the
audit catches every way the bundle can drift stale; and the kernel
cache underneath tolerates a read-only mount without ever writing.
"""

import json
import os

import numpy as np
import pytest

from repro.aot import (BUNDLE_FORMAT_VERSION, ArtifactStore, audit_bundle,
                       build_bundle, runner_from_store)
from repro.codegen import generate_limpet_mlir
from repro.models import load_model
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer
from repro.runtime.executor import KernelRunner
from repro.runtime.kernel_cache import KernelCache, payload_checksum

COMPILE_SPANS = {"passes", "verify", "lowering"}


def _metric(name):
    metric = obs_metrics.default_registry().get(name)
    return metric.value if metric is not None else 0


def _span_names(tracer):
    return {e["name"] for e in tracer.to_chrome()["traceEvents"]
            if e.get("ph") == "X"}


def _tamper(root, key, mutate):
    """Edit one bundle entry in place, keeping its checksum valid."""
    path = root / f"{key}.json"
    entry = json.loads(path.read_text())
    mutate(entry)
    entry["checksum"] = payload_checksum(entry)
    path.write_text(json.dumps(entry))


@pytest.fixture
def bundle(tmp_path):
    """A built single-model bundle (Plonsey, width 8) + its store."""
    root = tmp_path / "bundle"
    report = build_bundle(root, models=["Plonsey"], include_tuned=False,
                          width=8)
    assert report.built == 1 and not report.failed
    return root


# ---------------------------------------------------------------------------
# build-all: the bundle writer
# ---------------------------------------------------------------------------


class TestBuildBundle:
    def test_bundle_layout(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["format"] == BUNDLE_FORMAT_VERSION
        assert len(manifest["entries"]) == 1
        (key,) = manifest["entries"]
        entry = json.loads((bundle / f"{key}.json").read_text())
        assert entry["key"] == key
        assert entry["checksum"] == payload_checksum(entry)
        assert entry["spec"]["model"] == "Plonsey"
        assert entry["kernel"]["source"]
        assert entry["provenance"]["pipeline_fingerprint"]
        assert manifest["spec_index"][entry["spec_fingerprint"]] == key

    def test_second_build_is_a_byte_level_noop(self, bundle):
        manifest_path = bundle / "manifest.json"
        before_bytes = manifest_path.read_bytes()
        before_mtime = manifest_path.stat().st_mtime_ns
        report = build_bundle(bundle, models=["Plonsey"],
                              include_tuned=False, width=8)
        assert report.built == 0 and report.reused == 1
        assert "(manifest unchanged)" in report.describe()
        assert manifest_path.read_bytes() == before_bytes
        assert manifest_path.stat().st_mtime_ns == before_mtime

    def test_foreign_model_gets_baseline_entry(self, tmp_path):
        report = build_bundle(tmp_path, models=["ARPF"],
                              include_tuned=False, width=8)
        assert report.built == 1 and not report.failed
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        (key,) = manifest["entries"]
        entry = json.loads((tmp_path / f"{key}.json").read_text())
        assert entry["spec"]["backend"] == "baseline"
        assert entry["spec"]["width"] == 1

    def test_model_blob_written_and_verified(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        record = manifest["models"]["Plonsey"]
        blob_path = bundle / record["file"]
        assert blob_path.exists()
        store = ArtifactStore(bundle)
        model = store.load_model_blob("Plonsey")
        assert model is not None and model.name == "Plonsey"
        # a stale source hash is a soft miss, never an error
        assert store.load_model_blob("Plonsey",
                                     source_hash="0" * 64) is None

    def test_corrupt_model_blob_is_soft_miss(self, bundle):
        corrupt = _metric("artifact_corrupt_total")
        blob_path = bundle / "models" / "Plonsey.pkl"
        blob_path.write_bytes(b"not a pickle")
        store = ArtifactStore(bundle)
        assert store.load_model_blob("Plonsey") is None
        assert _metric("artifact_corrupt_total") == corrupt + 1
        # the fast path still works -- it parses instead
        runner = runner_from_store("Plonsey", width=8, store=store)
        assert runner is not None and runner.artifact_hit


# ---------------------------------------------------------------------------
# the runtime tiers: key lookup under KernelRunner, spec fast path
# ---------------------------------------------------------------------------


class TestArtifactTier:
    def test_key_tier_bitwise_identical_and_zero_compile(self, bundle):
        jit = KernelRunner(
            generate_limpet_mlir(load_model("Plonsey"), width=8),
            cache=None, artifacts=False)
        assert not jit.artifact_hit

        hits = _metric("artifact_hits_total")
        load_model.cache_clear()
        tracer = Tracer()
        previous = obs_trace.activate(tracer)
        try:
            runner = KernelRunner(
                generate_limpet_mlir(load_model("Plonsey"), width=8),
                cache=None, artifacts=ArtifactStore(bundle))
        finally:
            obs_trace.deactivate(previous)
        assert runner.artifact_hit
        assert _metric("artifact_hits_total") == hits + 1
        assert not (COMPILE_SPANS & _span_names(tracer))

        ref = jit.run(jit.make_state(32), 40, 0.01)
        got = runner.run(runner.make_state(32), 40, 0.01)
        assert np.array_equal(ref.state.state_matrix(),
                              got.state.state_matrix())

    def test_spec_fast_path_skips_irgen_entirely(self, bundle):
        load_model.cache_clear()
        tracer = Tracer()
        previous = obs_trace.activate(tracer)
        try:
            runner = runner_from_store("Plonsey", width=8,
                                       store=ArtifactStore(bundle))
        finally:
            obs_trace.deactivate(previous)
        assert runner is not None and runner.artifact_hit
        # the bundled model blob replaces even the parse + frontend
        spans = _span_names(tracer)
        assert not ((COMPILE_SPANS | {"parse", "frontend", "irgen"})
                    & spans)

        jit = KernelRunner(
            generate_limpet_mlir(load_model("Plonsey"), width=8),
            cache=None, artifacts=False)
        ref = jit.run(jit.make_state(16), 20, 0.01)
        got = runner.run(runner.make_state(16), 20, 0.01)
        assert np.array_equal(ref.state.state_matrix(),
                              got.state.state_matrix())

    def test_spec_miss_returns_none(self, bundle):
        misses = _metric("artifact_misses_total")
        assert runner_from_store("Plonsey", width=16,
                                 store=ArtifactStore(bundle)) is None
        assert _metric("artifact_misses_total") == misses + 1

    def test_env_var_mounts_the_tier(self, bundle, monkeypatch):
        monkeypatch.setenv("LIMPET_ARTIFACT_DIR", str(bundle))
        runner = KernelRunner(
            generate_limpet_mlir(load_model("Plonsey"), width=8),
            cache=None)
        assert runner.artifact_hit

        monkeypatch.setenv("LIMPET_ARTIFACTS", "off")
        runner = KernelRunner(
            generate_limpet_mlir(load_model("Plonsey"), width=8),
            cache=None)
        assert not runner.artifact_hit

    def test_corrupt_entry_left_in_place_and_missed(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        (key,) = manifest["entries"]
        path = bundle / f"{key}.json"
        path.write_text(path.read_text()[:40])
        corrupt = _metric("artifact_corrupt_total")
        store = ArtifactStore(bundle)
        assert store.lookup_kernel(key) is None
        assert _metric("artifact_corrupt_total") == corrupt + 1
        assert path.exists(), "runtime tier must never mutate the bundle"

    def test_metrics_reach_prometheus_exposition(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        (key,) = manifest["entries"]
        store = ArtifactStore(bundle)
        assert store.lookup_kernel(key) is not None
        assert store.lookup_kernel("f" * 64) is None
        text = obs_metrics.to_prometheus()
        assert "# TYPE artifact_hits_total counter" in text
        assert "# TYPE artifact_misses_total counter" in text
        # registered by the build the fixture ran in this process
        assert "# TYPE artifact_build_seconds histogram" in text

    def test_run_result_carries_cold_start_fields(self, bundle):
        runner = runner_from_store("Plonsey", width=8,
                                   store=ArtifactStore(bundle))
        result = runner.run(runner.make_state(16), 5, 0.01)
        assert result.compile_seconds == runner.compile_seconds
        assert result.time_to_first_step is not None
        assert result.time_to_first_step >= result.compile_seconds


# ---------------------------------------------------------------------------
# the audit: every drift axis, independently
# ---------------------------------------------------------------------------


class TestAudit:
    def _key(self, bundle):
        manifest = json.loads((bundle / "manifest.json").read_text())
        (key,) = manifest["entries"]
        return key

    def _kinds(self, report):
        return {f.kind for f in report.findings}

    def test_fresh_bundle_is_clean(self, bundle):
        report = audit_bundle(bundle)
        assert report.ok and not report.findings
        assert report.checked == 1

    def test_pipeline_drift(self, bundle):
        _tamper(bundle, self._key(bundle), lambda e: e["provenance"]
                .__setitem__("pipeline_fingerprint", "bogus"))
        report = audit_bundle(bundle)
        assert not report.ok and self._kinds(report) == {"pipeline_drift"}

    def test_lowering_drift(self, bundle, monkeypatch):
        monkeypatch.setattr("repro.runtime.lowering.LOWERING_VERSION", 99)
        report = audit_bundle(bundle)
        assert not report.ok and "lowering_drift" in self._kinds(report)

    def test_source_drift(self, bundle):
        _tamper(bundle, self._key(bundle), lambda e: e["provenance"]
                .__setitem__("model_source_hash", "0" * 64))
        report = audit_bundle(bundle)
        assert not report.ok and self._kinds(report) == {"source_drift"}

    def test_key_mismatch_on_spec_edit(self, bundle):
        def flip_lut(entry):
            entry["spec"]["use_lut"] = not entry["spec"]["use_lut"]
        _tamper(bundle, self._key(bundle), flip_lut)
        report = audit_bundle(bundle)
        assert not report.ok and "key_mismatch" in self._kinds(report)

    def test_missing_entry(self, bundle):
        key = self._key(bundle)
        (bundle / f"{key}.json").unlink()
        report = audit_bundle(bundle)
        assert not report.ok and self._kinds(report) == {"missing"}

    def test_corrupt_entry_quarantined(self, bundle):
        key = self._key(bundle)
        path = bundle / f"{key}.json"
        path.write_text(path.read_text()[:40])
        report = audit_bundle(bundle)
        assert not report.ok and self._kinds(report) == {"corrupt"}
        assert not path.exists()
        assert (bundle / "quarantine" / f"{key}.json").exists()

    def test_stale_counter_increments(self, bundle):
        stale = _metric("artifact_stale_total")
        _tamper(bundle, self._key(bundle), lambda e: e["provenance"]
                .__setitem__("pipeline_fingerprint", "bogus"))
        audit_bundle(bundle)
        assert _metric("artifact_stale_total") == stale + 1

    def test_tuning_drift(self, tmp_path):
        from repro.tuning.database import TuningDB, tuning_db_key
        from repro.tuning.space import TuningConfig, Workload

        model = load_model("Plonsey")
        workload = Workload.from_model(model, 64, 0.01)
        config = TuningConfig(width=4, layout="soa")
        db = TuningDB(tmp_path / "tune.json")
        db.put(tuning_db_key(workload), {
            "workload": {"model": workload.model,
                         "n_cells": workload.n_cells,
                         "dt": workload.dt,
                         "integrator": workload.integrator,
                         "machine": workload.machine},
            "config": config.as_dict()})

        root = tmp_path / "bundle"
        report = build_bundle(root, models=["Plonsey"], db=db, width=8)
        assert report.built == 2, "default + tuned variant expected"
        assert audit_bundle(root, db=db).ok

        db.clear()
        drifted = audit_bundle(root, db=db)
        assert not drifted.ok
        assert self._kinds(drifted) == {"tuning_drift"}


# ---------------------------------------------------------------------------
# satellite: the kernel cache under a read-only mount
# ---------------------------------------------------------------------------


class TestReadOnlyKernelCache:
    KEY = "a" * 64

    def _seed(self, root):
        cache = KernelCache(root)
        cache.store(self.KEY, "def k(): pass", "vector", 8, [], "k",
                    fused=False, arena=False)
        return cache

    def test_read_only_serves_disk_hits_without_writing(self, tmp_path):
        self._seed(tmp_path)
        before = {p.name: p.read_bytes() for p in tmp_path.iterdir()
                  if p.is_file()}
        cache = KernelCache(tmp_path, read_only=True)
        assert cache.read_only
        assert cache.load(self.KEY) is not None
        assert cache.load("b" * 64) is None
        # stores land in the overlay, visible to this process only
        cache.store("b" * 64, "def k2(): pass", "vector", 8, [], "k2",
                    fused=False, arena=False)
        assert cache.load("b" * 64) is not None
        after = {p.name: p.read_bytes() for p in tmp_path.iterdir()
                 if p.is_file()}
        assert after == before, "read-only cache wrote to disk"

    def test_read_only_never_bumps_stats_or_mtimes(self, tmp_path):
        seeded = self._seed(tmp_path)
        seeded.load(self.KEY)                    # creates stats.json
        stats_path = tmp_path / "stats.json"
        stats_before = stats_path.read_bytes()
        entry_mtime = (tmp_path / f"{self.KEY}.json").stat().st_mtime_ns
        cache = KernelCache(tmp_path, read_only=True)
        cache.load(self.KEY)
        cache.load("c" * 64)
        assert stats_path.read_bytes() == stats_before
        assert (tmp_path / f"{self.KEY}.json").stat().st_mtime_ns \
            == entry_mtime, "read-only hit refreshed LRU recency"

    def test_corrupt_entry_left_in_place_read_only(self, tmp_path):
        self._seed(tmp_path)
        path = tmp_path / f"{self.KEY}.json"
        path.write_text("{ torn")
        cache = KernelCache(tmp_path, read_only=True)
        assert cache.load(self.KEY) is None
        assert path.exists()
        assert not (tmp_path / "quarantine").exists()

    def test_store_failure_degrades_to_read_only(self, tmp_path,
                                                 monkeypatch):
        self._seed(tmp_path)
        fallbacks = _metric("cache_readonly_fallbacks_total")
        cache = KernelCache(tmp_path)

        def deny(path):
            raise OSError(30, "Read-only file system")
        monkeypatch.setattr("repro.runtime.kernel_cache.file_lock", deny)
        cache.store("b" * 64, "def k2(): pass", "vector", 8, [], "k2",
                    fused=False, arena=False)
        assert cache.read_only and not cache.in_memory
        assert _metric("cache_readonly_fallbacks_total") == fallbacks + 1
        # prior disk entries keep hitting; the failed store is overlaid
        assert cache.load(self.KEY) is not None
        assert cache.load("b" * 64) is not None

    def test_unwritable_root_detected_at_open(self, tmp_path):
        root = tmp_path / "mount"
        self._seed(root)
        os.chmod(root, 0o555)
        try:
            if os.access(root, os.W_OK):
                pytest.skip("privileged process ignores directory modes")
            cache = KernelCache(root)
            assert cache.read_only
            assert cache.load(self.KEY) is not None
        finally:
            os.chmod(root, 0o755)


# ---------------------------------------------------------------------------
# the CLI surface + the cold-start harness
# ---------------------------------------------------------------------------


class TestArtifactCLI:
    def run_cli(self, capsys, *argv):
        from repro.cli import main
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_build_all_then_list_then_audit(self, tmp_path, capsys):
        dest = str(tmp_path / "bundle")
        code, out = self.run_cli(capsys, "build-all", "--dest", dest,
                                 "--models", "Plonsey", "--no-tuned")
        assert code == 0 and "1 built" in out
        code, out = self.run_cli(capsys, "artifacts", "list",
                                 "--dir", dest)
        assert code == 0 and "Plonsey" in out
        code, out = self.run_cli(capsys, "artifacts", "audit",
                                 "--dir", dest)
        assert code == 0 and "all current" in out

    def test_audit_fails_loud_on_drift(self, tmp_path, capsys):
        dest = tmp_path / "bundle"
        build_bundle(dest, models=["Plonsey"], include_tuned=False)
        manifest = json.loads((dest / "manifest.json").read_text())
        (key,) = manifest["entries"]
        _tamper(dest, key, lambda e: e["provenance"]
                .__setitem__("pipeline_fingerprint", "bogus"))
        code, out = self.run_cli(capsys, "artifacts", "audit",
                                 "--dir", str(dest))
        assert code == 1 and "pipeline_drift" in out

    def test_build_all_without_dest_needs_env(self, capsys, monkeypatch):
        monkeypatch.delenv("LIMPET_ARTIFACT_DIR", raising=False)
        code, _ = self.run_cli(capsys, "build-all", "--models", "Plonsey")
        assert code == 2


class TestColdStartHarness:
    def test_coldstart_report_smoke(self, tmp_path):
        from repro.bench.coldstart import (check_coldstart_report,
                                           coldstart_report)
        report = coldstart_report(models=["Plonsey"], n_cells=8,
                                  n_steps=5)
        (row,) = report["models"]
        assert row["bitwise_identical"]
        assert row["artifact"]["artifact_hit"]
        from repro.bench.coldstart import COMPILE_SPANS as CHILD_SPANS
        assert not any(row["artifact"]["spans"].get(s)
                       for s in CHILD_SPANS)
        # the speedup bar is asserted by the committed BENCH_PR8.json,
        # not by this smoke run's tiny workload
        failures = check_coldstart_report(report, min_speedup=0.0,
                                          min_models=1)
        assert failures == []
