"""Fleet-wide telemetry (DESIGN.md §13): cross-process trace
propagation, the crash flight recorder, the run ledger and the
perf-regression gate.

The acceptance drill at the bottom is the PR's headline scenario: a
supervised run with an injected worker kill must still produce ONE
merged Chrome trace holding the dead worker's partial spans next to
the parent's, a flight dump whose last events precede the failure, and
a ledger that records what happened — all sharing one trace id.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.codegen import generate_limpet_mlir
from repro.obs import flight, ledger, metrics, trace
from repro.obs.trace import TraceContext, Tracer, merge_files


# ---------------------------------------------------------------------------
# TraceContext propagation
# ---------------------------------------------------------------------------

class TestTraceContext:
    def test_round_trip_dict_and_json(self):
        tracer = Tracer()
        ctx = tracer.context()
        again = TraceContext.from_dict(json.loads(ctx.to_json()))
        assert again.trace_id == ctx.trace_id
        assert again.t0_monotonic == ctx.t0_monotonic
        assert again.t0_wall == ctx.t0_wall

    def test_env_round_trip(self):
        ctx = Tracer().context()
        env = {}
        ctx.to_env(env)
        assert trace.TRACE_CONTEXT_ENV in env
        os.environ[trace.TRACE_CONTEXT_ENV] = env[trace.TRACE_CONTEXT_ENV]
        try:
            again = TraceContext.from_env()
        finally:
            del os.environ[trace.TRACE_CONTEXT_ENV]
        assert again is not None
        assert again.trace_id == ctx.trace_id

    def test_from_env_absent(self):
        assert TraceContext.from_env() is None

    def test_child_tracer_adopts_identity_and_timebase(self):
        parent = Tracer()
        with parent.span("parent_work"):
            ctx = parent.context()
        child = Tracer(context=ctx, process_name="test-child")
        assert child.trace_id == parent.trace_id
        with child.span("child_work"):
            pass
        events = child.to_chrome()["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        # same monotonic origin: the child's span starts after the
        # parent's (no timestamp shifting needed when merging)
        parent_spans = [e for e in parent.to_chrome()["traceEvents"]
                        if e["ph"] == "X"]
        assert spans[0]["ts"] > parent_spans[0]["ts"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"] == "test-child"

    def test_foreign_events_merge_into_parent_trace(self):
        parent = Tracer()
        child = Tracer(context=parent.context())
        with child.span("shard_task", slot=0):
            pass
        drained = child.drain_events()
        assert drained, "child should drain its finished spans"
        parent.add_foreign_events(drained)
        events = parent.to_chrome()["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "shard_task" in names
        # repeated drains must not duplicate spans
        assert child.drain_events() == []


class TestMergeFiles:
    def test_merge_aligns_wall_clock(self, tmp_path):
        a = Tracer()
        with a.span("alpha"):
            pass
        b = Tracer()
        with b.span("beta"):
            pass
        pa = a.write(tmp_path / "trace-a.json")
        pb = b.write(tmp_path / "trace-b.json")
        merged = merge_files([pa, pb], out=tmp_path / "merged.json")
        names = {e["name"] for e in merged["traceEvents"]
                 if e.get("ph") == "X"}
        assert {"alpha", "beta"} <= names
        assert merged["otherData"]["merged_from"] == 2
        with open(tmp_path / "merged.json") as fh:
            assert json.load(fh)["traceEvents"]


# ---------------------------------------------------------------------------
# Labeled counters
# ---------------------------------------------------------------------------

class TestLabeledCounters:
    def test_series_and_total(self):
        c = metrics.counter("tl_failures_total", "test",
                            labelnames=("shard", "reason"))
        c.labels(shard="0", reason="died").inc()
        c.labels(shard="0", reason="died").inc()
        c.labels(shard="1", reason="stalled").inc()
        assert c.value == 3
        assert c.series()['shard="0",reason="died"'] == 2

    def test_label_shape_enforced(self):
        c = metrics.counter("tl_shape_total", "test",
                            labelnames=("shard",))
        with pytest.raises(ValueError):
            c.labels(reason="died")
        with pytest.raises(TypeError):
            metrics.counter("tl_shape_total", "test")

    def test_prometheus_exposition(self):
        c = metrics.counter("tl_prom_total", "test",
                            labelnames=("kind",))
        c.labels(kind="a").inc(2)
        text = metrics.to_prometheus()
        assert 'tl_prom_total{kind="a"} 2' in text


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = flight.FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("tick", i=i)
        assert len(rec) == 8
        events = rec.events()
        assert events[0]["i"] == 12 and events[-1]["i"] == 19

    def test_dump_schema_and_prune(self, tmp_path):
        rec = flight.FlightRecorder(capacity=4)
        rec.record("worker_failure", slot=1, reason="died")
        path = rec.dump("worker_death", directory=tmp_path,
                        extra={"slot": 1})
        payload = flight.load_dump(path)
        assert payload["format"] == flight.FORMAT
        assert payload["reason"] == "worker_death"
        assert payload["extra"]["slot"] == 1
        assert payload["events"][-1]["kind"] == "worker_failure"
        assert flight.latest_dump(tmp_path) == path

    def test_taps_capture_spans_and_metrics(self):
        assert flight.installed()
        tracer = Tracer()
        previous = trace.activate(tracer)
        try:
            with trace.span("tl_tapped_span", x=1):
                pass
        finally:
            trace.deactivate(previous)
        metrics.counter("tl_tapped_total", "t").inc()
        kinds = {(e["kind"], e.get("name")) for e in
                 flight.recorder().events()}
        assert ("span", "tl_tapped_span") in kinds
        assert ("metric", "tl_tapped_total") in kinds

    def test_module_dump_never_raises(self, monkeypatch):
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV, "/dev/null/nope")
        assert flight.dump("test") is None


# ---------------------------------------------------------------------------
# Run ledger
# ---------------------------------------------------------------------------

class TestRunLedger:
    def test_record_read_filter_summary(self, tmp_path):
        book = ledger.RunLedger(tmp_path / "ledger.jsonl")
        book.record("run", model="A", tier="single",
                    steps_per_second=1000.0, disposition="ok")
        book.record("run", model="B", tier="threads",
                    steps_per_second=2000.0, disposition="ok")
        book.record("degradation", model="B", tier="threads",
                    disposition="degraded")
        rows = book.read()
        assert len(rows) == 3
        assert all(r["format"] == ledger.FORMAT for r in rows)
        assert [r["model"] for r in book.read(model="B",
                                              event="run")] == ["B"]
        assert len(book.read(tail=1)) == 1
        info = book.summary()["B"]
        assert info["dispositions"] == {"ok": 1, "degraded": 1}
        assert info["best_steps_per_second"] == 2000.0

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        book = ledger.RunLedger(path)
        book.record("run", model="A")
        with open(path, "a") as fh:
            fh.write("NOT JSON\n[1,2]\n")
        book.record("run", model="A")
        assert len(book.read()) == 2

    def test_env_gated_off_by_default(self, tmp_path):
        # conftest clears $LIMPET_LEDGER: record_event is a no-op
        assert ledger.default_ledger() is None
        ledger.record_event("run", model="X")   # must not raise

    def test_kernel_runner_writes_run_row(self, tmp_path, monkeypatch,
                                          luo_rudy):
        from repro.runtime import KernelRunner
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv(ledger.LEDGER_ENV, str(path))
        runner = KernelRunner(generate_limpet_mlir(luo_rudy))
        runner.run(runner.make_state(16), 5, 0.01)
        rows = ledger.RunLedger(path).read(event="run")
        assert rows, "KernelRunner.run must append a ledger row"
        row = rows[-1]
        assert row["model"] == "LuoRudy91"
        assert row["tier"] == "single"
        assert row["disposition"] == "ok"
        assert row["steps_per_second"] > 0
        assert row["cache"] in ("hit", "miss", "off", "artifact")

    def test_error_run_writes_error_row(self, tmp_path, monkeypatch,
                                        luo_rudy):
        from repro.runtime import KernelRunner
        path = tmp_path / "ledger.jsonl"
        monkeypatch.setenv(ledger.LEDGER_ENV, str(path))
        runner = KernelRunner(generate_limpet_mlir(luo_rudy))
        state = runner.make_state(16)

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic kernel failure")
        monkeypatch.setattr(runner, "_run", boom)
        with pytest.raises(RuntimeError):
            runner.run(state, 5, 0.01)
        rows = ledger.RunLedger(path).read(event="run")
        assert rows and rows[-1]["disposition"] == "error:RuntimeError"


# ---------------------------------------------------------------------------
# The acceptance drill: kill a worker, keep the telemetry
# ---------------------------------------------------------------------------

needs_fork = pytest.mark.skipif(
    not __import__("repro.runtime",
                   fromlist=["multiprocess_supported"]
                   ).multiprocess_supported(),
    reason="supervised tier needs the fork start method")


@needs_fork
class TestSupervisedTelemetry:
    def test_worker_kill_keeps_trace_flight_and_ledger(
            self, tmp_path, monkeypatch, luo_rudy):
        from repro.resilience import FaultPlan
        from repro.runtime import SupervisedRunner, SupervisionConfig
        monkeypatch.setenv(ledger.LEDGER_ENV,
                           str(tmp_path / "ledger.jsonl"))
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(tmp_path))
        tracer = Tracer(process_name="test-parent")
        previous = trace.activate(tracer)
        try:
            plan = FaultPlan(kill_worker=0, kill_worker_at_task=2)
            runner = SupervisedRunner(
                generate_limpet_mlir(luo_rudy), n_workers=2,
                fault_plan=plan,
                config=SupervisionConfig(task_timeout=10.0))
            try:
                state = runner.make_state(24)
                runner.run(state, 30, 0.01)
                assert runner.execution_tier == "supervised"
            finally:
                runner.close()
        finally:
            trace.deactivate(previous)

        events = tracer.to_chrome()["traceEvents"]
        span_events = [e for e in events if e["ph"] == "X"]
        pids = {e["pid"] for e in span_events}
        # parent + first worker pair + the respawned worker
        assert len(pids) >= 3
        shard_tasks = [e for e in span_events
                       if e["name"] == "shard_task"]
        assert len(shard_tasks) >= 30
        respawns = [e for e in events
                    if e["ph"] == "i" and e["name"] == "worker_respawn"]
        assert len(respawns) == 1
        # every event is schema-valid enough for chrome://tracing
        for e in span_events:
            assert e["dur"] >= 0
            assert isinstance(e["ts"], (int, float))

        # the flight dump shares the trace id and its events precede
        # the failure that triggered it
        dump_path = flight.latest_dump(tmp_path)
        assert dump_path is not None
        payload = flight.load_dump(dump_path)
        assert payload["reason"] == "worker_death"
        assert payload["trace_id"] == tracer.trace_id
        assert payload["ts_unix"] >= payload["events"][-1]["t"]
        assert any(e["kind"] == "worker_failure"
                   for e in payload["events"])

        # the labeled failure counter has the shard/reason series
        fails = metrics.snapshot()["worker_failures_total"]
        assert fails["value"] >= 1
        # a SIGKILLed worker surfaces as EOF on its pipe or as a dead
        # process, depending on which the parent notices first
        assert any('shard="0"' in key and
                   ('reason="died"' in key or
                    'reason="pipe_closed"' in key)
                   for key in fails["series"])

        # and the ledger recorded the run on the supervised tier
        rows = ledger.RunLedger(
            tmp_path / "ledger.jsonl").read(event="run")
        assert rows and rows[-1]["tier"] == "supervised"
        assert rows[-1]["disposition"] == "ok"

    def test_degradation_writes_ledger_row_and_flight_dump(
            self, tmp_path, monkeypatch, luo_rudy):
        from repro.resilience import FaultPlan
        from repro.runtime import SupervisedRunner, SupervisionConfig
        monkeypatch.setenv(ledger.LEDGER_ENV,
                           str(tmp_path / "ledger.jsonl"))
        monkeypatch.setenv(flight.FLIGHT_DIR_ENV, str(tmp_path))
        plan = FaultPlan(kill_worker=0, kill_worker_at_task=1)
        runner = SupervisedRunner(
            generate_limpet_mlir(luo_rudy), n_workers=2,
            fault_plan=plan,
            config=SupervisionConfig(max_retries=0, task_timeout=5.0))
        try:
            state = runner.make_state(24)
            runner.run(state, 10, 0.01)
            assert runner.execution_tier in ("threads", "single")
        finally:
            runner.close()
        rows = ledger.RunLedger(
            tmp_path / "ledger.jsonl").read(event="degradation")
        assert rows, "degradation must be recorded in the ledger"
        row = rows[-1]
        assert row["from_tier"] == "supervised"
        assert row["disposition"] == "degraded"
        assert row["step"] >= 0
        reasons = {p["reason"] for p in
                   (flight.load_dump(d)
                    for d in flight.list_dumps(tmp_path)) if p}
        assert "degradation" in reasons


# ---------------------------------------------------------------------------
# Perf-regression gate (cheap fakes; the real re-measure runs in CI)
# ---------------------------------------------------------------------------

class TestPerfGate:
    BASELINE = {
        "benchmark": "BENCH_PR8",
        "machine": {"platform": "test-machine"},
        "config": {"models": ["A"], "n_cells": 8, "n_steps": 5,
                   "dt": 0.01, "width": 8},
        "models": [{
            "model": "A",
            "jit": {"time_to_first_step": 0.100},
            "artifact": {"time_to_first_step": 0.010},
            "speedup_time_to_first_step": 10.0,
        }],
    }

    def _write(self, tmp_path, payload):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload))
        return path

    def test_gate_passes_on_identical_measurement(self, tmp_path):
        from repro.bench.regress import perf_gate
        path = self._write(tmp_path, self.BASELINE)
        rows, failures, _ = perf_gate(path, measure=lambda b: b)
        assert failures == []
        # different machine: absolute ttfs metrics are skipped
        assert {r.status for r in rows} == {"ok", "skipped"}

    def test_gate_trips_on_ratio_regression(self, tmp_path):
        from repro.bench.regress import perf_gate
        path = self._write(tmp_path, self.BASELINE)
        current = json.loads(json.dumps(self.BASELINE))
        current["models"][0]["speedup_time_to_first_step"] = 5.0
        rows, failures, _ = perf_gate(path, tolerance=0.15,
                                      measure=lambda b: current)
        assert len(failures) == 1
        assert "speedup_time_to_first_step" in failures[0]

    def test_injected_slowdown_trips_the_gate(self, tmp_path):
        from repro.bench.regress import perf_gate
        path = self._write(tmp_path, self.BASELINE)
        _, clean, _ = perf_gate(path, measure=lambda b: b)
        _, degraded, _ = perf_gate(path, slowdown=4.0,
                                   measure=lambda b: b)
        assert clean == [] and degraded

    def test_absolute_metrics_gated_on_same_machine(self, tmp_path,
                                                    monkeypatch):
        import platform as _platform

        from repro.bench.regress import perf_gate
        monkeypatch.setattr(_platform, "platform",
                            lambda: "test-machine")
        path = self._write(tmp_path, self.BASELINE)
        current = json.loads(json.dumps(self.BASELINE))
        current["models"][0]["artifact"]["time_to_first_step"] = 0.050
        rows, failures, _ = perf_gate(path, tolerance=0.15,
                                      measure=lambda b: current)
        assert any("artifact.time_to_first_step" in f
                   for f in failures)
        assert not any(r.status == "skipped" for r in rows)

    def test_unsupported_benchmark_rejected(self, tmp_path):
        from repro.bench.regress import perf_gate
        path = self._write(tmp_path, {"benchmark": "BENCH_PR3"})
        with pytest.raises(ValueError):
            perf_gate(path, measure=lambda b: b)

    def test_pr2_and_pr7_schemas_extract(self):
        from repro.bench.regress import extract_metrics
        pr2 = {"benchmark": "BENCH_PR2",
               "speedups_vs_baseline": {"fused": {"run": 3.0,
                                                  "total": 2.5}},
               "variants": [{"name": "fused",
                             "steps_per_second": 1e5}]}
        names = {m["name"] for m in extract_metrics(pr2)}
        assert names == {"speedup.fused.run", "speedup.fused.total",
                         "fused.steps_per_second"}
        pr7 = {"benchmark": "BENCH_PR7",
               "models": [{"config": {"model": "M"},
                           "speedup_batched_vs_loop": 2.0,
                           "variants": [{"name": "batched",
                                         "steps_per_second": 5e4}]}]}
        names = {m["name"] for m in extract_metrics(pr7)}
        assert names == {"M.speedup_batched_vs_loop",
                         "M.batched.steps_per_second"}


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestTelemetryCli:
    def test_ledger_cli_reads_and_summarizes(self, tmp_path, capsys):
        from repro.cli import cmd_ledger
        book = ledger.RunLedger(tmp_path / "l.jsonl")
        book.record("run", model="A", tier="single", disposition="ok")
        assert cmd_ledger(str(tmp_path / "l.jsonl"), None, None, None,
                          False, False) == 0
        assert "single" in capsys.readouterr().out
        assert cmd_ledger(str(tmp_path / "l.jsonl"), None, None, None,
                          False, True) == 0
        assert "A" in capsys.readouterr().out

    def test_ledger_cli_empty_fails(self, tmp_path, capsys):
        from repro.cli import cmd_ledger
        assert cmd_ledger(str(tmp_path / "none.jsonl"), None, None,
                          None, False, False) == 1

    def test_flight_cli_shows_latest(self, tmp_path, capsys):
        from repro.cli import cmd_flight
        rec = flight.FlightRecorder()
        rec.record("span", name="compile")
        rec.dump("test_reason", directory=tmp_path)
        assert cmd_flight("show", str(tmp_path), 10, False) == 0
        out = capsys.readouterr().out
        assert "test_reason" in out
        assert cmd_flight("list", str(tmp_path), 10, False) == 0

    def test_flight_cli_no_dumps_fails(self, tmp_path):
        from repro.cli import cmd_flight
        assert cmd_flight("show", str(tmp_path), 10, False) == 1

    def test_trace_cli_merge(self, tmp_path, capsys):
        from repro.cli import cmd_trace
        t = Tracer()
        with t.span("x"):
            pass
        t.write(tmp_path / "trace-one.json")
        out = tmp_path / "merged.json"
        assert cmd_trace(None, "limpet_mlir", 8, 1, 1, 0.01,
                         str(out), False, 0, str(tmp_path)) == 0
        assert out.is_file()
        # without --merge a model is mandatory
        assert cmd_trace(None, "limpet_mlir", 8, 1, 1, 0.01,
                         None, False, 0, None) == 2
