"""Foreign-function tests: the 43-of-47 supported-models story (§3.3.2)."""

import numpy as np
import pytest

from repro.codegen import (generate_baseline, generate_icc_simd,
                           generate_limpet_mlir)
from repro.codegen.common import UnsupportedModelError
from repro.codegen.multimodel import generate_plugin
from repro.frontend import load_model
from repro.models import (ALL_MODELS, UNSUPPORTED_MODELS, all_model_files,
                          load_model as load_registry_model,
                          verify_registry)
from repro.runtime import KernelRunner, register_foreign
from repro.runtime.foreign import foreign_function, registered_foreign

FOREIGN_SOURCE = """
Vm; .external();
Iion; .external();
sac_tension; .foreign();
diff_lam = 0.001*(1.0 + 0.0001*(Vm+80) - lam); lam_init = 1.0;
Iion = 0.05*sac_tension(lam)*(Vm + 20.0) + 0.13*(Vm + 80.0);
"""


@pytest.fixture
def foreign_model():
    return load_model(FOREIGN_SOURCE, "SACTest")


class TestFrontend:
    def test_foreign_declared(self, foreign_model):
        assert foreign_model.foreign_functions == {"sac_tension"}

    def test_foreign_name_is_not_a_variable(self, foreign_model):
        assert "sac_tension" not in foreign_model.variables

    def test_foreign_call_never_folds(self):
        model = load_model("""
            Iion; .external();
            sac_tension; .foreign();
            k = sac_tension(1.5);
            diff_x = -x; x_init = 1;
            Iion = k*x;
        """, "Fold")
        assert "k" not in model.folded_constants
        assert any(c.target == "k" for c in model.computations)

    def test_foreign_call_excluded_from_lut(self):
        model = load_model("""
            Vm; .external(); .lookup(-100,100,0.1);
            Iion; .external();
            sac_tension; .foreign();
            a = sac_tension(Vm);
            b = exp(Vm/20);
            diff_x = a - x + b; x_init = 0;
            Iion = 0.1*(Vm+80);
        """, "LUTX")
        names = {n for t in model.lut_tables for n in t.column_names}
        assert "a" not in names and "b" in names

    def test_undeclared_function_still_rejected(self):
        from repro.easyml.errors import SemanticError
        with pytest.raises(SemanticError, match="unknown function"):
            KernelRunner(generate_baseline(load_model(
                "Iion; .external(); diff_x = -x; x_init = 1;"
                "Iion = frobnicate(x);", "Bad")))


class TestBackends:
    def test_baseline_compiles_and_runs(self, foreign_model):
        runner = KernelRunner(generate_baseline(foreign_model))
        result = runner.simulate(8, 200, 0.01)
        assert np.isfinite(result.state.external("Vm")).all()

    def test_baseline_declares_foreign_symbol(self, foreign_model):
        kernel = generate_baseline(foreign_model)
        decl = kernel.module.lookup_func("foreign_sac_tension")
        assert decl is not None
        assert decl.attributes.get("declaration")

    def test_limpet_mlir_rejects(self, foreign_model):
        with pytest.raises(UnsupportedModelError, match="43 of 47"):
            generate_limpet_mlir(foreign_model, 8)

    def test_icc_simd_rejects(self, foreign_model):
        with pytest.raises(UnsupportedModelError):
            generate_icc_simd(foreign_model, 8)

    def test_plugin_rejects(self, foreign_model):
        with pytest.raises(UnsupportedModelError):
            generate_plugin(foreign_model, 8)

    def test_foreign_result_feeds_dynamics(self, foreign_model):
        """The foreign call's value must actually matter."""
        runner = KernelRunner(generate_baseline(foreign_model))
        r1 = runner.simulate(4, 100, 0.01)
        register_foreign("sac_tension", lambda s: 40.0 * s)
        try:
            runner2 = KernelRunner(generate_baseline(foreign_model))
            r2 = runner2.simulate(4, 100, 0.01)
            assert not np.allclose(r1.state.external("Vm"),
                                   r2.state.external("Vm"))
        finally:
            from repro.runtime.foreign import _sac_tension
            register_foreign("sac_tension", _sac_tension)


class TestRegistry:
    def test_47_files_43_supported(self):
        verify_registry()
        assert len(all_model_files()) == 47
        assert len(ALL_MODELS) == 43
        assert len(UNSUPPORTED_MODELS) == 4

    @pytest.mark.parametrize("name", UNSUPPORTED_MODELS)
    def test_unsupported_model_baseline_only(self, name):
        model = load_registry_model(name)
        assert model.foreign_functions, name
        runner = KernelRunner(generate_baseline(model))
        result = runner.simulate(8, 200, 0.01)
        assert np.isfinite(result.state.external("Vm")).all()
        with pytest.raises(UnsupportedModelError):
            generate_limpet_mlir(model, 8)

    def test_supported_models_have_no_foreign_calls(self):
        for name in ALL_MODELS:
            assert not load_registry_model(name).foreign_functions, name


class TestRegistryAPI:
    def test_lookup_and_replace(self):
        original = foreign_function("ach_release")
        assert callable(original)
        assert "ach_release" in registered_foreign()

    def test_missing_function_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            foreign_function("does_not_exist")

    def test_default_implementations_numpy_compatible(self):
        for name, fn in registered_foreign().items():
            arity = fn.__code__.co_argcount
            args = [np.linspace(0.5, 2.0, 5)] * arity
            out = fn(*args)
            assert np.asarray(out).shape == (5,), name
