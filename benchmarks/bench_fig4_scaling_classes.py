"""Figure 4 — class-average execution time vs threads (AVX-512).

Paper: small models' scalability is "very poor" (curves flatten as
cores increase; limpetMLIR even crosses above baseline at 32 cores);
large models scale almost ideally with limpetMLIR consistently 8-10x
below baseline.
"""

import pytest

from repro.bench import THREAD_SWEEP, figure_scaling, format_scaling_table


@pytest.fixture(scope="module")
def fig4(bench):
    return figure_scaling(bench=bench)


def series_of(fig4, size_class, variant):
    return next(s for s in fig4
                if s.size_class == size_class and s.variant == variant)


@pytest.mark.figure("fig4")
def test_fig4_regenerate(benchmark, bench):
    series = benchmark(lambda: figure_scaling(bench=bench))
    print()
    print(format_scaling_table(series))
    large_base = series_of(series, "large", "baseline")
    large_mlir = series_of(series, "large", "limpet_mlir")
    # large models: limpetMLIR consistently far below baseline
    for tb, tv in zip(large_base.seconds, large_mlir.seconds):
        assert tv < tb / 4.0
    # small models: limpetMLIR crosses above baseline at 32 threads
    small_base = series_of(series, "small", "baseline")
    small_mlir = series_of(series, "small", "limpet_mlir")
    assert small_mlir.seconds[0] < small_base.seconds[0]
    assert small_mlir.seconds[-1] > small_base.seconds[-1]


@pytest.mark.figure("fig4")
class TestFigure4Shape:
    def test_six_series(self, fig4):
        assert len(fig4) == 6

    def test_large_baseline_scales_near_ideally(self, fig4):
        """1 -> 32 threads must buy close to 32x on large baselines."""
        series = series_of(fig4, "large", "baseline")
        gain = series.seconds[0] / series.seconds[-1]
        assert gain > 24.0

    def test_small_scaling_flattens(self, fig4):
        """The small class gains far less than ideal from 32 cores."""
        series = series_of(fig4, "small", "limpet_mlir")
        gain = series.seconds[0] / series.seconds[-1]
        assert gain < 12.0

    def test_small_limpetmlir_curve_flattens_at_high_threads(self, fig4):
        series = series_of(fig4, "small", "limpet_mlir")
        early_gain = series.seconds[0] / series.seconds[2]   # 1T -> 4T
        late_gain = series.seconds[3] / series.seconds[5]    # 8T -> 32T
        assert late_gain < early_gain

    def test_times_monotone_for_large(self, fig4):
        for variant in ("baseline", "limpet_mlir"):
            series = series_of(fig4, "large", variant)
            assert list(series.seconds) == sorted(series.seconds,
                                                  reverse=True)

    def test_class_ordering_at_every_thread_count(self, fig4):
        for i, _ in enumerate(THREAD_SWEEP):
            small = series_of(fig4, "small", "baseline").seconds[i]
            medium = series_of(fig4, "medium", "baseline").seconds[i]
            large = series_of(fig4, "large", "baseline").seconds[i]
            assert small < medium < large
