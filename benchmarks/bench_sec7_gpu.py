"""§7 heterogeneous extension — CPU vs GPU crossover.

The conclusion's ongoing-work paragraph: "enable ionic models not only
to execute efficiently on CPUs, but also on other heterogeneous
hardware supported by MLIR.  Having e.g., both CPU and GPU codes can
further benefit from task-based programming libraries ... such as
StarPU."  This bench regenerates the data that motivates that remark:
at the paper's 8192-cell bench size an under-occupied V100 loses to 32
Cascade Lake cores on most models, while at tissue scale (10^6 cells,
en route to the heart's "about 2 billion muscle cells") the device wins
everywhere — exactly the mesh-size-dependent device choice a StarPU
scheduler would automate.
"""

import pytest

from repro.bench import kernel_profile
from repro.codegen import generate_gpu
from repro.ir.passes import default_pipeline
from repro.machine import AVX512, CostModel, GPUCostModel, profile_kernel
from repro.models import SIZE_CLASS, load_model

MODELS = ("Plonsey", "HodgkinHuxley", "Courtemanche",
          "TenTusscherPanfilov", "OHara", "IyerMazhariWinslow")
CELL_SWEEP = (8192, 65_536, 1_048_576)


@pytest.fixture(scope="module")
def gpu_profiles():
    profiles = {}
    for name in MODELS:
        kernel = generate_gpu(load_model(name))
        default_pipeline(verify_each=False).run(kernel.module,
                                                fixed_point=True)
        profiles[name] = profile_kernel(kernel.module,
                                        kernel.spec.function_name)
    return profiles


def crossover_table(gpu_profiles):
    cpu, gpu = CostModel(), GPUCostModel()
    rows = {}
    for name in MODELS:
        cpu_profile = kernel_profile(name, "limpet_mlir", 8)
        per_cells = {}
        for n_cells in CELL_SWEEP:
            t_cpu = cpu.total_time(cpu_profile, AVX512, 32, n_cells, 1000)
            t_gpu = gpu.total_time(gpu_profiles[name], n_cells, 1000)
            per_cells[n_cells] = (t_cpu, t_gpu)
        rows[name] = per_cells
    return rows


@pytest.mark.figure("sec7-gpu")
def test_gpu_crossover_regenerate(benchmark, gpu_profiles):
    rows = benchmark(lambda: crossover_table(gpu_profiles))
    print("\n§7 — CPU (32T AVX-512) vs GPU (V100 class), 1000 steps, "
          "modeled seconds:")
    header = f"{'model':<22} {'class':<7}" + "".join(
        f"  {n:>9} cells (cpu/gpu)" for n in CELL_SWEEP)
    print(header)
    for name, per_cells in rows.items():
        cells_text = "".join(
            f"  {cpu_t:>8.2f}s /{gpu_t:>7.2f}s"
            for cpu_t, gpu_t in per_cells.values())
        print(f"{name:<22} {SIZE_CLASS[name]:<7}{cells_text}")
    # at tissue scale the device wins on every model
    for name, per_cells in rows.items():
        t_cpu, t_gpu = per_cells[1_048_576]
        assert t_gpu < t_cpu, name
    # at the paper's bench size, the CPU keeps medium models
    t_cpu, t_gpu = rows["Courtemanche"][8192]
    assert t_cpu < t_gpu


@pytest.mark.figure("sec7-gpu")
class TestGPUShape:
    def test_gpu_advantage_grows_with_cells(self, gpu_profiles):
        cpu, gpu = CostModel(), GPUCostModel()
        cpu_profile = kernel_profile("OHara", "limpet_mlir", 8)
        ratios = []
        for n_cells in CELL_SWEEP:
            t_cpu = cpu.total_time(cpu_profile, AVX512, 32, n_cells, 100)
            t_gpu = gpu.total_time(gpu_profiles["OHara"], n_cells, 100)
            ratios.append(t_cpu / t_gpu)
        assert ratios[0] < ratios[1] < ratios[2]

    def test_small_models_launch_bound_on_gpu(self, gpu_profiles):
        gpu = GPUCostModel()
        point = gpu.step_time(gpu_profiles["Plonsey"], 8192)
        assert point.launch_seconds > 0.5 * (point.seconds
                                             - point.launch_seconds)

    def test_math_heavy_large_model_wins_even_small_meshes(self,
                                                           gpu_profiles):
        """IyerMazhariWinslow's transcendental load saturates the device
        even at 8192 cells — the one early GPU win."""
        cpu, gpu = CostModel(), GPUCostModel()
        cpu_profile = kernel_profile("IyerMazhariWinslow", "limpet_mlir", 8)
        t_cpu = cpu.total_time(cpu_profile, AVX512, 32, 8192, 100)
        t_gpu = gpu.total_time(gpu_profiles["IyerMazhariWinslow"], 8192,
                               100)
        assert t_gpu < t_cpu
