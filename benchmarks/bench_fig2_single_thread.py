"""Figure 2 — per-model speedup, single thread, AVX-512.

Paper: geomean 5.25x on AVX-512; speedups "low and irregular in small
models, more significant and consistent for larger models"; peaks above
15x (up to ~26x); ISAC_Hu a notable exception among the smalls thanks
to vectorized math calls.
"""

import pytest

from repro.bench import (figure_speedups, format_speedup_table, geomean,
                         run_measured)
from repro.machine import AVX512
from repro.models import SIZE_CLASS


@pytest.fixture(scope="module")
def fig2(bench):
    return figure_speedups(threads=1, isa=AVX512, bench=bench)


@pytest.mark.figure("fig2")
def test_fig2_regenerate(benchmark, bench):
    """Regenerates Fig. 2, prints the table, asserts the headline shape.

    Runs under --benchmark-only too: the benchmarked payload is the
    figure regeneration itself (43 models x 2 backends on the modeled
    testbed).
    """
    bars = benchmark(lambda: figure_speedups(threads=1, isa=AVX512,
                                             bench=bench))
    print()
    print(format_speedup_table(
        bars, "Fig. 2 — speedup vs baseline openCARP, 1 thread, "
        "AVX-512 (modeled testbed)"))
    overall = geomean([b.speedup for b in bars])
    means = {cls: geomean([b.speedup for b in bars
                           if b.size_class == cls])
             for cls in ("small", "medium", "large")}
    assert len(bars) == 43
    assert 4.2 <= overall <= 7.0, f"paper 5.25x, ours {overall:.2f}x"
    assert means["small"] < means["medium"] < means["large"]
    assert max(b.speedup for b in bars) > 15.0


@pytest.mark.figure("fig2")
class TestFigure2Shape:
    def test_print_table(self, fig2):
        print()
        print(format_speedup_table(
            fig2, "Fig. 2 — speedup vs baseline openCARP, 1 thread, "
            "AVX-512 (modeled testbed)"))

    def test_covers_all_43_models(self, fig2):
        assert len(fig2) == 43

    def test_overall_geomean_near_paper(self, fig2):
        value = geomean([b.speedup for b in fig2])
        assert 4.2 <= value <= 7.0, f"paper: 5.25x, ours {value:.2f}x"

    def test_speedups_grow_with_model_size(self, fig2):
        means = {cls: geomean([b.speedup for b in fig2
                               if b.size_class == cls])
                 for cls in ("small", "medium", "large")}
        assert means["small"] < means["medium"] < means["large"]

    def test_small_models_low_and_modest(self, fig2):
        small = [b.speedup for b in fig2
                 if b.size_class == "small" and b.model != "ISAC_Hu"]
        assert geomean(small) < 4.5

    def test_peak_exceeds_fifteen(self, fig2):
        assert max(b.speedup for b in fig2) > 15.0

    def test_acceleration_exceeds_vector_width(self, fig2):
        """§4.1: "the acceleration can be much higher than the size of
        the vectors" (8 lanes here)."""
        beyond_lanes = [b for b in fig2 if b.speedup > 8.0]
        assert len(beyond_lanes) >= 10

    def test_isac_hu_is_the_small_class_exception(self, fig2):
        smalls = {b.model: b.speedup for b in fig2
                  if b.size_class == "small"}
        isac = smalls.pop("ISAC_Hu")
        assert isac > max(smalls.values())

    def test_every_model_speeds_up_single_thread(self, fig2):
        assert all(b.speedup > 1.0 for b in fig2)

    def test_ordering_by_baseline_time(self, fig2):
        times = [b.baseline_seconds for b in fig2]
        assert times == sorted(times)


@pytest.mark.figure("fig2")
def test_measured_single_thread_speedup(benchmark):
    """Real engines: the vectorized kernel per step, with the measured
    baseline/limpetMLIR ratio reported alongside."""
    from repro.bench.harness import _cached_runner
    runner = _cached_runner("LuoRudy91", "limpet_mlir", 8)
    state = runner.make_state(1024, perturbation=0.005)

    def step():
        runner.compute_step(state, 0.01)

    benchmark(step)
    base = run_measured("LuoRudy91", "baseline", n_cells=256, n_steps=20,
                        runs=3)
    vec = run_measured("LuoRudy91", "limpet_mlir", 8, n_cells=256,
                       n_steps=20, runs=3)
    ratio = base.seconds / vec.seconds
    print(f"\nmeasured engine ratio (LuoRudy91, 256 cells): {ratio:.1f}x")
    assert ratio > 2.0
