"""Shared fixtures for the benchmark suite.

Every ``bench_*`` file regenerates one of the paper's evaluation
artifacts (figures 2-6, §3.4.2, §4.4, §5 and the §4.1 class split),
prints the same rows/series the paper reports, and asserts the *shape*
of the result (who wins, by roughly what factor, where the crossovers
fall).  Absolute numbers come from the calibrated machine model; the
``benchmark`` fixture additionally times the real execution engines.
"""

from __future__ import annotations

import pytest

from repro.bench import ModeledBench
from repro.models import ALL_MODELS, SIZE_CLASS


@pytest.fixture(scope="session")
def bench():
    """A ModeledBench shared by every figure (profiles are cached)."""
    return ModeledBench()


@pytest.fixture(scope="session")
def by_class():
    classes = {"small": [], "medium": [], "large": []}
    for name in ALL_MODELS:
        classes[SIZE_CLASS[name]].append(name)
    return classes


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): paper artifact a benchmark regenerates")
