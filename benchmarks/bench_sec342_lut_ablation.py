"""§3.4.2 — lookup-table ablations.

Paper: "LUT utilization significantly improves the performance of
models (reaching more than 6x from the non-LUT version)", and the
manually vectorized interpolation recovers the "considerable speedup
degradation" of the scalar LUT routine inside vectorized code.
"""

import pytest

from repro.bench import geomean, run_measured
from repro.codegen import BackendMode
from repro.machine import AVX512, CostModel
from repro.models import ALL_MODELS, load_model

LUT_HEAVY = ("Courtemanche", "TenTusscherPanfilov", "LuoRudy91",
             "Maleckar", "OHara")


def lut_gain(bench, name, variant="baseline", nolut="baseline_nolut"):
    with_lut = bench.seconds(name, variant, AVX512, 1)
    without = bench.seconds(name, nolut, AVX512, 1)
    return without / with_lut


@pytest.mark.figure("sec3.4.2")
def test_lut_ablation_regenerate(benchmark, bench):
    gains = benchmark(lambda: {name: lut_gain(bench, name)
                               for name in LUT_HEAVY})
    print("\n§3.4.2 — LUT vs non-LUT (baseline backend, 1T):")
    for name, gain in gains.items():
        print(f"  {name:<22} {gain:.2f}x")
    # every tabulated model benefits; the GHK-dominated OHara least
    assert all(g > 1.1 for g in gains.values())
    assert max(gains.values()) > 6.0, \
        "paper: 'reaching more than 6x from the non-LUT version'"


@pytest.mark.figure("sec3.4.2")
class TestLUTShape:
    def test_vector_lut_also_wins(self, bench):
        gains = [lut_gain(bench, n, "limpet_mlir", "limpet_mlir_nolut")
                 for n in LUT_HEAVY]
        assert geomean(gains) > 1.2

    def test_vectorized_interp_beats_serialized(self, bench):
        """Within vectorized code, the §3.4.2 vector interpolation vs
        the serialized per-lane calls (the icc situation) — the very
        degradation the paper's optimization removes."""
        cost = CostModel()
        from repro.bench import kernel_profile
        for name in ("Courtemanche", "Maleckar"):
            vec = kernel_profile(name, "limpet_mlir", 8)
            icc = kernel_profile(name, "icc_simd", 8)
            t_vec = cost.cycles_per_iteration(vec, AVX512)
            t_icc = cost.cycles_per_iteration(icc, AVX512)
            assert t_vec < t_icc, name

    def test_lut_error_does_not_change_dynamics(self):
        """LUT and non-LUT trajectories agree to interpolation error."""
        import numpy as np
        from repro.bench.harness import _cached_runner
        lut = _cached_runner("HodgkinHuxley", "limpet_mlir", 8)
        exact = _cached_runner("HodgkinHuxley", "limpet_mlir_nolut", 8)
        r1 = lut.simulate(16, 500, 0.01, perturbation=0.01)
        r2 = exact.simulate(16, 500, 0.01, perturbation=0.01)
        np.testing.assert_allclose(r1.state.external("Vm"),
                                   r2.state.external("Vm"),
                                   rtol=1e-4, atol=1e-4)

    def test_measured_lut_speedup(self):
        with_lut = run_measured("Courtemanche", "limpet_mlir", 8,
                                n_cells=1024, n_steps=10, runs=3)
        without = run_measured("Courtemanche", "limpet_mlir_nolut", 8,
                               n_cells=1024, n_steps=10, runs=3)
        print(f"\nmeasured Courtemanche 1024 cells: LUT "
              f"{with_lut.seconds:.3f}s vs non-LUT {without.seconds:.3f}s")
        assert with_lut.seconds < without.seconds
