"""Figure 5 — geomean speedups for SSE/AVX2/AVX-512 across 1-32 threads.

Paper: "In all cases the AVX-512 architecture outperforms AVX2 and AVX2
outperforms SSE ... The difference flattens as the number of cores
increases."  Large-model 32-thread speedups: 3.80x (SSE), 5.13x (AVX2),
6.03x (AVX-512); overall geomean across all models and architectures:
2.90x.
"""

import pytest

from repro.bench import THREAD_SWEEP, figure_isa_sweep, format_isa_sweep, geomean
from repro.machine import ISAS
from repro.models import LARGE_MODELS


@pytest.fixture(scope="module")
def fig5(bench):
    return figure_isa_sweep(bench=bench)


@pytest.mark.figure("fig5")
def test_fig5_regenerate(benchmark, bench):
    rows = benchmark(lambda: figure_isa_sweep(bench=bench))
    print()
    print(format_isa_sweep(rows))
    by_isa = {r.isa: r.geomean_speedup for r in rows}
    # ISA ordering holds at every thread count
    for i, threads in enumerate(THREAD_SWEEP):
        assert by_isa["avx512"][i] > by_isa["avx2"][i] > by_isa["sse"][i], \
            f"ordering broken at {threads} threads"
    overall = geomean([v for r in rows for v in r.geomean_speedup])
    assert 2.2 <= overall <= 4.2, f"paper 2.90x, ours {overall:.2f}x"


@pytest.mark.figure("fig5")
class TestFigure5Shape:
    def test_difference_flattens_with_threads(self, fig5):
        by_isa = {r.isa: r.geomean_speedup for r in fig5}
        spread_1t = by_isa["avx512"][0] - by_isa["sse"][0]
        spread_32t = by_isa["avx512"][-1] - by_isa["sse"][-1]
        assert spread_32t < spread_1t / 2

    def test_speedups_decline_with_threads(self, fig5):
        for row in fig5:
            values = list(row.geomean_speedup)
            assert values == sorted(values, reverse=True), row.isa

    def test_large_only_32t_ordering(self, bench):
        """Paper: 3.80 / 5.13 / 6.03 on large models at 32 threads."""
        values = {}
        for isa in ISAS.values():
            values[isa.name] = geomean(
                [bench.speedup(n, isa, 32) for n in LARGE_MODELS])
        print(f"\nlarge-only 32T: sse {values['sse']:.2f} "
              f"avx2 {values['avx2']:.2f} avx512 {values['avx512']:.2f} "
              f"(paper 3.80/5.13/6.03)")
        assert values["sse"] < values["avx2"] < values["avx512"]
        assert 3.0 < values["sse"] < 6.5
        assert 5.0 < values["avx512"] < 10.0

    def test_every_isa_wins_at_one_thread(self, fig5):
        for row in fig5:
            assert row.geomean_speedup[0] > 1.5, row.isa

    def test_width_ratio_is_sublinear(self, fig5):
        """8/2 lanes never buys 4x: shared costs and memory bound it."""
        by_isa = {r.isa: r.geomean_speedup for r in fig5}
        for i in range(len(THREAD_SWEEP)):
            ratio = by_isa["avx512"][i] / by_isa["sse"][i]
            assert ratio < 4.0
