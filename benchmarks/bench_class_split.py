"""§4.1 — the small/medium/large class split of the 43 models.

Paper: 8 small models (baseline under a minute on the testbed), 22
medium (1-5 minutes), 13 large (over 5 minutes, up to the ~2 h cap the
cell count was chosen for), ordered by baseline execution time.
"""

import pytest

from repro.bench import ModeledBench
from repro.machine import AVX512
from repro.models import (ALL_MODELS, LARGE_MODELS, MEDIUM_MODELS,
                          SIZE_CLASS, SMALL_MODELS)


@pytest.fixture(scope="module")
def baseline_times(bench):
    return {name: bench.seconds(name, "baseline", AVX512, 1)
            for name in ALL_MODELS}


@pytest.mark.figure("sec4.1")
def test_class_split_regenerate(benchmark, bench):
    times = benchmark(lambda: {n: bench.seconds(n, "baseline", AVX512, 1)
                               for n in ALL_MODELS})
    print("\n§4.1 — baseline execution time per class "
          "(8192 cells x 100k steps, modeled 1T):")
    for cls, names in (("small", SMALL_MODELS), ("medium", MEDIUM_MODELS),
                       ("large", LARGE_MODELS)):
        values = sorted(times[n] for n in names)
        print(f"  {cls:<7} n={len(names):2d}  "
              f"[{values[0]:8.1f}s .. {values[-1]:8.1f}s]")
    assert len(SMALL_MODELS) == 8
    assert len(MEDIUM_MODELS) == 22
    assert len(LARGE_MODELS) == 13


@pytest.mark.figure("sec4.1")
class TestClassBands:
    def test_classes_do_not_interleave_much(self, baseline_times):
        """Class medians must be well separated and ordered."""
        def median(names):
            values = sorted(baseline_times[n] for n in names)
            return values[len(values) // 2]

        assert median(SMALL_MODELS) < median(MEDIUM_MODELS) / 2
        assert median(MEDIUM_MODELS) < median(LARGE_MODELS) / 2

    def test_small_band(self, baseline_times):
        """Small models run in about a minute or less (ISAC_Hu, the
        math-heavy exception the paper calls out, may straddle)."""
        for name in SMALL_MODELS:
            assert baseline_times[name] < 110.0, name

    def test_medium_band(self, baseline_times):
        for name in MEDIUM_MODELS:
            assert 45.0 < baseline_times[name] < 360.0, name

    def test_large_band(self, baseline_times):
        """Over ~5 minutes, capped around two hours (§4: cell count was
        chosen so 'the largest models not to take more than two hours')."""
        for name in LARGE_MODELS:
            assert baseline_times[name] > 300.0, name
            assert baseline_times[name] < 2.2 * 3600.0, name

    def test_largest_is_iyer_class_model(self, baseline_times):
        heaviest = max(ALL_MODELS, key=lambda n: baseline_times[n])
        assert SIZE_CLASS[heaviest] == "large"
        assert heaviest in ("IyerMazhariWinslow", "GrandiPanditVoigt",
                            "TomekORd")

    def test_full_suite_duration_matches_paper_scale(self, baseline_times):
        """§A.2: reproducing Fig. 2 takes ~10 hours on the testbed; the
        modeled total baseline time must be the dominant share of that."""
        total_hours = sum(baseline_times.values()) / 3600.0
        assert 5.0 < total_hours < 16.0
