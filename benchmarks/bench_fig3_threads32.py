"""Figure 3 — per-model speedup, 32 threads on 32 cores, AVX-512.

Paper: geomean 1.93x overall; 0.83x on small models (a slowdown, from
synchronization/optimization overheads and memory-bound behaviour),
1.34x on medium and 6.03x on large models.
"""

import pytest

from repro.bench import figure_speedups, format_speedup_table, geomean
from repro.machine import AVX512


@pytest.fixture(scope="module")
def fig3(bench):
    return figure_speedups(threads=32, isa=AVX512, bench=bench)


def class_geomeans(bars):
    return {cls: geomean([b.speedup for b in bars if b.size_class == cls])
            for cls in ("small", "medium", "large")}


@pytest.mark.figure("fig3")
def test_fig3_regenerate(benchmark, bench):
    bars = benchmark(lambda: figure_speedups(threads=32, isa=AVX512,
                                             bench=bench))
    print()
    print(format_speedup_table(
        bars, "Fig. 3 — speedup vs baseline openCARP, 32 threads, "
        "AVX-512 (modeled testbed)"))
    means = class_geomeans(bars)
    overall = geomean([b.speedup for b in bars])
    # paper: 0.83 / 1.34 / 6.03, overall 1.93
    assert means["small"] < 1.0, "small models must slow down at 32T"
    assert 1.0 < means["medium"] < 2.2
    assert 4.5 < means["large"] < 9.5
    assert 1.5 < overall < 3.0, f"paper 1.93x, ours {overall:.2f}x"


@pytest.mark.figure("fig3")
class TestFigure3Shape:
    def test_small_models_slow_down(self, fig3):
        means = class_geomeans(fig3)
        assert means["small"] < 1.0

    def test_class_ordering(self, fig3):
        means = class_geomeans(fig3)
        assert means["small"] < means["medium"] < means["large"]

    def test_compression_vs_single_thread(self, bench, fig3):
        """Every class's 32T geomean is below its 1T geomean: the
        parallel overheads eat part of the vectorization win."""
        from repro.bench import figure_speedups
        fig2 = figure_speedups(threads=1, isa=AVX512, bench=bench)
        m1, m32 = class_geomeans(fig2), class_geomeans(fig3)
        for cls in ("small", "medium", "large"):
            assert m32[cls] < m1[cls], cls

    def test_all_large_models_still_win(self, fig3):
        larges = [b for b in fig3 if b.size_class == "large"]
        assert all(b.speedup > 2.0 for b in larges)

    def test_most_small_models_lose(self, fig3):
        smalls = [b for b in fig3 if b.size_class == "small"]
        losers = [b for b in smalls if b.speedup < 1.0]
        assert len(losers) >= len(smalls) // 2
