"""§5 — the icc `#pragma omp simd` comparator.

Paper: clang and gcc fail to vectorize the loop at all (that is the
baseline); icc 19.1.3 vectorizes it when annotated with `omp simd` but
reaches only a 2.19x AVX-512 sweep geomean vs limpetMLIR's 3.37x —
because the serialized LUT calls and the AoS gathers remain.
"""

import pytest

from repro.bench import sweep_average_geomean
from repro.machine import AVX512
from repro.models import ALL_MODELS, SIZE_CLASS


@pytest.mark.figure("sec5")
def test_icc_sweep_regenerate(benchmark, bench):
    icc = benchmark(lambda: sweep_average_geomean("icc_simd",
                                                  bench=bench))
    mlir = sweep_average_geomean("limpet_mlir", bench=bench)
    print(f"\n§5 — 1-32T AVX-512 sweep geomean: icc omp-simd {icc:.2f}x "
          f"vs limpetMLIR {mlir:.2f}x (paper: 2.19x vs 3.37x)")
    assert icc > 1.0, "icc still beats the scalar baseline"
    assert icc < mlir, "limpetMLIR must beat icc"
    ratio = icc / mlir
    assert 0.4 < ratio < 0.85, f"paper ratio 0.65, ours {ratio:.2f}"


@pytest.mark.figure("sec5")
class TestICCShape:
    def test_icc_between_baseline_and_mlir_per_model(self, bench):
        for name in ALL_MODELS:
            base = bench.seconds(name, "baseline", AVX512, 1)
            icc = bench.seconds(name, "icc_simd", AVX512, 1)
            mlir = bench.seconds(name, "limpet_mlir", AVX512, 1)
            assert mlir <= icc <= base * 1.001, name

    def test_icc_gap_largest_on_lut_heavy_models(self, bench):
        """Serialized LUT calls are icc's main loss: LUT-heavy models
        show a bigger limpetMLIR/icc advantage than LUT-free ones."""
        from repro.models import load_model

        def advantage(name):
            icc = bench.seconds(name, "icc_simd", AVX512, 1)
            mlir = bench.seconds(name, "limpet_mlir", AVX512, 1)
            return icc / mlir

        lut_heavy = advantage("Courtemanche")       # ~30 LUT columns
        lut_free = advantage("ISAC_Hu")             # no LUT at all
        assert load_model("ISAC_Hu").lut_tables == []
        assert lut_heavy > lut_free

    def test_measured_icc_engine_between(self):
        from repro.bench import run_measured
        base = run_measured("LuoRudy91", "baseline", n_cells=256,
                            n_steps=20, runs=3)
        icc = run_measured("LuoRudy91", "icc_simd", 8, n_cells=256,
                           n_steps=20, runs=3)
        mlir = run_measured("LuoRudy91", "limpet_mlir", 8, n_cells=256,
                            n_steps=20, runs=3)
        print(f"\nmeasured LuoRudy91: baseline {base.seconds:.3f}s, "
              f"icc {icc.seconds:.3f}s, limpetMLIR {mlir.seconds:.3f}s")
        assert mlir.seconds < base.seconds
        assert icc.seconds < base.seconds
