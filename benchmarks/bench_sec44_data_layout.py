"""§4.4 — impact of the data-layout (AoS -> AoSoA) transformation.

Paper: the optimization matters most for medium/large models ("they
access more memory"); Stress_Niederer improves from 4.98x to 6.03x at
32 threads AVX-512; the all-model geomean over the 1-32 thread AVX-512
sweep goes from 3.12x to 3.37x.
"""

import pytest

from repro.bench import geomean, run_measured, sweep_average_geomean
from repro.machine import AVX512
from repro.models import ALL_MODELS, SIZE_CLASS


@pytest.mark.figure("sec4.4")
def test_layout_sweep_regenerate(benchmark, bench):
    aosoa = benchmark(lambda: sweep_average_geomean("limpet_mlir",
                                                    bench=bench))
    aos = sweep_average_geomean("limpet_mlir_aos", bench=bench)
    print(f"\n§4.4 — 1-32 thread AVX-512 sweep geomean: "
          f"AoS {aos:.2f}x -> AoSoA {aosoa:.2f}x "
          f"(paper: 3.12x -> 3.37x)")
    assert aosoa > aos
    gain = aosoa / aos
    assert 1.02 < gain < 1.45, f"relative gain {gain:.2f}"


@pytest.mark.figure("sec4.4")
class TestLayoutShape:
    def test_stress_niederer_improves_at_32t(self, bench):
        aos = bench.speedup("Stress_Niederer", AVX512, 32,
                            "limpet_mlir_aos")
        aosoa = bench.speedup("Stress_Niederer", AVX512, 32,
                              "limpet_mlir")
        print(f"\nStress_Niederer 32T AVX-512: AoS {aos:.2f}x -> "
              f"AoSoA {aosoa:.2f}x (paper 4.98x -> 6.03x)")
        assert aosoa > aos
        assert 1.05 < aosoa / aos < 1.45  # paper's relative gain: 1.21

    def test_every_model_benefits_or_ties(self, bench):
        for name in ALL_MODELS:
            aos = bench.seconds(name, "limpet_mlir_aos", AVX512, 1)
            aosoa = bench.seconds(name, "limpet_mlir", AVX512, 1)
            assert aosoa <= aos * 1.001, name

    def test_state_heavy_models_benefit_more(self, bench):
        """The gain grows with per-cell state (the paper's explanation:
        medium/large models 'access more memory')."""
        def gain(name):
            aos = bench.seconds(name, "limpet_mlir_aos", AVX512, 1)
            aosoa = bench.seconds(name, "limpet_mlir", AVX512, 1)
            return aos / aosoa

        light = geomean([gain(n) for n in ALL_MODELS
                         if SIZE_CLASS[n] == "small"])
        heavy = geomean([gain(n) for n in ALL_MODELS
                         if SIZE_CLASS[n] == "large"])
        assert heavy > light

    def test_measured_engines_agree_on_direction(self):
        """Real NumPy engines: strided fancy-indexing (AoS) vs
        contiguous block access (AoSoA)."""
        aos = run_measured("TenTusscherPanfilov", "limpet_mlir_aos", 8,
                           n_cells=2048, n_steps=10, runs=3)
        aosoa = run_measured("TenTusscherPanfilov", "limpet_mlir", 8,
                             n_cells=2048, n_steps=10, runs=3)
        print(f"\nmeasured TenTusscherPanfilov: AoS {aos.seconds:.3f}s "
              f"vs AoSoA {aosoa.seconds:.3f}s")
        assert aosoa.seconds < aos.seconds * 1.15
