"""Figure 6 — roofline model, 32 cores AVX-512.

Paper landmarks: ridge point around 4 Flops/Byte; "the majority of
them are memory-bound"; GrandiPanditVoigt compute-bound near the
760 GFlops/s peak; OHara and WangSobie close to the memory roof (OHara
and some mediums exceed the DRAM line thanks to cache residency);
DrouhardRoberge at ~19 GFlops/s below 1/4 Flops/Byte; Plonsey at the
bottom-left.
"""

import pytest

from repro.bench import figure_roofline
from repro.machine import format_roofline_table


@pytest.fixture(scope="module")
def fig6():
    points, ceilings = figure_roofline()
    return {p.model: p for p in points}, ceilings


@pytest.mark.figure("fig6")
def test_fig6_regenerate(benchmark):
    points, ceilings = benchmark(figure_roofline)
    print()
    print("Fig. 6 — roofline, 32 cores AVX-512 (modeled testbed)")
    print(format_roofline_table(points, ceilings))
    by_model = {p.model: p for p in points}
    assert len(points) == 43
    # majority memory-bound (§4.5)
    memory_bound = [p for p in points if p.memory_bound]
    assert len(memory_bound) > len(points) / 2
    # nothing above peak
    assert all(p.gflops <= ceilings.peak_gflops * 1.001 for p in points)
    # GrandiPanditVoigt: compute-bound, among the fastest
    gpv = by_model["GrandiPanditVoigt"]
    assert not gpv.memory_bound
    assert gpv.gflops > 0.25 * ceilings.peak_gflops


@pytest.mark.figure("fig6")
class TestFigure6Landmarks:
    def test_ridge_point_near_four(self, fig6):
        _, ceilings = fig6
        assert 3.0 < ceilings.ridge_point < 4.5

    def test_grandi_pandit_voigt_top_right(self, fig6):
        points, _ = fig6
        gpv = points["GrandiPanditVoigt"]
        others = [p for name, p in points.items()
                  if name != "GrandiPanditVoigt"]
        assert gpv.gflops >= sorted(
            (p.gflops for p in others), reverse=True)[2]
        assert gpv.operational_intensity > 1.0

    def test_drouhard_roberge_low_intensity(self, fig6):
        points, _ = fig6
        dr = points["DrouhardRoberge"]
        assert dr.operational_intensity < 0.8
        assert dr.memory_bound

    def test_plonsey_bottom_left(self, fig6):
        points, _ = fig6
        plonsey = points["Plonsey"]
        assert plonsey.gflops == min(p.gflops for p in points.values())

    def test_ohara_and_wangsobie_strong_memory_side(self, fig6):
        points, ceilings = fig6
        for name in ("OHara", "WangSobie"):
            p = points[name]
            assert p.gflops > 30.0, name

    def test_small_models_low_performance(self, fig6, by_class):
        points, _ = fig6
        small_max = max(points[n].gflops for n in by_class["small"])
        large_max = max(points[n].gflops for n in by_class["large"])
        assert small_max < large_max / 3

    def test_high_performing_compute_bound_models_are_large(self, fig6):
        """The compute-bound points near the peak (the paper's
        GrandiPanditVoigt group) are all large models; small models are
        bound by memory or per-step overheads, never by useful flops."""
        points, _ = fig6
        strong = [p for p in points.values()
                  if not p.memory_bound and p.gflops > 100.0]
        assert strong
        assert all(p.size_class == "large" for p in strong)

    def test_cache_residency_allows_exceeding_dram_roof(self, fig6):
        """§4.5: 'OHara and some medium models exceed the DRAM
        bandwidth thanks to their efficient cache usage' — at least
        some memory-bound models sit above the DRAM-only attainable
        line."""
        points, ceilings = fig6
        above = [p for p in points.values()
                 if p.memory_bound and p.gflops >
                 ceilings.attainable_gflops(p.operational_intensity)]
        assert above
