"""§7 extensions — the paper's future-work items, implemented.

Two of the directions the conclusion lists are built and measured here:

* "an efficient spline interpolation method to replace or complement
  in some cases the currently used linear interpolation" — the
  Catmull-Rom LUT mode, traded against table size and cycle cost;
* "power consumption versus compute time performance evaluation" —
  the per-op energy model, answering whether vectorization saves
  energy as well as time.
"""

import numpy as np
import pytest

from repro.bench import geomean, kernel_profile
from repro.codegen import BackendMode, generate_limpet_mlir
from repro.frontend import load_model
from repro.ir.passes import default_pipeline
from repro.machine import (AVX512, CostModel, EnergyModel, compare_energy,
                           profile_kernel)
from repro.models import LARGE_MODELS, SIZE_CLASS, load_model as load_reg
from repro.runtime import KernelRunner
from repro.runtime.lut_runtime import (build_all_luts, lut_interp_row_vec,
                                       lut_interp_row_spline_vec)

COARSE = """
Vm; .external(); .lookup(-100,100,STEP);
r1 = exp(Vm/25);
r2 = 1/(1+exp(-(Vm+40)/7));
r3 = 0.1 + 2*exp(-square((Vm+40)/30));
diff_x = r1*r2/r3 - x; x_init = 0;
"""


@pytest.mark.figure("sec7-spline")
def test_spline_accuracy_vs_table_size(benchmark):
    """Spline at a 8x coarser step beats linear: the memory trade §7
    is after."""
    def accuracy(step, spline):
        model = load_model(COARSE.replace("STEP", str(step)), "C")
        lut = build_all_luts(model)[0]
        keys = np.linspace(-95, 95, 381) + step / 3.0
        interp = lut_interp_row_spline_vec if spline else \
            lut_interp_row_vec
        approx = interp(lut, keys)[0]
        exact = np.exp(keys / 25)
        return np.abs(approx - exact).max(), lut.memory_bytes()

    rows = benchmark(lambda: {
        ("linear", 0.05): accuracy(0.05, False),
        ("linear", 0.4): accuracy(0.4, False),
        ("spline", 0.4): accuracy(0.4, True),
    })
    print("\n§7 spline vs linear (first column of a 3-column table):")
    for (kind, step), (err, nbytes) in rows.items():
        print(f"  {kind:<7} step {step:<5} max err {err:.2e}  "
              f"table {nbytes / 1024:.0f} KiB")
    err_lin_fine, bytes_lin_fine = rows[("linear", 0.05)]
    err_spline_coarse, bytes_spline_coarse = rows[("spline", 0.4)]
    # spline on the 8x smaller table is at least as accurate as the
    # paper's fine linear table
    assert err_spline_coarse < err_lin_fine * 2.0
    assert bytes_spline_coarse < bytes_lin_fine / 7


@pytest.mark.figure("sec7-spline")
def test_spline_cycle_overhead_bounded(gate_cycles=None):
    """The spline's extra gathers cost < 2.5x the linear interp, far
    less than refining the linear table 8x would cost in cache traffic."""
    cost = CostModel()
    model = load_reg("Courtemanche")
    cycles = {}
    for mode in ("linear", "spline"):
        kernel = generate_limpet_mlir(model, 8, lut_interpolation=mode)
        default_pipeline(verify_each=False).run(kernel.module,
                                                fixed_point=True)
        profile = profile_kernel(kernel.module, kernel.spec.function_name)
        cycles[mode] = cost.cycles_per_iteration(profile, AVX512)
    print(f"\nCourtemanche cycles/iter: linear {cycles['linear']:.0f}, "
          f"spline {cycles['spline']:.0f}")
    assert cycles["linear"] < cycles["spline"] < cycles["linear"] * 2.5


@pytest.mark.figure("sec7-energy")
def test_energy_report(benchmark, bench):
    """Energy table per class: vectorization saves energy at 1T
    everywhere and keeps an energy-delay win on large models at 32T."""
    def table():
        rows = {}
        for name in ("Pathmanathan", "Courtemanche",
                     "TenTusscherPanfilov", "OHara"):
            pb = kernel_profile(name, "baseline", 1)
            pv = kernel_profile(name, "limpet_mlir", 8)
            base1, vec1 = compare_energy(pb, pv, AVX512, 1, 8192, 10_000)
            base32, vec32 = compare_energy(pb, pv, AVX512, 32, 8192,
                                           10_000)
            rows[name] = (base1, vec1, base32, vec32)
        return rows

    rows = benchmark(table)
    print("\n§7 energy (8192 cells x 10k steps, modeled):")
    print(f"{'model':<22} {'base 1T':>10} {'mlir 1T':>10} "
          f"{'base 32T':>10} {'mlir 32T':>10}   (joules)")
    for name, (b1, v1, b32, v32) in rows.items():
        print(f"{name:<22} {b1.joules:>9.1f}J {v1.joules:>9.1f}J "
              f"{b32.joules:>9.1f}J {v32.joules:>9.1f}J")
    for name, (b1, v1, b32, v32) in rows.items():
        assert v1.joules < b1.joules, f"{name}: 1T energy must improve"
        if SIZE_CLASS[name] == "large":
            assert v32.energy_delay_product < b32.energy_delay_product


@pytest.mark.figure("sec7-energy")
def test_large_class_energy_savings_substantial(bench):
    savings = []
    for name in LARGE_MODELS[:6]:
        pb = kernel_profile(name, "baseline", 1)
        pv = kernel_profile(name, "limpet_mlir", 8)
        base, vec = compare_energy(pb, pv, AVX512, 1, 8192, 1000)
        savings.append(base.joules / vec.joules)
    value = geomean(savings)
    print(f"\nlarge-class 1T energy ratio (base/mlir): {value:.2f}x")
    assert value > 2.0
