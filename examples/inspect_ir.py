#!/usr/bin/env python3
"""Inspect the compiler pipeline: AST -> IR -> passes -> Python kernel.

Prints, for the paper's own Listing 1 model (Pathmanathan), everything
the compilation flow of Figure 1 produces: the frontend's analysis, the
raw vectorized IR, the IR after the canonicalize/CSE/LICM/DCE pipeline
(with per-pass statistics), the instruction profile the machine model
consumes, and the lowered NumPy kernel source.
"""

from repro import generate_limpet_mlir, load_model, profile_kernel
from repro.ir import print_module, verify_module
from repro.ir.passes import default_pipeline
from repro.runtime import lower_function


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    model = load_model("Pathmanathan")
    banner("frontend analysis")
    print(model.describe())
    print("\ncomputation plan:")
    for comp in model.computations:
        print(f"  {comp}")
    for state in model.states:
        print(f"  d{state}/dt = {model.diffs[state]}"
              f"   [{model.methods[state].value}]")

    kernel = generate_limpet_mlir(model, width=8)
    verify_module(kernel.module)
    banner("generated IR (before optimization, MLIR-like form)")
    print(print_module(kernel.module, pretty=True))

    pipeline = default_pipeline()
    pipeline.run(kernel.module, fixed_point=True)
    banner("after canonicalize / CSE / LICM / DCE")
    print(print_module(kernel.module, pretty=True))
    print("\npass statistics:")
    print(pipeline.summary())

    banner("instruction profile (machine-model input)")
    profile = profile_kernel(kernel.module, kernel.spec.function_name)
    for key, value in sorted(profile.as_dict().items()):
        if isinstance(value, float) and value:
            print(f"  {key:<22} {value:g}")
    print(f"  flops/cell             {profile.flops_per_cell:g}")
    print(f"  bytes/cell             {profile.bytes_per_cell:g}")
    print(f"  operational intensity  "
          f"{profile.operational_intensity:.3f} F/B")

    banner("lowered NumPy kernel (what actually executes)")
    compiled = lower_function(kernel.module, kernel.spec.function_name)
    print(compiled.source)


if __name__ == "__main__":
    main()
