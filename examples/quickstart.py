#!/usr/bin/env python3
"""Quickstart: load an ionic model, compile it two ways, compare.

Loads the Courtemanche atrial model from the 43-model suite, generates
the scalar baseline kernel (openCARP's limpetC++ analog) and the
vectorized limpetMLIR kernel, runs both on the same initial state with
a periodic stimulus, verifies the trajectories agree bit-for-bit within
tolerance, and reports the measured speedup of the vectorized engine.
"""

from repro import (KernelRunner, Stimulus, compare_trajectories,
                   generate_baseline, generate_limpet_mlir, load_model)


def main() -> None:
    model = load_model("Courtemanche")
    print(model.describe())
    print()

    baseline = KernelRunner(generate_baseline(model))
    vectorized = KernelRunner(generate_limpet_mlir(model, width=8))

    stimulus = Stimulus(amplitude=-25.0, duration=1.0, period=400.0)
    n_cells, n_steps = 512, 200

    run_base = baseline.simulate(n_cells, n_steps, dt=0.01,
                                 stimulus=stimulus, perturbation=0.005)
    run_vec = vectorized.simulate(n_cells, n_steps, dt=0.01,
                                  stimulus=stimulus, perturbation=0.005)

    equal = compare_trajectories(run_base.state, run_vec.state)
    speedup = run_base.elapsed_seconds / run_vec.elapsed_seconds
    print(f"baseline  : {run_base.elapsed_seconds * 1e3:8.1f} ms")
    print(f"limpetMLIR: {run_vec.elapsed_seconds * 1e3:8.1f} ms")
    print(f"measured speedup: {speedup:.1f}x")
    print(f"trajectories equivalent: {equal}")
    assert equal, "the two backends must compute identical results"

    vm = run_vec.state.external("Vm")
    print(f"final Vm range across cells: [{vm.min():.2f}, {vm.max():.2f}] mV")


if __name__ == "__main__":
    main()
