#!/usr/bin/env python3
"""Author a new ionic model in EasyML and run it (artifact §A.7).

The paper's artifact appendix invites users to "venture yourself on
creating ionic models ... following the syntax of EasyML".  This script
writes a small two-current excitable membrane from scratch, walks it
through the whole pipeline (parse -> analyze -> vectorized codegen ->
optimize -> lower -> simulate) and prints an ASCII action potential.
"""

import numpy as np

from repro import (KernelRunner, Stimulus, generate_limpet_mlir,
                   load_model_source)

MY_MODEL = """
// A didactic two-current membrane: fast inward (gated) + slow outward.
Vm; .external(); .nodal(); .lookup(-100,60,0.05);
Iion; .external(); .nodal();

group{
  g_in = 1.4;
  g_out = 0.12;
  E_in = 30.0;
  E_out = -85.0;
}.param();

Vm_init = -80.0;

// activation gate with voltage-dependent kinetics (tabulated on Vm,
// integrated with Rush-Larsen automatically)
n_inf = 1.0/(1.0 + exp(-(Vm + 40.0)/6.0));
tau_n = 1.0 + 14.0*exp(-square((Vm + 50.0)/30.0));
diff_n = (n_inf - n)/tau_n;
n_init = 0.002;

// slow recovery variable, explicit midpoint integration
diff_w = 0.004*(Vm + 80.0) - 0.02*w;
w_init = 0.0;
w; .method(rk2);

I_in = g_in*square(n)*(1.0 - 0.6*w)*(Vm - E_in);
I_out = g_out*(Vm - E_out);

Iion = I_in + I_out;
"""


def ascii_plot(trace, width=72, height=16):
    lo, hi = trace.min(), trace.max()
    span = max(hi - lo, 1e-9)
    idx = np.linspace(0, len(trace) - 1, width).astype(int)
    rows = [[" "] * width for _ in range(height)]
    for col, i in enumerate(idx):
        row = int((trace[i] - lo) / span * (height - 1))
        rows[height - 1 - row][col] = "*"
    lines = ["".join(r) for r in rows]
    lines.append(f"Vm in [{lo:.1f}, {hi:.1f}] mV over {len(trace)} steps")
    return "\n".join(lines)


def main() -> None:
    model = load_model_source(MY_MODEL, "MyMembrane")
    print(model.describe())
    for warning in model.warnings:
        print("warning:", warning)

    runner = KernelRunner(generate_limpet_mlir(model, width=8))
    stimulus = Stimulus(amplitude=-40.0, duration=1.5, period=120.0)
    result = runner.simulate(n_cells=64, n_steps=12000, dt=0.01,
                             stimulus=stimulus, record_vm=True)

    print()
    print(ascii_plot(result.vm_trace))
    peak = result.vm_trace.max()
    assert peak > -40.0, "the stimulus should trigger an upstroke"
    print(f"\naction-potential peak: {peak:.1f} mV; "
          f"run took {result.elapsed_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
