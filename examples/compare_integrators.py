#!/usr/bin/env python3
"""Compare the six integration methods (§3.3.2) on one gate equation.

Integrates the same Hodgkin-Huxley style gate with every method the
paper implements in MLIR — fe, rk2, rk4, rush_larsen, sundnes,
markov_be — across time steps, against the exact solution, and prints
an accuracy/stability table.  Shows why Rush-Larsen "is the preferred
method for simulating gates": it stays exact-for-linear and stable even
at absurd time steps where forward Euler explodes.
"""

import math

from repro import KernelRunner, generate_baseline, load_model_source

METHODS = ("fe", "rk2", "rk4", "rush_larsen", "sundnes", "markov_be")
INF, TAU, X0, HORIZON = 0.8, 2.0, 0.1, 4.0


def gate_source(method: str) -> str:
    return f"""
        m_inf = {INF}; tau_m = {TAU};
        diff_m = ({INF} - m)/{TAU};
        m_init = {X0};
        m; .method({method});
    """


def integrate(method: str, dt: float) -> float:
    model = load_model_source(gate_source(method), f"Gate_{method}")
    runner = KernelRunner(generate_baseline(model))
    state = runner.make_state(1)
    runner.run(state, int(round(HORIZON / dt)), dt)
    return float(state.state_of("m")[0])


def main() -> None:
    exact = INF + (X0 - INF) * math.exp(-HORIZON / TAU)
    print(f"gate ODE: dm/dt = ({INF} - m)/{TAU}, m(0) = {X0}; "
          f"exact m({HORIZON}) = {exact:.10f}")
    print()
    header = f"{'method':<12}" + "".join(
        f"  dt={dt:<10}" for dt in (0.5, 0.1, 0.02))
    print(header + "  stability at dt=8.0")
    for method in METHODS:
        errors = []
        for dt in (0.5, 0.1, 0.02):
            value = integrate(method, dt)
            errors.append(abs(value - exact))
        wild = integrate(method, 8.0)
        stable = "stable" if 0.0 <= wild <= 1.0 else "DIVERGES"
        row = f"{method:<12}" + "".join(f"  {e:<12.2e}" for e in errors)
        print(row + f"  {stable} (m={wild:+.2f})")

    print()
    print("Rush-Larsen is exact for this (locally linear) gate at any")
    print("dt; rk4's error falls ~16x per dt halving; forward Euler")
    print("diverges once dt exceeds 2*tau.")


if __name__ == "__main__":
    main()
