#!/usr/bin/env python3
"""Drug-block sweep: one kernel advances 16 IKr-block variants at once.

The classic population-of-models experiment: scale the rapid
delayed-rectifier conductance GKr of the Courtemanche atrial model
from 90% block (a strong IKr blocker on board) up to the unblocked
default, pace one action potential, and watch repolarization slow as
the repolarization reserve shrinks.

The point of ``repro.population`` is that this does NOT compile or run
the model 16 times: GKr is promoted from a baked-in constant to a
per-instance parameter array and a single vectorized kernel advances
all 16 instances x all cells in one call.  Every later sweep of the
same shape (same parameter names, same N) reuses the compiled kernel
from the persistent cache.
"""

import numpy as np

from repro.population import sweep
from repro.runtime import Stimulus

DT = 0.05           # ms
N_STEPS = 4000      # 200 ms window: one paced beat + repolarization


def main() -> None:
    stimulus = Stimulus(amplitude=-80.0, duration=2.0, period=500.0)
    result = sweep("Courtemanche", {"GKr": "0.1:1.0:16"},
                   cells_per_instance=16, n_steps=N_STEPS, dt=DT,
                   stimulus=stimulus, record_vm=True)

    print(f"{result.n_instances} instances x "
          f"{result.cells_per_instance} cells x "
          f"{result.n_steps} steps in "
          f"{result.elapsed_seconds * 1e3:.1f} ms "
          f"({result.cell_steps_per_second / 1e6:.2f} Mcell-steps/s)")
    print(f"compiled kernel reused from cache: {result.compile_reused}")
    print()

    default = result.spec.values["GKr"][-1]
    print(f"{'GKr scale':>10} {'GKr (nS/pF)':>12} {'peak Vm':>9} "
          f"{'ms above -60mV':>15} {'final Vm (mV)':>14}")
    for i in range(result.n_instances):
        gkr = result.instance_param("GKr", i)
        trace = result.vm_trace_of(i)
        apd = float(np.sum(trace > -60.0)) * DT
        print(f"{gkr / default:>10.3f} {gkr:>12.5f} "
              f"{np.max(trace):>9.2f} {apd:>15.2f} "
              f"{trace[-1]:>14.4f}")

    # stronger block -> less repolarizing current -> the membrane ends
    # the beat less repolarized than the unblocked instance
    blocked = result.vm_trace_of(0)[-1]
    unblocked = result.vm_trace_of(result.n_instances - 1)[-1]
    print()
    print(f"final Vm, 90% block vs none: {blocked:.4f} vs "
          f"{unblocked:.4f} mV")
    assert blocked > unblocked, \
        "IKr block must not speed up repolarization"


if __name__ == "__main__":
    main()
