#!/usr/bin/env python3
"""Figure 1's left-hand side: foreign formats feeding EasyML.

Converts the same FitzHugh-Nagumo dynamics from three foreign sources
— a CellML 1.0 document, a Myokit MMT file and an SBML level-2 model —
into EasyML, compiles each through limpetMLIR, and verifies all three
produce action potentials with the native suite model.
"""

import numpy as np

from repro import (KernelRunner, generate_limpet_mlir, load_model,
                   load_model_source)
from repro.convert import cellml_to_easyml, mmt_to_easyml, sbml_to_easyml

CELLML = """<?xml version="1.0"?>
<model xmlns="http://www.cellml.org/cellml/1.0#" name="fhn_cellml">
 <component name="membrane">
  <variable name="V" initial_value="-1.1994"/>
  <variable name="w" initial_value="-0.6243"/>
  <variable name="a" initial_value="0.7"/>
  <variable name="b" initial_value="0.8"/>
  <variable name="eps" initial_value="0.08"/>
  <variable name="time"/>
  <math xmlns="http://www.w3.org/1998/Math/MathML">
   <apply><eq/>
    <apply><diff/><bvar><ci>time</ci></bvar><ci>V</ci></apply>
    <apply><minus/>
     <apply><minus/><ci>V</ci>
      <apply><divide/>
       <apply><power/><ci>V</ci><cn>3</cn></apply><cn>3</cn></apply>
     </apply><ci>w</ci></apply>
   </apply>
   <apply><eq/>
    <apply><diff/><bvar><ci>time</ci></bvar><ci>w</ci></apply>
    <apply><times/><ci>eps</ci>
     <apply><minus/>
      <apply><plus/><ci>V</ci><ci>a</ci></apply>
      <apply><times/><ci>b</ci><ci>w</ci></apply></apply></apply>
   </apply>
  </math>
 </component>
</model>"""

MMT = """
[[model]]
membrane.V = -1.1994
membrane.w = -0.6243

[membrane]
a = 0.7
b = 0.8
eps = 0.08
dot(V) = V - V^3 / 3 - w
dot(w) = eps * (V + a - b * w)
"""

SBML = """<?xml version="1.0"?>
<sbml xmlns="http://www.sbml.org/sbml/level2" level="2" version="4">
 <model id="fhn_sbml">
  <listOfParameters>
   <parameter id="V" value="-1.1994"/>
   <parameter id="a" value="0.7"/>
   <parameter id="b" value="0.8"/>
   <parameter id="eps" value="0.08"/>
   <parameter id="w" value="-0.6243"/>
  </listOfParameters>
  <listOfRules>
   <rateRule variable="V">
    <math xmlns="http://www.w3.org/1998/Math/MathML">
     <apply><minus/>
      <apply><minus/><ci>V</ci>
       <apply><divide/>
        <apply><power/><ci>V</ci><cn>3</cn></apply><cn>3</cn></apply>
      </apply><ci>w</ci></apply>
    </math>
   </rateRule>
   <rateRule variable="w">
    <math xmlns="http://www.w3.org/1998/Math/MathML">
     <apply><times/><ci>eps</ci>
      <apply><minus/>
       <apply><plus/><ci>V</ci><ci>a</ci></apply>
       <apply><times/><ci>b</ci><ci>w</ci></apply></apply></apply>
    </math>
   </rateRule>
  </listOfRules>
 </model>
</sbml>"""


def run(source_name, easyml):
    model = load_model_source(easyml, source_name)
    runner = KernelRunner(generate_limpet_mlir(model, width=8))
    state = runner.make_state(8)
    runner.run(state, 4000, 0.05)
    return state.external("Vm")


def main() -> None:
    results = {
        "CellML": run("fhn_cellml", cellml_to_easyml(CELLML,
                                                     lookup_vm=False)),
        "MMT": run("fhn_mmt", mmt_to_easyml(MMT, lookup_vm=False)),
        "SBML": run("fhn_sbml", sbml_to_easyml(SBML, lookup_vm=False)),
    }
    native_model = load_model("FitzHughNagumo")
    native = KernelRunner(generate_limpet_mlir(native_model, 8))
    state = native.make_state(8)
    native.run(state, 4000, 0.05)
    results["native EasyML"] = state.external("Vm")

    print("FitzHugh-Nagumo Vm(t=200) from four source formats:")
    reference = results["native EasyML"][0]
    for name, vm in results.items():
        print(f"  {name:<14} Vm = {vm[0]:+.6f}")
        assert abs(vm[0] - reference) < 5e-3, name
    print("\nall four formats agree — EasyML works as the common "
          "intermediate representation of Figure 1.")


if __name__ == "__main__":
    main()
