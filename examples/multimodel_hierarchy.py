#!/usr/bin/env python3
"""Multimodel support (§3.3.2): a plugin current on top of a membrane.

Couples the IK,ACh plugin (IKChCheng) to half the cells of a LuoRudy91
tissue strip through the parent/offspring mechanism: plugin cells read
the parent's Vm via masked vector gathers and accumulate their current
into the parent's Iion via masked scatters; unparented plugin cells
fall through to their local storage.  The acetylcholine-activated
potassium current shortens the action potential in the coupled half —
visible directly in the Vm statistics.
"""

import numpy as np

from repro import Stimulus, load_model
from repro.runtime import HierarchicalSimulation


def main() -> None:
    parent = load_model("LuoRudy91")
    plugin = load_model("IKChCheng")

    n_cells = 64
    sim = HierarchicalSimulation(parent, n_cells=n_cells, width=8)
    coupled = list(range(n_cells // 2))       # plugin on cells 0..31
    sim.attach_plugin(plugin, coupled)
    print(f"parent: LuoRudy91 ({len(parent.states)} states), "
          f"plugin: IKChCheng on cells 0..{n_cells // 2 - 1}")

    stimulus = Stimulus(amplitude=-30.0, duration=1.0, period=300.0)
    dt, n_steps = 0.01, 20_000
    apd_samples = {"with IK,ACh": [], "without": []}
    for step in range(n_steps):
        sim.step(dt, stimulus)
        vm = sim.parent_vm()
        apd_samples["with IK,ACh"].append((vm[:32] > -40.0).mean())
        apd_samples["without"].append((vm[32:] > -40.0).mean())

    vm = sim.parent_vm()
    print(f"\nafter {n_steps * dt:.0f} ms of pacing:")
    print(f"  coupled half   Vm = {vm[:32].mean():8.3f} mV")
    print(f"  uncoupled half Vm = {vm[32:].mean():8.3f} mV")
    frac_with = float(np.mean(apd_samples["with IK,ACh"]))
    frac_without = float(np.mean(apd_samples["without"]))
    print(f"  time above -40 mV: {frac_with * 100:.2f}% (with plugin) "
          f"vs {frac_without * 100:.2f}% (without)")
    assert np.isfinite(vm).all()
    assert abs(vm[:32].mean() - vm[32:].mean()) > 1e-6, \
        "the plugin current must leave a visible footprint"
    print("\nthe IK,ACh plugin measurably changes the coupled cells, "
          "exactly as openCARP's plugin mechanism intends.")

    r = sim.plugin_state(0, "r")
    print(f"plugin receptor state r: mean {r.mean():.4f}")


if __name__ == "__main__":
    main()
