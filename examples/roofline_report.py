#!/usr/bin/env python3
"""Regenerate the paper's evaluation figures from the modeled testbed.

Prints the data behind Figures 2-6 plus the §4.4 data-layout and §5
icc statistics — the same artifact the paper's ``evaluation.sh`` /
``res.sh`` scripts produce, as text tables.  Runs in seconds because
the modeled Cascade Lake bench evaluates the generated IR instead of
executing 10+ hours of simulation (§A.2).
"""

from repro.bench import (ModeledBench, figure_isa_sweep, figure_roofline,
                         figure_scaling, figure_speedups, format_isa_sweep,
                         format_scaling_table, format_speedup_table,
                         sweep_average_geomean)
from repro.machine import format_roofline_table


def banner(title: str) -> None:
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)


def main() -> None:
    bench = ModeledBench()

    banner("Figure 2 — speedup, 1 thread, AVX-512 (paper geomean 5.25x)")
    print(format_speedup_table(figure_speedups(1, bench=bench), ""))

    banner("Figure 3 — speedup, 32 threads, AVX-512 (paper 1.93x; "
           "0.83/1.34/6.03 per class)")
    print(format_speedup_table(figure_speedups(32, bench=bench), ""))

    banner("Figure 4 — class-average execution time vs threads")
    print(format_scaling_table(figure_scaling(bench=bench)))

    banner("Figure 5 — ISA sweep (paper overall 2.90x)")
    print(format_isa_sweep(figure_isa_sweep(bench=bench)))

    banner("Figure 6 — roofline, 32 cores AVX-512")
    points, ceilings = figure_roofline()
    print(format_roofline_table(points, ceilings))

    banner("§4.4 data layout and §5 icc comparator")
    aosoa = sweep_average_geomean("limpet_mlir", bench=bench)
    aos = sweep_average_geomean("limpet_mlir_aos", bench=bench)
    icc = sweep_average_geomean("icc_simd", bench=bench)
    print(f"AoS -> AoSoA sweep geomean : {aos:.2f}x -> {aosoa:.2f}x "
          f"(paper 3.12x -> 3.37x)")
    print(f"icc omp-simd sweep geomean : {icc:.2f}x vs limpetMLIR "
          f"{aosoa:.2f}x (paper 2.19x vs 3.37x)")

    banner("§7 extensions: energy and CPU-vs-GPU (modeled)")
    from repro.bench import kernel_profile
    from repro.codegen import generate_gpu
    from repro.ir.passes import default_pipeline
    from repro.machine import (AVX512, CostModel, GPUCostModel,
                               compare_energy, profile_kernel)
    from repro.models import load_model as load_reg
    cpu_cost, gpu_cost = CostModel(), GPUCostModel()
    print(f"{'model':<22} {'E base 1T':>10} {'E mlir 1T':>10} "
          f"{'CPU32T 1M cells':>16} {'GPU 1M cells':>13}")
    for name in ("Plonsey", "Courtemanche", "OHara",
                 "IyerMazhariWinslow"):
        pb = kernel_profile(name, "baseline", 1)
        pv = kernel_profile(name, "limpet_mlir", 8)
        e_base, e_vec = compare_energy(pb, pv, AVX512, 1, 8192, 10_000)
        kg = generate_gpu(load_reg(name))
        default_pipeline(verify_each=False).run(kg.module,
                                                fixed_point=True)
        pg = profile_kernel(kg.module, kg.spec.function_name)
        t_cpu = cpu_cost.total_time(pv, AVX512, 32, 1_000_000, 1000)
        t_gpu = gpu_cost.total_time(pg, 1_000_000, 1000)
        print(f"{name:<22} {e_base.joules:>9.1f}J {e_vec.joules:>9.1f}J "
              f"{t_cpu:>15.1f}s {t_gpu:>12.1f}s")


if __name__ == "__main__":
    main()
