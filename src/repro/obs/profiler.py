"""Measured per-op kernel profiling: hot tables + cost-model feedback.

The lowering (``repro.runtime.lowering``) can emit kernels in
**profile mode**: every op-emitting statement is bracketed by a pair
of ``perf_counter`` reads accumulating into a per-statement slot of a
preallocated counter array, with a *provenance* record mapping each
slot back to the IR operation (and, through the op's result name hint,
the EasyML source name) it was lowered from.  Crucially the compute
statements themselves are textually unchanged, so a profiled run is
**bitwise identical** to an unprofiled one — the clock reads happen
between statements, never inside an expression.

This module turns those raw counters into:

* :class:`KernelProfileReport` — per-op measured seconds, top-N hot
  table (``hot_table``), per-IR-op and per-cost-class aggregation;
* :func:`measured_op_costs` / :func:`calibrated_cost_model` — feed the
  *measured* per-element costs back into
  :class:`~repro.machine.costmodel.PythonRuntimeCostModel`, replacing
  its hand-calibrated constants for this workload;
* :func:`measured_roofline_point` — a
  :class:`~repro.machine.roofline.RooflinePoint` whose GFlops/s come
  from measured wall time instead of the modeled bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..machine.arch import CASCADE_LAKE, Machine
from ..machine.costmodel import PythonRuntimeCostModel
from ..machine.instrument import (_EXP_CLASS, _INT_OPS, _POW_CLASS,
                                  _SIMPLE_FP, KernelProfile)
from ..machine.roofline import RooflinePoint, machine_ceilings

__all__ = ["OpCost", "KernelProfileReport", "classify_op",
           "measured_op_costs", "calibrated_cost_model",
           "measured_roofline_point"]

#: cost-model element classes a profiled statement can attribute to
_MOVE_OPS = {"memref.load", "memref.store", "vector.load", "vector.store"}
_GATHER_OPS = {"vector.gather", "vector.scatter"}
_DIV_OPS = {"arith.divf", "arith.remf"}


def classify_op(op_name: str, detail: Optional[str] = None) -> str:
    """Map an IR op (+ call detail) onto a cost-model element class."""
    if op_name == "func.call":
        if detail and detail.startswith("LUT_"):
            return "lut"
        return "other"
    if op_name in _DIV_OPS:
        return "div"
    if op_name in _SIMPLE_FP:
        return "simple"
    if op_name in _EXP_CLASS:
        return "exp"
    if op_name in _POW_CLASS:
        return "pow"
    if op_name in _MOVE_OPS:
        return "move"
    if op_name in _GATHER_OPS:
        return "gather"
    if op_name in _INT_OPS:
        return "int"
    return "other"


@dataclass
class OpCost:
    """Measured cost of one lowered statement (one provenance slot)."""

    index: int
    op: str                        # IR operation name (e.g. math.exp)
    dialect: str
    seconds: float
    source: Optional[str] = None   # EasyML name via the result hint
    snippet: str = ""              # the lowered statement text
    detail: Optional[str] = None   # callee for func.call statements

    @property
    def element_class(self) -> str:
        return classify_op(self.op, self.detail)


class KernelProfileReport:
    """Aggregated view of one profiled kernel's measured counters."""

    def __init__(self, entries: List[OpCost], model: str = "",
                 invocations: int = 0):
        self.entries = sorted(entries, key=lambda e: -e.seconds)
        self.model = model
        self.invocations = invocations
        self.total_seconds = sum(e.seconds for e in entries)

    @classmethod
    def from_kernel(cls, kernel, model: str = "",
                    invocations: int = 0) -> "KernelProfileReport":
        """Build from a :class:`~repro.runtime.lowering.CompiledKernel`
        lowered with ``profile=True`` (raises otherwise)."""
        if kernel.profile_counters is None or kernel.provenance is None:
            raise ValueError(
                "kernel was not lowered in profile mode; construct the "
                "runner with KernelRunner(..., profile=True)")
        entries = [
            OpCost(index=entry["index"], op=entry["op"],
                   dialect=entry["dialect"],
                   seconds=float(kernel.profile_counters[entry["index"]]),
                   source=entry.get("source"),
                   snippet=entry.get("text", ""),
                   detail=entry.get("detail"))
            for entry in kernel.provenance]
        return cls(entries, model=model, invocations=invocations)

    # -- aggregation --------------------------------------------------------------

    def by_op(self) -> Dict[str, float]:
        """Measured seconds aggregated by IR operation name."""
        totals: Dict[str, float] = {}
        for entry in self.entries:
            totals[entry.op] = totals.get(entry.op, 0.0) + entry.seconds
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def by_dialect(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for entry in self.entries:
            totals[entry.dialect] = (totals.get(entry.dialect, 0.0)
                                     + entry.seconds)
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def by_class(self) -> Dict[str, float]:
        """Measured seconds aggregated by cost-model element class."""
        totals: Dict[str, float] = {}
        for entry in self.entries:
            cls_ = entry.element_class
            totals[cls_] = totals.get(cls_, 0.0) + entry.seconds
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def class_statement_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.entries:
            cls_ = entry.element_class
            counts[cls_] = counts.get(cls_, 0) + 1
        return counts

    def attributed_fraction(self, measured_compute_seconds: float) -> float:
        """Share of an externally measured compute time the per-op
        counters account for (acceptance bar: >= 0.95)."""
        if measured_compute_seconds <= 0.0:
            return 0.0
        return self.total_seconds / measured_compute_seconds

    # -- presentation -------------------------------------------------------------

    def hot_table(self, top_n: int = 10) -> str:
        """The top-N hot-op table: seconds, share, op, source name."""
        head = f"hot ops — {self.model}" if self.model else "hot ops"
        if self.invocations:
            head += f" ({self.invocations} kernel calls)"
        head += f", {self.total_seconds * 1e3:.2f} ms attributed"
        lines = [head,
                 f"{'seconds':>10} {'share':>7} {'cum':>7} "
                 f"{'op':<18} {'source':<16} statement"]
        total = max(self.total_seconds, 1e-12)
        cumulative = 0.0
        for entry in self.entries[:top_n]:
            cumulative += entry.seconds
            snippet = entry.snippet
            if len(snippet) > 48:
                snippet = snippet[:45] + "..."
            lines.append(
                f"{entry.seconds:>10.6f} {entry.seconds / total:>6.1%} "
                f"{cumulative / total:>6.1%} {entry.op:<18} "
                f"{(entry.source or '-'):<16} {snippet}")
        remaining = len(self.entries) - top_n
        if remaining > 0:
            rest = sum(e.seconds for e in self.entries[top_n:])
            lines.append(f"{rest:>10.6f} {rest / total:>6.1%} "
                         f"{'100.0%':>7} (+{remaining} more)")
        return "\n".join(lines)

    def as_dict(self) -> Dict:
        return {"model": self.model,
                "invocations": self.invocations,
                "total_seconds": self.total_seconds,
                "by_op": self.by_op(),
                "by_class": self.by_class(),
                "entries": [{"index": e.index, "op": e.op,
                             "dialect": e.dialect, "seconds": e.seconds,
                             "source": e.source, "snippet": e.snippet}
                            for e in self.entries]}


# ---------------------------------------------------------------------------
# Feeding measured costs back into costmodel / roofline
# ---------------------------------------------------------------------------

#: element-class -> PythonRuntimeCostModel constant name
_CLASS_TO_CONSTANT = {
    "simple": "EL_SIMPLE_NS",
    "div": "EL_DIV_NS",
    "exp": "EL_EXP_NS",
    "pow": "EL_POW_NS",
    "move": "EL_MOVE_NS",
    "gather": "EL_GATHER_NS",
    "lut": "EL_LUT_COLUMN_NS",
}


def measured_op_costs(report: KernelProfileReport, n_cells: int,
                      invocations: Optional[int] = None
                      ) -> Dict[str, float]:
    """Measured per-element nanoseconds by cost-model class.

    Each class's attributed seconds are divided by the elements its
    statements processed (statements × cells × invocations).  The
    numbers include per-statement dispatch, so they are *effective*
    per-element costs at this cell count — exactly what the runtime
    cost model wants for ranking at the same workload shape.
    """
    invocations = invocations or report.invocations or 1
    seconds = report.by_class()
    statements = report.class_statement_counts()
    costs: Dict[str, float] = {}
    for cls_, secs in seconds.items():
        n_stmt = statements.get(cls_, 0)
        elements = n_stmt * max(n_cells, 1) * max(invocations, 1)
        if elements:
            costs[cls_] = secs / elements * 1e9
    return costs


def calibrated_cost_model(report: KernelProfileReport, n_cells: int,
                          invocations: Optional[int] = None,
                          machine: Machine = CASCADE_LAKE
                          ) -> PythonRuntimeCostModel:
    """A :class:`PythonRuntimeCostModel` whose per-element constants
    are replaced by this report's measured values (classes the profile
    never exercised keep the hand-calibrated defaults)."""
    model = PythonRuntimeCostModel(machine)
    for cls_, ns in measured_op_costs(report, n_cells, invocations).items():
        constant = _CLASS_TO_CONSTANT.get(cls_)
        if constant is not None and ns > 0.0:
            setattr(model, constant, ns)
    return model


def measured_roofline_point(model_name: str, profile: KernelProfile,
                            compute_seconds: float, n_cells: int,
                            n_steps: int, machine: Machine = CASCADE_LAKE,
                            size_class: str = "") -> RooflinePoint:
    """A roofline placement from *measured* wall time.

    ``profile`` supplies the per-cell flop/byte counts (static IR
    instrumentation, as in the paper §4.5); ``compute_seconds`` is the
    measured compute-stage time over ``n_steps`` steps of ``n_cells``
    cells — e.g. ``RunResult.compute_seconds`` from a
    ``time_breakdown`` run, or a profile report's ``total_seconds``.
    """
    flops_total = profile.flops_per_cell * n_cells * n_steps
    bytes_per_cell = profile.bytes_per_cell
    intensity = (profile.flops_per_cell / bytes_per_cell
                 if bytes_per_cell else float("inf"))
    gflops = flops_total / max(compute_seconds, 1e-12) / 1e9
    ceilings = machine_ceilings(machine)
    return RooflinePoint(model=model_name,
                         operational_intensity=intensity,
                         gflops=gflops,
                         memory_bound=intensity < ceilings.ridge_point,
                         size_class=size_class)
