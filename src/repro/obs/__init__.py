"""Observability: trace spans, metrics, pass instrumentation, profiling.

The unified measurement layer of the reproduction (DESIGN.md §8):

* :mod:`repro.obs.trace` — nested wall-clock spans over the whole
  compile-and-run pipeline, exported as Chrome trace-event JSON and a
  plain-text tree (``limpet-bench trace``, ``$LIMPET_TRACE``);
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with JSON and Prometheus exports (``limpet-bench metrics``);
* :mod:`repro.obs.passes` — concrete
  :class:`~repro.ir.passes.PassInstrumentation` hooks (op-count
  deltas, per-pass spans, ``--print-ir-after-all`` dumps, the
  sandbox's pre-pass snapshots);
* :mod:`repro.obs.profiler` — measured per-op kernel costs from
  profile-mode lowering, feeding hot tables, the runtime cost model
  and the roofline.

Only :mod:`~repro.obs.trace` and :mod:`~repro.obs.metrics` are
imported eagerly (they depend on nothing inside :mod:`repro`, so any
subsystem may import them without cycles); ``passes`` and ``profiler``
are reached as submodules.
"""

from . import metrics, trace
from .metrics import MetricsRegistry, default_registry
from .trace import Tracer, activate, active_tracer, deactivate

__all__ = ["metrics", "trace", "MetricsRegistry", "default_registry",
           "Tracer", "activate", "active_tracer", "deactivate"]
