"""Observability: trace spans, metrics, pass instrumentation, profiling.

The unified measurement layer of the reproduction (DESIGN.md §8):

* :mod:`repro.obs.trace` — nested wall-clock spans over the whole
  compile-and-run pipeline, exported as Chrome trace-event JSON and a
  plain-text tree (``limpet-bench trace``, ``$LIMPET_TRACE``);
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with JSON and Prometheus exports (``limpet-bench metrics``);
* :mod:`repro.obs.passes` — concrete
  :class:`~repro.ir.passes.PassInstrumentation` hooks (op-count
  deltas, per-pass spans, ``--print-ir-after-all`` dumps, the
  sandbox's pre-pass snapshots);
* :mod:`repro.obs.profiler` — measured per-op kernel costs from
  profile-mode lowering, feeding hot tables, the runtime cost model
  and the roofline.

The fleet-telemetry additions (DESIGN.md §13):

* :mod:`repro.obs.flight` — the crash flight recorder: a bounded ring
  of recent spans/metric deltas/worker events, dumped as a black-box
  JSON file on worker death, degradation, quarantine, or unhandled
  exception (``limpet-bench flight``);
* :mod:`repro.obs.ledger` — the append-only run ledger at
  ``$LIMPET_LEDGER`` recording every compile/run/degradation
  (``limpet-bench ledger``).

Only modules that depend on nothing inside :mod:`repro` beyond
``obs`` itself are imported eagerly (any subsystem may import them
without cycles): ``trace``, ``metrics``, and ``flight`` (whose
listeners are installed here, so the black box records from process
start).  ``ledger`` defers its one runtime dependency (the advisory
file lock) to call time; ``passes`` and ``profiler`` are reached as
submodules.
"""

from . import metrics, trace
from . import flight, ledger
from .metrics import MetricsRegistry, default_registry
from .trace import (TraceContext, Tracer, activate, active_tracer,
                    deactivate, merge_files)

flight.install()

__all__ = ["metrics", "trace", "flight", "ledger", "MetricsRegistry",
           "default_registry", "TraceContext", "Tracer", "activate",
           "active_tracer", "deactivate", "merge_files"]
