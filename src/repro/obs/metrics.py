"""Process-wide metrics: counters, gauges, histograms.

The subsystems each grew private counters (``CacheStats`` in the
kernel cache, ``hits/misses`` on the LUT cache, ``retries`` on the
watchdog report); this registry gives them one shared, thread-safe
home with two exports:

* :meth:`MetricsRegistry.snapshot` — a JSON-able dict for
  ``limpet-bench metrics --json`` and tests;
* :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``# TYPE``/``# HELP`` + samples) for ``--prom``.

Metric names follow Prometheus conventions (``*_total`` counters,
bare gauges).  The canonical set, wired in this PR:

==============================  =======================================
``kernel_cache_hits_total``     persistent kernel-cache hits
``kernel_cache_misses_total``   ... misses
``kernel_cache_evictions_total`` ... LRU evictions
``fallback_tier_skips_total``   backend tiers skipped by the chain
``pass_quarantines_total``      passes quarantined by the sandbox
``watchdog_nan_events_total``   NaN/Inf detections by the watchdog
``watchdog_retries_total``      checkpoint rollbacks (dt halving)
``tuner_measurements_total``    timed samples taken by the autotuner
``shard_count``                 gauge: shards of the last sharded run
``shard_imbalance_ratio``       gauge: max/mean shard size
``pass_seconds``                histogram: per-pass wall time
``worker_restarts_total``       supervised workers killed + respawned
``shard_retries_total``         shard tasks re-dispatched after failure
``degradations_total``          execution-tier downgrades taken
``supervised_workers``          gauge: live supervised worker processes
``kernel_cache_corrupt_total``  corrupt cache entries quarantined
``tuning_db_corrupt_total``     corrupt tuning records/files quarantined
``cache_memory_fallbacks_total`` persistent tiers degraded to in-memory
``population_instances``        gauge: instances per kernel call of the
                                latest population run
``sweep_compile_reuse_total``   sweeps served by an already-compiled
                                population kernel (same shape)
``artifact_hits_total``         kernels served by the AOT artifact tier
``artifact_misses_total``       artifact-tier lookups that fell through
                                to JIT compilation
``artifact_stale_total``        bundle entries rejected/flagged because
                                an input drifted (source, pipeline,
                                lowering, tuning)
``artifact_corrupt_total``      bundle entries failing their checksum
                                (audit quarantines them)
``artifact_build_seconds``      histogram: per-kernel ``build-all``
                                compile time
``cache_readonly_fallbacks_total`` persistent tiers degraded to
                                read-only operation
==============================  =======================================

All mutation is lock-per-metric; creation is lock-on-registry.  The
increments sit on *cold* paths (construction, eviction, divergence),
never inside the per-step hot loop.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

__all__ = ["Counter", "LabeledCounter", "Gauge", "Histogram",
           "MetricsRegistry", "default_registry", "counter", "gauge",
           "histogram", "snapshot", "to_prometheus", "reset",
           "add_listener", "remove_listener"]

#: default histogram buckets: wall-time seconds, log-spaced
DEFAULT_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount
        if _LISTENERS:
            _notify(self.name, amount, None)

    @property
    def value(self) -> int:
        return self._value

    def _snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "help": self.help, "value": self._value}

    def _prometheus(self) -> List[str]:
        return [f"{self.name} {self._value}"]


class _LabeledChild:
    """One labeled series of a :class:`LabeledCounter`."""

    __slots__ = ("_parent", "_labels", "_key")

    def __init__(self, parent: "LabeledCounter",
                 labels: Dict[str, str], key: str):
        self._parent = parent
        self._labels = labels
        self._key = key

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self._parent.name}: negative increment")
        with self._parent._lock:
            self._parent._series[self._key] = \
                self._parent._series.get(self._key, 0) + amount
        if _LISTENERS:
            _notify(self._parent.name, amount, self._labels)

    @property
    def value(self) -> int:
        return self._parent._series.get(self._key, 0)


class LabeledCounter:
    """A counter fanned out over label sets (Prometheus-style).

    ``counter("worker_failures_total", labelnames=("shard", "reason"))``
    returns one of these; ``.labels(shard="2", reason="stalled").inc()``
    bumps the matching series.  ``value`` sums every series, so code
    that only knows the unlabeled convention still reads a total.
    """

    kind = "counter"
    __slots__ = ("name", "help", "labelnames", "_series", "_lock")

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[str, int] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: Any) -> _LabeledChild:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"counter {self.name!r} takes labels "
                f"{self.labelnames}, got {tuple(sorted(labels))}")
        clean = {k: str(labels[k]) for k in self.labelnames}
        key = ",".join(f'{k}="{_escape(v)}"' for k, v in clean.items())
        return _LabeledChild(self, clean, key)

    def inc(self, amount: int = 1, **labels: Any) -> None:
        self.labels(**labels).inc(amount)

    @property
    def value(self) -> int:
        with self._lock:
            return sum(self._series.values())

    def series(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._series)

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            series = dict(self._series)
        return {"type": "counter", "help": self.help,
                "labels": list(self.labelnames),
                "value": sum(series.values()), "series": series}

    def _prometheus(self) -> List[str]:
        with self._lock:
            series = sorted(self._series.items())
        return [f"{self.name}{{{key}}} {count}" for key, count in series]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


class Gauge:
    """A value that goes up and down."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "help": self.help, "value": self._value}

    def _prometheus(self) -> List[str]:
        return [f"{self.name} {_format_value(self._value)}"]


class Histogram:
    """Cumulative-bucket histogram of observed values."""

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._counts = [0] * len(self.buckets)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def _snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {"type": "histogram", "help": self.help,
                    "count": self._count, "sum": self._sum,
                    "min": self._min, "max": self._max,
                    "buckets": {_format_value(b): c for b, c
                                in zip(self.buckets, self._counts)}}

    def _prometheus(self) -> List[str]:
        with self._lock:
            lines = [f'{self.name}_bucket{{le="{_format_value(b)}"}} {c}'
                     for b, c in zip(self.buckets, self._counts)]
            lines.append(f'{self.name}_bucket{{le="+Inf"}} {self._count}')
            lines.append(f"{self.name}_sum {_format_value(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
            return lines


def _format_value(value: float) -> str:
    return repr(float(value)) if value != int(value) else str(int(value))


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, requested {cls.kind}")
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Optional[Sequence[str]] = None):
        """A plain :class:`Counter`, or a :class:`LabeledCounter` when
        ``labelnames`` is given.  Requesting the same name with a
        different shape (labeled vs plain, or different label names)
        is a :class:`TypeError` — silent aliasing would split counts."""
        if labelnames is None:
            return self._get_or_create(name, Counter, help)
        metric = self._get_or_create(name, LabeledCounter, help,
                                     labelnames=labelnames)
        if metric.labelnames != tuple(labelnames):
            raise TypeError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, requested {tuple(labelnames)}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(name, Histogram, help, buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests; process start state)."""
        with self._lock:
            self._metrics.clear()

    # -- export -------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-able view of every metric."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metrics[name]._snapshot() for name in sorted(metrics)}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            metrics = dict(self._metrics)
        lines: List[str] = []
        for name in sorted(metrics):
            metric = metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._prometheus())
        return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# The process-default registry and module-level conveniences
# ---------------------------------------------------------------------------

_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT


def counter(name: str, help: str = "",
            labelnames: Optional[Sequence[str]] = None):
    return _DEFAULT.counter(name, help, labelnames=labelnames)


def gauge(name: str, help: str = "") -> Gauge:
    return _DEFAULT.gauge(name, help)


def histogram(name: str, help: str = "",
              buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return _DEFAULT.histogram(name, help, buckets=buckets)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return _DEFAULT.snapshot()


def to_prometheus() -> str:
    return _DEFAULT.to_prometheus()


def reset() -> None:
    _DEFAULT.reset()


# ---------------------------------------------------------------------------
# Increment listeners (the flight recorder's tap)
# ---------------------------------------------------------------------------

#: callables invoked as fn(name, amount, labels_or_None) after every
#: counter increment; empty unless the flight recorder installs one,
#: so the usual cost is a single truthiness check per increment (and
#: increments only ever sit on cold paths — see the module docstring)
_LISTENERS: List[Callable[[str, int, Optional[Dict[str, str]]], None]] = []


def add_listener(fn: Callable[[str, int, Optional[Dict[str, str]]],
                              None]) -> None:
    if fn not in _LISTENERS:
        _LISTENERS.append(fn)


def remove_listener(fn) -> None:
    try:
        _LISTENERS.remove(fn)
    except ValueError:
        pass


def _notify(name: str, amount: int,
            labels: Optional[Dict[str, str]]) -> None:
    for fn in list(_LISTENERS):
        try:
            fn(name, amount, labels)
        except Exception:               # pragma: no cover - best effort
            pass
