"""Concrete :class:`~repro.ir.passes.PassInstrumentation` implementations.

The hook API lives in :mod:`repro.ir.passes.pass_manager` (so the IR
layer stays observability-free); this module provides the standard
instruments, mirroring upstream MLIR's tooling:

* :class:`OpCountInstrumentation` — per-pass op-count deltas by
  dialect (the ``-mlir-print-op-stats`` analog);
* :class:`TracePassInstrumentation` — one child span per pass on a
  :class:`~repro.obs.trace.Tracer`, carrying the change flag and the
  non-zero dialect deltas (``-mlir-timing``);
* :class:`PrintIRInstrumentation` — IR dumps after every pass or only
  after changing passes (``-print-ir-after-all`` /
  ``-print-ir-after-change``);
* :class:`IRSnapshotInstrumentation` — captures the printed pre-pass
  IR; the sandboxed pass manager's rollback source;
* :class:`MetricsPassInstrumentation` — per-pass wall time into the
  ``pass_seconds`` histogram of the metrics registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..ir.core import Module
from ..ir.passes.pass_manager import Pass, PassInstrumentation
from ..ir.printer import print_module
from . import metrics as _metrics
from .trace import Span, Tracer

__all__ = ["count_ops_by_dialect", "op_count_delta", "PassOpCounts",
           "OpCountInstrumentation", "TracePassInstrumentation",
           "PrintIRInstrumentation", "IRSnapshotInstrumentation",
           "MetricsPassInstrumentation"]


def count_ops_by_dialect(module: Module) -> Dict[str, int]:
    """Operation counts of ``module`` keyed by dialect prefix."""
    counts: Dict[str, int] = {}
    for op in module.walk():
        dialect = op.dialect
        counts[dialect] = counts.get(dialect, 0) + 1
    return counts


def op_count_delta(before: Dict[str, int],
                   after: Dict[str, int]) -> Dict[str, int]:
    """Non-zero per-dialect count changes (after - before)."""
    delta: Dict[str, int] = {}
    for dialect in set(before) | set(after):
        diff = after.get(dialect, 0) - before.get(dialect, 0)
        if diff:
            delta[dialect] = diff
    return delta


@dataclass
class PassOpCounts:
    """One pass execution's op-count record."""

    pass_name: str
    changed: bool
    seconds: float
    before: Dict[str, int] = field(default_factory=dict)
    after: Dict[str, int] = field(default_factory=dict)

    @property
    def delta(self) -> Dict[str, int]:
        return op_count_delta(self.before, self.after)

    @property
    def total_delta(self) -> int:
        return sum(self.after.values()) - sum(self.before.values())


class OpCountInstrumentation(PassInstrumentation):
    """Records per-pass op-count deltas by dialect, in execution order."""

    def __init__(self):
        self.records: List[PassOpCounts] = []
        self._before: Optional[Dict[str, int]] = None

    def before_pass(self, pass_: Pass, module: Module) -> None:
        self._before = count_ops_by_dialect(module)

    def after_pass(self, pass_: Pass, module: Module, changed: bool,
                   seconds: float) -> None:
        self.records.append(PassOpCounts(
            pass_name=pass_.name, changed=changed, seconds=seconds,
            before=self._before or {},
            after=count_ops_by_dialect(module)))
        self._before = None

    def on_pass_error(self, pass_: Pass, module: Module,
                      error: BaseException, seconds: float) -> None:
        # the module was rolled back: before == after by construction
        before = self._before or {}
        self.records.append(PassOpCounts(
            pass_name=pass_.name, changed=False, seconds=seconds,
            before=before, after=dict(before)))
        self._before = None

    def summary(self) -> str:
        lines = [f"{'pass':<16} {'changed':<8} {'Δops':>6}  delta"]
        for rec in self.records:
            inner = ",".join(f"{d}{n:+d}"
                             for d, n in sorted(rec.delta.items()))
            lines.append(f"{rec.pass_name:<16} {str(rec.changed):<8} "
                         f"{rec.total_delta:>+6d}  [{inner}]")
        return "\n".join(lines)


class TracePassInstrumentation(PassInstrumentation):
    """One child span per pass under the tracer's current span.

    The span args carry ``changed``, the non-zero per-dialect op-count
    delta (``op_delta``), and the post-pass op total — the trace-level
    equivalent of MLIR's ``-mlir-timing`` nested pipeline tree.
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._open: List[Tuple[Span, Dict[str, int]]] = []

    def before_pass(self, pass_: Pass, module: Module) -> None:
        span = self.tracer.begin(f"pass:{pass_.name}", "pass")
        self._open.append((span, count_ops_by_dialect(module)))

    def after_pass(self, pass_: Pass, module: Module, changed: bool,
                   seconds: float) -> None:
        if not self._open:
            return
        span, before = self._open.pop()
        after = count_ops_by_dialect(module)
        self.tracer.end(span, changed=changed,
                        op_delta=op_count_delta(before, after),
                        ops_after=sum(after.values()))

    def on_pass_error(self, pass_: Pass, module: Module,
                      error: BaseException, seconds: float) -> None:
        if not self._open:
            return
        span, _ = self._open.pop()
        self.tracer.end(span, changed=False, error=type(error).__name__)


class PrintIRInstrumentation(PassInstrumentation):
    """IR dumps after passes, à la ``-print-ir-after-all``.

    ``after_all=False`` restricts dumps to passes that reported a
    change (``-print-ir-after-change``).  ``sink`` receives each dump
    (default: collect on :attr:`dumps`).
    """

    def __init__(self, after_all: bool = True,
                 sink: Optional[Callable[[str], None]] = None):
        self.after_all = after_all
        self.dumps: List[Tuple[str, str]] = []
        self._sink = sink

    def after_pass(self, pass_: Pass, module: Module, changed: bool,
                   seconds: float) -> None:
        if not (self.after_all or changed):
            return
        text = (f"// -----// IR dump after {pass_.name} "
                f"(changed={changed}) //----- //\n"
                + print_module(module))
        self.dumps.append((pass_.name, text))
        if self._sink is not None:
            self._sink(text)


class IRSnapshotInstrumentation(PassInstrumentation):
    """Captures the printed IR immediately before each pass.

    This is the sandbox's rollback source: the
    :class:`~repro.resilience.sandbox.SandboxedPassManager` reads
    :attr:`last` after the shared ``before_pass`` hooks fire, instead
    of keeping a private snapshotting path.  ``keep_history=True``
    additionally retains every ``(pass_name, ir_text)`` pair.
    """

    def __init__(self, keep_history: bool = False):
        self.last: Optional[str] = None
        self.keep_history = keep_history
        self.history: List[Tuple[str, str]] = []

    def before_pass(self, pass_: Pass, module: Module) -> None:
        self.last = print_module(module)
        if self.keep_history:
            self.history.append((pass_.name, self.last))


class MetricsPassInstrumentation(PassInstrumentation):
    """Feeds per-pass wall time into the process metrics registry."""

    def __init__(self, registry=None):
        self._registry = registry or _metrics.default_registry()

    def after_pass(self, pass_: Pass, module: Module, changed: bool,
                   seconds: float) -> None:
        self._registry.counter(
            "pass_runs_total", "pass executions").inc()
        self._registry.histogram(
            "pass_seconds", "per-pass wall time (s)").observe(seconds)
