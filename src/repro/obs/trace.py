"""Trace spans: nested wall-clock timing exported as Chrome trace JSON.

The paper's evaluation hinges on knowing where time goes; upstream
MLIR answers that with ``-mlir-timing`` (a nested timing tree per pass
pipeline).  This module is our equivalent, generalized over the whole
stack: a :class:`Tracer` records **nested spans** — parse → frontend →
IR build → passes (one child span per pass) → lowering → cache lookup
→ tune → run — and exports them

* as Chrome/Perfetto trace-event JSON (``{"traceEvents": [...]}`` with
  ``ph: "X"`` complete events, microsecond timestamps) loadable in
  ``chrome://tracing`` / https://ui.perfetto.dev, and
* as a plain-text summary tree for terminals and CI logs.

Activation is process-global and **cheap when off**: every
instrumentation site calls the module-level :func:`span`, which is a
single ``is None`` check returning a shared no-op context manager when
no tracer is active — the disabled overhead is one function call per
*stage* (never per step), far under the <2% budget.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "activate", "deactivate", "active_tracer",
           "span", "instant", "annotate"]


class Span:
    """One timed node of the trace tree (also usable as a context
    manager when produced by :meth:`Tracer.span`)."""

    __slots__ = ("name", "category", "args", "start", "end", "tid",
                 "children", "kind", "_tracer")

    def __init__(self, name: str, category: str = "",
                 args: Optional[Dict[str, Any]] = None,
                 tracer: Optional["Tracer"] = None, kind: str = "span"):
        self.name = name
        self.category = category
        self.args: Dict[str, Any] = dict(args or {})
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.tid: int = threading.get_ident()
        self.children: List["Span"] = []
        self.kind = kind                    # "span" | "instant"
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def annotate(self, **kv: Any) -> "Span":
        """Attach args discovered mid-span (e.g. ``cache_hit=True``)."""
        self.args.update(kv)
        return self

    # -- context manager protocol -------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._end(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms)"


class _NullSpan:
    """Shared no-op span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **kv: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a tree of :class:`Span` records per thread.

    Spans opened on different threads grow separate trees (each thread
    keeps its own open-span stack); finished roots from every thread
    are merged into :attr:`roots` under a lock, so sharded runs trace
    safely.
    """

    def __init__(self):
        self._t0 = time.perf_counter()
        self._wall0 = time.time()
        self.roots: List[Span] = []
        self._stacks = threading.local()
        self._lock = threading.Lock()
        # every thread's open-span stack, so flush() can force-end
        # spans left open by an interrupt on any thread
        self._all_stacks: Dict[int, List[Span]] = {}

    # -- span lifecycle -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
            with self._lock:
                self._all_stacks[threading.get_ident()] = stack
        return stack

    def flush(self) -> int:
        """Force-end every open span on every thread (interrupt path).

        An interrupted run leaves its ``with`` spans open; without this
        they would never reach :attr:`roots` and the written trace
        would silently drop the most interesting part.  Each dangling
        span is ended *now*, annotated ``interrupted=True``, and rooted
        outer-first so nesting survives.  Returns how many spans were
        flushed.
        """
        now = time.perf_counter()
        flushed = 0
        with self._lock:
            stacks = list(self._all_stacks.values())
        for stack in stacks:
            while stack:
                dangling = stack.pop()
                if dangling.end is None:
                    dangling.end = now
                dangling.annotate(interrupted=True)
                if stack:
                    stack[-1].children.append(dangling)
                else:
                    with self._lock:
                        self.roots.append(dangling)
                flushed += 1
        return flushed

    def span(self, name: str, category: str = "", **args: Any) -> Span:
        """A new span context manager; nesting follows ``with`` scope."""
        return Span(name, category, args, tracer=self)

    def begin(self, name: str, category: str = "", **args: Any) -> Span:
        """Open a span without ``with`` (close via :meth:`end`)."""
        span_ = Span(name, category, args, tracer=self)
        self._begin(span_)
        return span_

    def end(self, span_: Span, **extra_args: Any) -> None:
        if extra_args:
            span_.args.update(extra_args)
        self._end(span_)

    def _begin(self, span_: Span) -> None:
        span_.tid = threading.get_ident()
        span_.start = time.perf_counter()
        self._stack().append(span_)

    def _end(self, span_: Span) -> None:
        span_.end = time.perf_counter()
        stack = self._stack()
        if span_ in stack:          # tolerate error-path mismatches
            while stack and stack[-1] is not span_:
                dangling = stack.pop()
                dangling.end = dangling.end or span_.end
            stack.pop()
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._lock:
                self.roots.append(span_)

    def instant(self, name: str, **args: Any) -> None:
        """A zero-duration marker attached to the current span."""
        mark = Span(name, "instant", args, tracer=self, kind="instant")
        mark.start = mark.end = time.perf_counter()
        stack = self._stack()
        if stack:
            stack[-1].children.append(mark)
        else:
            with self._lock:
                self.roots.append(mark)

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- export -------------------------------------------------------------------

    def _walk(self):
        def visit(span_: Span):
            yield span_
            for child in span_.children:
                yield from visit(child)
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from visit(root)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (``traceEvents`` wrapper)."""
        pid = os.getpid()
        events = []
        for span_ in self._walk():
            ts = round((span_.start - self._t0) * 1e6, 3)
            event: Dict[str, Any] = {
                "name": span_.name,
                "cat": span_.category or "repro",
                "pid": pid,
                "tid": span_.tid,
                "ts": ts,
            }
            if span_.kind == "instant":
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = round(span_.duration * 1e6, 3)
            if span_.args:
                event["args"] = _jsonable(span_.args)
            events.append(event)
        return {"traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"tool": "limpet-bench",
                              "trace_start_unix_s": round(self._wall0, 3)}}

    def write(self, path) -> pathlib.Path:
        """Serialize :meth:`to_chrome` to ``path``; returns the path."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()))
        return path

    def summary_tree(self) -> str:
        """The plain-text span tree (durations + compact args)."""
        lines: List[str] = []

        def visit(span_: Span, depth: int) -> None:
            indent = "  " * depth
            label = f"{indent}{span_.name}"
            if span_.kind == "instant":
                lines.append(f"{label:<38} {'·':>11}  "
                             f"{_format_args(span_.args)}".rstrip())
                return
            lines.append(f"{label:<38} {span_.duration * 1e3:>9.2f} ms  "
                         f"{_format_args(span_.args)}".rstrip())
            for child in span_.children:
                visit(child, depth + 1)

        with self._lock:
            roots = list(self.roots)
        for root in roots:
            visit(root, 0)
        return "\n".join(lines)


def _jsonable(args: Dict[str, Any]) -> Dict[str, Any]:
    safe: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, dict):
            safe[key] = _jsonable(value)
        elif isinstance(value, (list, tuple)):
            safe[key] = [v if isinstance(v, (str, int, float, bool))
                         else repr(v) for v in value]
        else:
            safe[key] = repr(value)
    return safe


def _format_args(args: Dict[str, Any]) -> str:
    parts = []
    for key, value in args.items():
        if key == "op_delta" and isinstance(value, dict):
            inner = ",".join(f"{d}{n:+d}" for d, n in sorted(value.items()))
            parts.append(f"Δ[{inner}]" if inner else "Δ[]")
        elif isinstance(value, float):
            parts.append(f"{key}={value:g}")
        elif isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def activate(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` as the process tracer; returns the previous
    one (pass it back to :func:`deactivate` to restore nesting)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def deactivate(previous: Optional[Tracer] = None) -> None:
    global _ACTIVE
    _ACTIVE = previous


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


def span(name: str, category: str = "", **args: Any):
    """A span on the active tracer, or a shared no-op when tracing is
    off — the one-liner every instrumentation site uses."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **args)


def instant(name: str, **args: Any) -> None:
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)


def annotate(**kv: Any) -> None:
    """Attach args to the innermost open span, if tracing is active."""
    tracer = _ACTIVE
    if tracer is not None:
        current = tracer.current_span()
        if current is not None:
            current.annotate(**kv)
