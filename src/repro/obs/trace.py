"""Trace spans: nested wall-clock timing exported as Chrome trace JSON.

The paper's evaluation hinges on knowing where time goes; upstream
MLIR answers that with ``-mlir-timing`` (a nested timing tree per pass
pipeline).  This module is our equivalent, generalized over the whole
stack: a :class:`Tracer` records **nested spans** — parse → frontend →
IR build → passes (one child span per pass) → lowering → cache lookup
→ tune → run — and exports them

* as Chrome/Perfetto trace-event JSON (``{"traceEvents": [...]}`` with
  ``ph: "X"`` complete events, microsecond timestamps) loadable in
  ``chrome://tracing`` / https://ui.perfetto.dev, and
* as a plain-text summary tree for terminals and CI logs.

Activation is process-global and **cheap when off**: every
instrumentation site calls the module-level :func:`span`, which is a
single ``is None`` check returning a shared no-op context manager when
no tracer is active — the disabled overhead is one function call per
*stage* (never per step), far under the <2% budget.

Traces also cross process boundaries (DESIGN.md §13):

* a serializable :class:`TraceContext` (trace id + parent span id +
  the parent's clock origins) travels into forked workers and spawned
  child processes (``$LIMPET_TRACE_CONTEXT``);
* a worker :class:`Tracer` built from a context adopts the parent's
  trace id *and* timebase — ``time.perf_counter`` is CLOCK_MONOTONIC
  on Linux, shared across ``fork``, so worker timestamps land on the
  parent's timeline with no alignment step;
* workers convert finished spans with :meth:`Tracer.drain_events` and
  stream them back (the supervised tier piggybacks them on its pipe
  replies); the parent stores them via
  :meth:`Tracer.add_foreign_events` and :meth:`Tracer.to_chrome`
  emits one merged trace with correct pid/tid lanes;
* independently written trace files (e.g. ``$LIMPET_TRACE`` dumps from
  ``runner_from_store`` child processes) are stitched by
  :func:`merge_files`, wall-clock aligned via each file's recorded
  ``trace_start_unix_s``.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

__all__ = ["Span", "TraceContext", "Tracer", "activate", "deactivate",
           "active_tracer", "span", "instant", "annotate", "merge_files",
           "add_listener", "remove_listener"]

#: environment variable carrying a JSON TraceContext into child processes
TRACE_CONTEXT_ENV = "LIMPET_TRACE_CONTEXT"


class TraceContext:
    """The serializable identity a trace hands to another process.

    Carries the trace id, the span id the child's spans logically nest
    under, and the parent's clock origins.  A fork-child tracer built
    from a context shares the parent's CLOCK_MONOTONIC epoch, so its
    events need no timestamp shifting; independently started processes
    are aligned by :func:`merge_files` via the wall-clock origin.
    """

    __slots__ = ("trace_id", "parent_span_id", "t0_monotonic", "t0_wall")

    def __init__(self, trace_id: str, parent_span_id: int = 0,
                 t0_monotonic: float = 0.0, t0_wall: float = 0.0):
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.t0_monotonic = t0_monotonic
        self.t0_wall = t0_wall

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
                "t0_monotonic": self.t0_monotonic,
                "t0_wall": self.t0_wall}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        return cls(trace_id=str(data["trace_id"]),
                   parent_span_id=int(data.get("parent_span_id", 0)),
                   t0_monotonic=float(data.get("t0_monotonic", 0.0)),
                   t0_wall=float(data.get("t0_wall", 0.0)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TraceContext":
        return cls.from_dict(json.loads(text))

    def to_env(self, env: Dict[str, str]) -> Dict[str, str]:
        """Install this context into ``env`` (for child processes)."""
        env[TRACE_CONTEXT_ENV] = self.to_json()
        return env

    @classmethod
    def from_env(cls, env=None) -> Optional["TraceContext"]:
        """The context from ``$LIMPET_TRACE_CONTEXT``, or None."""
        text = (env if env is not None else os.environ).get(
            TRACE_CONTEXT_ENV)
        if not text:
            return None
        try:
            return cls.from_json(text)
        except (ValueError, KeyError, TypeError):
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext({self.trace_id!r}, "
                f"parent={self.parent_span_id})")


class Span:
    """One timed node of the trace tree (also usable as a context
    manager when produced by :meth:`Tracer.span`)."""

    __slots__ = ("name", "category", "args", "start", "end", "tid",
                 "children", "kind", "sid", "_tracer")

    def __init__(self, name: str, category: str = "",
                 args: Optional[Dict[str, Any]] = None,
                 tracer: Optional["Tracer"] = None, kind: str = "span"):
        self.name = name
        self.category = category
        self.args: Dict[str, Any] = dict(args or {})
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.tid: int = threading.get_ident()
        self.children: List["Span"] = []
        self.kind = kind                    # "span" | "instant"
        self.sid: int = 0                   # per-tracer span id
        self._tracer = tracer

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def annotate(self, **kv: Any) -> "Span":
        """Attach args discovered mid-span (e.g. ``cache_hit=True``)."""
        self.args.update(kv)
        return self

    # -- context manager protocol -------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._begin(self)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._end(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms)"


class _NullSpan:
    """Shared no-op span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **kv: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a tree of :class:`Span` records per thread.

    Spans opened on different threads grow separate trees (each thread
    keeps its own open-span stack); finished roots from every thread
    are merged into :attr:`roots` under a lock, so sharded runs trace
    safely.

    ``context`` adopts another process's :class:`TraceContext`: the
    trace id and both clock origins come from the parent, so a forked
    worker's events are directly mergeable into the parent's timeline.
    ``process_name`` labels this process's pid lane in merged traces.
    """

    def __init__(self, context: Optional[TraceContext] = None,
                 process_name: Optional[str] = None):
        if context is not None:
            self._t0 = context.t0_monotonic
            self._wall0 = context.t0_wall
            self.trace_id = context.trace_id
            self.parent_span_id = context.parent_span_id
        else:
            self._t0 = time.perf_counter()
            self._wall0 = time.time()
            self.trace_id = os.urandom(8).hex()
            self.parent_span_id = 0
        self.process_name = process_name
        self.roots: List[Span] = []
        self._stacks = threading.local()
        self._lock = threading.Lock()
        # every thread's open-span stack, so flush() can force-end
        # spans left open by an interrupt on any thread
        self._all_stacks: Dict[int, List[Span]] = {}
        # pre-built Chrome events received from other processes
        # (worker span streams), merged verbatim into to_chrome()
        self._foreign: List[Dict[str, Any]] = []
        self._next_sid = 0
        self._meta_sent = False

    # -- span lifecycle -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
            with self._lock:
                self._all_stacks[threading.get_ident()] = stack
        return stack

    def flush(self) -> int:
        """Force-end every open span on every thread (interrupt path).

        An interrupted run leaves its ``with`` spans open; without this
        they would never reach :attr:`roots` and the written trace
        would silently drop the most interesting part.  Each dangling
        span is ended *now*, annotated ``interrupted=True``, and rooted
        outer-first so nesting survives.  Returns how many spans were
        flushed.
        """
        now = time.perf_counter()
        flushed = 0
        with self._lock:
            stacks = list(self._all_stacks.values())
        for stack in stacks:
            while stack:
                dangling = stack.pop()
                if dangling.end is None:
                    dangling.end = now
                dangling.annotate(interrupted=True)
                if stack:
                    stack[-1].children.append(dangling)
                else:
                    with self._lock:
                        self.roots.append(dangling)
                flushed += 1
        return flushed

    def span(self, name: str, category: str = "", **args: Any) -> Span:
        """A new span context manager; nesting follows ``with`` scope."""
        return Span(name, category, args, tracer=self)

    def begin(self, name: str, category: str = "", **args: Any) -> Span:
        """Open a span without ``with`` (close via :meth:`end`)."""
        span_ = Span(name, category, args, tracer=self)
        self._begin(span_)
        return span_

    def end(self, span_: Span, **extra_args: Any) -> None:
        if extra_args:
            span_.args.update(extra_args)
        self._end(span_)

    def _begin(self, span_: Span) -> None:
        span_.tid = threading.get_ident()
        with self._lock:
            self._next_sid += 1
            span_.sid = self._next_sid
        span_.start = time.perf_counter()
        self._stack().append(span_)

    def _end(self, span_: Span) -> None:
        span_.end = time.perf_counter()
        stack = self._stack()
        if span_ in stack:          # tolerate error-path mismatches
            while stack and stack[-1] is not span_:
                dangling = stack.pop()
                dangling.end = dangling.end or span_.end
            stack.pop()
        if stack:
            stack[-1].children.append(span_)
        else:
            with self._lock:
                self.roots.append(span_)
        if _LISTENERS:
            _notify("span", span_.name,
                    {"dur_ms": round(span_.duration * 1e3, 3),
                     "data": _jsonable(span_.args)})

    def instant(self, name: str, **args: Any) -> None:
        """A zero-duration marker attached to the current span."""
        mark = Span(name, "instant", args, tracer=self, kind="instant")
        mark.start = mark.end = time.perf_counter()
        stack = self._stack()
        if stack:
            stack[-1].children.append(mark)
        else:
            with self._lock:
                self.roots.append(mark)
        if _LISTENERS:
            _notify("instant", name, {"data": _jsonable(args)})

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- cross-process propagation -------------------------------------------------

    def context(self) -> TraceContext:
        """The :class:`TraceContext` to hand a child process.

        The parent span id is the innermost open span on the calling
        thread (falling back to this tracer's own inherited parent), so
        worker spans logically nest under whatever was running when the
        worker was spawned.
        """
        current = self.current_span()
        parent_sid = current.sid if current is not None \
            else self.parent_span_id
        return TraceContext(trace_id=self.trace_id,
                            parent_span_id=parent_sid,
                            t0_monotonic=self._t0, t0_wall=self._wall0)

    def add_foreign_events(self,
                           events: Sequence[Dict[str, Any]]) -> None:
        """Store pre-built Chrome events from another process.

        The events must already be on this tracer's timebase (true for
        any tracer built from :meth:`context` — fork children share the
        monotonic clock).  They are emitted verbatim by
        :meth:`to_chrome`, keeping the sender's pid/tid lanes.
        """
        if not events:
            return
        with self._lock:
            self._foreign.extend(events)

    def foreign_events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._foreign)

    def drain_events(self) -> List[Dict[str, Any]]:
        """Pop every *finished* root span as Chrome events (streaming).

        The worker side of span streaming: finished roots are converted
        and removed, so repeated calls send each span exactly once.
        The first drain also emits this process's ``process_name``
        metadata event so merged traces label the pid lane.  Open spans
        are untouched — they drain once they finish.
        """
        with self._lock:
            roots, self.roots = self.roots, []
        events = self._meta_events()
        for root in roots:
            self._emit(root, events)
        return events

    def _meta_events(self) -> List[Dict[str, Any]]:
        if self._meta_sent:
            return []
        self._meta_sent = True
        name = self.process_name or f"limpet pid {os.getpid()}"
        return [{"ph": "M", "name": "process_name", "pid": os.getpid(),
                 "tid": 0, "args": {"name": name}}]

    # -- export -------------------------------------------------------------------

    def _walk(self):
        def visit(span_: Span):
            yield span_
            for child in span_.children:
                yield from visit(child)
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            yield from visit(root)

    def _emit(self, span_: Span, out: List[Dict[str, Any]]) -> None:
        """Append ``span_`` and its subtree as Chrome events."""
        pid = os.getpid()
        ts = round((span_.start - self._t0) * 1e6, 3)
        event: Dict[str, Any] = {
            "name": span_.name,
            "cat": span_.category or "repro",
            "pid": pid,
            "tid": span_.tid,
            "ts": ts,
        }
        if span_.kind == "instant":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(span_.duration * 1e6, 3)
        if span_.args:
            event["args"] = _jsonable(span_.args)
        out.append(event)
        for child in span_.children:
            self._emit(child, out)

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (``traceEvents`` wrapper).

        Includes this process's span tree, its ``process_name``
        metadata event, and every foreign event streamed in from other
        processes — one merged multi-pid trace.
        """
        name = self.process_name or f"limpet pid {os.getpid()}"
        events: List[Dict[str, Any]] = [
            {"ph": "M", "name": "process_name", "pid": os.getpid(),
             "tid": 0, "args": {"name": name}}]
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            self._emit(root, events)
        with self._lock:
            events.extend(self._foreign)
        return {"traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"tool": "limpet-bench",
                              "trace_id": self.trace_id,
                              "trace_start_unix_s": round(self._wall0, 3)}}

    def write(self, path) -> pathlib.Path:
        """Serialize :meth:`to_chrome` to ``path``; returns the path."""
        path = pathlib.Path(path)
        if path.parent != pathlib.Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()))
        return path

    #: classmethod alias so callers can say ``Tracer.merge_files(...)``
    merge_files: "staticmethod"

    def summary_tree(self) -> str:
        """The plain-text span tree (durations + compact args)."""
        lines: List[str] = []

        def visit(span_: Span, depth: int) -> None:
            indent = "  " * depth
            label = f"{indent}{span_.name}"
            if span_.kind == "instant":
                lines.append(f"{label:<38} {'·':>11}  "
                             f"{_format_args(span_.args)}".rstrip())
                return
            lines.append(f"{label:<38} {span_.duration * 1e3:>9.2f} ms  "
                         f"{_format_args(span_.args)}".rstrip())
            for child in span_.children:
                visit(child, depth + 1)

        with self._lock:
            roots = list(self.roots)
            foreign = list(self._foreign)
        for root in roots:
            visit(root, 0)
        if foreign:
            pids = {e.get("pid") for e in foreign if e.get("ph") != "M"}
            spans = sum(1 for e in foreign if e.get("ph") == "X")
            lines.append(f"[+{spans} foreign span(s) from "
                         f"{len(pids)} worker process(es)]")
        return "\n".join(lines)


def merge_files(paths: Sequence[Union[str, pathlib.Path]],
                out: Optional[Union[str, pathlib.Path]] = None
                ) -> Dict[str, Any]:
    """Stitch independently written Chrome trace files into one.

    Each file's events are shifted onto a common timeline using the
    ``trace_start_unix_s`` wall-clock origin the tracer records in
    ``otherData`` (files written by context-sharing tracers have equal
    origins, so their events pass through unshifted).  Returns the
    merged trace object; with ``out`` it is also written there.
    """
    traces: List[Dict[str, Any]] = []
    for path in paths:
        with open(path) as fh:
            traces.append(json.load(fh))
    if not traces:
        raise ValueError("merge_files: no trace files given")
    starts = [float(t.get("otherData", {}).get("trace_start_unix_s", 0.0))
              for t in traces]
    base = min(starts)
    events: List[Dict[str, Any]] = []
    for trace_obj, start in zip(traces, starts):
        offset_us = (start - base) * 1e6
        for event in trace_obj.get("traceEvents", []):
            if offset_us and event.get("ph") != "M" and "ts" in event:
                event = dict(event)
                event["ts"] = round(event["ts"] + offset_us, 3)
            events.append(event)
    trace_ids = sorted({t.get("otherData", {}).get("trace_id")
                        for t in traces} - {None})
    merged = {"traceEvents": events,
              "displayTimeUnit": "ms",
              "otherData": {"tool": "limpet-bench",
                            "merged_from": len(traces),
                            "trace_id": trace_ids[0]
                            if len(trace_ids) == 1 else None,
                            "trace_ids": trace_ids,
                            "trace_start_unix_s": round(base, 3)}}
    if out is not None:
        out = pathlib.Path(out)
        if out.parent != pathlib.Path("."):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(merged))
    return merged


Tracer.merge_files = staticmethod(merge_files)


def _jsonable(args: Dict[str, Any]) -> Dict[str, Any]:
    safe: Dict[str, Any] = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, dict):
            safe[key] = _jsonable(value)
        elif isinstance(value, (list, tuple)):
            safe[key] = [v if isinstance(v, (str, int, float, bool))
                         else repr(v) for v in value]
        else:
            safe[key] = repr(value)
    return safe


def _format_args(args: Dict[str, Any]) -> str:
    parts = []
    for key, value in args.items():
        if key == "op_delta" and isinstance(value, dict):
            inner = ",".join(f"{d}{n:+d}" for d, n in sorted(value.items()))
            parts.append(f"Δ[{inner}]" if inner else "Δ[]")
        elif isinstance(value, float):
            parts.append(f"{key}={value:g}")
        elif isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Span-event listeners (the flight recorder's tap)
# ---------------------------------------------------------------------------

#: callables invoked as fn(kind, name, payload) on every finished span
#: and every instant; kept empty unless something (the flight recorder)
#: registers, so the common path pays one truthiness check
_LISTENERS: List[Callable[[str, str, Dict[str, Any]], None]] = []


def add_listener(fn: Callable[[str, str, Dict[str, Any]], None]) -> None:
    if fn not in _LISTENERS:
        _LISTENERS.append(fn)


def remove_listener(fn) -> None:
    try:
        _LISTENERS.remove(fn)
    except ValueError:
        pass


def _notify(kind: str, name: str, payload: Dict[str, Any]) -> None:
    for fn in list(_LISTENERS):
        try:
            fn(kind, name, payload)
        except Exception:               # pragma: no cover - best effort
            pass


# ---------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def activate(tracer: Tracer) -> Optional[Tracer]:
    """Install ``tracer`` as the process tracer; returns the previous
    one (pass it back to :func:`deactivate` to restore nesting)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def deactivate(previous: Optional[Tracer] = None) -> None:
    global _ACTIVE
    _ACTIVE = previous


def active_tracer() -> Optional[Tracer]:
    return _ACTIVE


def span(name: str, category: str = "", **args: Any):
    """A span on the active tracer, or a shared no-op when tracing is
    off — the one-liner every instrumentation site uses."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, category, **args)


def instant(name: str, **args: Any) -> None:
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)


def annotate(**kv: Any) -> None:
    """Attach args to the innermost open span, if tracing is active."""
    tracer = _ACTIVE
    if tracer is not None:
        current = tracer.current_span()
        if current is not None:
            current.annotate(**kv)
