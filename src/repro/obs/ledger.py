"""Run ledger: an append-only JSONL record of every compile and run.

The simulation-as-a-service north star needs what any serving stack
needs: a durable account of what executed, with what inputs, at what
cost, and how it ended.  This module appends one JSON object per
event to the file named by ``$LIMPET_LEDGER`` — nothing is recorded
when the variable is unset, so the default workflow pays a single
``os.environ.get`` per run.

Record format (``limpet-ledger-v1``, DESIGN.md §13): every row has
``format``, ``ts_unix``, ``pid``, ``event``, and — when a tracer is
active — the ``trace_id`` linking it to the Chrome trace of the same
run.  Event-specific fields ride alongside; ``None`` fields are
dropped.  Writers take the sidecar ``<path>.lock`` via the same
advisory :func:`~repro.runtime.locking.file_lock` the caches use
(lazily imported — ``obs`` stays dependency-free at import time), so
concurrent processes interleave whole lines, never partial ones.

Wired event types:

``compile``         ``compile_resilient`` tier outcome
``run``             every ``KernelRunner.run`` (model, cache outcome,
                    tier, compile_seconds, time_to_first_step,
                    steps_per_second, disposition)
``population_run``  population-batched sweeps
``artifact_load``   AOT bundle hits in ``runner_from_store``
``degradation``     supervised execution-tier downgrades

``limpet-bench ledger [--tail N --model M --json --summary]`` queries
the file; corrupt lines (a crash mid-append on a filesystem without
atomic O_APPEND semantics) are skipped, never fatal.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import time
from typing import Any, Dict, Iterable, List, Optional, Union

from . import trace as _trace

__all__ = ["RunLedger", "LEDGER_ENV", "FORMAT", "default_ledger",
           "record_event", "summarize"]

#: environment variable naming the ledger file; unset = ledger off
LEDGER_ENV = "LIMPET_LEDGER"

#: schema tag stamped into every row
FORMAT = "limpet-ledger-v1"


class RunLedger:
    """Append/query interface over one JSONL ledger file."""

    def __init__(self, path: Union[str, pathlib.Path]):
        self.path = pathlib.Path(path)

    # -- append -------------------------------------------------------------------

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one row; returns the row as written."""
        row: Dict[str, Any] = {"format": FORMAT,
                               "ts_unix": round(time.time(), 3),
                               "pid": os.getpid(),
                               "event": event}
        tracer = _trace.active_tracer()
        if tracer is not None:
            row["trace_id"] = tracer.trace_id
        for key, value in fields.items():
            if value is None:
                continue
            if isinstance(value, float):
                value = round(value, 6)
            row[key] = value
        line = json.dumps(row, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._lock():
            with open(self.path, "a") as fh:
                fh.write(line)
                fh.flush()
        return row

    def _lock(self):
        """The caches' advisory file lock, or a null context if the
        locking layer is unavailable (never block the run)."""
        try:
            from ..runtime.locking import file_lock
            return file_lock(self.path.with_suffix(
                self.path.suffix + ".lock"))
        except Exception:
            return contextlib.nullcontext(False)

    # -- query --------------------------------------------------------------------

    def read(self, tail: Optional[int] = None,
             model: Optional[str] = None,
             event: Optional[str] = None) -> List[Dict[str, Any]]:
        """Rows oldest-first, optionally filtered; corrupt lines are
        skipped (a ledger must survive its own crashes)."""
        if not self.path.is_file():
            return []
        rows: List[Dict[str, Any]] = []
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(row, dict):
                    continue
                if model is not None and row.get("model") != model:
                    continue
                if event is not None and row.get("event") != event:
                    continue
                rows.append(row)
        if tail is not None:
            rows = rows[-tail:]
        return rows

    def summary(self) -> Dict[str, Dict[str, Any]]:
        """Per-model aggregates over the whole ledger."""
        return summarize(self.read())


def summarize(rows: Iterable[Dict[str, Any]]
              ) -> Dict[str, Dict[str, Any]]:
    """Fold ledger rows into per-model aggregates (best/latest
    steps_per_second and time_to_first_step, event/disposition
    counts, tiers seen)."""
    out: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        model = row.get("model") or "-"
        agg = out.setdefault(model, {
            "rows": 0, "events": {}, "dispositions": {}, "tiers": [],
            "best_steps_per_second": None, "last_steps_per_second": None,
            "best_time_to_first_step": None,
        })
        agg["rows"] += 1
        ev = row.get("event", "?")
        agg["events"][ev] = agg["events"].get(ev, 0) + 1
        disp = row.get("disposition")
        if disp:
            agg["dispositions"][disp] = \
                agg["dispositions"].get(disp, 0) + 1
        tier = row.get("tier")
        if tier and tier not in agg["tiers"]:
            agg["tiers"].append(tier)
        sps = row.get("steps_per_second")
        if isinstance(sps, (int, float)):
            agg["last_steps_per_second"] = sps
            if agg["best_steps_per_second"] is None or \
                    sps > agg["best_steps_per_second"]:
                agg["best_steps_per_second"] = sps
        ttfs = row.get("time_to_first_step")
        if isinstance(ttfs, (int, float)):
            if agg["best_time_to_first_step"] is None or \
                    ttfs < agg["best_time_to_first_step"]:
                agg["best_time_to_first_step"] = ttfs
    return out


# ---------------------------------------------------------------------------
# The env-gated process default
# ---------------------------------------------------------------------------

def default_ledger() -> Optional[RunLedger]:
    """The ledger named by ``$LIMPET_LEDGER``, or None (off)."""
    path = os.environ.get(LEDGER_ENV)
    if not path:
        return None
    return RunLedger(path)


def record_event(event: str, **fields: Any) -> None:
    """Record to the env-configured ledger; a silent no-op when the
    ledger is off, and never raises — accounting must not take the
    run down."""
    try:
        ledger = default_ledger()
        if ledger is not None:
            ledger.record(event, **fields)
    except Exception:                   # pragma: no cover - best effort
        pass
