"""Crash flight recorder: a bounded black-box of recent telemetry.

Post-mortems of supervised runs kept hitting the same wall: by the
time a worker dies or a tier degrades, the evidence — which spans just
finished, which counters just moved, how stale each shard's heartbeat
was — is gone.  This module keeps that evidence in a process-wide
**ring buffer** (:class:`FlightRecorder`) and, when something fails,
dumps the last seconds to a ``flight-<ts>-<pid>.json`` file next to
the existing reproducer bundles (DESIGN.md §13).

Recording is passive and cheap: :func:`install` registers listeners on
the trace and metrics layers, so every finished span / instant (only
while a tracer is active) and every counter increment (cold paths
only) lands in the ring as a ``{"t", "kind", ...}`` event.  Subsystems
with richer context (the supervised runner's failure classifier, the
watchdog) call :func:`record` directly.

Dump triggers (all best-effort — telemetry must never break a run):

* worker death / respawn (``runtime/supervised.py``),
* execution-tier degradation (``runtime/supervised.py``),
* pass quarantine (``resilience/sandbox.py``, into the same
  reproducer directory as the IR bundle),
* unhandled CLI exception (``cli.py``).

``limpet-bench flight show`` renders the most recent dump.
"""

from __future__ import annotations

import collections
import json
import os
import pathlib
import threading
import time
from typing import Any, Deque, Dict, List, Optional, Union

from . import metrics as _metrics
from . import trace as _trace

__all__ = ["FlightRecorder", "FLIGHT_DIR_ENV", "FORMAT", "recorder",
           "record", "dump", "install", "installed", "default_dir",
           "list_dumps", "latest_dump", "load_dump", "format_dump"]

#: environment variable overriding where dumps are written
FLIGHT_DIR_ENV = "LIMPET_FLIGHT_DIR"

#: schema tag stamped into every dump
FORMAT = "limpet-flight-v1"

#: events kept in the ring (each is a small dict; ~512 ≈ a few seconds
#: of the busiest cold paths, hours of a quiet steady-state run)
DEFAULT_CAPACITY = 512

#: dumps kept per directory before the oldest are pruned
MAX_DUMPS = 20


class FlightRecorder:
    """Thread-safe bounded ring of recent telemetry events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._ring: Deque[Dict[str, Any]] = collections.deque(
            maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0

    def record(self, kind: str, **data: Any) -> None:
        """Append one event; oldest events fall off the ring."""
        event = {"t": time.time(), "kind": kind}
        event.update(data)
        with self._lock:
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(event)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def dump(self, reason: str,
             directory: Optional[Union[str, pathlib.Path]] = None,
             trace_id: Optional[str] = None,
             extra: Optional[Dict[str, Any]] = None) -> pathlib.Path:
        """Write the ring (plus a metrics snapshot) as a dump file.

        ``directory`` defaults to ``$LIMPET_FLIGHT_DIR`` or the
        user-cache flight directory.  The active tracer's id is
        recorded unless ``trace_id`` overrides it, tying the black box
        to the merged Chrome trace of the same run.
        """
        directory = pathlib.Path(directory) if directory is not None \
            else default_dir()
        directory.mkdir(parents=True, exist_ok=True)
        if trace_id is None:
            tracer = _trace.active_tracer()
            trace_id = tracer.trace_id if tracer is not None else None
        with self._lock:
            events = list(self._ring)
            dropped = self._dropped
        payload = {
            "format": FORMAT,
            "reason": reason,
            "ts_unix": time.time(),
            "pid": os.getpid(),
            "trace_id": trace_id,
            "extra": extra or {},
            "events_dropped": dropped,
            "events": events,
            "metrics": _metrics.snapshot(),
        }
        stamp = time.strftime("%Y%m%d-%H%M%S")
        path = directory / f"flight-{stamp}-{os.getpid()}.json"
        n = 1
        while path.exists():        # same second, same pid: disambiguate
            path = directory / f"flight-{stamp}-{os.getpid()}-{n}.json"
            n += 1
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, path)
        _prune(directory)
        return path


def _prune(directory: pathlib.Path) -> None:
    dumps = sorted(directory.glob("flight-*.json"))
    for old in dumps[:-MAX_DUMPS]:
        try:
            old.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The process-default recorder and module-level conveniences
# ---------------------------------------------------------------------------

_DEFAULT = FlightRecorder()


def recorder() -> FlightRecorder:
    return _DEFAULT


def record(kind: str, **data: Any) -> None:
    """Record on the process recorder; never raises."""
    try:
        _DEFAULT.record(kind, **data)
    except Exception:                   # pragma: no cover - best effort
        pass


def dump(reason: str, directory=None, trace_id: Optional[str] = None,
         extra: Optional[Dict[str, Any]] = None
         ) -> Optional[pathlib.Path]:
    """Dump the process recorder; returns None instead of raising —
    a failing black box must not take the run down with it."""
    try:
        return _DEFAULT.dump(reason, directory=directory,
                             trace_id=trace_id, extra=extra)
    except Exception:
        return None


def default_dir() -> pathlib.Path:
    env = os.environ.get(FLIGHT_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "limpet-repro" / "flight"


# ---------------------------------------------------------------------------
# Listener installation: tap the trace and metrics layers
# ---------------------------------------------------------------------------

_INSTALLED = False


def _on_trace_event(kind: str, name: str,
                    payload: Dict[str, Any]) -> None:
    record(kind, name=name, **payload)


def _on_metric_increment(name: str, amount: int,
                         labels: Optional[Dict[str, str]]) -> None:
    event: Dict[str, Any] = {"name": name, "delta": amount}
    if labels:
        event["labels"] = labels
    record("metric", **event)


def install() -> None:
    """Register the trace/metrics taps (idempotent; done eagerly when
    ``repro.obs`` is imported)."""
    global _INSTALLED
    if _INSTALLED:
        return
    _trace.add_listener(_on_trace_event)
    _metrics.add_listener(_on_metric_increment)
    _INSTALLED = True


def installed() -> bool:
    return _INSTALLED


# ---------------------------------------------------------------------------
# Dump inspection (the `limpet-bench flight` subcommand)
# ---------------------------------------------------------------------------

def list_dumps(directory=None) -> List[pathlib.Path]:
    directory = pathlib.Path(directory) if directory is not None \
        else default_dir()
    if not directory.is_dir():
        return []
    return sorted(directory.glob("flight-*.json"))


def latest_dump(directory=None) -> Optional[pathlib.Path]:
    dumps = list_dumps(directory)
    return dumps[-1] if dumps else None


def load_dump(path) -> Dict[str, Any]:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("format") != FORMAT:
        raise ValueError(f"{path}: not a {FORMAT} dump")
    return payload


def format_dump(payload: Dict[str, Any], last: int = 40) -> str:
    """Human view of a dump: header plus the last ``last`` events."""
    header = [
        f"reason     : {payload.get('reason')}",
        f"captured   : {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(payload.get('ts_unix', 0)))}",
        f"pid        : {payload.get('pid')}",
        f"trace id   : {payload.get('trace_id') or '-'}",
        f"events     : {len(payload.get('events', []))}"
        + (f" (+{payload['events_dropped']} dropped)"
           if payload.get("events_dropped") else ""),
    ]
    extra = payload.get("extra") or {}
    for key in sorted(extra):
        header.append(f"{key:<11}: {extra[key]}")
    lines = header + ["", "last events (oldest first):"]
    events = payload.get("events", [])[-last:]
    t_fail = payload.get("ts_unix", 0.0)
    for event in events:
        age = event.get("t", t_fail) - t_fail
        rest = {k: v for k, v in event.items()
                if k not in ("t", "kind")}
        detail = " ".join(f"{k}={_compact(v)}" for k, v in rest.items())
        lines.append(f"  {age:+9.3f}s  {event.get('kind', '?'):<10} "
                     f"{detail}".rstrip())
    return "\n".join(lines)


def _compact(value: Any) -> str:
    if isinstance(value, dict):
        return "{" + ",".join(f"{k}={_compact(v)}"
                              for k, v in value.items()) + "}"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
