"""Core SSA infrastructure: values, operations, blocks, regions, modules.

This mirrors MLIR's object model at the granularity the paper needs:

* every :class:`Value` is defined exactly once (an op result or a block
  argument) and tracks its uses,
* an :class:`Operation` is a generic record of ``name``, operands,
  attributes, results and nested regions — dialect modules register the
  per-op semantics (traits, verifier, constant folder, Python evaluator)
  in the :class:`OpInfo` registry instead of subclassing,
* :class:`Block` / :class:`Region` / :class:`Module` provide the nesting
  structure that passes walk.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .types import IRType


class IRError(Exception):
    """Raised on malformed IR (verification failures, bad construction)."""


# ---------------------------------------------------------------------------
# Values
# ---------------------------------------------------------------------------


class Value:
    """An SSA value: has a type, a single definition and a set of uses."""

    __slots__ = ("type", "uses", "name_hint")

    def __init__(self, ty: IRType, name_hint: Optional[str] = None):
        self.type = ty
        self.uses: List[Tuple["Operation", int]] = []
        self.name_hint = name_hint

    @property
    def owner(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def replace_all_uses_with(self, other: "Value") -> None:
        """Rewrite every use of ``self`` to use ``other`` instead."""
        if other is self:
            return
        for op, idx in list(self.uses):
            op.set_operand(idx, other)

    @property
    def num_uses(self) -> int:
        return len(self.uses)

    def __repr__(self) -> str:
        hint = self.name_hint or "?"
        return f"<Value %{hint}: {self.type}>"


class OpResult(Value):
    """A value produced by an operation."""

    __slots__ = ("op", "index")

    def __init__(self, op: "Operation", index: int, ty: IRType,
                 name_hint: Optional[str] = None):
        super().__init__(ty, name_hint)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op


class BlockArgument(Value):
    """A value introduced as a block (or region entry) argument."""

    __slots__ = ("block", "index")

    def __init__(self, block: "Block", index: int, ty: IRType,
                 name_hint: Optional[str] = None):
        super().__init__(ty, name_hint)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block


# ---------------------------------------------------------------------------
# Op metadata registry
# ---------------------------------------------------------------------------


@dataclass
class OpInfo:
    """Static information about an op kind, registered by dialect modules.

    ``pure`` ops have no side effects and may be CSE'd, folded, hoisted
    and dead-code eliminated.  ``terminator`` ops must end their block.
    ``fold`` maps constant operand python values to constant results (or
    returns None when not foldable).  ``py_eval`` executes the op on
    concrete python/numpy operand values, used by the interpreter.
    """

    name: str
    pure: bool = False
    terminator: bool = False
    commutative: bool = False
    verify: Optional[Callable[["Operation"], None]] = None
    fold: Optional[Callable[["Operation", Sequence[Any]], Optional[Sequence[Any]]]] = None
    py_eval: Optional[Callable[..., Any]] = None


_OP_REGISTRY: Dict[str, OpInfo] = {}


def register_op(info: OpInfo) -> OpInfo:
    """Register (or replace) the metadata for an op kind."""
    _OP_REGISTRY[info.name] = info
    return info


def op_info(name: str) -> Optional[OpInfo]:
    """Look up metadata for an op kind, or None for unregistered ops."""
    return _OP_REGISTRY.get(name)


def registered_ops() -> Dict[str, OpInfo]:
    """A copy of the op registry (for introspection and tests)."""
    return dict(_OP_REGISTRY)


# ---------------------------------------------------------------------------
# Operations
# ---------------------------------------------------------------------------

_op_counter = itertools.count()


class Operation:
    """A generic operation: the single concrete IR node class.

    Dialects construct Operations through builder helpers; semantics are
    resolved through the :class:`OpInfo` registry keyed by ``name``.
    """

    __slots__ = ("name", "operands", "attributes", "results", "regions",
                 "parent", "uid")

    def __init__(self, name: str, operands: Sequence[Value] = (),
                 result_types: Sequence[IRType] = (),
                 attributes: Optional[Dict[str, Any]] = None,
                 regions: Sequence["Region"] = (),
                 result_hints: Sequence[Optional[str]] = ()):
        self.name = name
        self.uid = next(_op_counter)
        self.operands: List[Value] = []
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.parent: Optional[Block] = None
        self.results: List[OpResult] = []
        hints = list(result_hints) + [None] * (len(result_types) - len(result_hints))
        for i, ty in enumerate(result_types):
            self.results.append(OpResult(self, i, ty, hints[i]))
        self.regions: List[Region] = []
        for region in regions:
            self.take_region(region)
        for operand in operands:
            self.append_operand(operand)

    # -- operand management -------------------------------------------------

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(f"{self.name}: operand must be a Value, got {value!r}")
        idx = len(self.operands)
        self.operands.append(value)
        value.uses.append((self, idx))

    def set_operand(self, index: int, value: Value) -> None:
        old = self.operands[index]
        try:
            old.uses.remove((self, index))
        except ValueError:
            pass
        self.operands[index] = value
        value.uses.append((self, index))

    def drop_all_operands(self) -> None:
        for idx, operand in enumerate(self.operands):
            try:
                operand.uses.remove((self, idx))
            except ValueError:
                pass
        self.operands.clear()

    # -- region management ---------------------------------------------------

    def take_region(self, region: "Region") -> None:
        region.parent = self
        self.regions.append(region)

    # -- structure -----------------------------------------------------------

    @property
    def result(self) -> OpResult:
        """The single result (raises if the op has 0 or >1 results)."""
        if len(self.results) != 1:
            raise IRError(f"{self.name} has {len(self.results)} results")
        return self.results[0]

    @property
    def info(self) -> Optional[OpInfo]:
        return op_info(self.name)

    @property
    def is_pure(self) -> bool:
        info = self.info
        return bool(info and info.pure)

    @property
    def is_terminator(self) -> bool:
        info = self.info
        return bool(info and info.terminator)

    @property
    def dialect(self) -> str:
        return self.name.split(".", 1)[0]

    def erase(self) -> None:
        """Remove this op from its block; it must have no remaining uses."""
        for res in self.results:
            if res.uses:
                raise IRError(
                    f"cannot erase {self.name}: result still has "
                    f"{len(res.uses)} use(s)")
        self.drop_all_operands()
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    op.drop_all_operands()
        if self.parent is not None:
            self.parent.ops.remove(self)
            self.parent = None

    def move_before(self, other: "Operation") -> None:
        """Move this op immediately before ``other`` (possibly new block)."""
        if self.parent is not None:
            self.parent.ops.remove(self)
        block = other.parent
        if block is None:
            raise IRError("target op is not in a block")
        block.ops.insert(block.ops.index(other), self)
        self.parent = block

    def walk(self) -> Iterator["Operation"]:
        """Yield this op and all ops nested in its regions, pre-order."""
        yield self
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.ops):
                    yield from op.walk()

    def clone(self, value_map: Optional[Dict[Value, Value]] = None) -> "Operation":
        """Deep-copy this op, remapping operands through ``value_map``."""
        value_map = value_map if value_map is not None else {}
        operands = [value_map.get(v, v) for v in self.operands]
        new_regions = []
        new = Operation(
            self.name, operands,
            [r.type for r in self.results],
            dict(self.attributes),
            result_hints=[r.name_hint for r in self.results])
        for old_res, new_res in zip(self.results, new.results):
            value_map[old_res] = new_res
        for region in self.regions:
            new.take_region(region.clone(value_map))
        return new

    def __repr__(self) -> str:
        return f"<Operation {self.name} #{self.uid}>"


# ---------------------------------------------------------------------------
# Blocks / regions / module
# ---------------------------------------------------------------------------


class Block:
    """A straight-line list of operations ending (usually) in a terminator."""

    __slots__ = ("args", "ops", "parent")

    def __init__(self, arg_types: Sequence[IRType] = (),
                 arg_hints: Sequence[Optional[str]] = ()):
        self.args: List[BlockArgument] = []
        hints = list(arg_hints) + [None] * (len(arg_types) - len(arg_hints))
        for i, ty in enumerate(arg_types):
            self.args.append(BlockArgument(self, i, ty, hints[i]))
        self.ops: List[Operation] = []
        self.parent: Optional[Region] = None

    def append(self, op: Operation) -> Operation:
        if op.parent is not None:
            raise IRError(f"{op.name} already belongs to a block")
        op.parent = self
        self.ops.append(op)
        return op

    def insert_before(self, anchor: Operation, op: Operation) -> Operation:
        if op.parent is not None:
            raise IRError(f"{op.name} already belongs to a block")
        op.parent = self
        self.ops.insert(self.ops.index(anchor), op)
        return op

    def add_argument(self, ty: IRType, hint: Optional[str] = None) -> BlockArgument:
        arg = BlockArgument(self, len(self.args), ty, hint)
        self.args.append(arg)
        return arg

    @property
    def terminator(self) -> Optional[Operation]:
        if self.ops and self.ops[-1].is_terminator:
            return self.ops[-1]
        return None

    def clone(self, value_map: Dict[Value, Value]) -> "Block":
        new = Block([a.type for a in self.args],
                    [a.name_hint for a in self.args])
        for old_arg, new_arg in zip(self.args, new.args):
            value_map[old_arg] = new_arg
        for op in self.ops:
            new.append(op.clone(value_map))
        return new

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __repr__(self) -> str:
        return f"<Block with {len(self.ops)} ops>"


class Region:
    """A list of blocks owned by an operation."""

    __slots__ = ("blocks", "parent")

    def __init__(self, blocks: Sequence[Block] = ()):
        self.blocks: List[Block] = []
        self.parent: Optional[Operation] = None
        for block in blocks:
            self.add_block(block)

    def add_block(self, block: Block) -> Block:
        block.parent = self
        self.blocks.append(block)
        return block

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise IRError("region has no blocks")
        return self.blocks[0]

    def clone(self, value_map: Dict[Value, Value]) -> "Region":
        new = Region()
        for block in self.blocks:
            new.add_block(block.clone(value_map))
        return new

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)


class Module:
    """Top-level container holding function definitions."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.body = Region([Block()])
        self.attributes: Dict[str, Any] = {}

    @property
    def ops(self) -> List[Operation]:
        return self.body.entry.ops

    def append(self, op: Operation) -> Operation:
        return self.body.entry.append(op)

    def walk(self) -> Iterator[Operation]:
        for op in list(self.ops):
            yield from op.walk()

    def funcs(self) -> List[Operation]:
        return [op for op in self.ops if op.name == "func.func"]

    def lookup_func(self, symbol: str) -> Optional[Operation]:
        for op in self.funcs():
            if op.attributes.get("sym_name") == symbol:
                return op
        return None

    def __repr__(self) -> str:
        return f"<Module {self.name!r} with {len(self.ops)} top-level ops>"


def enclosing_op(value: Value) -> Optional[Operation]:
    """The operation whose region (transitively) defines ``value``."""
    owner = value.owner
    if isinstance(owner, Operation):
        return owner
    block = owner
    region = block.parent
    return region.parent if region is not None else None


def defining_block(value: Value) -> Optional[Block]:
    """The block in which ``value`` becomes available."""
    owner = value.owner
    if isinstance(owner, Operation):
        return owner.parent
    return owner


def is_defined_in(value: Value, op: Operation) -> bool:
    """True if ``value`` is defined inside any region of ``op``."""
    block = defining_block(value)
    while block is not None:
        region = block.parent
        if region is None:
            return False
        parent_op = region.parent
        if parent_op is op:
            return True
        if parent_op is None:
            return False
        block = parent_op.parent
    return False
