"""Parser for the generic textual form produced by :mod:`repro.ir.printer`.

Round-tripping IR through text is used by the test suite (property:
``parse(print(m))`` is structurally identical to ``m``) and lets pass
pipelines be exercised on hand-written fixtures, the way MLIR's own
``mlir-opt`` tests work.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from .core import Block, IRError, Module, Operation, Region
from .types import FunctionType, parse_type


class ParseError(IRError):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_FUNC_DEF = re.compile(r"func\.func @([\w$.]+)\((.*)\) -> \((.*)\) \{$")
_FUNC_DECL = re.compile(r"func\.func private @([\w$.]+) (.+)$")
_BLOCK_LABEL = re.compile(r"\^(\w+)\((.*)\):$")
_OP_LINE = re.compile(
    r"(?:(?P<results>%[^=]*)= )?"
    r"(?P<name>[\w.]+)\((?P<operands>[^)]*)\)"
    r"(?: \{(?P<attrs>.*)\})?"
    r" : \((?P<in_tys>.*?)\) -> \((?P<out_tys>.*?)\)"
    r"(?P<open> \{)?$")


def _split_commas(text: str) -> List[str]:
    """Split on top-level commas (ignoring commas inside <>, (), [])."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_function_type(text: str) -> FunctionType:
    text = text.strip()
    if text.startswith("<") and text.endswith(">"):
        text = text[1:-1]
    match = re.match(r"\((.*)\) -> (.*)$", text)
    if not match:
        raise ValueError(f"bad function type: {text!r}")
    ins = tuple(parse_type(t) for t in _split_commas(match.group(1)))
    out_text = match.group(2).strip()
    if out_text.startswith("("):
        outs = tuple(parse_type(t) for t in _split_commas(out_text[1:-1]))
    elif out_text:
        outs = (parse_type(out_text),)
    else:
        outs = ()
    return FunctionType(ins, outs)


class Parser:
    def __init__(self, text: str):
        self.lines = [ln.rstrip() for ln in text.splitlines()]
        self.pos = 0
        self.values: Dict[str, Any] = {}
        self.block_labels: Dict[str, Block] = {}
        self.block_fixups: List[Tuple[Operation, str, str]] = []

    # -- line cursor -----------------------------------------------------------

    def _peek(self) -> Optional[str]:
        while self.pos < len(self.lines):
            line = self.lines[self.pos].strip()
            if line and not line.startswith("//"):
                return line
            self.pos += 1
        return None

    def _next(self) -> str:
        line = self._peek()
        if line is None:
            raise ParseError("unexpected end of input", self.pos + 1)
        self.pos += 1
        return line

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.pos)

    # -- entry -----------------------------------------------------------------

    def parse_module(self) -> Module:
        line = self._next()
        match = re.match(r"module @([\w$.]+) \{$", line)
        if not match:
            raise self._error(f"expected module header, got {line!r}")
        module = Module(match.group(1))
        while True:
            line = self._peek()
            if line is None:
                raise self._error("unterminated module")
            if line == "}":
                self.pos += 1
                break
            module.append(self.parse_top_level())
        self._apply_block_fixups()
        return module

    def parse_top_level(self) -> Operation:
        line = self._peek()
        assert line is not None
        decl = _FUNC_DECL.match(line)
        if decl:
            self.pos += 1
            ftype = _parse_function_type(decl.group(2))
            return Operation("func.func", [], [], {
                "sym_name": decl.group(1), "function_type": ftype,
                "declaration": True}, [Region()])
        match = _FUNC_DEF.match(line)
        if match:
            return self.parse_func(match)
        return self.parse_op()

    # -- functions ---------------------------------------------------------------

    def parse_func(self, match: re.Match) -> Operation:
        self.pos += 1
        sym_name, args_text, rets_text = match.groups()
        entry = Block()
        arg_types = []
        for arg in _split_commas(args_text):
            name, _, ty_text = arg.partition(":")
            ty = parse_type(ty_text)
            arg_types.append(ty)
            value = entry.add_argument(ty, name.strip().lstrip("%"))
            self.values[name.strip().lstrip("%")] = value
        results = tuple(parse_type(t) for t in _split_commas(rets_text))
        region = Region([entry])
        self._parse_block_body(region, entry)
        ftype = FunctionType(tuple(arg_types), results)
        return Operation("func.func", [], [],
                         {"sym_name": sym_name, "function_type": ftype},
                         [region])

    def _parse_block_body(self, region: Region, block: Block) -> str:
        """Parse ops into ``block`` until '}' or '} {'; handles new labels."""
        while True:
            line = self._peek()
            if line is None:
                raise self._error("unterminated region")
            if line in ("}", "} {"):
                self.pos += 1
                return line
            label = _BLOCK_LABEL.match(line)
            if label:
                self.pos += 1
                block = Block()
                for arg in _split_commas(label.group(2)):
                    name, _, ty_text = arg.partition(":")
                    value = block.add_argument(parse_type(ty_text),
                                               name.strip().lstrip("%"))
                    self.values[name.strip().lstrip("%")] = value
                self.block_labels[label.group(1)] = block
                region.add_block(block)
                continue
            block.append(self.parse_op())

    # -- generic ops ---------------------------------------------------------------

    def parse_op(self) -> Operation:
        line = self._next()
        match = _OP_LINE.match(line)
        if not match:
            raise self._error(f"cannot parse op: {line!r}")
        name = match.group("name")
        operand_names = [t.strip().lstrip("%")
                         for t in _split_commas(match.group("operands") or "")]
        operands = []
        for op_name in operand_names:
            if op_name not in self.values:
                raise self._error(f"use of undefined value %{op_name}")
            operands.append(self.values[op_name])
        out_tys = [parse_type(t)
                   for t in _split_commas(match.group("out_tys") or "")]
        attrs, fixups = self._parse_attrs(match.group("attrs"))
        result_hints = []
        if match.group("results"):
            result_hints = [t.strip().lstrip("%")
                            for t in _split_commas(match.group("results"))]
        op = Operation(name, operands, out_tys, attrs,
                       result_hints=result_hints)
        for key, label in fixups:
            self.block_fixups.append((op, key, label))
        for hint, result in zip(result_hints, op.results):
            self.values[hint] = result
        if match.group("open"):
            region = Region()
            op.take_region(region)
            # The printer always emits a labelled entry block.
            while True:
                first = self._peek()
                if first is None:
                    raise self._error("unterminated region")
                block = Block()
                region.add_block(block)
                closer = self._parse_region_blocks(region, block)
                if closer == "}":
                    break
                region = Region()
                op.take_region(region)
        return op

    def _parse_region_blocks(self, region: Region, placeholder: Block) -> str:
        """Parse blocks of one region; the placeholder entry gets its label."""
        line = self._peek()
        label = _BLOCK_LABEL.match(line) if line else None
        if label:
            self.pos += 1
            for arg in _split_commas(label.group(2)):
                name, _, ty_text = arg.partition(":")
                value = placeholder.add_argument(parse_type(ty_text),
                                                 name.strip().lstrip("%"))
                self.values[name.strip().lstrip("%")] = value
            self.block_labels[label.group(1)] = placeholder
        return self._parse_block_body(region, placeholder)

    def _parse_attrs(self, text: Optional[str]):
        attrs: Dict[str, Any] = {}
        fixups: List[Tuple[str, str]] = []
        if not text:
            return attrs, fixups
        for item in _split_commas(text):
            key, _, value_text = item.partition("=")
            key = key.strip()
            value_text = value_text.strip()
            if value_text.startswith("^"):
                fixups.append((key, value_text[1:]))
                continue
            attrs[key] = self._parse_attr_value(value_text)
        return attrs, fixups

    def _parse_attr_value(self, text: str) -> Any:
        if text == "true":
            return True
        if text == "false":
            return False
        if text.startswith('"') and text.endswith('"'):
            return text[1:-1]
        if text.startswith("<"):
            return _parse_function_type(text)
        if text.startswith("["):
            return [self._parse_attr_value(t)
                    for t in _split_commas(text[1:-1])]
        try:
            return int(text)
        except ValueError:
            pass
        try:
            return float(text)
        except ValueError:
            pass
        raise self._error(f"cannot parse attribute value {text!r}")

    def _apply_block_fixups(self) -> None:
        for op, key, label in self.block_fixups:
            block = self.block_labels.get(label)
            if block is None:
                raise IRError(f"undefined block label ^{label}")
            op.attributes[key] = block


def parse_module(text: str) -> Module:
    """Parse a module from generic textual form."""
    return Parser(text).parse_module()
