"""Textual form of the IR.

Two flavours are produced:

* the **generic form** (default) — a uniform, fully parseable syntax::

      %2 = arith.addf(%0, %1) : (f64, f64) -> f64
      scf.for(%lb, %ub, %c1) : () -> () {
      ^bb0(%i: index):
        ...
      }

  :mod:`repro.ir.parser` round-trips this exactly.

* the **pretty form** (``pretty=True``) — closer to upstream MLIR
  syntax for human consumption in examples and docs (``%2 = arith.addf
  %0, %1 : f64``); it is not meant to be parsed back.
"""

from __future__ import annotations

import io
from typing import Dict

from .core import Block, Module, Operation, Region, Value
from .types import FunctionType


class _NameScope:
    """Assigns stable printed names to SSA values and blocks."""

    def __init__(self) -> None:
        self.value_names: Dict[int, str] = {}
        self.block_names: Dict[int, str] = {}
        self._taken: set[str] = set()
        self._counter = 0
        self._block_counter = 0

    def value_name(self, value: Value) -> str:
        name = self.value_names.get(id(value))
        if name is not None:
            return name
        hint = value.name_hint
        if hint and hint not in self._taken:
            name = hint
        else:
            base = hint or str(self._counter)
            name = base
            suffix = 0
            while name in self._taken:
                suffix += 1
                name = f"{base}_{suffix}"
            if not hint:
                self._counter += 1
        self._taken.add(name)
        self.value_names[id(value)] = name
        return name

    def block_name(self, block: Block) -> str:
        name = self.block_names.get(id(block))
        if name is None:
            name = f"bb{self._block_counter}"
            self._block_counter += 1
            self.block_names[id(block)] = name
        return name


def _format_attr_value(value, scope: _NameScope) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, Block):
        return f"^{scope.block_name(value)}"
    if isinstance(value, FunctionType):
        return f"<{value}>"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(_format_attr_value(v, scope) for v in value)
        return f"[{inner}]"
    return f'"{value!s}"'


def _format_attrs(op: Operation, scope: _NameScope) -> str:
    if not op.attributes:
        return ""
    parts = [f"{k} = {_format_attr_value(v, scope)}"
             for k, v in sorted(op.attributes.items())]
    return " {" + ", ".join(parts) + "}"


class Printer:
    def __init__(self, pretty: bool = False):
        self.pretty = pretty
        self.scope = _NameScope()
        self.out = io.StringIO()
        self.indent = 0

    def line(self, text: str) -> None:
        self.out.write("  " * self.indent + text + "\n")

    # -- entry points ---------------------------------------------------------

    def print_module(self, module: Module) -> str:
        self.line(f"module @{module.name} {{")
        self.indent += 1
        for op in module.ops:
            self.print_op(op)
        self.indent -= 1
        self.line("}")
        return self.out.getvalue()

    def print_op(self, op: Operation) -> None:
        if op.name == "func.func":
            self._print_func(op)
            return
        if self.pretty and self._print_pretty(op):
            return
        self._print_generic(op)

    # -- generic form ----------------------------------------------------------

    def _print_generic(self, op: Operation) -> None:
        v = self.scope.value_name
        results = ", ".join(f"%{v(r)}" for r in op.results)
        prefix = f"{results} = " if op.results else ""
        operands = ", ".join(f"%{v(o)}" for o in op.operands)
        attrs = _format_attrs(op, self.scope)
        in_tys = ", ".join(str(o.type) for o in op.operands)
        out_tys = ", ".join(str(r.type) for r in op.results)
        sig = f" : ({in_tys}) -> ({out_tys})"
        header = f"{prefix}{op.name}({operands}){attrs}{sig}"
        if not op.regions:
            self.line(header)
            return
        self.line(header + " {")
        self.indent += 1
        for i, region in enumerate(op.regions):
            if i:
                self.indent -= 1
                self.line("} {")
                self.indent += 1
            self._print_region(region)
        self.indent -= 1
        self.line("}")

    def _print_region(self, region: Region) -> None:
        for block in region.blocks:
            args = ", ".join(
                f"%{self.scope.value_name(a)}: {a.type}" for a in block.args)
            self.indent -= 1
            self.line(f"^{self.scope.block_name(block)}({args}):")
            self.indent += 1
            for op in block.ops:
                self.print_op(op)

    def _print_func(self, op: Operation) -> None:
        ftype: FunctionType = op.attributes["function_type"]
        name = op.attributes["sym_name"]
        if op.attributes.get("declaration"):
            self.line(f"func.func private @{name} {ftype}")
            return
        entry = op.regions[0].entry
        args = ", ".join(
            f"%{self.scope.value_name(a)}: {a.type}" for a in entry.args)
        rets = ", ".join(str(t) for t in ftype.results)
        self.line(f"func.func @{name}({args}) -> ({rets}) {{")
        self.indent += 1
        for body_op in entry.ops:
            self.print_op(body_op)
        for extra in op.regions[0].blocks[1:]:
            bargs = ", ".join(
                f"%{self.scope.value_name(a)}: {a.type}" for a in extra.args)
            self.indent -= 1
            self.line(f"^{self.scope.block_name(extra)}({bargs}):")
            self.indent += 1
            for body_op in extra.ops:
                self.print_op(body_op)
        self.indent -= 1
        self.line("}")

    # -- pretty form -------------------------------------------------------------

    def _print_pretty(self, op: Operation) -> bool:
        """Print selected ops in MLIR-like sugar; False -> use generic form."""
        v = self.scope.value_name
        if op.name == "arith.constant":
            res = op.result
            value = op.attributes["value"]
            if res.type.is_vector:
                self.line(f"%{v(res)} = arith.constant dense<{value}> "
                          f": {res.type}")
            else:
                self.line(f"%{v(res)} = arith.constant {value} : {res.type}")
            return True
        if op.name in ("arith.cmpf", "arith.cmpi"):
            pred = op.attributes["predicate"]
            a, bv = op.operands
            self.line(f"%{v(op.result)} = {op.name} {pred}, %{v(a)}, %{v(bv)}"
                      f" : {a.type}")
            return True
        if (op.dialect in ("arith", "math") and op.results
                and not op.regions):
            ops_str = ", ".join(f"%{v(o)}" for o in op.operands)
            self.line(f"%{v(op.result)} = {op.name} {ops_str}"
                      f" : {op.result.type}")
            return True
        if op.name == "memref.load":
            base, *idx = op.operands
            idx_str = ", ".join(f"%{v(i)}" for i in idx)
            self.line(f"%{v(op.result)} = memref.load %{v(base)}[{idx_str}]"
                      f" : {base.type}")
            return True
        if op.name == "memref.store":
            value, base, *idx = op.operands
            idx_str = ", ".join(f"%{v(i)}" for i in idx)
            self.line(f"memref.store %{v(value)}, %{v(base)}[{idx_str}]"
                      f" : {base.type}")
            return True
        if op.name == "vector.load":
            base, *idx = op.operands
            idx_str = ", ".join(f"%{v(i)}" for i in idx)
            self.line(f"%{v(op.result)} = vector.load %{v(base)}[{idx_str}]"
                      f" : {base.type}, {op.result.type}")
            return True
        if op.name == "vector.store":
            value, base, *idx = op.operands
            idx_str = ", ".join(f"%{v(i)}" for i in idx)
            self.line(f"vector.store %{v(value)}, %{v(base)}[{idx_str}]"
                      f" : {base.type}, {value.type}")
            return True
        if op.name == "vector.broadcast":
            src = op.operands[0]
            self.line(f"%{v(op.result)} = vector.broadcast %{v(src)}"
                      f" : {src.type} to {op.result.type}")
            return True
        if op.name == "func.call":
            callee = op.attributes["callee"]
            ops_str = ", ".join(f"%{v(o)}" for o in op.operands)
            results = ", ".join(f"%{v(r)}" for r in op.results)
            prefix = f"{results} = " if op.results else ""
            in_tys = ", ".join(str(o.type) for o in op.operands)
            out_tys = ", ".join(str(r.type) for r in op.results)
            self.line(f"{prefix}func.call @{callee}({ops_str})"
                      f" : ({in_tys}) -> ({out_tys})")
            return True
        if op.name == "func.return":
            if op.operands:
                ops_str = ", ".join(f"%{v(o)}" for o in op.operands)
                tys = ", ".join(str(o.type) for o in op.operands)
                self.line(f"func.return {ops_str} : {tys}")
            else:
                self.line("func.return")
            return True
        if op.name == "scf.yield":
            if op.operands:
                ops_str = ", ".join(f"%{v(o)}" for o in op.operands)
                tys = ", ".join(str(o.type) for o in op.operands)
                self.line(f"scf.yield {ops_str} : {tys}")
            else:
                self.line("scf.yield")
            return True
        if op.name == "scf.for":
            lb, ub, step, *init = op.operands
            body = op.regions[0].entry
            iv = body.args[0]
            header = (f"scf.for %{v(iv)} = %{v(lb)} to %{v(ub)} "
                      f"step %{v(step)}")
            if init:
                pairs = ", ".join(
                    f"%{v(a)} = %{v(i)}"
                    for a, i in zip(body.args[1:], init))
                tys = ", ".join(str(r.type) for r in op.results)
                header += f" iter_args({pairs}) -> ({tys})"
            if op.results:
                results = ", ".join(f"%{v(r)}" for r in op.results)
                header = f"{results} = {header}"
            self.line(header + " {")
            self.indent += 1
            for body_op in body.ops:
                self.print_op(body_op)
            self.indent -= 1
            self.line("}")
            return True
        if op.name == "scf.if":
            cond = op.operands[0]
            results = ", ".join(f"%{v(r)}" for r in op.results)
            prefix = f"{results} = " if op.results else ""
            tys = ", ".join(str(r.type) for r in op.results)
            suffix = f" -> ({tys})" if op.results else ""
            self.line(f"{prefix}scf.if %{v(cond)}{suffix} {{")
            self.indent += 1
            for body_op in op.regions[0].entry.ops:
                self.print_op(body_op)
            self.indent -= 1
            if len(op.regions) > 1:
                self.line("} else {")
                self.indent += 1
                for body_op in op.regions[1].entry.ops:
                    self.print_op(body_op)
                self.indent -= 1
            self.line("}")
            return True
        if op.name == "omp.parallel":
            self.line(f"omp.parallel "
                      f"schedule({op.attributes.get('schedule', 'static')}) {{")
            self.indent += 1
            for body_op in op.regions[0].entry.ops:
                self.print_op(body_op)
            self.indent -= 1
            self.line("}")
            return True
        if op.name == "omp.terminator":
            self.line("omp.terminator")
            return True
        return False


def print_module(module: Module, pretty: bool = False) -> str:
    """Serialize a module to text (generic form unless ``pretty``)."""
    return Printer(pretty=pretty).print_module(module)


def print_op(op: Operation, pretty: bool = False) -> str:
    """Serialize a single operation (and nested regions) to text."""
    printer = Printer(pretty=pretty)
    printer.print_op(op)
    return printer.out.getvalue()
