"""Common subexpression elimination for pure operations.

Ionic models repeat subterms heavily — e.g. ``(ul+u3-Vm)`` occurs four
times in the paper's Listing 2 — so CSE is one of the two in-tree MLIR
passes the paper calls out as beneficial (§3.4.2 closing remark).

Scoped like MLIR's CSE: an op may reuse an equivalent op from its own
block or any enclosing block, never from a sibling region.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import Block, Module, Operation, op_info
from .pass_manager import Pass


def _op_key(op: Operation) -> Tuple:
    """A hashable identity for value-numbering pure ops."""
    operand_ids: Tuple = tuple(id(v) for v in op.operands)
    info = op_info(op.name)
    if info is not None and info.commutative and len(op.operands) == 2:
        operand_ids = tuple(sorted(operand_ids))
    attrs = tuple(sorted((k, repr(v)) for k, v in op.attributes.items()))
    result_tys = tuple(str(r.type) for r in op.results)
    return (op.name, operand_ids, attrs, result_tys)


class CSE(Pass):
    name = "cse"

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.ops:
            for region in func.regions:
                for block in region.blocks:
                    changed |= self._run_on_block(block, {})
        return changed

    def _run_on_block(self, block: Block,
                      outer: Dict[Tuple, Operation]) -> bool:
        changed = False
        known: Dict[Tuple, Operation] = dict(outer)
        for op in list(block.ops):
            if op.is_pure and not op.regions:
                key = _op_key(op)
                existing = known.get(key)
                if existing is not None:
                    for old, new in zip(op.results, existing.results):
                        old.replace_all_uses_with(new)
                    op.erase()
                    changed = True
                    continue
                known[key] = op
            for region in op.regions:
                for inner in region.blocks:
                    changed |= self._run_on_block(inner, known)
        return changed
