"""Loop invariant code motion over ``scf.for`` loops.

The other in-tree pass the paper names.  In the generated compute
kernels, broadcasts of parameters and arithmetic on them are invariant
across the cell loop and get hoisted out, so they are paid once per
time step instead of once per vector of cells.
"""

from __future__ import annotations

from typing import Set

from ..core import Block, Module, Operation, is_defined_in
from .pass_manager import Pass


def _is_invariant(op: Operation, loop: Operation,
                  hoisted: Set[int]) -> bool:
    if not op.is_pure or op.regions:
        return False
    for operand in op.operands:
        if id(operand) in hoisted:
            continue
        if is_defined_in(operand, loop):
            return False
    return True


class LICM(Pass):
    name = "licm"

    def run(self, module: Module) -> bool:
        changed = False
        for op in module.walk():
            if op.name == "scf.for":
                changed |= self._hoist_from(op)
        return changed

    def _hoist_from(self, loop: Operation) -> bool:
        body: Block = loop.regions[0].entry
        hoisted_results: Set[int] = set()
        changed = False
        # Iterate to a local fixed point: hoisting one op can make its
        # users invariant too.
        progress = True
        while progress:
            progress = False
            for op in list(body.ops):
                if op is body.terminator:
                    continue
                if _is_invariant(op, loop, hoisted_results):
                    op.move_before(loop)
                    for result in op.results:
                        hoisted_results.add(id(result))
                    progress = True
                    changed = True
        return changed
