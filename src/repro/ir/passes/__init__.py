"""IR passes: canonicalize, CSE, LICM, DCE, plus the pass manager."""

from .pass_manager import (Pass, PassInstrumentation, PassManager,
                           PassStatistics, default_pipeline)
from .canonicalize import Canonicalize
from .cse import CSE
from .licm import LICM
from .dce import DCE

__all__ = ["Pass", "PassInstrumentation", "PassManager", "PassStatistics",
           "default_pipeline", "Canonicalize", "CSE", "LICM", "DCE"]
