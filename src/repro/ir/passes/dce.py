"""Dead code elimination: drop pure ops whose results are never used."""

from __future__ import annotations

from ..core import Block, Module, Operation
from .pass_manager import Pass


def _is_dead(op: Operation) -> bool:
    if not op.is_pure or op.regions:
        return False
    return all(not r.uses for r in op.results)


class DCE(Pass):
    name = "dce"

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.ops:
            for region in func.regions:
                for block in region.blocks:
                    changed |= self._run_on_block(block)
        return changed

    def _run_on_block(self, block: Block) -> bool:
        changed = False
        for op in list(block.ops):
            for region in op.regions:
                for inner in region.blocks:
                    changed |= self._run_on_block(inner)
        # Reverse order so a chain of dead ops dies in a single sweep.
        for op in reversed(list(block.ops)):
            if _is_dead(op):
                op.erase()
                changed = True
        return changed
