"""Pass infrastructure: a fixed-point pass manager with statistics.

limpetMLIR relies on MLIR's in-tree passes (the paper singles out loop
invariant code motion and common subexpression elimination); this
module provides the pipeline plumbing and :mod:`repro.ir.passes`
provides those passes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import Module
from ..verifier import verify_module


class Pass:
    """Base class: subclasses set ``name`` and implement ``run``."""

    name: str = "<unnamed>"
    #: bump when a pass's transformation changes semantics/output — the
    #: persistent kernel cache keys on every pass's (name, version)
    version: int = 1

    def run(self, module: Module) -> bool:
        """Transform ``module`` in place; return True if anything changed."""
        raise NotImplementedError


class PassInstrumentation:
    """Observation hooks fired around every pass execution.

    The analog of MLIR's ``PassInstrumentation``: attach instances via
    :meth:`PassManager.add_instrumentation` and they see every pass the
    manager (or its sandboxed subclass) runs.  Hooks must not mutate
    the module; concrete implementations (op-count deltas, trace spans,
    ``--print-ir-after-all``-style dumps, pre-pass IR snapshots) live
    in :mod:`repro.obs.passes`.
    """

    def before_pass(self, pass_: Pass, module: Module) -> None:
        """Fired immediately before ``pass_.run(module)``."""

    def after_pass(self, pass_: Pass, module: Module, changed: bool,
                   seconds: float) -> None:
        """Fired after a successful run (before per-pass verification)."""

    def on_pass_error(self, pass_: Pass, module: Module,
                      error: BaseException, seconds: float) -> None:
        """Fired when a pass raised or verification rejected its output
        (only reachable under the sandboxed manager, which contains the
        failure; the plain manager propagates the exception)."""


@dataclass
class PassStatistics:
    """Per-pass bookkeeping accumulated by the pass manager."""

    runs: int = 0
    changed: int = 0
    seconds: float = 0.0


class PassManager:
    """Runs a pipeline of passes, optionally to a fixed point."""

    def __init__(self, passes: Optional[List[Pass]] = None,
                 verify_each: bool = True, max_iterations: int = 8):
        self.passes: List[Pass] = list(passes or [])
        self.verify_each = verify_each
        self.max_iterations = max_iterations
        self.statistics: Dict[str, PassStatistics] = {}
        self.instrumentations: List[PassInstrumentation] = []

    def add(self, pass_: Pass) -> "PassManager":
        self.passes.append(pass_)
        return self

    def add_instrumentation(self, instr: PassInstrumentation
                            ) -> "PassManager":
        self.instrumentations.append(instr)
        return self

    # -- instrumentation fan-out (shared with the sandboxed subclass) ---------------

    def _notify_before(self, pass_: Pass, module: Module) -> None:
        for instr in self.instrumentations:
            instr.before_pass(pass_, module)

    def _notify_after(self, pass_: Pass, module: Module, changed: bool,
                      seconds: float) -> None:
        for instr in self.instrumentations:
            instr.after_pass(pass_, module, changed, seconds)

    def _notify_error(self, pass_: Pass, module: Module,
                      error: BaseException, seconds: float) -> None:
        for instr in self.instrumentations:
            instr.on_pass_error(pass_, module, error, seconds)

    def fingerprint(self) -> str:
        """A stable content-address of this pipeline's behaviour.

        Any change to the pass list, a pass version, or the iteration
        budget yields a different string, so the persistent kernel
        cache (and the AOT artifact bundles) can never serve a kernel
        produced by a different pipeline.  ``verify_each`` is
        deliberately NOT part of the fingerprint: per-pass verification
        only checks the module, it never transforms it, so the plain
        and sandboxed default pipelines produce identical IR and must
        share one content address.
        """
        stages = ",".join(f"{p.name}@{getattr(p, 'version', 1)}"
                          for p in self.passes)
        return f"[{stages}];iters={self.max_iterations}"

    def run(self, module: Module, fixed_point: bool = False) -> bool:
        """Run the pipeline once (or until stable); return overall change."""
        any_change = False
        for _ in range(self.max_iterations if fixed_point else 1):
            round_change = False
            for pass_ in self.passes:
                stats = self.statistics.setdefault(pass_.name,
                                                   PassStatistics())
                if self.instrumentations:
                    self._notify_before(pass_, module)
                start = time.perf_counter()
                try:
                    changed = pass_.run(module)
                except BaseException as error:
                    if self.instrumentations:
                        self._notify_error(pass_, module, error,
                                           time.perf_counter() - start)
                    raise
                seconds = time.perf_counter() - start
                stats.seconds += seconds
                stats.runs += 1
                if changed:
                    stats.changed += 1
                    round_change = True
                if self.instrumentations:
                    self._notify_after(pass_, module, changed, seconds)
                if self.verify_each:
                    verify_module(module)
            any_change = any_change or round_change
            if not round_change:
                break
        return any_change

    def summary(self) -> str:
        lines = ["pass               runs  changed  seconds"]
        for name, stats in self.statistics.items():
            lines.append(f"{name:<18} {stats.runs:>4} {stats.changed:>8} "
                         f"{stats.seconds:>8.4f}")
        return "\n".join(lines)


def default_pipeline(verify_each: bool = True) -> PassManager:
    """The pipeline limpetMLIR applies to every generated module.

    canonicalize (fold + simplify) -> CSE -> LICM -> DCE, run to a fixed
    point, matching the in-tree MLIR pipeline the paper uses.
    """
    from .canonicalize import Canonicalize
    from .cse import CSE
    from .licm import LICM
    from .dce import DCE
    return PassManager([Canonicalize(), CSE(), LICM(), DCE()],
                       verify_each=verify_each)
