"""Canonicalization: constant folding plus algebraic simplification.

This is the IR-level half of the paper's "preprocessor" (§3.2): values
that are compile-time constants get folded and propagated, and trivial
identities disappear, before CSE/LICM/DCE run.
"""

from __future__ import annotations

from typing import Any, Optional

from ..core import Block, Module, Operation, Value, op_info
from ..builder import IRBuilder
from .pass_manager import Pass

_ZERO_ABSORBING = {"arith.mulf": 0.0, "arith.muli": 0}
_IDENTITIES = {
    # op -> (identity constant, which side may carry it)
    "arith.addf": (0.0, "either"),
    "arith.addi": (0, "either"),
    "arith.subf": (0.0, "rhs"),
    "arith.subi": (0, "rhs"),
    "arith.mulf": (1.0, "either"),
    "arith.muli": (1, "either"),
    "arith.divf": (1.0, "rhs"),
}


def _constant_value(value: Value) -> Optional[Any]:
    owner = value.owner
    if isinstance(owner, Operation) and owner.name == "arith.constant":
        return owner.attributes["value"]
    return None


class Canonicalize(Pass):
    name = "canonicalize"

    def run(self, module: Module) -> bool:
        changed = False
        for func in module.ops:
            for region in func.regions:
                for block in region.blocks:
                    changed |= self._run_on_block(block)
        return changed

    def _run_on_block(self, block: Block) -> bool:
        changed = False
        builder = IRBuilder(block)
        for op in list(block.ops):
            for region in op.regions:
                for inner in region.blocks:
                    changed |= self._run_on_block(inner)
            if op.parent is None:  # removed by an earlier rewrite
                continue
            changed |= self._try_rewrite(op, builder)
        return changed

    def _try_rewrite(self, op: Operation, builder: IRBuilder) -> bool:
        if self._try_fold(op, builder):
            return True
        if self._try_select(op):
            return True
        return self._try_identity(op)

    def _try_select(self, op: Operation) -> bool:
        """select with a constant condition forwards the chosen operand."""
        if op.name != "arith.select":
            return False
        cond = _constant_value(op.operands[0])
        if cond is None:
            return False
        chosen = op.operands[1] if cond else op.operands[2]
        op.result.replace_all_uses_with(chosen)
        op.erase()
        return True

    def _try_fold(self, op: Operation, builder: IRBuilder) -> bool:
        info = op_info(op.name)
        if (info is None or info.fold is None or not info.pure
                or op.name == "arith.constant" or op.regions):
            return False
        operand_values = [_constant_value(v) for v in op.operands]
        folded = info.fold(op, operand_values)
        if folded is None:
            return False
        builder.set_insertion_point_before(op)
        for result, value in zip(op.results, folded):
            const = builder.constant(_normalize(value, result.type),
                                     result.type)
            result.replace_all_uses_with(const)
        op.erase()
        return True

    def _try_identity(self, op: Operation) -> bool:
        if len(op.operands) != 2 or len(op.results) != 1:
            return False
        lhs_const = _constant_value(op.operands[0])
        rhs_const = _constant_value(op.operands[1])
        absorber = _ZERO_ABSORBING.get(op.name)
        if absorber is not None:
            # x * 0 -> 0 (valid here: ionic model values are finite reals;
            # the generated code never multiplies by an infinite constant).
            for const, zero_operand in ((lhs_const, op.operands[0]),
                                        (rhs_const, op.operands[1])):
                if const is not None and const == absorber:
                    op.result.replace_all_uses_with(zero_operand)
                    op.erase()
                    return True
        rule = _IDENTITIES.get(op.name)
        if rule is None:
            return False
        identity, side = rule
        if rhs_const == identity and rhs_const is not None:
            op.result.replace_all_uses_with(op.operands[0])
            op.erase()
            return True
        if side == "either" and lhs_const == identity and lhs_const is not None:
            op.result.replace_all_uses_with(op.operands[1])
            op.erase()
            return True
        return False


def _normalize(value: Any, ty) -> Any:
    """Coerce a folded python value to the natural host type for ``ty``."""
    from ..types import element_type
    elem = element_type(ty)
    if elem.is_float:
        return float(value)
    if str(elem) == "i1":
        return bool(value)
    if elem.is_integer:
        return int(value)
    return value
