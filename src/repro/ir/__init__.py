"""An MLIR-style SSA IR: types, ops, dialects, passes, printer/parser.

This package stands in for the MLIR C++ infrastructure the paper builds
on (see DESIGN.md §2 for the substitution rationale).  Importing it
registers all dialects.
"""

from . import dialects  # noqa: F401  (registers all op definitions)
from .core import (Block, IRError, Module, OpInfo, Operation, Region, Value,
                   op_info, register_op)
from .builder import IRBuilder, build_module
from .printer import print_module, print_op
from .parser import parse_module, ParseError
from .verifier import VerificationError, verify_module
from .passes import PassManager, default_pipeline
from . import types

__all__ = [
    "Block", "IRError", "Module", "OpInfo", "Operation", "Region", "Value",
    "op_info", "register_op", "IRBuilder", "build_module", "print_module",
    "print_op", "parse_module", "ParseError", "VerificationError",
    "verify_module", "PassManager", "default_pipeline", "types", "dialects",
]
