"""Structural and SSA verification.

Checks the invariants MLIR's verifier would: registered ops only,
per-op invariants via :class:`OpInfo.verify`, terminators at block
ends, and define-before-use visibility (values are visible in the block
that defines them after their definition, and in any nested region).
"""

from __future__ import annotations

from typing import Set

from .core import (Block, IRError, Module, Operation,
                   op_info)


class VerificationError(IRError):
    """Raised when a module violates an IR invariant."""


def verify_module(module: Module, allow_unregistered: bool = False) -> None:
    """Verify ``module``; raises :class:`VerificationError` on failure."""
    visible: Set[int] = set()
    for op in module.ops:
        _verify_op(op, visible, allow_unregistered)


def _verify_op(op: Operation, visible: Set[int],
               allow_unregistered: bool) -> None:
    info = op_info(op.name)
    if info is None and not allow_unregistered:
        raise VerificationError(f"unregistered operation: {op.name}")
    for i, operand in enumerate(op.operands):
        if id(operand) not in visible:
            raise VerificationError(
                f"{op.name}: operand #{i} "
                f"(%{operand.name_hint or '?'}: {operand.type}) is not "
                f"visible at its use (define-before-use violation)")
    if info is not None and info.verify is not None:
        try:
            info.verify(op)
        except IRError as err:
            if isinstance(err, VerificationError):
                raise
            raise VerificationError(str(err)) from err
    for region in op.regions:
        for block in region.blocks:
            _verify_block(block, set(visible), allow_unregistered)
    for result in op.results:
        visible.add(id(result))


def _verify_block(block: Block, visible: Set[int],
                  allow_unregistered: bool) -> None:
    for arg in block.args:
        visible.add(id(arg))
    for i, op in enumerate(block.ops):
        if op.is_terminator and i != len(block.ops) - 1:
            raise VerificationError(
                f"{op.name}: terminator is not the last op in its block")
        _verify_op(op, visible, allow_unregistered)


def verify_op_isolated(op: Operation) -> None:
    """Verify a single op's own invariants (not SSA visibility)."""
    info = op_info(op.name)
    if info is not None and info.verify is not None:
        info.verify(op)
