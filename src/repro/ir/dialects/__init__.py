"""MLIR-style dialects used by limpetMLIR code generation.

Importing this package registers every op's :class:`~repro.ir.core.OpInfo`
(traits, verifier, folder, evaluator) with the global registry.
"""

from . import arith, cf, func, gpu, math, memref, omp, scf, vector

__all__ = ["arith", "cf", "func", "gpu", "math", "memref", "omp", "scf",
           "vector"]
