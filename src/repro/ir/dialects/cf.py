"""The ``cf`` dialect: unstructured branches.

limpetMLIR itself emits structured control flow (``scf``), but the
paper lists ``controlflow`` among the dialects it relies on (LUT row
dispatch lowers through it).  We provide the two branch ops so lowering
tests can exercise multi-block functions.
"""

from __future__ import annotations

from typing import Sequence

from ..core import Block, IRError, OpInfo, Operation, Value, register_op
from ..builder import IRBuilder


def _verify_br(op: Operation) -> None:
    dest = op.attributes.get("dest")
    if not isinstance(dest, Block):
        raise IRError("cf.br: missing destination block")
    if len(op.operands) != len(dest.args):
        raise IRError("cf.br: operand count must match block arg count")


def _verify_cond_br(op: Operation) -> None:
    for key in ("true_dest", "false_dest"):
        if not isinstance(op.attributes.get(key), Block):
            raise IRError(f"cf.cond_br: missing {key}")
    if not op.operands or str(op.operands[0].type) != "i1":
        raise IRError("cf.cond_br: first operand must be i1")


register_op(OpInfo(name="cf.br", terminator=True, verify=_verify_br))
register_op(OpInfo(name="cf.cond_br", terminator=True, verify=_verify_cond_br))


def br(b: IRBuilder, dest: Block, operands: Sequence[Value] = ()) -> Operation:
    return b.create("cf.br", list(operands), [], {"dest": dest})


def cond_br(b: IRBuilder, cond: Value, true_dest: Block,
            false_dest: Block) -> Operation:
    return b.create("cf.cond_br", [cond], [],
                    {"true_dest": true_dest, "false_dest": false_dest})
