"""The ``vector`` dialect: SIMD lanes, one cell per lane.

This is the centrepiece of limpetMLIR's code generation: contiguous
block loads/stores for AoSoA state, gather/scatter for strided AoS
state and parent-model indirection, and broadcasts for shared
parameters.
"""

from __future__ import annotations

from typing import Sequence

from ..core import IRError, OpInfo, Operation, Value, register_op
from ..builder import IRBuilder
from ..types import (MemRefType, VectorType, element_type, index,
                     vector_of)


def _verify_broadcast(op: Operation) -> None:
    if not isinstance(op.result.type, VectorType):
        raise IRError("vector.broadcast: result must be a vector")
    if str(op.operands[0].type) != str(op.result.type.element):
        raise IRError("vector.broadcast: operand must match element type")


def _verify_vload(op: Operation) -> None:
    if not isinstance(op.operands[0].type, MemRefType):
        raise IRError("vector.load: first operand must be a memref")
    if not isinstance(op.result.type, VectorType):
        raise IRError("vector.load: result must be a vector")


def _verify_vstore(op: Operation) -> None:
    if not isinstance(op.operands[0].type, VectorType):
        raise IRError("vector.store: first operand must be a vector")
    if not isinstance(op.operands[1].type, MemRefType):
        raise IRError("vector.store: second operand must be a memref")


def _verify_gather(op: Operation) -> None:
    base, idx_vec = op.operands[0], op.operands[1]
    if not isinstance(base.type, MemRefType):
        raise IRError("vector.gather: base must be a memref")
    if not isinstance(idx_vec.type, VectorType) or not idx_vec.type.is_integer:
        raise IRError("vector.gather: indices must be an integer vector")
    if not isinstance(op.result.type, VectorType):
        raise IRError("vector.gather: result must be a vector")
    if idx_vec.type.width != op.result.type.width:
        raise IRError("vector.gather: index/result width mismatch")


def _verify_scatter(op: Operation) -> None:
    value, base, idx_vec = op.operands[0], op.operands[1], op.operands[2]
    if not isinstance(value.type, VectorType):
        raise IRError("vector.scatter: value must be a vector")
    if not isinstance(base.type, MemRefType):
        raise IRError("vector.scatter: base must be a memref")
    if not isinstance(idx_vec.type, VectorType):
        raise IRError("vector.scatter: indices must be a vector")
    if idx_vec.type.width != value.type.width:
        raise IRError("vector.scatter: index/value width mismatch")


def _verify_extract(op: Operation) -> None:
    if not isinstance(op.operands[0].type, VectorType):
        raise IRError("vector.extract: operand must be a vector")
    pos = op.attributes.get("position")
    if not isinstance(pos, int) or not 0 <= pos < op.operands[0].type.width:
        raise IRError(f"vector.extract: bad position {pos}")


register_op(OpInfo(name="vector.broadcast", pure=True,
                   verify=_verify_broadcast))
register_op(OpInfo(name="vector.load", pure=True, verify=_verify_vload))
register_op(OpInfo(name="vector.store", verify=_verify_vstore))
register_op(OpInfo(name="vector.gather", pure=True, verify=_verify_gather))
register_op(OpInfo(name="vector.scatter", verify=_verify_scatter))
register_op(OpInfo(name="vector.extract", pure=True, verify=_verify_extract))
register_op(OpInfo(name="vector.insert", pure=True))
register_op(OpInfo(name="vector.step", pure=True))


def broadcast(b: IRBuilder, scalar: Value, width: int) -> Value:
    """Splat a scalar across ``width`` lanes."""
    return b.create("vector.broadcast", [scalar],
                    [vector_of(width, scalar.type)]).result


def load(b: IRBuilder, base: Value, indices: Sequence[Value],
         width: int) -> Value:
    """Contiguous vector load of ``width`` elements starting at ``indices``."""
    elem = element_type(base.type)
    return b.create("vector.load", [base, *indices],
                    [vector_of(width, elem)]).result


def store(b: IRBuilder, value: Value, base: Value,
          indices: Sequence[Value]) -> Operation:
    return b.create("vector.store", [value, base, *indices], [])


def gather(b: IRBuilder, base: Value, index_vec: Value,
           mask: Value = None, pass_thru: Value = None) -> Value:
    """Strided/indirect load: ``result[l] = base[index_vec[l]]``.

    A mask (i1 vector) plus pass-through vector implements the paper's
    conditional parent-model access: masked-off lanes keep pass_thru.
    """
    width = index_vec.type.width
    elem = element_type(base.type)
    operands = [base, index_vec]
    if mask is not None:
        if pass_thru is None:
            raise IRError("vector.gather: mask requires pass_thru")
        operands += [mask, pass_thru]
    return b.create("vector.gather", operands,
                    [vector_of(width, elem)]).result


def scatter(b: IRBuilder, value: Value, base: Value, index_vec: Value,
            mask: Value = None) -> Operation:
    operands = [value, base, index_vec]
    if mask is not None:
        operands.append(mask)
    return b.create("vector.scatter", operands, [])


def extract(b: IRBuilder, vec: Value, position: int) -> Value:
    return b.create("vector.extract", [vec], [vec.type.element],
                    {"position": position}).result


def insert(b: IRBuilder, scalar: Value, vec: Value, position: int) -> Value:
    return b.create("vector.insert", [scalar, vec], [vec.type],
                    {"position": position}).result


def step(b: IRBuilder, width: int) -> Value:
    """The constant vector ``[0, 1, ..., width-1]`` (lane ids)."""
    return b.create("vector.step", [], [vector_of(width, index)]).result
