"""A minimal ``gpu`` dialect for the §7 heterogeneous extension.

"Our ongoing work aims to generalize our approach to enable ionic
models not only to execute efficiently on CPUs, but also on other
heterogeneous hardware supported by MLIR."  This dialect provides the
handful of ops that extension needs: a kernel-launch region, the
thread-id / grid-size queries inside it, and its terminator — the same
slice of MLIR's ``gpu`` dialect the Open Earth Compiler-style flows
lower through.
"""

from __future__ import annotations

from ..core import Block, IRError, OpInfo, Operation, Region, register_op
from ..builder import IRBuilder
from ..types import index


def _verify_launch(op: Operation) -> None:
    if len(op.regions) != 1 or len(op.regions[0].blocks) != 1:
        raise IRError("gpu.launch: expects one single-block region")
    term = op.regions[0].entry.terminator
    if term is None or term.name != "gpu.terminator":
        raise IRError("gpu.launch: region must end in gpu.terminator")
    for key in ("grid_size", "block_size"):
        if not isinstance(op.attributes.get(key), int):
            raise IRError(f"gpu.launch: missing integer {key}")


register_op(OpInfo(name="gpu.launch", verify=_verify_launch))
register_op(OpInfo(name="gpu.terminator", terminator=True))
register_op(OpInfo(name="gpu.global_id", pure=True))
register_op(OpInfo(name="gpu.grid_dim", pure=True))


class LaunchOp:
    """Structured wrapper over a ``gpu.launch`` region."""

    def __init__(self, op: Operation):
        self.op = op

    @property
    def body(self) -> Block:
        return self.op.regions[0].entry

    @property
    def grid_size(self) -> int:
        return self.op.attributes["grid_size"]

    @property
    def block_size(self) -> int:
        return self.op.attributes["block_size"]

    @property
    def total_threads(self) -> int:
        return self.grid_size * self.block_size


def launch(b: IRBuilder, grid_size: int, block_size: int) -> LaunchOp:
    """``gpu.launch grid(G) block(B) { ... gpu.terminator }``."""
    body = Block()
    op = b.create("gpu.launch", [], [],
                  {"grid_size": grid_size, "block_size": block_size},
                  regions=[Region([body])])
    with b.at_end_of(body):
        b.create("gpu.terminator", [], [])
    return LaunchOp(op)


def global_id(b: IRBuilder):
    """The launched thread's global linear id (blockIdx*blockDim+tid)."""
    return b.create("gpu.global_id", [], [index]).result


def grid_dim(b: IRBuilder):
    """Total number of launched threads (for grid-stride loops)."""
    return b.create("gpu.grid_dim", [], [index]).result
