"""The ``memref`` dialect: buffers for cell state, parameters and LUTs.

At runtime a memref is a NumPy array; these ops describe typed access
to it.  The baseline backend's AoS accesses and the paper's
``memref.view``/``memref.cast`` reinterpretations (Listing 3) both map
here.
"""

from __future__ import annotations

from typing import Sequence

from ..core import IRError, OpInfo, Operation, Value, register_op
from ..builder import IRBuilder
from ..types import MemRefType, index


def _verify_load(op: Operation) -> None:
    if not op.operands or not isinstance(op.operands[0].type, MemRefType):
        raise IRError("memref.load: first operand must be a memref")
    mt = op.operands[0].type
    if len(op.operands) - 1 != mt.rank:
        raise IRError(f"memref.load: expected {mt.rank} indices, "
                      f"got {len(op.operands) - 1}")
    if str(op.result.type) != str(mt.element):
        raise IRError("memref.load: result type must match element type")


def _verify_store(op: Operation) -> None:
    if len(op.operands) < 2 or not isinstance(op.operands[1].type, MemRefType):
        raise IRError("memref.store: second operand must be a memref")
    mt = op.operands[1].type
    if len(op.operands) - 2 != mt.rank:
        raise IRError(f"memref.store: expected {mt.rank} indices")
    if str(op.operands[0].type) != str(mt.element):
        raise IRError("memref.store: value type must match element type")


def _verify_alloc(op: Operation) -> None:
    if not isinstance(op.result.type, MemRefType):
        raise IRError("memref.alloc: result must be a memref")
    dynamic = sum(1 for d in op.result.type.shape if d is None)
    if len(op.operands) != dynamic:
        raise IRError("memref.alloc: one operand per dynamic dimension")


register_op(OpInfo(name="memref.load", pure=True, verify=_verify_load))
register_op(OpInfo(name="memref.store", verify=_verify_store))
register_op(OpInfo(name="memref.alloc", verify=_verify_alloc))
register_op(OpInfo(name="memref.dealloc"))
register_op(OpInfo(name="memref.cast", pure=True))
register_op(OpInfo(name="memref.view", pure=True))
register_op(OpInfo(name="memref.dim", pure=True))
register_op(OpInfo(name="memref.copy"))


def alloc(b: IRBuilder, ty: MemRefType, dynamic_sizes: Sequence[Value] = ()) -> Value:
    return b.create("memref.alloc", list(dynamic_sizes), [ty]).result


def load(b: IRBuilder, source: Value, indices: Sequence[Value]) -> Value:
    mt = source.type
    if not isinstance(mt, MemRefType):
        raise IRError(f"memref.load from non-memref {mt}")
    return b.create("memref.load", [source, *indices], [mt.element]).result


def store(b: IRBuilder, value: Value, dest: Value,
          indices: Sequence[Value]) -> Operation:
    return b.create("memref.store", [value, dest, *indices], [])


def cast(b: IRBuilder, source: Value, ty: MemRefType) -> Value:
    return b.create("memref.cast", [source], [ty]).result


def view(b: IRBuilder, source: Value, byte_shift: Value, ty: MemRefType) -> Value:
    """Reinterpret ``source`` at an element offset as a new memref.

    MLIR's ``memref.view`` shifts by bytes into an i8 buffer; since our
    runtime buffers are typed NumPy arrays we shift by elements, which
    carries the same information for the cost model and the executor.
    """
    return b.create("memref.view", [source, byte_shift], [ty]).result


def dim(b: IRBuilder, source: Value, dimension: int) -> Value:
    return b.create("memref.dim", [source], [index],
                    {"index": dimension}).result


def copy(b: IRBuilder, source: Value, dest: Value) -> Operation:
    return b.create("memref.copy", [source, dest], [])
