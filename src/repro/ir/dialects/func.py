"""The ``func`` dialect: function definition, call and return."""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import (Block, IRError, Module, OpInfo, Operation, Region, Value,
                    register_op)
from ..builder import IRBuilder
from ..types import FunctionType, IRType


def _verify_func(op: Operation) -> None:
    name = op.attributes.get("sym_name")
    if not isinstance(name, str) or not name:
        raise IRError("func.func: missing sym_name")
    ftype = op.attributes.get("function_type")
    if not isinstance(ftype, FunctionType):
        raise IRError("func.func: missing function_type attribute")
    if op.attributes.get("declaration"):
        if op.regions and op.regions[0].blocks:
            raise IRError("func.func: declaration must not have a body")
        return
    if not op.regions or not op.regions[0].blocks:
        raise IRError("func.func: definition requires a body")
    entry = op.regions[0].entry
    if tuple(a.type for a in entry.args) != ftype.inputs:
        raise IRError(f"func.func @{name}: entry block args do not match "
                      f"signature {ftype}")


def _verify_return(op: Operation) -> None:
    func = op.parent.parent.parent if op.parent and op.parent.parent else None
    if func is None or func.name != "func.func":
        return
    ftype = func.attributes["function_type"]
    got = tuple(v.type for v in op.operands)
    if tuple(str(t) for t in got) != tuple(str(t) for t in ftype.results):
        raise IRError(
            f"func.return: returns {[str(t) for t in got]} but function "
            f"signature says {[str(t) for t in ftype.results]}")


def _verify_call(op: Operation) -> None:
    if not isinstance(op.attributes.get("callee"), str):
        raise IRError("func.call: missing callee symbol")


register_op(OpInfo(name="func.func", verify=_verify_func))
register_op(OpInfo(name="func.return", terminator=True, verify=_verify_return))
register_op(OpInfo(name="func.call", verify=_verify_call))


class FuncOp:
    """Structured wrapper over a ``func.func`` operation."""

    def __init__(self, op: Operation):
        self.op = op

    @property
    def sym_name(self) -> str:
        return self.op.attributes["sym_name"]

    @property
    def function_type(self) -> FunctionType:
        return self.op.attributes["function_type"]

    @property
    def entry(self) -> Block:
        return self.op.regions[0].entry

    @property
    def args(self) -> Sequence[Value]:
        return self.entry.args

    @property
    def is_declaration(self) -> bool:
        return bool(self.op.attributes.get("declaration"))


def func(module_or_builder, sym_name: str,
         inputs: Sequence[IRType], results: Sequence[IRType] = (),
         arg_hints: Sequence[Optional[str]] = (),
         declaration: bool = False) -> FuncOp:
    """Create a function (definition or declaration) in a module."""
    ftype = FunctionType(tuple(inputs), tuple(results))
    attrs = {"sym_name": sym_name, "function_type": ftype}
    regions = []
    if declaration:
        attrs["declaration"] = True
        regions = [Region()]
    else:
        regions = [Region([Block(list(inputs), list(arg_hints))])]
    op = Operation("func.func", [], [], attrs, regions)
    if isinstance(module_or_builder, Module):
        module_or_builder.append(op)
    else:
        module_or_builder.insert(op)
    return FuncOp(op)


def ret(b: IRBuilder, values: Sequence[Value] = ()) -> Operation:
    return b.create("func.return", list(values), [])


def call(b: IRBuilder, callee: str, operands: Sequence[Value],
         result_types: Sequence[IRType] = ()) -> Operation:
    return b.create("func.call", list(operands), list(result_types),
                    {"callee": callee})
