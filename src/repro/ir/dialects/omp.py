"""The ``omp`` dialect: worksharing annotations for the cell loop.

The paper parallelizes the compute stage with
``#pragma omp parallel for schedule(static)``; in the MLIR path this
becomes an ``omp.parallel`` region wrapping the ``scf.for``.  Our
executor partitions cells across simulated threads and the machine
model charges fork/join + barrier costs per time step (the effect that
makes small models *slower* at 32 threads in Fig. 3/4).
"""

from __future__ import annotations

from ..core import Block, IRError, OpInfo, Operation, Region, register_op
from ..builder import IRBuilder


def _verify_parallel(op: Operation) -> None:
    if len(op.regions) != 1 or len(op.regions[0].blocks) != 1:
        raise IRError("omp.parallel: expects one single-block region")
    term = op.regions[0].entry.terminator
    if term is None or term.name != "omp.terminator":
        raise IRError("omp.parallel: region must end in omp.terminator")


register_op(OpInfo(name="omp.parallel", verify=_verify_parallel))
register_op(OpInfo(name="omp.terminator", terminator=True))


class ParallelOp:
    """Structured wrapper over an ``omp.parallel`` region."""

    def __init__(self, op: Operation):
        self.op = op

    @property
    def body(self) -> Block:
        return self.op.regions[0].entry

    @property
    def schedule(self) -> str:
        return self.op.attributes.get("schedule", "static")


def parallel(b: IRBuilder, schedule: str = "static") -> ParallelOp:
    """Create ``omp.parallel { ... omp.terminator }``.

    The caller fills the body (before the terminator) with the
    worksharing loop.
    """
    body = Block()
    op = b.create("omp.parallel", [], [], {"schedule": schedule},
                  regions=[Region([body])])
    with b.at_end_of(body):
        b.create("omp.terminator", [], [])
    return ParallelOp(op)


def terminator(b: IRBuilder) -> Operation:
    return b.create("omp.terminator", [], [])
