"""The ``math`` dialect: transcendental functions.

These are the calls that Intel's SVML vectorizes in the paper; the
machine model charges them their (much higher) per-ISA costs, and the
runtime maps them to NumPy ufuncs (our SVML stand-in).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..core import IRError, OpInfo, Operation, Value, register_op
from ..builder import IRBuilder


def _guarded(fn):
    """Evaluate a ufunc with IEEE semantics (NaN/inf instead of raising)."""
    def wrapper(*args):
        with np.errstate(all="ignore"):
            return fn(*args)
    return wrapper


def _verify_float_unary(op: Operation) -> None:
    if len(op.operands) != 1 or not op.operands[0].type.is_float:
        raise IRError(f"{op.name}: expects one float operand")


def _verify_float_binary(op: Operation) -> None:
    if len(op.operands) != 2:
        raise IRError(f"{op.name}: expects two operands")
    for v in op.operands:
        if not v.type.is_float:
            raise IRError(f"{op.name}: expects float operands")


def _unary_fold(fn):
    def fold(op: Operation, xs: Sequence) -> Optional[Sequence]:
        if xs[0] is None:
            return None
        try:
            return [float(fn(xs[0]))]
        except (ValueError, OverflowError):
            return None
    return fold


# name -> (numpy ufunc, arity).  ``flops`` cost lives in the machine model.
UNARY_OPS = {
    "math.exp": np.exp,
    "math.expm1": np.expm1,
    "math.log": np.log,
    "math.log10": np.log10,
    "math.log2": np.log2,
    "math.log1p": np.log1p,
    "math.sqrt": np.sqrt,
    "math.cbrt": np.cbrt,
    "math.sin": np.sin,
    "math.cos": np.cos,
    "math.tan": np.tan,
    "math.asin": np.arcsin,
    "math.acos": np.arccos,
    "math.atan": np.arctan,
    "math.sinh": np.sinh,
    "math.cosh": np.cosh,
    "math.tanh": np.tanh,
    "math.absf": np.abs,
    "math.floor": np.floor,
    "math.ceil": np.ceil,
    "math.erf": None,  # filled below (scipy-free implementation)
    "math.round": np.round,
    "math.trunc": np.trunc,
}

BINARY_OPS = {
    "math.powf": np.power,
    "math.atan2": np.arctan2,
    "math.copysign": np.copysign,
    "math.fmod": np.fmod,
}


def _erf(x):
    if isinstance(x, np.ndarray):
        # Vectorized Abramowitz & Stegun 7.1.26 rational approximation;
        # max abs error 1.5e-7, ample for an interpolation substrate.
        sign = np.sign(x)
        ax = np.abs(x)
        t = 1.0 / (1.0 + 0.3275911 * ax)
        poly = t * (0.254829592 + t * (-0.284496736 + t * (
            1.421413741 + t * (-1.453152027 + t * 1.061405429))))
        return sign * (1.0 - poly * np.exp(-ax * ax))
    return math.erf(x)


UNARY_OPS["math.erf"] = _erf

for _name, _fn in UNARY_OPS.items():
    register_op(OpInfo(name=_name, pure=True, verify=_verify_float_unary,
                       fold=_unary_fold(_fn), py_eval=_guarded(_fn)))

for _name, _fn in BINARY_OPS.items():
    register_op(OpInfo(
        name=_name, pure=True, verify=_verify_float_binary,
        fold=lambda op, xs, fn=_fn: (None if None in xs
                                     else [float(fn(xs[0], xs[1]))]),
        py_eval=_guarded(_fn)))


def _make_unary(name: str):
    def build(b: IRBuilder, operand: Value) -> Value:
        return b.create(name, [operand], [operand.type]).result
    build.__name__ = name.split(".", 1)[1]
    build.__doc__ = f"``{name}`` on a scalar or vector float value."
    return build


def _make_binary(name: str):
    def build(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
        return b.create(name, [lhs, rhs], [lhs.type]).result
    build.__name__ = name.split(".", 1)[1]
    build.__doc__ = f"``{name}`` on scalar or vector float values."
    return build


exp = _make_unary("math.exp")
expm1 = _make_unary("math.expm1")
log = _make_unary("math.log")
log10 = _make_unary("math.log10")
log2 = _make_unary("math.log2")
log1p = _make_unary("math.log1p")
sqrt = _make_unary("math.sqrt")
cbrt = _make_unary("math.cbrt")
sin = _make_unary("math.sin")
cos = _make_unary("math.cos")
tan = _make_unary("math.tan")
asin = _make_unary("math.asin")
acos = _make_unary("math.acos")
atan = _make_unary("math.atan")
sinh = _make_unary("math.sinh")
cosh = _make_unary("math.cosh")
tanh = _make_unary("math.tanh")
absf = _make_unary("math.absf")
floor = _make_unary("math.floor")
ceil = _make_unary("math.ceil")
erf = _make_unary("math.erf")
powf = _make_binary("math.powf")
atan2 = _make_binary("math.atan2")
copysign = _make_binary("math.copysign")

#: Function names accepted in EasyML source -> math dialect op.
EASYML_FUNCTIONS = {
    "exp": "math.exp",
    "expm1": "math.expm1",
    "log": "math.log",
    "ln": "math.log",
    "log10": "math.log10",
    "log2": "math.log2",
    "log1p": "math.log1p",
    "sqrt": "math.sqrt",
    "cbrt": "math.cbrt",
    "sin": "math.sin",
    "cos": "math.cos",
    "tan": "math.tan",
    "asin": "math.asin",
    "acos": "math.acos",
    "atan": "math.atan",
    "sinh": "math.sinh",
    "cosh": "math.cosh",
    "tanh": "math.tanh",
    "fabs": "math.absf",
    "abs": "math.absf",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "erf": "math.erf",
    "pow": "math.powf",
    "atan2": "math.atan2",
}
