"""The ``arith`` dialect: scalar/vector arithmetic, comparisons, casts.

Every op registers a ``py_eval`` implemented with NumPy so a single
definition serves both scalar interpretation and vector (lane-per-cell)
execution.
"""

from __future__ import annotations

import operator
from typing import Any, Optional, Sequence

import numpy as np

from ..core import IRError, OpInfo, Operation, Value, register_op
from ..builder import IRBuilder
from ..types import (IRType, broadcast_type, f64, i1, i64, vector_width)

CMPF_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge", "ueq", "une")
CMPI_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge")

_CMP_FN = {
    "oeq": operator.eq, "ueq": operator.eq, "eq": operator.eq,
    "one": operator.ne, "une": operator.ne, "ne": operator.ne,
    "olt": operator.lt, "slt": operator.lt,
    "ole": operator.le, "sle": operator.le,
    "ogt": operator.gt, "sgt": operator.gt,
    "oge": operator.ge, "sge": operator.ge,
}


def _same_type(op: Operation) -> None:
    tys = {str(v.type) for v in op.operands}
    if len(tys) > 1:
        raise IRError(f"{op.name}: mismatched operand types {sorted(tys)}")


def _require_float(op: Operation) -> None:
    _same_type(op)
    for v in op.operands:
        if not v.type.is_float:
            raise IRError(f"{op.name}: expected float operand, got {v.type}")


def _require_int(op: Operation) -> None:
    _same_type(op)
    for v in op.operands:
        if not v.type.is_integer:
            raise IRError(f"{op.name}: expected integer operand, got {v.type}")


def _binary_fold(fn):
    def fold(op: Operation, operands: Sequence[Any]) -> Optional[Sequence[Any]]:
        lhs, rhs = operands
        if lhs is None or rhs is None:
            return None
        return [fn(lhs, rhs)]
    return fold


def _register_binary(name: str, fn, verify, commutative: bool = False) -> None:
    register_op(OpInfo(name=name, pure=True, commutative=commutative,
                       verify=verify, fold=_binary_fold(fn), py_eval=fn))


with np.errstate(all="ignore"):
    pass  # numpy error-state is managed by the executor, not at import time


def _divf(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return a / b
        # scalar path: IEEE semantics (inf/nan), not ZeroDivisionError
        return float(np.float64(a) / np.float64(b))


def _remf(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.fmod(a, b)


def trunc_div(a, b):
    """C-style truncating signed integer division.

    Stays in integer arithmetic end to end — no float round trip, so
    results are exact for |operands| > 2^53.  Division by zero yields 0
    (C leaves it undefined; the engines must simply agree).
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        with np.errstate(divide="ignore", invalid="ignore"):
            quot = np.floor_divide(a, b)
            rem = a - quot * b
            # floor -> trunc: bump toward zero when signs differ
            quot = quot + ((rem != 0) & ((a < 0) != (b < 0)))
        return np.where(b == 0, 0, quot)
    if b == 0:
        return 0
    quot = abs(a) // abs(b)
    return quot if (a < 0) == (b < 0) else -quot


def trunc_rem(a, b):
    """C-style signed integer remainder: a - trunc_div(a, b) * b.

    Integer-typed for integer operands (``math.fmod`` would return a
    float); satisfies (a/b)*b + a%b == a like C99.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a = np.asarray(a)
        b = np.asarray(b)
        return np.where(np.asarray(b) == 0, 0, a - trunc_div(a, b) * b)
    if b == 0:
        return 0
    return a - trunc_div(a, b) * b


_register_binary("arith.addf", operator.add, _require_float, commutative=True)
_register_binary("arith.subf", operator.sub, _require_float)
_register_binary("arith.mulf", operator.mul, _require_float, commutative=True)
_register_binary("arith.divf", _divf, _require_float)
_register_binary("arith.remf", _remf, _require_float)
_register_binary("arith.maximumf", np.maximum, _require_float, commutative=True)
_register_binary("arith.minimumf", np.minimum, _require_float, commutative=True)
_register_binary("arith.addi", operator.add, _require_int, commutative=True)
_register_binary("arith.subi", operator.sub, _require_int)
_register_binary("arith.muli", operator.mul, _require_int, commutative=True)
_register_binary("arith.divsi", trunc_div, _require_int)
_register_binary("arith.remsi", trunc_rem, _require_int)
_register_binary("arith.andi", operator.and_, _require_int, commutative=True)
_register_binary("arith.ori", operator.or_, _require_int, commutative=True)
_register_binary("arith.xori", operator.xor, _require_int, commutative=True)

register_op(OpInfo(name="arith.negf", pure=True, verify=_require_float,
                   fold=lambda op, xs: None if xs[0] is None else [-xs[0]],
                   py_eval=operator.neg))

register_op(OpInfo(name="arith.constant", pure=True,
                   fold=lambda op, xs: [op.attributes["value"]],
                   py_eval=None))


def _verify_cmp(predicates):
    def verify(op: Operation) -> None:
        pred = op.attributes.get("predicate")
        if pred not in predicates:
            raise IRError(f"{op.name}: bad predicate {pred!r}")
        _same_type(op)
    return verify


def _cmp_eval(op: Operation, lhs, rhs):
    return _CMP_FN[op.attributes["predicate"]](lhs, rhs)


register_op(OpInfo(name="arith.cmpf", pure=True,
                   verify=_verify_cmp(CMPF_PREDICATES), py_eval=_cmp_eval))
register_op(OpInfo(name="arith.cmpi", pure=True,
                   verify=_verify_cmp(CMPI_PREDICATES), py_eval=_cmp_eval))


def _select_eval(cond, true_val, false_val):
    if isinstance(cond, np.ndarray):
        return np.where(cond, true_val, false_val)
    return true_val if cond else false_val


register_op(OpInfo(name="arith.select", pure=True, py_eval=_select_eval,
                   fold=lambda op, xs: None if xs[0] is None
                   else ([xs[1]] if (xs[1] is not None and xs[0])
                         else ([xs[2]] if (xs[2] is not None and not xs[0])
                               else None))))

register_op(OpInfo(name="arith.index_cast", pure=True,
                   fold=lambda op, xs: None if xs[0] is None else [int(xs[0])],
                   py_eval=lambda x: x if isinstance(x, np.ndarray) else int(x)))
register_op(OpInfo(name="arith.sitofp", pure=True,
                   fold=lambda op, xs: None if xs[0] is None else [float(xs[0])],
                   py_eval=lambda x: x.astype(np.float64) if isinstance(x, np.ndarray) else float(x)))
register_op(OpInfo(name="arith.fptosi", pure=True,
                   fold=lambda op, xs: None if xs[0] is None else [int(xs[0])],
                   py_eval=lambda x: np.trunc(x).astype(np.int64) if isinstance(x, np.ndarray) else int(x)))


# ---------------------------------------------------------------------------
# Builder helpers
# ---------------------------------------------------------------------------


def constant(b: IRBuilder, value: Any, ty: IRType = f64) -> Value:
    """``arith.constant {value} : ty`` (interned per block)."""
    return b.constant(value, ty)


def _binary(b: IRBuilder, name: str, lhs: Value, rhs: Value) -> Value:
    if str(lhs.type) != str(rhs.type):
        raise IRError(f"{name}: type mismatch {lhs.type} vs {rhs.type}")
    return b.create(name, [lhs, rhs], [lhs.type]).result


def addf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.addf", lhs, rhs)


def subf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.subf", lhs, rhs)


def mulf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.mulf", lhs, rhs)


def divf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.divf", lhs, rhs)


def remf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.remf", lhs, rhs)


def maximumf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.maximumf", lhs, rhs)


def minimumf(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.minimumf", lhs, rhs)


def negf(b: IRBuilder, operand: Value) -> Value:
    return b.create("arith.negf", [operand], [operand.type]).result


def addi(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.addi", lhs, rhs)


def subi(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.subi", lhs, rhs)


def muli(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.muli", lhs, rhs)


def divsi(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.divsi", lhs, rhs)


def remsi(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.remsi", lhs, rhs)


def andi(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.andi", lhs, rhs)


def ori(b: IRBuilder, lhs: Value, rhs: Value) -> Value:
    return _binary(b, "arith.ori", lhs, rhs)


def cmpf(b: IRBuilder, predicate: str, lhs: Value, rhs: Value) -> Value:
    result_ty = broadcast_type(i1, vector_width(lhs.type))
    return b.create("arith.cmpf", [lhs, rhs], [result_ty],
                    {"predicate": predicate}).result


def cmpi(b: IRBuilder, predicate: str, lhs: Value, rhs: Value) -> Value:
    result_ty = broadcast_type(i1, vector_width(lhs.type))
    return b.create("arith.cmpi", [lhs, rhs], [result_ty],
                    {"predicate": predicate}).result


def select(b: IRBuilder, cond: Value, true_val: Value, false_val: Value) -> Value:
    if str(true_val.type) != str(false_val.type):
        raise IRError("arith.select: branch type mismatch")
    return b.create("arith.select", [cond, true_val, false_val],
                    [true_val.type]).result


def index_cast(b: IRBuilder, operand: Value, ty: IRType) -> Value:
    return b.create("arith.index_cast", [operand], [ty]).result


def sitofp(b: IRBuilder, operand: Value, ty: IRType = f64) -> Value:
    return b.create("arith.sitofp", [operand], [ty]).result


def fptosi(b: IRBuilder, operand: Value, ty: IRType = i64) -> Value:
    return b.create("arith.fptosi", [operand], [ty]).result
