"""The ``scf`` dialect: structured control flow (for, if, yield).

``scf.for`` carries optional loop-carried values (``iter_args``), used
by the rk2/rk4/markov_be integrator emissions; ``scf.if`` is used for
the conditional expressions that EasyML ``if`` statements produce.
"""

from __future__ import annotations

from typing import Sequence

from ..core import (Block, IRError, OpInfo, Operation, Region, Value,
                    register_op)
from ..builder import IRBuilder
from ..types import IRType, index


def _verify_for(op: Operation) -> None:
    if len(op.operands) < 3:
        raise IRError("scf.for: needs lower bound, upper bound and step")
    lb, ub, step = op.operands[:3]
    for v, what in ((lb, "lower bound"), (ub, "upper bound"), (step, "step")):
        if not v.type.is_integer:
            raise IRError(f"scf.for: {what} must be integer-like, got {v.type}")
    if len(op.regions) != 1 or len(op.regions[0].blocks) != 1:
        raise IRError("scf.for: expects exactly one single-block region")
    body = op.regions[0].entry
    n_iter = len(op.operands) - 3
    if len(body.args) != 1 + n_iter:
        raise IRError("scf.for: body must take induction var + iter_args")
    term = body.terminator
    if term is None or term.name != "scf.yield":
        raise IRError("scf.for: body must end in scf.yield")
    if len(term.operands) != n_iter:
        raise IRError("scf.for: yield arity must match iter_args")


def _verify_if(op: Operation) -> None:
    if len(op.operands) != 1:
        raise IRError("scf.if: expects a single i1 condition")
    if len(op.regions) not in (1, 2):
        raise IRError("scf.if: expects then (and optional else) regions")
    for region in op.regions:
        term = region.entry.terminator
        if term is None or term.name != "scf.yield":
            raise IRError("scf.if: each branch must end in scf.yield")
        if len(term.operands) != len(op.results):
            raise IRError("scf.if: yield arity must match results")


register_op(OpInfo(name="scf.for", verify=_verify_for))
register_op(OpInfo(name="scf.if", verify=_verify_if))
register_op(OpInfo(name="scf.yield", terminator=True))


class ForOp:
    """Structured wrapper over a built ``scf.for`` operation."""

    def __init__(self, op: Operation):
        self.op = op

    @property
    def body(self) -> Block:
        return self.op.regions[0].entry

    @property
    def induction_var(self) -> Value:
        return self.body.args[0]

    @property
    def iter_args(self) -> Sequence[Value]:
        return self.body.args[1:]

    @property
    def lower_bound(self) -> Value:
        return self.op.operands[0]

    @property
    def upper_bound(self) -> Value:
        return self.op.operands[1]

    @property
    def step(self) -> Value:
        return self.op.operands[2]

    @property
    def results(self) -> Sequence[Value]:
        return self.op.results


def for_op(b: IRBuilder, lower: Value, upper: Value, step: Value,
           iter_init: Sequence[Value] = (),
           iv_hint: str = "i") -> ForOp:
    """Create an ``scf.for`` and return a wrapper exposing its body.

    The caller positions a builder at ``loop.body`` to fill it in and
    must finish with :func:`yield_op`.
    """
    body = Block([index] + [v.type for v in iter_init],
                 [iv_hint] + [f"iter{i}" for i in range(len(iter_init))])
    op = b.create("scf.for", [lower, upper, step, *iter_init],
                  [v.type for v in iter_init],
                  regions=[Region([body])])
    return ForOp(op)


class IfOp:
    """Structured wrapper over a built ``scf.if`` operation."""

    def __init__(self, op: Operation):
        self.op = op

    @property
    def then_block(self) -> Block:
        return self.op.regions[0].entry

    @property
    def else_block(self) -> Block:
        if len(self.op.regions) < 2:
            raise IRError("scf.if has no else region")
        return self.op.regions[1].entry

    @property
    def results(self) -> Sequence[Value]:
        return self.op.results


def if_op(b: IRBuilder, cond: Value, result_types: Sequence[IRType] = (),
          with_else: bool = True) -> IfOp:
    regions = [Region([Block()])]
    if with_else:
        regions.append(Region([Block()]))
    op = b.create("scf.if", [cond], list(result_types), regions=regions)
    return IfOp(op)


def yield_op(b: IRBuilder, values: Sequence[Value] = ()) -> Operation:
    return b.create("scf.yield", list(values), [])
