"""Insertion-point based IR construction, mirroring mlir::OpBuilder."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Sequence

from .core import Block, IRError, Module, Operation, Region, Value
from .types import IRType


class IRBuilder:
    """Creates operations at a movable insertion point.

    The builder also interns ``arith.constant`` ops per block so repeated
    constants share a single SSA value, which keeps the generated IR
    close to what MLIR's folding would produce.
    """

    def __init__(self, block: Optional[Block] = None):
        self._block: Optional[Block] = block
        self._anchor: Optional[Operation] = None  # insert before this op
        self._constant_cache: Dict[int, Dict[Any, Value]] = {}

    # -- insertion point ------------------------------------------------------

    @property
    def block(self) -> Block:
        if self._block is None:
            raise IRError("builder has no insertion point")
        return self._block

    def set_insertion_point_to_end(self, block: Block) -> None:
        self._block = block
        self._anchor = None

    def set_insertion_point_before(self, op: Operation) -> None:
        if op.parent is None:
            raise IRError("anchor op is not in a block")
        self._block = op.parent
        self._anchor = op

    @contextmanager
    def at_end_of(self, block: Block) -> Iterator["IRBuilder"]:
        saved = (self._block, self._anchor)
        self.set_insertion_point_to_end(block)
        try:
            yield self
        finally:
            self._block, self._anchor = saved

    # -- op creation ----------------------------------------------------------

    def insert(self, op: Operation) -> Operation:
        if self._anchor is not None:
            self.block.insert_before(self._anchor, op)
        else:
            self.block.append(op)
        return op

    def create(self, name: str, operands: Sequence[Value] = (),
               result_types: Sequence[IRType] = (),
               attributes: Optional[Dict[str, Any]] = None,
               regions: Sequence[Region] = (),
               result_hints: Sequence[Optional[str]] = ()) -> Operation:
        op = Operation(name, operands, result_types, attributes, regions,
                       result_hints)
        return self.insert(op)

    def constant(self, value: Any, ty: IRType) -> Value:
        """Create (or reuse) an ``arith.constant`` in the current block."""
        cache = self._constant_cache.setdefault(id(self.block), {})
        key = (repr(value), str(ty))
        cached = cache.get(key)
        if cached is not None and self._value_visible(cached):
            return cached
        op = self.create("arith.constant", [], [ty], {"value": value})
        cache[key] = op.result
        return op.result

    def _value_visible(self, value: Value) -> bool:
        """A cached constant is reusable only if it still sits in our block."""
        owner = value.owner
        return isinstance(owner, Operation) and owner.parent is self._block


def build_module(name: str = "module") -> tuple[Module, IRBuilder]:
    """Convenience: a fresh module plus a builder at its body."""
    module = Module(name)
    builder = IRBuilder(module.body.entry)
    return module, builder
