"""Type system for the MLIR-style IR.

The paper's code generation only needs a small slice of MLIR's type
system: scalar floats and integers, ``index``, fixed-shape vectors of
doubles (the SIMD lanes, one cell per lane), and memrefs for the cell
state arrays.  Types are immutable and interned so they can be compared
with ``is`` or ``==`` interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple


class IRType:
    """Base class for all IR types."""

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} {self}>"

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_vector(self) -> bool:
        return False


@dataclass(frozen=True)
class FloatType(IRType):
    """An IEEE float type (f32 or f64)."""

    width: int

    _cache: ClassVar[dict] = {}

    def __post_init__(self) -> None:
        if self.width not in (32, 64):
            raise ValueError(f"unsupported float width: {self.width}")

    def __str__(self) -> str:
        return f"f{self.width}"

    @property
    def is_float(self) -> bool:
        return True


@dataclass(frozen=True)
class IntegerType(IRType):
    """A signless integer type (i1, i32, i64...)."""

    width: int

    def __post_init__(self) -> None:
        if self.width not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.width}")

    def __str__(self) -> str:
        return f"i{self.width}"

    @property
    def is_integer(self) -> bool:
        return True


@dataclass(frozen=True)
class IndexType(IRType):
    """Target-width integer used for loop counters and memory indexing."""

    def __str__(self) -> str:
        return "index"

    @property
    def is_integer(self) -> bool:
        return True


@dataclass(frozen=True)
class VectorType(IRType):
    """A fixed-width 1-D vector, e.g. ``vector<8xf64>``."""

    width: int
    element: IRType

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"vector width must be >= 1, got {self.width}")
        if isinstance(self.element, (VectorType, MemRefType)):
            raise ValueError("vectors of vectors/memrefs are not supported")

    def __str__(self) -> str:
        return f"vector<{self.width}x{self.element}>"

    @property
    def is_vector(self) -> bool:
        return True

    @property
    def is_float(self) -> bool:
        return self.element.is_float

    @property
    def is_integer(self) -> bool:
        return self.element.is_integer


@dataclass(frozen=True)
class MemRefType(IRType):
    """A shaped buffer reference, e.g. ``memref<?xf64>``.

    ``shape`` entries of ``None`` denote dynamic dimensions (printed as
    ``?``), matching MLIR's convention.
    """

    shape: Tuple[Optional[int], ...]
    element: IRType

    def __str__(self) -> str:
        dims = "x".join("?" if d is None else str(d) for d in self.shape)
        if dims:
            return f"memref<{dims}x{self.element}>"
        return f"memref<{self.element}>"

    @property
    def rank(self) -> int:
        return len(self.shape)


@dataclass(frozen=True)
class FunctionType(IRType):
    """A function signature type."""

    inputs: Tuple[IRType, ...]
    results: Tuple[IRType, ...]

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        if len(self.results) == 1:
            return f"({ins}) -> {outs}"
        return f"({ins}) -> ({outs})"


@dataclass(frozen=True)
class NoneType(IRType):
    """The unit type for ops with no meaningful result."""

    def __str__(self) -> str:
        return "none"


# Interned singletons used throughout the code base.
f32 = FloatType(32)
f64 = FloatType(64)
i1 = IntegerType(1)
i8 = IntegerType(8)
i32 = IntegerType(32)
i64 = IntegerType(64)
index = IndexType()
none = NoneType()


def vector_of(width: int, element: IRType = f64) -> VectorType:
    """Return ``vector<{width}x{element}>``."""
    return VectorType(width, element)


def memref_of(element: IRType, *shape: Optional[int]) -> MemRefType:
    """Return ``memref<{shape}x{element}>``; dims default to one dynamic dim."""
    if not shape:
        shape = (None,)
    return MemRefType(tuple(shape), element)


def element_type(ty: IRType) -> IRType:
    """The scalar element of ``ty`` (itself if already scalar)."""
    if isinstance(ty, VectorType):
        return ty.element
    if isinstance(ty, MemRefType):
        return ty.element
    return ty


def vector_width(ty: IRType) -> int:
    """The lane count of ``ty`` (1 for scalars)."""
    if isinstance(ty, VectorType):
        return ty.width
    return 1


def broadcast_type(ty: IRType, width: int) -> IRType:
    """Return ``ty`` widened to ``width`` lanes (identity for width 1)."""
    if width == 1:
        return ty
    scalar = element_type(ty)
    return VectorType(width, scalar)


def same_shape(a: IRType, b: IRType) -> bool:
    """True when two types have identical vector shape (ignoring element)."""
    return vector_width(a) == vector_width(b)


def parse_type(text: str) -> IRType:
    """Parse a type from its printed form (inverse of ``str``).

    Supports the subset this IR produces: scalars, vectors, memrefs and
    function types are handled by the full IR parser instead.
    """
    text = text.strip()
    simple = {
        "f32": f32,
        "f64": f64,
        "i1": i1,
        "i8": i8,
        "i32": i32,
        "i64": i64,
        "index": index,
        "none": none,
    }
    if text in simple:
        return simple[text]
    if text.startswith("vector<") and text.endswith(">"):
        body = text[len("vector<"):-1]
        width_str, _, elem_str = body.partition("x")
        return VectorType(int(width_str), parse_type(elem_str))
    if text.startswith("memref<") and text.endswith(">"):
        body = text[len("memref<"):-1]
        parts = body.split("x")
        *dim_parts, elem_str = parts
        shape = tuple(None if p == "?" else int(p) for p in dim_parts)
        return MemRefType(shape, parse_type(elem_str))
    raise ValueError(f"cannot parse type: {text!r}")
