"""Lowering: IR modules -> executable Python kernels.

This plays the role of MLIR's lowering to LLVM and JIT execution:

* **scalar mode** (baseline kernels, width 1) — the cell loop becomes a
  per-cell Python loop over ``math`` scalar operations: the unvectorized
  engine, our stand-in for the clang-compiled scalar binary.
* **vector mode** (limpetMLIR/icc kernels, width W) — vector values
  become NumPy arrays and the cell loop is *flattened*: all blocks
  execute in one NumPy pass.  Lane semantics are preserved exactly
  (every op is elementwise; gathers/scatters/LUT interp are
  shape-polymorphic), while the per-ISA width W is charged by the
  machine model.  NumPy's C kernels stand in for the SIMD units, so the
  measured scalar-vs-vector gap mirrors the paper's scalar-vs-SIMD gap
  (DESIGN.md §2).

The generated source is kept on the :class:`CompiledKernel` for
inspection and tests.
"""

from __future__ import annotations

import math
import re
import time as _time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ir.core import Block, IRError, Module, Operation, Value
from ..ir.dialects.arith import trunc_div, trunc_rem
from .lut_runtime import (lut_interp_row, lut_interp_row_spline,
                          lut_interp_row_spline_vec, lut_interp_row_vec)

#: bump whenever generated source semantics change — part of the
#: persistent kernel cache key (repro.runtime.kernel_cache)
LOWERING_VERSION = 2

#: fused expressions deeper than this are materialized into a named
#: temporary so generated lines stay readable and CPython's parser
#: never sees pathologically nested expressions
MAX_FUSE_DEPTH = 40


class LoweringError(IRError):
    """Raised when an op has no lowering in the requested mode."""


class BufferArena:
    """Preallocated ``out=`` scratch buffers, reused across steps.

    Each statement-emitted ufunc in an arena-enabled kernel owns one
    slot; on every kernel invocation the op writes its result into the
    slot's buffer instead of allocating a fresh NumPy temporary.  The
    buffer is (re)allocated only when the operands' broadcast shape or
    dtype changes (i.e. on the first step, or when the cell count
    changes between runs).

    Not thread-safe by design: slots alias across concurrent calls, so
    the ShardedRunner always uses arena-free kernels.
    """

    __slots__ = ("_slots", "hits", "allocs")

    def __init__(self):
        self._slots: Dict[int, np.ndarray] = {}
        self.hits = 0
        self.allocs = 0

    def out(self, slot: int, *operands) -> np.ndarray:
        shape = np.broadcast_shapes(*(np.shape(o) for o in operands))
        dtype = np.result_type(*operands)
        buf = self._slots.get(slot)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.hits += 1
            return buf
        buf = np.empty(shape, dtype=dtype)
        self._slots[slot] = buf
        self.allocs += 1
        return buf

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._slots.values())

    def __len__(self) -> int:
        return len(self._slots)


@dataclass
class CompiledKernel:
    """An executable kernel lowered from IR."""

    name: str
    fn: Callable
    source: str
    mode: str                     # "scalar" or "vector"
    width: int
    arg_names: List[str]
    #: True when single-use SSA values were inlined into compound
    #: expressions (the PR2 fused lowering)
    fused: bool = False
    #: the kernel's scratch-buffer arena (None unless arena mode)
    arena: Optional[BufferArena] = None
    #: per-statement accumulated seconds (profile mode only); indexed
    #: by the matching entry in :attr:`provenance`.  A plain list —
    #: scalar ``list[i] += x`` is several times cheaper than a NumPy
    #: indexed add, and the bookkeeping sits *outside* the timed
    #: bracket, so keeping it cheap keeps attribution high.
    profile_counters: Optional[List[float]] = None
    #: per-statement provenance records (profile mode only): dicts with
    #: ``index``/``op``/``dialect``/``source``/``text``/``detail``
    provenance: Optional[List[Dict[str, Any]]] = None

    def __call__(self, *args, **kwargs):
        return self.fn(*args, **kwargs)


# ---------------------------------------------------------------------------
# Runtime helpers injected into every compiled kernel's globals
# ---------------------------------------------------------------------------


def _vb(x):
    """Column-broadcast a per-block scalar so it pairs with lane vectors."""
    if isinstance(x, np.ndarray) and x.ndim == 1:
        return x[:, None]
    return x


def _vstore(mem, idx, value):
    idx = np.asarray(idx)
    mem[idx] = np.broadcast_to(value, idx.shape)


def _vgather(mem, idx, mask=None, pass_thru=None):
    idx = np.asarray(idx)
    if mask is None:
        return mem[idx]
    mask = np.broadcast_to(mask, idx.shape)
    safe = np.where(mask, idx, 0)
    return np.where(mask, mem[safe], pass_thru)


def _vscatter(mem, idx, value, mask=None):
    idx = np.asarray(idx)
    value = np.broadcast_to(value, idx.shape)
    if mask is None:
        mem[idx] = value
        return
    mask = np.broadcast_to(mask, idx.shape)
    mem[idx[mask]] = value[mask]


def _vinsert(vec, scalar, pos, width):
    scalar = np.asarray(scalar, dtype=np.float64)
    base = np.asarray(vec, dtype=np.float64)
    out = np.empty(scalar.shape + (width,), dtype=np.float64)
    out[...] = base if base.ndim else base[()]
    out[..., pos] = scalar
    return out


def _f64(x):
    return x.astype(np.float64) if isinstance(x, np.ndarray) else float(x)


def _i64(x):
    return np.trunc(x).astype(np.int64) if isinstance(x, np.ndarray) \
        else int(x)


# guarded scalar math: IEEE results instead of Python exceptions,
# matching NumPy's (and the hardware's) behaviour in the vector engine
def _g_exp(x):
    try:
        return math.exp(x)
    except OverflowError:
        return math.inf


def _g_log(x):
    if x > 0.0:
        return math.log(x)
    return -math.inf if x == 0.0 else math.nan


def _g_log10(x):
    if x > 0.0:
        return math.log10(x)
    return -math.inf if x == 0.0 else math.nan


def _g_log2(x):
    if x > 0.0:
        return math.log2(x)
    return -math.inf if x == 0.0 else math.nan


def _g_log1p(x):
    if x > -1.0:
        return math.log1p(x)
    return -math.inf if x == -1.0 else math.nan


def _g_sqrt(x):
    return math.sqrt(x) if x >= 0.0 else math.nan


def _g_pow(x, y):
    try:
        return math.pow(x, y)
    except (OverflowError, ValueError):
        with np.errstate(all="ignore"):
            return float(np.power(np.float64(x), np.float64(y)))


def _g_div(a, b):
    try:
        return a / b
    except ZeroDivisionError:
        with np.errstate(all="ignore"):
            return float(np.float64(a) / np.float64(b))


def _g_fmod(a, b):
    try:
        return math.fmod(a, b)
    except ValueError:
        return math.nan


def _g_expm1(x):
    try:
        return math.expm1(x)
    except OverflowError:
        return math.inf


def _g_asin(x):
    return math.asin(x) if -1.0 <= x <= 1.0 else math.nan


def _g_acos(x):
    return math.acos(x) if -1.0 <= x <= 1.0 else math.nan


def _g_cosh(x):
    try:
        return math.cosh(x)
    except OverflowError:
        return math.inf


def _g_sinh(x):
    try:
        return math.sinh(x)
    except OverflowError:
        return math.copysign(math.inf, x)


def _cbrt(x):
    return math.copysign(abs(x) ** (1.0 / 3.0), x)


def _lut_spline_any(lut, x):
    """Scalar spline LUT entry point tolerating array lanes."""
    if isinstance(x, np.ndarray):
        return lut_interp_row_spline_vec(lut, x)
    return lut_interp_row_spline(lut, x)


def _lut_any(lut, x):
    """Scalar LUT entry point that tolerates array lanes.

    In icc_simd kernels the per-lane scalar calls receive arrays once
    the cell loop is flattened; semantics are unchanged (the machine
    model still charges the serialized cost from the IR).
    """
    if isinstance(x, np.ndarray):
        return lut_interp_row_vec(lut, x)
    return lut_interp_row(lut, x)


_HELPER_GLOBALS = {
    "np": np, "math": math,
    "_vb": _vb, "_vstore": _vstore, "_vgather": _vgather,
    "_vscatter": _vscatter, "_vinsert": _vinsert, "_f64": _f64,
    "_i64": _i64, "_g_exp": _g_exp, "_g_log": _g_log, "_g_log10": _g_log10,
    "_g_log2": _g_log2, "_g_log1p": _g_log1p, "_g_sqrt": _g_sqrt,
    "_g_pow": _g_pow, "_g_div": _g_div, "_g_fmod": _g_fmod,
    "_g_expm1": _g_expm1, "_g_asin": _g_asin, "_g_acos": _g_acos,
    "_g_cosh": _g_cosh, "_g_sinh": _g_sinh, "_cbrt": _cbrt,
    "_idiv": trunc_div, "_irem": trunc_rem,
    "_lut_scalar": _lut_any, "_lut_vec": lut_interp_row_vec,
    "_lut_spline_scalar": _lut_spline_any,
    "_lut_spline_vec": lut_interp_row_spline_vec,
}

# op -> python expression template per mode.  {0}, {1}... are operands.
_SCALAR_EXPR = {
    "arith.addf": "({0} + {1})",
    "arith.subf": "({0} - {1})",
    "arith.mulf": "({0} * {1})",
    "arith.divf": "_g_div({0}, {1})",
    "arith.remf": "_g_fmod({0}, {1})",
    "arith.negf": "(-{0})",
    "arith.maximumf": "max({0}, {1})",
    "arith.minimumf": "min({0}, {1})",
    "arith.addi": "({0} + {1})",
    "arith.subi": "({0} - {1})",
    "arith.muli": "({0} * {1})",
    "arith.divsi": "_idiv({0}, {1})",
    "arith.remsi": "_irem({0}, {1})",
    "arith.andi": "({0} & {1})",
    "arith.ori": "({0} | {1})",
    "arith.xori": "({0} ^ {1})",
    "arith.index_cast": "{0}",
    "arith.sitofp": "float({0})",
    "arith.fptosi": "int({0})",
    "math.exp": "_g_exp({0})",
    "math.expm1": "_g_expm1({0})",
    "math.log": "_g_log({0})",
    "math.log10": "_g_log10({0})",
    "math.log2": "_g_log2({0})",
    "math.log1p": "_g_log1p({0})",
    "math.sqrt": "_g_sqrt({0})",
    "math.cbrt": "_cbrt({0})",
    "math.sin": "math.sin({0})",
    "math.cos": "math.cos({0})",
    "math.tan": "math.tan({0})",
    "math.asin": "_g_asin({0})",
    "math.acos": "_g_acos({0})",
    "math.atan": "math.atan({0})",
    "math.sinh": "_g_sinh({0})",
    "math.cosh": "_g_cosh({0})",
    "math.tanh": "math.tanh({0})",
    "math.absf": "abs({0})",
    "math.floor": "math.floor({0})",
    "math.ceil": "math.ceil({0})",
    "math.erf": "math.erf({0})",
    "math.round": "round({0})",
    "math.trunc": "math.trunc({0})",
    "math.powf": "_g_pow({0}, {1})",
    "math.atan2": "math.atan2({0}, {1})",
    "math.copysign": "math.copysign({0}, {1})",
    "math.fmod": "_g_fmod({0}, {1})",
}

from .svml import VECTOR_MATH_TEMPLATES

_VECTOR_EXPR = {
    "arith.addf": "({0} + {1})",
    "arith.subf": "({0} - {1})",
    "arith.mulf": "({0} * {1})",
    "arith.divf": "({0} / {1})",
    "arith.remf": "np.fmod({0}, {1})",
    "arith.negf": "(-{0})",
    "arith.maximumf": "np.maximum({0}, {1})",
    "arith.minimumf": "np.minimum({0}, {1})",
    "arith.addi": "({0} + {1})",
    "arith.subi": "({0} - {1})",
    "arith.muli": "({0} * {1})",
    "arith.divsi": "_idiv({0}, {1})",
    "arith.remsi": "_irem({0}, {1})",
    "arith.andi": "({0} & {1})",
    "arith.ori": "({0} | {1})",
    "arith.xori": "({0} ^ {1})",
    "arith.index_cast": "{0}",
    "arith.sitofp": "_f64({0})",
    "arith.fptosi": "_i64({0})",
}
# math ops come from the SVML analog (repro.runtime.svml)
_VECTOR_EXPR.update(VECTOR_MATH_TEMPLATES)

_CMP_PY = {"oeq": "==", "one": "!=", "olt": "<", "ole": "<=", "ogt": ">",
           "oge": ">=", "ueq": "==", "une": "!=", "eq": "==", "ne": "!=",
           "slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}

# -- buffer-arena support ----------------------------------------------------
# Vector ops backed by a real NumPy ufunc can write into a preallocated
# scratch buffer via ``out=`` instead of allocating a temporary.

_ARENA_UFUNCS: Dict[str, str] = {
    "arith.addf": "np.add",
    "arith.subf": "np.subtract",
    "arith.mulf": "np.multiply",
    "arith.divf": "np.true_divide",
    "arith.remf": "np.fmod",
    "arith.negf": "np.negative",
    "arith.maximumf": "np.maximum",
    "arith.minimumf": "np.minimum",
}
# every "np.X({0})" / "np.X({0}, {1})" SVML template is ufunc-backed
for _op, _tpl in VECTOR_MATH_TEMPLATES.items():
    _m = re.fullmatch(r"np\.(\w+)\(\{0\}(, \{1\})?\)", _tpl)
    if _m:
        _ARENA_UFUNCS.setdefault(_op, f"np.{_m.group(1)}")

#: operand texts safe to mention twice (once as input, once for the
#: arena's shape/dtype probe): bare names and numeric literals
_SIMPLE_OPERAND = re.compile(r"[A-Za-z_]\w*|[-+]?\d+(\.\d+)?(e[-+]?\d+)?")


class _FunctionLowering:
    """Lowers one func.func definition to Python source.

    With ``fuse`` enabled (the default), the result of a pure op whose
    value has exactly one use is not assigned to a temporary: its
    expression text is held *pending* and inlined at the single use
    site.  Because every value has one definition and the deferred ops
    are side-effect free, textual inlining preserves bit-identical
    semantics while collapsing hundreds of one-line NumPy statements
    (one vector temporary each) into a few compound expressions.
    Pending values are flushed (materialized as assignments) before any
    region op so fusion never moves work across control flow.

    With ``arena`` set to a :class:`BufferArena`, statement-emitted
    vector ufuncs additionally write their results into preallocated
    per-slot scratch buffers (``out=``) reused across steps.

    With ``profile`` enabled, every compute statement is bracketed by
    two monotonic-clock reads whose difference accumulates into a
    preallocated per-statement counter array (``_prof``), and a
    provenance record maps each counter back to the defining IR op and
    its EasyML source name.  The bracketing is purely additive — the
    compute statements themselves are byte-identical to the unprofiled
    lowering — so profiled runs stay bitwise identical.
    """

    def __init__(self, op: Operation, mode: str, width: int,
                 fuse: bool = True, arena: bool = False,
                 profile: bool = False):
        self.op = op
        self.mode = mode
        self.width = width
        self.fuse = fuse
        self.arena = arena and mode != "scalar"
        self.profile = profile
        #: per-statement attribution records, in emission order
        self.provenance: List[Dict[str, Any]] = []
        self.lines: List[str] = []
        self.indent = 1
        self.names: Dict[int, str] = {}
        self.counter = 0
        #: value id -> (expression text, nesting depth, defining op),
        #: in def order
        self.pending: Dict[int, Tuple[str, int, Operation]] = {}
        self.arena_slots = 0
        #: > 0 while emitting inside a *Python* ``for`` body, where
        #: arena slots would alias across iterations
        self.loop_depth = 0
        # simt kernels flatten scalar per-thread code over NumPy arrays,
        # so they share the vector op table
        self.expr_table = _SCALAR_EXPR if mode == "scalar" else _VECTOR_EXPR

    # -- naming ------------------------------------------------------------------

    def name_of(self, value: Value) -> str:
        name = self.names.get(id(value))
        if name is None:
            raise LoweringError(
                f"lowering: value %{value.name_hint or '?'} used before "
                f"definition")
        return name

    def use(self, value: Value) -> str:
        """Expression text for one use of ``value`` (consumes pending)."""
        entry = self.pending.pop(id(value), None)
        if entry is not None:
            return entry[0]
        return self.name_of(value)

    def use_name(self, value: Value) -> str:
        """Like :meth:`use`, but always yields a bare name (for
        templates that mention an operand more than once)."""
        entry = self.pending.pop(id(value), None)
        if entry is not None:
            name = self.fresh(value)
            self._emit_stmt(f"{name} = {entry[0]}", entry[2])
            return name
        return self.name_of(value)

    def _depth_of(self, value: Value) -> int:
        entry = self.pending.get(id(value))
        return entry[1] if entry is not None else 0

    def fresh(self, value: Value, hint: Optional[str] = None) -> str:
        name = hint or f"v{self.counter}"
        self.counter += 1
        self.names[id(value)] = name
        return name

    def line(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _emit_stmt(self, text: str, op: Operation,
                   detail: Optional[str] = None) -> None:
        """Emit one compute statement, clock-bracketed in profile mode.

        The timer reads sit *between* statements, never inside an
        expression, so the statement text (and hence the numerics) is
        unchanged from the unprofiled lowering.
        """
        if not self.profile:
            self.line(text)
            return
        idx = len(self.provenance)
        source = op.results[0].name_hint if op.results else None
        self.provenance.append({
            "index": idx, "op": op.name, "dialect": op.dialect,
            "source": source, "text": text.strip(), "detail": detail,
        })
        self.line("_pt = _clock()")
        self.line(text)
        self.line(f"_prof[{idx}] += _clock() - _pt")

    # -- fusion ------------------------------------------------------------------

    def _flush_pending(self) -> None:
        """Materialize every pending expression as an assignment.

        Called before region ops (loops, branches, parallel regions):
        pending values defined here may be used inside the region, and
        inlining across the boundary would re-evaluate them per
        iteration (or skip LICM's work).  Definition order is emission
        order, so operands are always bound first.
        """
        for value_id, (text, _, owner) in list(self.pending.items()):
            name = f"v{self.counter}"
            self.counter += 1
            self.names[value_id] = name
            self._emit_stmt(f"{name} = {text}", owner)
        self.pending.clear()

    def _defer_or_assign(self, op: Operation, text: str,
                         depth: int) -> None:
        """Defer a pure op's result for inlining, or assign it."""
        result = op.results[0]
        if self.fuse and result.num_uses == 1 and depth <= MAX_FUSE_DEPTH:
            self.pending[id(result)] = (text, depth, op)
            return
        self._emit_stmt(f"{self.fresh(result)} = {text}", op)

    # -- entry --------------------------------------------------------------------

    def lower(self) -> str:
        sym = self.op.attributes["sym_name"]
        entry = self.op.regions[0].entry
        arg_names = []
        for arg in entry.args:
            name = self.fresh(arg, _sanitize(arg.name_hint))
            arg_names.append(name)
        header = f"def {sym}({', '.join(arg_names)}):"
        self.lines.append(header)
        if self.mode == "vector":
            self.line(f"_lanes = np.arange({self.width})")
        self._lower_block_ops(entry)
        if len(self.lines) == 1 + (1 if self.mode == 'vector' else 0):
            self.line("pass")
        return "\n".join(self.lines)

    # -- structure ----------------------------------------------------------------

    def _lower_block_ops(self, block: Block) -> None:
        for op in block.ops:
            self._lower_op(op)

    def _lower_op(self, op: Operation) -> None:
        name = op.name
        if name == "func.return":
            if op.operands:
                values = ", ".join(self.use(v) for v in op.operands)
                self.line(f"return {values}")
            else:
                self.line("return")
            return
        if name == "omp.parallel":
            # Worksharing itself is the ShardedRunner's job (it calls
            # the kernel on per-thread cell ranges); lowering executes
            # the region body directly.
            self._flush_pending()
            for inner in op.regions[0].entry.ops:
                if inner.name != "omp.terminator":
                    self._lower_op(inner)
            return
        if name == "gpu.launch":
            # The grid-stride decomposition is an execution detail: with
            # global_id=0 / grid_dim=1 the stride loop enumerates every
            # cell exactly once, and the flattened cell loop runs them
            # all as one NumPy pass (the SIMT analog of lane-flattening).
            self._flush_pending()
            for inner in op.regions[0].entry.ops:
                if inner.name != "gpu.terminator":
                    self._lower_op(inner)
            return
        if name == "gpu.global_id":
            self._defer_or_assign(op, "0", 0)
            return
        if name == "gpu.grid_dim":
            self._defer_or_assign(op, "1", 0)
            return
        if name == "scf.for":
            self._flush_pending()
            self._lower_for(op)
            return
        if name == "scf.if":
            self._flush_pending()
            self._lower_if(op)
            return
        if name == "scf.yield" or name == "omp.terminator":
            raise LoweringError(f"{name} outside its parent's lowering")
        if name == "arith.constant":
            self._lower_constant(op)
            return
        if name == "func.call":
            self._lower_call(op)
            return
        if name in ("memref.load", "memref.store", "vector.load",
                    "vector.store", "vector.gather", "vector.scatter",
                    "vector.broadcast", "vector.extract", "vector.insert",
                    "vector.step", "memref.cast", "memref.view",
                    "memref.dim", "arith.select", "arith.cmpf",
                    "arith.cmpi"):
            self._lower_special(op)
            return
        template = self.expr_table.get(name)
        if template is None:
            raise LoweringError(f"no {self.mode} lowering for {name}")
        depth = 1 + max((self._depth_of(v) for v in op.operands), default=0)
        operands = [self.use(v) for v in op.operands]
        result = op.results[0]
        if self.fuse and result.num_uses == 1 and depth <= MAX_FUSE_DEPTH:
            self.pending[id(result)] = (template.format(*operands), depth,
                                        op)
            return
        if self.arena and self.loop_depth == 0 \
                and name in _ARENA_UFUNCS \
                and all(_SIMPLE_OPERAND.fullmatch(o) for o in operands):
            slot = self.arena_slots
            self.arena_slots += 1
            args = ", ".join(operands)
            self._emit_stmt(f"{self.fresh(result)} = {_ARENA_UFUNCS[name]}"
                            f"({args}, out=_arena.out({slot}, {args}))", op)
            return
        self._emit_stmt(f"{self.fresh(result)} = "
                        f"{template.format(*operands)}", op)

    # -- leaf ops -----------------------------------------------------------------

    def _lower_constant(self, op: Operation) -> None:
        value = op.attributes["value"]
        if isinstance(value, bool) or isinstance(value, int):
            text = str(value)
        else:
            text = repr(float(value))
        if self.fuse:
            # constants inline everywhere (even multi-use: a literal is
            # cheaper than a name lookup); negatives get parentheses so
            # they survive template interpolation
            if text.startswith("-"):
                text = f"({text})"
            self.names[id(op.results[0])] = text
            return
        self.line(f"{self.fresh(op.results[0])} = {text}")

    def _lower_call(self, op: Operation) -> None:
        callee = op.attributes["callee"]
        operands = ", ".join(self.use(v) for v in op.operands)
        if callee.startswith("LUT_interpRowSpline_n_elements_vec"):
            call = f"_lut_spline_vec({operands})"
        elif callee.startswith("LUT_interpRowSpline"):
            call = f"_lut_spline_scalar({operands})"
        elif callee.startswith("LUT_interpRow_n_elements_vec"):
            call = f"_lut_vec({operands})"
        elif callee.startswith("LUT_interpRow"):
            call = f"_lut_scalar({operands})"
        elif callee.startswith("foreign_"):
            call = f"{_sanitize(callee)}({operands})"
        else:
            call = f"{_sanitize(callee)}({operands})"
        if not op.results:
            self._emit_stmt(call, op, detail=callee)
            return
        results = ", ".join(self.fresh(r) for r in op.results)
        if callee.startswith("LUT_interpRow"):
            # the LUT runtime returns a tuple of columns even for a
            # single-column table: force sequence unpacking
            results += ","
        self._emit_stmt(f"{results} = {call}", op, detail=callee)

    def _lower_special(self, op: Operation) -> None:
        n = self.use
        name = op.name
        if name == "arith.cmpf" or name == "arith.cmpi":
            pred = _CMP_PY[op.attributes["predicate"]]
            depth = 1 + max(self._depth_of(op.operands[0]),
                            self._depth_of(op.operands[1]))
            self._defer_or_assign(op, f"({n(op.operands[0])} {pred} "
                                      f"{n(op.operands[1])})", depth)
        elif name == "arith.select":
            depth = 1 + max(self._depth_of(v) for v in op.operands)
            cond, tval, fval = (n(v) for v in op.operands)
            if self.mode == "scalar":
                self._defer_or_assign(op, f"({tval} if {cond} else {fval})",
                                      depth)
            else:
                self._defer_or_assign(op, f"np.where({cond}, {tval}, "
                                          f"{fval})", depth)
        elif name == "memref.load":
            base, *idx = op.operands
            indices = ", ".join(n(v) for v in idx)
            result = self.fresh(op.results[0])
            self._emit_stmt(f"{result} = {n(base)}[{indices}]", op)
        elif name == "memref.store":
            value, base, *idx = op.operands
            text = n(value)
            indices = ", ".join(n(v) for v in idx)
            self._emit_stmt(f"{n(base)}[{indices}] = {text}", op)
        elif name == "vector.load":
            base, *idx = op.operands
            result = self.fresh(op.results[0])
            self._emit_stmt(f"{result} = {n(base)}"
                            f"[_vb({n(idx[0])}) + _lanes]", op)
        elif name == "vector.store":
            value, base, *idx = op.operands
            text = n(value)
            self._emit_stmt(f"_vstore({n(base)}, _vb({n(idx[0])}) + "
                            f"_lanes, {text})", op)
        elif name == "vector.gather":
            base, idx = op.operands[0], op.operands[1]
            extra = ""
            if len(op.operands) == 4:
                extra = f", {n(op.operands[2])}, {n(op.operands[3])}"
            result = self.fresh(op.results[0])
            self._emit_stmt(f"{result} = _vgather({n(base)}, "
                            f"{n(idx)}{extra})", op)
        elif name == "vector.scatter":
            value, base, idx = op.operands[0], op.operands[1], op.operands[2]
            text = n(value)
            extra = f", {n(op.operands[3])}" if len(op.operands) == 4 else ""
            self._emit_stmt(f"_vscatter({n(base)}, {n(idx)}, "
                            f"{text}{extra})", op)
        elif name == "vector.broadcast":
            depth = 1 + self._depth_of(op.operands[0])
            self._defer_or_assign(op, f"_vb({n(op.operands[0])})", depth)
        elif name == "vector.extract":
            pos = op.attributes["position"]
            # the template mentions the source twice: force a bare name
            src = self.use_name(op.operands[0])
            self._defer_or_assign(op, f"({src}[..., {pos}] "
                                      f"if isinstance({src}, np.ndarray) "
                                      f"else {src})", 1)
        elif name == "vector.insert":
            scalar, vec = op.operands
            depth = 1 + max(self._depth_of(scalar), self._depth_of(vec))
            width = op.results[0].type.width
            self._defer_or_assign(
                op, f"_vinsert({n(vec)}, {n(scalar)}, "
                    f"{op.attributes['position']}, {width})", depth)
        elif name == "vector.step":
            self._defer_or_assign(op, "_lanes", 0)
        elif name in ("memref.cast", "memref.view"):
            # Typed reinterpretation: runtime buffers are already flat
            # NumPy arrays; a view with an element shift slices.
            result = self.fresh(op.results[0])
            if name == "memref.view":
                self.line(f"{result} = {n(op.operands[0])}"
                          f"[{n(op.operands[1])}:]")
            else:
                self.line(f"{result} = {n(op.operands[0])}")
        elif name == "memref.dim":
            result = self.fresh(op.results[0])
            dim = op.attributes.get("index", 0)
            self.line(f"{result} = {n(op.operands[0])}.shape[{dim}]")

    # -- control flow -------------------------------------------------------------------

    def _lower_for(self, op: Operation) -> None:
        lb, ub, step = (self.name_of(v) for v in op.operands[:3])
        inits = [self.name_of(v) for v in op.operands[3:]]
        body = op.regions[0].entry
        is_cell_loop = bool(op.attributes.get("cell_loop"))
        iv_name = self.fresh(body.args[0], _sanitize(body.args[0].name_hint))
        acc_names = []
        for arg, init in zip(body.args[1:], inits):
            acc = self.fresh(arg, _sanitize(arg.name_hint))
            acc_names.append(acc)
            self.line(f"{acc} = {init}")
        if is_cell_loop and self.mode in ("vector", "simt"):
            if inits:
                raise LoweringError(
                    "vector cell loop cannot carry iter_args")
            # Flatten: all blocks execute at once; the induction variable
            # becomes the array of block start indices.
            self._emit_stmt(f"{iv_name} = np.arange({lb}, {ub}, {step}, "
                            f"dtype=np.int64)", op)
            self._lower_block_body(body, acc_names)
            return
        self.line(f"for {iv_name} in range({lb}, {ub}, {step}):")
        self.indent += 1
        self.loop_depth += 1
        mark = len(self.lines)
        self._lower_block_body(body, acc_names)
        if len(self.lines) == mark:
            self.line("pass")      # everything fused away or inlined
        self.loop_depth -= 1
        self.indent -= 1
        for result, acc in zip(op.results, acc_names):
            self.names[id(result)] = acc

    def _lower_block_body(self, body: Block, acc_names: List[str]) -> None:
        for inner in body.ops:
            if inner.name == "scf.yield":
                for acc, value in zip(acc_names, inner.operands):
                    # attribute the assignment to the pending defining
                    # op when the yielded expression was fused into it
                    entry = self.pending.get(id(value))
                    owner = entry[2] if entry is not None else inner
                    self._emit_stmt(f"{acc} = {self.use(value)}", owner)
                continue
            self._lower_op(inner)

    def _lower_if(self, op: Operation) -> None:
        if self.mode == "vector":
            raise LoweringError(
                "scf.if has no vector lowering; use arith.select "
                "(if-conversion happens in the frontend)")
        cond = self.use(op.operands[0])
        result_names = [self.fresh(r) for r in op.results]
        self.line(f"if {cond}:")
        self.indent += 1
        self.loop_depth += 1       # branch bodies run conditionally
        self._lower_branch(op.regions[0].entry, result_names)
        self.indent -= 1
        if len(op.regions) > 1:
            self.line("else:")
            self.indent += 1
            self._lower_branch(op.regions[1].entry, result_names)
            self.indent -= 1
        self.loop_depth -= 1

    def _lower_branch(self, block: Block, result_names: List[str]) -> None:
        mark = len(self.lines)
        for inner in block.ops:
            if inner.name == "scf.yield":
                for name, value in zip(result_names, inner.operands):
                    entry = self.pending.get(id(value))
                    owner = entry[2] if entry is not None else inner
                    self._emit_stmt(f"{name} = {self.use(value)}", owner)
                continue
            self._lower_op(inner)
        if len(self.lines) == mark:
            self.line("pass")


def _sanitize(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _np_erf(x):
    from ..ir.dialects.math import _erf
    return _erf(x)


def _kernel_mode(func_op: Operation) -> tuple[str, int]:
    """Infer (mode, width) from the cell loop's attributes."""
    for op in func_op.walk():
        if op.name == "scf.for" and op.attributes.get("cell_loop"):
            if op.attributes.get("simt"):
                return "simt", 1
            width = int(op.attributes.get("vector_width", 1))
            return ("scalar" if width == 1 else "vector"), width
    return "scalar", 1


def compile_kernel_source(sym_name: str, source: str, mode: str, width: int,
                          arg_names: List[str], fused: bool = False,
                          arena: bool = False,
                          extra_globals: Optional[Dict] = None
                          ) -> CompiledKernel:
    """Exec lowered Python source into an executable kernel.

    The tail of :func:`lower_function`, exposed separately so the
    persistent kernel cache can rebuild a kernel from cached source
    without re-running passes, verification, or the lowering itself.
    """
    arena_obj = BufferArena() if arena else None
    namespace = dict(_HELPER_GLOBALS)
    namespace["_np_erf"] = _np_erf
    if arena_obj is not None:
        namespace["_arena"] = arena_obj
    from .foreign import registered_foreign
    for fname, fn in registered_foreign().items():
        namespace[f"foreign_{_sanitize(fname)}"] = fn
    namespace.update(extra_globals or {})
    code = compile(source, f"<lowered:{sym_name}>", "exec")
    exec(code, namespace)
    return CompiledKernel(name=sym_name, fn=namespace[sym_name],
                          source=source, mode=mode, width=width,
                          arg_names=arg_names, fused=fused, arena=arena_obj)


def lower_function(module: Module, sym_name: str,
                   mode: Optional[str] = None,
                   extra_globals: Optional[Dict] = None,
                   fuse: bool = True, arena: bool = False,
                   profile: bool = False) -> CompiledKernel:
    """Lower one function of ``module`` to an executable Python kernel.

    ``fuse`` inlines single-use SSA values into compound expressions
    (bit-identical results, far fewer temporaries); ``arena`` opts the
    kernel into the preallocated ``out=`` scratch-buffer mode for
    multi-use vector values (see :class:`BufferArena` for the
    single-thread restriction); ``profile`` brackets every compute
    statement with clock reads accumulating into the kernel's
    :attr:`~CompiledKernel.profile_counters` (see
    :mod:`repro.obs.profiler` for reporting).
    """
    func_op = module.lookup_func(sym_name)
    if func_op is None:
        raise LoweringError(f"no function @{sym_name} in module")
    inferred_mode, width = _kernel_mode(func_op)
    mode = mode or inferred_mode
    lowering = _FunctionLowering(func_op, mode, width, fuse=fuse,
                                 arena=arena, profile=profile)
    source = lowering.lower()
    entry = func_op.regions[0].entry
    arg_names = [a.name_hint or f"arg{i}" for i, a in enumerate(entry.args)]
    use_arena = arena and mode != "scalar" and lowering.arena_slots > 0
    extra = dict(extra_globals or {})
    counters = None
    if profile:
        counters = [0.0] * len(lowering.provenance)
        extra["_prof"] = counters
        extra["_clock"] = _time.perf_counter
    kernel = compile_kernel_source(sym_name, source, mode, width, arg_names,
                                   fused=fuse, arena=use_arena,
                                   extra_globals=extra)
    if profile:
        kernel.profile_counters = counters
        kernel.provenance = lowering.provenance
    return kernel
