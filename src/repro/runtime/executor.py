"""The simulation driver: compile a kernel, run the two-stage flow.

Mirrors openCARP's ``bench`` execution (§3.1): per time step, (1) the
**compute stage** calls the generated ionic-model kernel for every
cell, then (2) the **solver stage** — out of the paper's scope, stubbed
here as an explicit membrane update — advances ``Vm`` from the computed
``Iion`` plus an optional stimulus.  The stub is identical for every
backend so trajectories are directly comparable.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..codegen.common import GeneratedKernel
from ..frontend.model import IonicModel
from ..ir.passes import default_pipeline
from ..ir.verifier import verify_module
from .lowering import CompiledKernel, lower_function
from .lut_runtime import LUTData, build_all_luts
from .state import SimulationState, allocate_state


@dataclass
class Stimulus:
    """A periodic square current pulse, like bench's default stimulus."""

    amplitude: float = -30.0
    duration: float = 2.0
    period: float = 1000.0
    start: float = 0.0

    def current(self, t: float) -> float:
        phase = (t - self.start) % self.period
        if self.start <= t and 0.0 <= phase < self.duration:
            return self.amplitude
        return 0.0


@dataclass
class RunResult:
    """Outcome of a timed simulation run."""

    state: SimulationState
    n_steps: int
    dt: float
    elapsed_seconds: float
    vm_trace: Optional[np.ndarray] = None

    @property
    def seconds_per_step(self) -> float:
        return self.elapsed_seconds / max(self.n_steps, 1)


class KernelRunner:
    """Owns one compiled kernel and runs simulations with it."""

    def __init__(self, generated: GeneratedKernel, optimize: bool = True,
                 verify: bool = True):
        self.generated = generated
        self.spec = generated.spec
        self.model: IonicModel = generated.spec.model
        self.layout = generated.layout
        if optimize:
            default_pipeline(verify_each=False).run(generated.module,
                                                    fixed_point=True)
        if verify:
            verify_module(generated.module)
        self.kernel: CompiledKernel = lower_function(
            generated.module, generated.spec.function_name)
        # LUTs include dt-dependent Rush-Larsen columns: built lazily
        # for the dt of the first step, rebuilt if dt changes.
        self._lut_cache: Dict[float, List[LUTData]] = {}

    def luts_for(self, dt: float) -> List[LUTData]:
        if not self.spec.use_lut:
            return []
        if dt not in self._lut_cache:
            self._lut_cache[dt] = build_all_luts(self.model, dt=dt)
        return self._lut_cache[dt]

    # -- setup --------------------------------------------------------------------

    def make_state(self, n_cells: int, vm_init: Optional[float] = None,
                   perturbation: float = 0.0,
                   rng: Optional[np.random.Generator] = None
                   ) -> SimulationState:
        return allocate_state(self.model, self.layout, n_cells,
                              width=self.spec.width, vm_init=vm_init,
                              perturbation=perturbation, rng=rng)

    # -- stepping ------------------------------------------------------------------

    def compute_step(self, state: SimulationState, dt: float) -> None:
        """One compute-stage invocation over all cells."""
        args = [0, state.n_alloc, dt, state.time, state.sv]
        args += [state.externals[ext] for ext in self.model.externals]
        if self.spec.use_lut:
            args += self.luts_for(dt)
        self.kernel.fn(*args)

    def solver_step(self, state: SimulationState, dt: float,
                    stimulus: Optional[Stimulus] = None) -> None:
        """The stubbed solver stage: explicit membrane potential update.

        dVm/dt = -(Iion + Istim); models that do not write an ionic
        current leave ``Vm`` untouched (the solver has nothing to do).
        """
        if "Vm" not in state.externals or "Iion" not in state.externals:
            return
        if "Iion" not in self.model.outputs:
            return
        istim = stimulus.current(state.time) if stimulus else 0.0
        vm = state.externals["Vm"]
        vm -= dt * (state.externals["Iion"] + istim)

    def run(self, state: SimulationState, n_steps: int, dt: float = 0.01,
            stimulus: Optional[Stimulus] = None,
            record_vm: bool = False) -> RunResult:
        """Run the two-stage simulation for ``n_steps`` steps of ``dt``."""
        trace = np.empty(n_steps) if record_vm else None
        start = _time.perf_counter()
        for step in range(n_steps):
            self.compute_step(state, dt)
            self.solver_step(state, dt, stimulus)
            state.time += dt
            state.steps_done += 1
            if record_vm and "Vm" in state.externals:
                trace[step] = state.externals["Vm"][0]
        elapsed = _time.perf_counter() - start
        return RunResult(state=state, n_steps=n_steps, dt=dt,
                         elapsed_seconds=elapsed, vm_trace=trace)

    def simulate(self, n_cells: int, n_steps: int, dt: float = 0.01,
                 stimulus: Optional[Stimulus] = None,
                 perturbation: float = 0.0,
                 record_vm: bool = False) -> RunResult:
        """Allocate, run, return — the one-call benchmark entry point."""
        state = self.make_state(n_cells, perturbation=perturbation)
        return self.run(state, n_steps, dt, stimulus, record_vm)


def compare_trajectories(a: SimulationState, b: SimulationState,
                         rtol: float = 1e-9, atol: float = 1e-11) -> bool:
    """True when two runs' states and externals agree within tolerance."""
    snap_a, snap_b = a.snapshot(), b.snapshot()
    if snap_a.keys() != snap_b.keys():
        return False
    return all(np.allclose(snap_a[k], snap_b[k], rtol=rtol, atol=atol,
                           equal_nan=True)
               for k in snap_a)
