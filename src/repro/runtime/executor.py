"""The simulation driver: compile a kernel, run the two-stage flow.

Mirrors openCARP's ``bench`` execution (§3.1): per time step, (1) the
**compute stage** calls the generated ionic-model kernel for every
cell, then (2) the **solver stage** — out of the paper's scope, stubbed
here as an explicit membrane update — advances ``Vm`` from the computed
``Iion`` plus an optional stimulus.  The stub is identical for every
backend so trajectories are directly comparable.

Two resilience hooks thread through :meth:`KernelRunner.run`:

* ``watchdog`` — a :class:`~repro.resilience.watchdog.WatchdogConfig`
  (or ``NumericalWatchdog``) enabling periodic NaN/Inf scans with
  checkpoint-and-retry (see that module for the policies);
* ``step_hook`` — a callable invoked with the state after every
  executed step (instrumentation and fault injection).
"""

from __future__ import annotations

import time as _time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..codegen.common import GeneratedKernel
from ..frontend.model import IonicModel
from ..ir.passes import default_pipeline
from ..ir.passes.pass_manager import PassManager
from ..ir.verifier import verify_module
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .kernel_cache import KernelCache, default_cache, kernel_cache_key
from .lowering import (CompiledKernel, compile_kernel_source,
                       lower_function)
from .lut_runtime import LUTData, build_all_luts
from .state import SimulationState, StateCheckpoint, allocate_state


@dataclass
class Stimulus:
    """A periodic square current pulse, like bench's default stimulus."""

    amplitude: float = -30.0
    duration: float = 2.0
    period: float = 1000.0
    start: float = 0.0

    def current(self, t: float) -> float:
        phase = (t - self.start) % self.period
        if self.start <= t and 0.0 <= phase < self.duration:
            return self.amplitude
        return 0.0


@dataclass
class RunResult:
    """Outcome of a timed simulation run."""

    state: SimulationState
    n_steps: int
    dt: float
    elapsed_seconds: float
    vm_trace: Optional[np.ndarray] = None
    #: numerical health report (only when a watchdog guarded the run)
    health: Optional["object"] = None
    #: wall time inside the compute-stage kernel calls, only measured
    #: when ``run(..., time_breakdown=True)`` — ``None`` otherwise
    compute_seconds: Optional[float] = None
    #: population batch instances this run advanced per kernel call.
    #: 1 for ordinary runs; the population layer sets it on carved
    #: per-instance results so throughput stays comparable — the kernel
    #: really advanced ``instances × n_cells`` cells per step.
    instances: int = 1
    #: one-time kernel construction cost of the runner that produced
    #: this result (passes + verify + lowering on a JIT build, ~0 on a
    #: cache or AOT-artifact hit) — ``None`` on results not produced
    #: through :meth:`KernelRunner.run`
    compile_seconds: Optional[float] = None
    #: compile_seconds + the first step's wall time: how long a fresh
    #: process waits for its first simulated step.  ``None`` on guarded
    #: (watchdog) runs and zero-step runs.
    time_to_first_step: Optional[float] = None

    @property
    def seconds_per_step(self) -> float:
        return self.elapsed_seconds / max(self.n_steps, 1)

    @property
    def overhead_seconds(self) -> Optional[float]:
        """Everything outside the kernel: solver stage, loop, binding.

        ``None`` unless the run measured a breakdown."""
        if self.compute_seconds is None:
            return None
        return max(self.elapsed_seconds - self.compute_seconds, 0.0)

    @property
    def steps_per_second(self) -> float:
        """Executed time steps per wall-clock second."""
        return self.n_steps / max(self.elapsed_seconds, 1e-12)

    @property
    def cell_steps_per_second(self) -> float:
        """Cell·steps per second — the paper's throughput unit, which
        stays comparable across cell counts (and, with a population
        axis, across batch sizes: the batch multiplier is included)."""
        return self.steps_per_second * self.state.n_cells * self.instances


#: LUT tables are dt-dependent; adaptive-dt retries must neither rebuild
#: tables for float-noise dt variations nor grow the cache unboundedly.
_LUT_CACHE_MAX = 8
_LUT_DT_DIGITS = 12


def _quantize_dt(dt: float) -> float:
    """Collapse float-noise dt values onto one cache key."""
    return round(float(dt), _LUT_DT_DIGITS)


class KernelRunner:
    """Owns one compiled kernel and runs simulations with it.

    ``fuse`` enables fused expression lowering (single-use SSA values
    inlined into compound expressions); ``arena`` additionally reuses
    preallocated ``out=`` scratch buffers for vector statements (not
    thread-safe — never combined with :class:`ShardedRunner`).

    ``cache`` wires in the persistent kernel cache: pass a
    :class:`~repro.runtime.kernel_cache.KernelCache`, or ``True`` for
    the process-default cache dir.  On a hit, the pass pipeline,
    verification and lowering are all skipped and the cached source is
    compiled directly; ``self.cache_hit`` records which path ran.

    ``tune`` consults the persistent tuning database
    (:mod:`repro.tuning`) for this model at the ``tune_cells`` /
    ``tune_dt`` workload shape: on a hit the runner silently swaps in
    the recorded winning variant (width/layout/LUT regeneration plus
    the ``fuse``/``arena`` flags) — ``self.tuned_config`` records what
    was applied.  It never measures at construction time (run
    ``limpet-bench tune`` or :func:`repro.tuning.autotune` to populate
    the DB) and falls back to the passed-in kernel when there is no
    record, the record needs sharding, or the model is not registered.

    ``profile`` lowers the kernel with per-statement clock bracketing
    (see :mod:`repro.obs.profiler`): every compute statement's wall
    time accumulates into the kernel's ``profile_counters``, retrieved
    via :meth:`profile_report`.  Profiled kernels bypass the persistent
    cache (their source differs from the cacheable form) and produce
    bitwise-identical trajectories.
    """

    def __init__(self, generated: GeneratedKernel, optimize: bool = True,
                 verify: bool = True,
                 pipeline: Optional[PassManager] = None,
                 fuse: bool = True, arena: bool = False,
                 cache=None, tune: bool = False, tune_cells: int = 512,
                 tune_dt: float = 0.01, tune_db=None,
                 profile: bool = False,
                 population: Optional[str] = None,
                 artifacts=None):
        self.population = population
        self.tuned_config = None
        if tune:
            generated, fuse, arena = self._tuned_variant(
                generated, fuse, arena, tune_cells, tune_dt, tune_db)
        self.generated = generated
        self.spec = generated.spec
        self.model: IonicModel = generated.spec.model
        self.layout = generated.layout
        self.pipeline = pipeline
        self.fuse = fuse
        self.arena = arena
        self.profile = profile
        self.cache: Optional[KernelCache] = (
            None if profile
            else default_cache() if cache is True else cache or None)
        # the read-only AOT artifact tier, consulted after a cache
        # miss (profiled kernels bypass it like they bypass the cache)
        if profile:
            self.artifacts = None
        else:
            from ..aot.bundle import resolve_store
            self.artifacts = resolve_store(artifacts)
        self.cache_hit = False
        self.artifact_hit = False
        self.cache_key: Optional[str] = None
        _t0 = _time.perf_counter()
        self.kernel: CompiledKernel = self._build_kernel(
            optimize, verify, pipeline)
        #: one-time construction cost: passes + verify + lowering on a
        #: JIT build, just source exec on a cache/artifact hit
        self.compile_seconds: float = _time.perf_counter() - _t0
        # LUTs include dt-dependent Rush-Larsen columns: built lazily
        # for the dt of the first step, rebuilt if dt changes.  Keyed by
        # quantized dt, LRU-bounded so watchdog dt-halving cannot leak.
        self._lut_cache: "OrderedDict[float, List[LUTData]]" = OrderedDict()
        self._lut_hits = 0
        self._lut_misses = 0
        self._lut_evictions = 0
        # prebound compute_step arguments (rebuilt on state/dt/sv change)
        self._bound: Optional[tuple] = None

    def _tuned_variant(self, generated: GeneratedKernel, fuse: bool,
                       arena: bool, n_cells: int, dt: float, db):
        """The tuning DB's winning variant for this workload, if any.

        DB-lookup only — never measures.  Any failure (unregistered
        model, unreadable DB, regeneration error) falls back to the
        caller's kernel unchanged; tuning is an optimization, not a
        correctness dependency.
        """
        try:
            from ..tuning import generate_for, lookup_config
            config = lookup_config(generated.spec.model, n_cells, dt,
                                   db=db)
        except Exception:
            return generated, fuse, arena
        if config is None or config.shards > 1:
            # sharded winners need a ShardedRunner; keep the kernel
            return generated, fuse, arena
        try:
            tuned = generate_for(generated.spec.model, config)
        except Exception:
            return generated, fuse, arena
        self.tuned_config = config
        return tuned, config.fuse, config.arena

    def _build_kernel(self, optimize: bool, verify: bool,
                      pipeline: Optional[PassManager]) -> CompiledKernel:
        generated = self.generated
        payload = getattr(generated, "payload", None)
        if payload and generated.module is None:
            # an ArtifactKernel straight from a bundle: the payload IS
            # the finished JIT product — exec it, skip everything
            self.artifact_hit = True
            self.cache_key = getattr(generated, "key", "") or None
            return compile_kernel_source(
                payload["function_name"], payload["source"],
                payload["mode"], payload["width"],
                payload["arg_names"], fused=payload["fused"],
                arena=payload["arena"])
        if pipeline is not None:
            fingerprint = pipeline.fingerprint()
        elif optimize:
            pipeline = default_pipeline(verify_each=False)
            fingerprint = pipeline.fingerprint()
        else:
            fingerprint = "none"
        if self.cache is not None:
            with _trace.span("cache_lookup",
                             model=self.model.name) as look:
                self.cache_key = kernel_cache_key(
                    generated, fingerprint, self.fuse, self.arena, verify,
                    population=self.population)
                payload = self.cache.load(self.cache_key)
                look.annotate(hit=payload is not None)
            if payload is not None:
                self.cache_hit = True
                return compile_kernel_source(
                    payload["function_name"], payload["source"],
                    payload["mode"], payload["width"],
                    payload["arg_names"], fused=payload["fused"],
                    arena=payload["arena"])
        if self.artifacts is not None:
            if self.cache_key is None:
                self.cache_key = kernel_cache_key(
                    generated, fingerprint, self.fuse, self.arena, verify,
                    population=self.population)
            with _trace.span("artifact_lookup",
                             model=self.model.name) as look:
                payload = self.artifacts.lookup_kernel(self.cache_key)
                look.annotate(hit=payload is not None)
            if payload is not None:
                self.artifact_hit = True
                return compile_kernel_source(
                    payload["function_name"], payload["source"],
                    payload["mode"], payload["width"],
                    payload["arg_names"], fused=payload["fused"],
                    arena=payload["arena"])
        if pipeline is not None:
            tracer = _trace.active_tracer()
            if tracer is not None:
                from ..obs.passes import TracePassInstrumentation
                if not any(isinstance(i, TracePassInstrumentation)
                           for i in pipeline.instrumentations):
                    pipeline.add_instrumentation(
                        TracePassInstrumentation(tracer))
            with _trace.span("passes", model=self.model.name,
                             pipeline=fingerprint):
                pipeline.run(generated.module, fixed_point=True)
        if verify:
            with _trace.span("verify", model=self.model.name):
                verify_module(generated.module)
        with _trace.span("lowering", model=self.model.name,
                         fuse=self.fuse, arena=self.arena,
                         profile=self.profile):
            kernel = lower_function(generated.module,
                                    generated.spec.function_name,
                                    fuse=self.fuse, arena=self.arena,
                                    profile=self.profile)
        if self.cache is not None and self.cache_key is not None \
                and not getattr(pipeline, "quarantined", None):
            # a sandboxed pipeline that quarantined passes produced a
            # module the full pipeline would not have: storing it under
            # the full-pipeline key would poison every later consumer
            self.cache.store(self.cache_key, kernel.source, kernel.mode,
                             kernel.width, kernel.arg_names,
                             kernel.name, fused=kernel.fused,
                             arena=kernel.arena is not None)
        return kernel

    def luts_for(self, dt: float) -> List[LUTData]:
        if not self.spec.use_lut:
            return []
        key = _quantize_dt(dt)
        cached = self._lut_cache.get(key)
        if cached is not None:
            self._lut_cache.move_to_end(key)
            self._lut_hits += 1
            return cached
        tables = build_all_luts(self.model, dt=dt)
        self._lut_cache[key] = tables
        self._lut_misses += 1
        while len(self._lut_cache) > _LUT_CACHE_MAX:
            self._lut_cache.popitem(last=False)
            self._lut_evictions += 1
        return tables

    def lut_cache_stats(self) -> Dict[str, int]:
        """hits/misses/evictions/entries/bytes for this runner's LUTs."""
        nbytes = sum(lut.memory_bytes()
                     for tables in self._lut_cache.values()
                     for lut in tables)
        return {"hits": self._lut_hits, "misses": self._lut_misses,
                "evictions": self._lut_evictions,
                "entries": len(self._lut_cache), "bytes": nbytes}

    # -- setup --------------------------------------------------------------------

    def make_state(self, n_cells: int, vm_init: Optional[float] = None,
                   perturbation: float = 0.0,
                   rng: Optional[np.random.Generator] = None,
                   param_values=None) -> SimulationState:
        return allocate_state(self.model, self.layout, n_cells,
                              width=self.spec.width, vm_init=vm_init,
                              perturbation=perturbation, rng=rng,
                              param_values=param_values)

    # -- stepping ------------------------------------------------------------------

    def _bind_args(self, state: SimulationState, dt: float) -> list:
        """The prebound compute_step argument list for ``(state, dt)``.

        Rebuilt whenever the state object, dt, or the state-vector
        buffer identity changes (``set_state`` rebinds ``state.sv``, so
        a stale binding would silently step the old buffer).  External
        arrays are mutated in place by the solver and restore paths, so
        their identity is stable and safe to prebind.
        """
        bound = self._bound
        if (bound is not None and bound[0] is state and bound[1] == dt
                and bound[2] == id(state.sv)):
            return bound[3]
        args = [0, state.n_alloc, dt, state.time, state.sv]
        args += [state.externals[ext] for ext in self.model.externals]
        args += [state.params[p] for p in self.model.promoted_params]
        if self.spec.use_lut:
            args += self.luts_for(dt)
        self._bound = (state, dt, id(state.sv), args)
        return args

    def compute_step(self, state: SimulationState, dt: float) -> None:
        """One compute-stage invocation over all cells."""
        args = self._bind_args(state, dt)
        args[3] = state.time
        self.kernel.fn(*args)

    def solver_step(self, state: SimulationState, dt: float,
                    stimulus: Optional[Stimulus] = None) -> None:
        """The stubbed solver stage: explicit membrane potential update.

        dVm/dt = -(Iion + Istim); models that do not write an ionic
        current leave ``Vm`` untouched (the solver has nothing to do).
        """
        if "Vm" not in state.externals or "Iion" not in state.externals:
            return
        if "Iion" not in self.model.outputs:
            return
        istim = stimulus.current(state.time) if stimulus else 0.0
        vm = state.externals["Vm"]
        vm -= dt * (state.externals["Iion"] + istim)

    def run(self, state: SimulationState, n_steps: int, dt: float = 0.01,
            stimulus: Optional[Stimulus] = None,
            record_vm: bool = False, watchdog=None,
            step_hook: Optional[Callable[[SimulationState], None]] = None,
            time_breakdown: bool = False) -> RunResult:
        """Run the two-stage simulation for ``n_steps`` steps of ``dt``.

        With ``watchdog`` set (a ``WatchdogConfig`` or
        ``NumericalWatchdog``), the run is guarded: state is scanned
        for NaN/Inf every ``check_interval`` steps and the configured
        policy (raise / halve_dt / abort_cell_report) applies; the
        result then carries a ``health`` report.

        ``time_breakdown`` additionally clocks every compute-stage call
        so the result carries ``compute_seconds``/``overhead_seconds``.
        The two extra clock reads per step perturb the total, so timed
        benchmarks take their headline number from a plain run and use
        a separate breakdown run only for attribution.
        """
        with _trace.span("run", model=self.model.name,
                         n_cells=state.n_cells, n_steps=n_steps, dt=dt,
                         guarded=watchdog is not None):
            try:
                result = self._run(state, n_steps, dt, stimulus,
                                   record_vm, watchdog, step_hook,
                                   time_breakdown)
            except Exception as err:
                self._ledger_run_row(state, n_steps, dt, result=None,
                                     error=err)
                raise
        self._ledger_run_row(state, n_steps, dt, result=result)
        return result

    @property
    def execution_tier(self) -> str:
        """Which tier of the execution ladder this runner occupies
        (ledger-facing; subclasses override)."""
        return "single"

    def _cache_outcome(self) -> str:
        """How this runner's kernel was obtained: ``artifact`` (AOT
        bundle), ``hit``/``miss`` (persistent kernel cache), or ``off``
        (no cache configured)."""
        if self.artifact_hit:
            return "artifact"
        if self.cache is None:
            return "off"
        return "hit" if self.cache_hit else "miss"

    def _ledger_run_row(self, state: SimulationState, n_steps: int,
                        dt: float, result, error=None) -> None:
        """One ``run`` row in the env-gated ledger (no-op when off)."""
        from ..obs import ledger as _ledger_mod
        if error is not None:
            disposition = f"error:{type(error).__name__}"
            sps = ttfs = None
        else:
            health = result.health
            if health is not None and health.aborted:
                disposition = "aborted"
            elif health is not None and not health.ok:
                disposition = "diverged"
            else:
                disposition = "ok"
            sps = result.steps_per_second
            ttfs = result.time_to_first_step
        _ledger_mod.record_event(
            "run", model=self.model.name, key=self.cache_key,
            cache=self._cache_outcome(), tier=self.execution_tier,
            compile_seconds=getattr(self, "compile_seconds", None),
            time_to_first_step=ttfs, steps_per_second=sps,
            n_steps=n_steps, n_cells=state.n_cells, dt=dt,
            population=self.population, disposition=disposition)

    def _run(self, state: SimulationState, n_steps: int, dt: float,
             stimulus: Optional[Stimulus], record_vm: bool, watchdog,
             step_hook: Optional[Callable[[SimulationState], None]],
             time_breakdown: bool) -> RunResult:
        if watchdog is not None:
            return self._run_guarded(state, n_steps, dt, stimulus,
                                     record_vm, watchdog, step_hook)
        has_vm = "Vm" in state.externals
        trace = np.empty(n_steps) if record_vm and has_vm else None
        compute = self.compute_step
        solver = self.solver_step
        if time_breakdown:
            clock = _time.perf_counter
            vm = state.externals["Vm"] if trace is not None else None
            compute_total = 0.0
            start = clock()
            for step in range(n_steps):
                t0 = clock()
                compute(state, dt)
                compute_total += clock() - t0
                solver(state, dt, stimulus)
                state.time += dt
                state.steps_done += 1
                if trace is not None:
                    trace[step] = vm[0]
                if step_hook is not None:
                    step_hook(state)
            elapsed = clock() - start
            return RunResult(state=state, n_steps=n_steps, dt=dt,
                             elapsed_seconds=elapsed, vm_trace=trace,
                             compute_seconds=compute_total,
                             compile_seconds=getattr(
                                 self, "compile_seconds", None))
        compile_seconds = getattr(self, "compile_seconds", None)
        first_step = None
        start = _time.perf_counter()
        if trace is None and step_hook is None:
            # hot path: the first step is peeled (it binds arguments
            # and builds LUTs, and times the cold-start latency); the
            # remaining loop has no per-step branch checks at all
            if n_steps > 0:
                compute(state, dt)
                solver(state, dt, stimulus)
                state.time += dt
                state.steps_done += 1
                first_step = _time.perf_counter() - start
            for _ in range(n_steps - 1):
                compute(state, dt)
                solver(state, dt, stimulus)
                state.time += dt
                state.steps_done += 1
        else:
            vm = state.externals["Vm"] if trace is not None else None
            for step in range(n_steps):
                compute(state, dt)
                solver(state, dt, stimulus)
                state.time += dt
                state.steps_done += 1
                if step == 0:
                    first_step = _time.perf_counter() - start
                if trace is not None:
                    trace[step] = vm[0]
                if step_hook is not None:
                    step_hook(state)
        elapsed = _time.perf_counter() - start
        ttfs = None if first_step is None or compile_seconds is None \
            else compile_seconds + first_step
        return RunResult(state=state, n_steps=n_steps, dt=dt,
                         elapsed_seconds=elapsed, vm_trace=trace,
                         compile_seconds=compile_seconds,
                         time_to_first_step=ttfs)

    # -- the guarded (watchdog) path ----------------------------------------------

    def _run_guarded(self, state: SimulationState, n_steps: int, dt: float,
                     stimulus: Optional[Stimulus], record_vm: bool,
                     watchdog, step_hook) -> RunResult:
        from ..resilience.diagnostics import DivergenceEvent
        from ..resilience.watchdog import (NumericalDivergenceError,
                                           NumericalWatchdog,
                                           WatchdogConfig)
        if isinstance(watchdog, NumericalWatchdog):
            guard = watchdog
        elif isinstance(watchdog, WatchdogConfig):
            guard = NumericalWatchdog(watchdog)
        else:
            raise TypeError(f"watchdog must be a WatchdogConfig or "
                            f"NumericalWatchdog, got {watchdog!r}")
        config = guard.config
        report = guard.new_report(dt)
        has_vm = "Vm" in state.externals
        trace: Optional[List[float]] = [] if record_vm and has_vm else None
        target_time = state.time + n_steps * dt
        eps = dt * 1e-9
        checkpoint: StateCheckpoint = state.checkpoint()
        trace_mark = 0
        cur_dt = dt
        executed = 0
        start = _time.perf_counter()
        while state.time < target_time - eps:
            segment = 0
            while segment < config.check_interval and \
                    state.time < target_time - eps:
                self.compute_step(state, cur_dt)
                self.solver_step(state, cur_dt, stimulus)
                state.time += cur_dt
                state.steps_done += 1
                executed += 1
                segment += 1
                if trace is not None:
                    trace.append(state.externals["Vm"][0])
                if step_hook is not None:
                    step_hook(state)
            report.checks += 1
            bad = guard.scan(state)
            if not bad:
                checkpoint = state.checkpoint()
                if trace is not None:
                    trace_mark = len(trace)
                continue
            event = DivergenceEvent(step=state.steps_done, time=state.time,
                                    dt=cur_dt, arrays=bad)
            report.events.append(event)
            _metrics.counter("watchdog_nan_events_total",
                             "NaN/Inf detections by the watchdog").inc()
            _trace.instant("watchdog_divergence", step=state.steps_done,
                           dt=cur_dt, arrays=list(bad))
            report.ok = False
            if config.policy == "raise":
                report.final_dt = cur_dt
                raise NumericalDivergenceError(
                    f"non-finite values in {bad} at t={state.time:g} "
                    f"(dt={cur_dt:g})", report)
            if config.policy == "abort_cell_report":
                report.diverged_cells = guard.diverged_cells(state)
                state.restore(checkpoint)
                if trace is not None:
                    del trace[trace_mark:]
                event.action = "aborted"
                report.aborted = True
                break
            # halve_dt: bounded checkpoint-and-retry backoff
            next_dt = cur_dt * config.dt_factor
            if report.retries >= config.max_retries or \
                    next_dt < config.min_dt:
                if config.exhausted_policy == "abort_report":
                    # terminate cleanly at the last healthy checkpoint
                    # with a structured report (diverged cells listed)
                    report.diverged_cells = guard.diverged_cells(state)
                    state.restore(checkpoint)
                    if trace is not None:
                        del trace[trace_mark:]
                    event.action = "aborted"
                    report.aborted = True
                    report.budget_exhausted = True
                    break
                report.final_dt = cur_dt
                raise NumericalDivergenceError(
                    f"divergence persisted after {report.retries} "
                    f"dt-halving retries (dt={cur_dt:g}, arrays={bad})",
                    report)
            state.restore(checkpoint)
            if trace is not None:
                del trace[trace_mark:]
            event.action = "rolled_back"
            report.retries += 1
            _metrics.counter("watchdog_retries_total",
                             "checkpoint rollbacks taken by the "
                             "watchdog").inc()
            cur_dt = next_dt
        elapsed = _time.perf_counter() - start
        report.final_dt = cur_dt
        report.ok = not report.aborted and not guard.scan(state)
        return RunResult(state=state, n_steps=executed, dt=cur_dt,
                         elapsed_seconds=elapsed,
                         vm_trace=np.asarray(trace) if trace is not None
                         else None,
                         health=report)

    def profile_report(self, invocations: int = 0):
        """The per-op hot report for a ``profile=True`` runner.

        Call after one or more :meth:`run` calls; the counters
        accumulate across runs.  Raises ``ValueError`` on a runner that
        was not built with ``profile=True``.
        """
        from ..obs.profiler import KernelProfileReport
        return KernelProfileReport.from_kernel(self.kernel,
                                               model=self.model.name,
                                               invocations=invocations)

    def simulate(self, n_cells: int, n_steps: int, dt: float = 0.01,
                 stimulus: Optional[Stimulus] = None,
                 perturbation: float = 0.0,
                 record_vm: bool = False, watchdog=None) -> RunResult:
        """Allocate, run, return — the one-call benchmark entry point."""
        state = self.make_state(n_cells, perturbation=perturbation)
        return self.run(state, n_steps, dt, stimulus, record_vm,
                        watchdog=watchdog)


@dataclass
class TrajectoryComparison:
    """Result of :func:`compare_trajectories` — truthy when equivalent.

    ``mismatches`` lists the state/external keys that disagree;
    ``nan_keys`` the keys containing NaN in either snapshot (always
    mismatches: two NaN-diverged runs must NOT compare equal).
    """

    equivalent: bool
    mismatches: List[str] = field(default_factory=list)
    nan_keys: List[str] = field(default_factory=list)
    missing_keys: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        return str(self.equivalent)      # drop-in for the old bool return

    def describe(self) -> str:
        if self.equivalent:
            return "trajectories equivalent"
        parts = []
        if self.missing_keys:
            parts.append(f"keys only on one side: "
                         f"{', '.join(self.missing_keys)}")
        if self.mismatches:
            parts.append(f"mismatched: {', '.join(self.mismatches)}")
        if self.nan_keys:
            parts.append(f"NaN present in: {', '.join(self.nan_keys)}")
        return "trajectories differ (" + "; ".join(parts) + ")"


def compare_trajectories(a: SimulationState, b: SimulationState,
                         rtol: float = 1e-9, atol: float = 1e-11
                         ) -> TrajectoryComparison:
    """Compare two runs' states and externals within tolerance.

    Returns a truthy :class:`TrajectoryComparison`.  Any NaN in either
    snapshot makes its key a mismatch — two diverged runs never
    "agree" — and the mismatching keys are reported so the watchdog's
    health report (and ``limpet-bench compare``) can say *what*
    disagreed, not just that something did.
    """
    snap_a, snap_b = a.snapshot(), b.snapshot()
    missing = sorted(set(snap_a) ^ set(snap_b))
    mismatches: List[str] = []
    nan_keys: List[str] = []
    for key in sorted(set(snap_a) & set(snap_b)):
        va, vb = snap_a[key], snap_b[key]
        has_nan = bool((~np.isfinite(va)).any() or (~np.isfinite(vb)).any())
        if has_nan:
            nan_keys.append(key)
            mismatches.append(key)
        elif not np.allclose(va, vb, rtol=rtol, atol=atol):
            mismatches.append(key)
    equivalent = not missing and not mismatches
    return TrajectoryComparison(equivalent=equivalent,
                                mismatches=mismatches, nan_keys=nan_keys,
                                missing_keys=missing)
