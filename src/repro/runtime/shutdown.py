"""Clean SIGINT/SIGTERM shutdown: reap workers, unlink shm, flush obs.

A supervised run interrupted with Ctrl-C (or killed by a job
scheduler's SIGTERM) must not leave orphaned worker processes or
leaked ``/dev/shm`` segments behind, and the observability layer's
in-flight data — open ``$LIMPET_TRACE`` spans, the metrics snapshot —
should land on disk rather than vanish.  This module is the single
place that ordering lives:

1. run every registered cleanup callback (LIFO, exceptions swallowed) —
   the supervised tier registers
   :func:`~repro.runtime.supervised.close_all_runners` here, which
   terminates workers and unlinks shared memory;
2. flush the active tracer (open spans are force-ended and the trace
   written to ``$LIMPET_TRACE``'s path when one is pending);
3. re-deliver the signal's conventional outcome: ``KeyboardInterrupt``
   for SIGINT (the CLI maps it to exit code 130), ``SystemExit(143)``
   for SIGTERM.

Handlers are installed only by explicit :func:`install_signal_handlers`
(the CLI calls it; library embedders keep their own signal policy) and
only on the main thread — elsewhere the call is a recorded no-op.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, List, Optional, Tuple

#: (name, callback) pairs, run LIFO at shutdown
_CLEANUPS: List[Tuple[str, Callable[[], None]]] = []
_LOCK = threading.Lock()
_INSTALLED = False


def register_cleanup(callback: Callable[[], None],
                     name: str = "") -> Callable[[], None]:
    """Register ``callback`` to run at signal shutdown; returns it
    (idempotent: re-registering the same callable is a no-op)."""
    with _LOCK:
        if all(cb is not callback for _, cb in _CLEANUPS):
            _CLEANUPS.append((name or getattr(callback, "__name__",
                                              "cleanup"), callback))
    return callback


def unregister_cleanup(callback: Callable[[], None]) -> bool:
    with _LOCK:
        for i, (_, cb) in enumerate(_CLEANUPS):
            if cb is callback:
                del _CLEANUPS[i]
                return True
    return False


def run_cleanups() -> int:
    """Run every registered cleanup (LIFO); returns how many ran.

    Exceptions are swallowed — shutdown must always make it to the
    flush step, and a failing cleanup cannot block its peers.
    """
    with _LOCK:
        cleanups = list(_CLEANUPS)
    ran = 0
    for _, callback in reversed(cleanups):
        try:
            callback()
            ran += 1
        except Exception:               # pragma: no cover - best effort
            pass
    return ran


#: where the CLI wants the trace written at interrupt (set by the CLI
#: when ``$LIMPET_TRACE`` is active, cleared after its normal write)
_TRACE_PATH: Optional[str] = None


def set_trace_flush_path(path: Optional[str]) -> None:
    global _TRACE_PATH
    _TRACE_PATH = path


def flush_observability() -> None:
    """Force-end open trace spans and write the pending trace file."""
    from ..obs import trace as _trace
    tracer = _trace.active_tracer()
    if tracer is None:
        return
    tracer.flush()
    if _TRACE_PATH:
        try:
            tracer.write(_TRACE_PATH)
        except OSError:                 # pragma: no cover - best effort
            pass


def shutdown(signum: Optional[int] = None) -> None:
    """The full cleanup + flush sequence (idempotent, signal-safe)."""
    run_cleanups()
    flush_observability()


def _handler(signum, frame):            # pragma: no cover - signal path
    shutdown(signum)
    if signum == signal.SIGINT:
        raise KeyboardInterrupt
    raise SystemExit(128 + signum)


def install_signal_handlers() -> bool:
    """Install the SIGINT/SIGTERM shutdown handlers (main thread only).

    Returns True when installed (or already installed), False when the
    caller is not on the main thread.
    """
    global _INSTALLED
    if threading.current_thread() is not threading.main_thread():
        return False
    if _INSTALLED:
        return True
    signal.signal(signal.SIGINT, _handler)
    signal.signal(signal.SIGTERM, _handler)
    _INSTALLED = True
    return True
