"""A direct IR interpreter — the reference execution engine.

Walks the IR op by op, evaluating each through the semantics registered
in the :class:`~repro.ir.core.OpInfo` registry (plus structural
handling for control flow, memory and vector ops).  It is much slower
than the lowered NumPy kernels, which is exactly the point: it shares
*no code path* with the lowering, so agreement between the two engines
is strong evidence that both implement the IR's semantics — the
differential-testing role mlir-cpu-runner plays for MLIR.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..ir.core import Block, IRError, Module, Operation, op_info
from .foreign import registered_foreign
from .lut_runtime import (lut_interp_row, lut_interp_row_spline,
                          lut_interp_row_spline_vec, lut_interp_row_vec)


class InterpreterError(IRError):
    """Raised when an op has no interpretation."""


class Interpreter:
    """Interprets function bodies of one module."""

    def __init__(self, module: Module):
        self.module = module
        self._intrinsics: Dict[str, Callable] = {}
        for name, fn in registered_foreign().items():
            self._intrinsics[f"foreign_{name}"] = fn

    # -- public -----------------------------------------------------------------

    def call(self, function_name: str, *args):
        """Interpret ``function_name`` with concrete argument values."""
        func_op = self.module.lookup_func(function_name)
        if func_op is None:
            raise InterpreterError(f"no function @{function_name}")
        entry = func_op.regions[0].entry
        if len(args) != len(entry.args):
            raise InterpreterError(
                f"@{function_name} takes {len(entry.args)} arguments, "
                f"got {len(args)}")
        env: Dict[int, Any] = {id(block_arg): value
                               for block_arg, value in zip(entry.args,
                                                           args)}
        result = self._run_block(entry, env)
        return result

    # -- structure ---------------------------------------------------------------

    def _run_block(self, block: Block, env: Dict[int, Any]):
        for op in block.ops:
            outcome = self._run_op(op, env)
            if op.name == "func.return":
                return outcome
        return None

    def _run_op(self, op: Operation, env: Dict[int, Any]):
        name = op.name
        values = [env[id(v)] for v in op.operands]

        if name == "func.return":
            if not values:
                return None
            return values[0] if len(values) == 1 else tuple(values)
        if name in ("omp.parallel", "gpu.launch"):
            # one simulated worker interprets the whole region
            body = op.regions[0].entry
            for inner in body.ops:
                if inner.name not in ("omp.terminator", "gpu.terminator"):
                    self._run_op(inner, env)
            return None
        if name == "gpu.global_id":
            env[id(op.result)] = 0
            return None
        if name == "gpu.grid_dim":
            env[id(op.result)] = 1
            return None
        if name == "scf.for":
            self._run_for(op, env, values)
            return None
        if name == "scf.if":
            self._run_if(op, env, values)
            return None
        if name == "scf.yield":
            raise InterpreterError("scf.yield outside its parent")
        if name == "arith.constant":
            env[id(op.result)] = op.attributes["value"]
            return None
        if name == "func.call":
            self._run_call(op, env, values)
            return None
        if self._run_memref_or_vector(op, env, values):
            return None
        info = op_info(name)
        if info is None or info.py_eval is None:
            raise InterpreterError(f"no interpretation for {name}")
        if name in ("arith.cmpf", "arith.cmpi"):
            result = info.py_eval(op, *values)
        else:
            result = info.py_eval(*values)
        env[id(op.result)] = result
        return None

    # -- control flow ---------------------------------------------------------------

    def _run_for(self, op: Operation, env: Dict[int, Any],
                 values: Sequence[Any]) -> None:
        lower, upper, step = (int(v) for v in values[:3])
        carried = list(values[3:])
        body = op.regions[0].entry
        for iv in range(lower, upper, step):
            env[id(body.args[0])] = iv
            for arg, value in zip(body.args[1:], carried):
                env[id(arg)] = value
            for inner in body.ops[:-1]:
                self._run_op(inner, env)
            terminator = body.ops[-1]
            if terminator.name != "scf.yield":
                raise InterpreterError("scf.for body must end in yield")
            carried = [env[id(v)] for v in terminator.operands]
        for result, value in zip(op.results, carried):
            env[id(result)] = value

    def _run_if(self, op: Operation, env: Dict[int, Any],
                values: Sequence[Any]) -> None:
        region = op.regions[0] if values[0] else op.regions[1]
        block = region.entry
        for inner in block.ops[:-1]:
            self._run_op(inner, env)
        terminator = block.ops[-1]
        for result, yielded in zip(op.results, terminator.operands):
            env[id(result)] = env[id(yielded)]

    # -- calls ------------------------------------------------------------------------

    def _run_call(self, op: Operation, env: Dict[int, Any],
                  values: Sequence[Any]) -> None:
        callee = op.attributes["callee"]
        if callee.startswith("LUT_interpRowSpline_n_elements_vec"):
            results = lut_interp_row_spline_vec(values[0], values[1])
        elif callee.startswith("LUT_interpRowSpline"):
            results = lut_interp_row_spline(values[0], float(values[1]))
        elif callee.startswith("LUT_interpRow_n_elements_vec"):
            results = lut_interp_row_vec(values[0], values[1])
        elif callee.startswith("LUT_interpRow"):
            results = lut_interp_row(values[0], float(values[1]))
        elif callee in self._intrinsics:
            out = self._intrinsics[callee](*values)
            results = out if isinstance(out, tuple) else (out,)
        else:
            raise InterpreterError(f"unknown callee @{callee}")
        for result, value in zip(op.results, results):
            env[id(result)] = value

    # -- memory and vectors ------------------------------------------------------------

    def _run_memref_or_vector(self, op: Operation, env: Dict[int, Any],
                              values: Sequence[Any]) -> bool:
        name = op.name
        if name == "memref.load":
            base, *idx = values
            env[id(op.result)] = base[tuple(int(i) for i in idx)] \
                if len(idx) > 1 else base[int(idx[0])]
        elif name == "memref.store":
            value, base, *idx = values
            if len(idx) > 1:
                base[tuple(int(i) for i in idx)] = value
            else:
                base[int(idx[0])] = value
        elif name == "memref.alloc":
            shape = tuple(int(env[id(v)]) if d is None else d
                          for d, v in zip(op.result.type.shape,
                                          list(op.operands) + [None]))
            env[id(op.result)] = np.zeros(shape, dtype=np.float64)
        elif name in ("memref.cast",):
            env[id(op.result)] = values[0]
        elif name == "memref.view":
            env[id(op.result)] = values[0][int(values[1]):]
        elif name == "memref.dim":
            env[id(op.result)] = values[0].shape[
                op.attributes.get("index", 0)]
        elif name == "vector.broadcast":
            width = op.result.type.width
            env[id(op.result)] = np.full(width, values[0])
        elif name == "vector.step":
            env[id(op.result)] = np.arange(op.result.type.width)
        elif name == "vector.load":
            base, *idx = values
            start = int(idx[0])
            env[id(op.result)] = base[start:start
                                      + op.result.type.width].copy()
        elif name == "vector.store":
            value, base, *idx = values
            start = int(idx[0])
            base[start:start + len(value)] = value
        elif name == "vector.gather":
            base, index_vec = values[0], np.asarray(values[1],
                                                    dtype=np.int64)
            if len(values) == 4:
                mask, pass_thru = values[2], values[3]
                safe = np.where(mask, index_vec, 0)
                env[id(op.result)] = np.where(mask, base[safe], pass_thru)
            else:
                env[id(op.result)] = base[index_vec]
        elif name == "vector.scatter":
            value, base = values[0], values[1]
            index_vec = np.asarray(values[2], dtype=np.int64)
            if len(values) == 4:
                mask = np.asarray(values[3], dtype=bool)
                base[index_vec[mask]] = np.asarray(value)[mask]
            else:
                base[index_vec] = value
        elif name == "vector.extract":
            env[id(op.result)] = values[0][op.attributes["position"]]
        elif name == "vector.insert":
            scalar, vec = values
            out = np.array(vec, dtype=np.float64, copy=True)
            out[op.attributes["position"]] = scalar
            env[id(op.result)] = out
        else:
            return False
        return True


def interpret_kernel(generated, state, luts, dt: float,
                     time: float = 0.0) -> None:
    """Run one compute step of a GeneratedKernel through the interpreter.

    Mutates ``state`` in place, like the compiled kernel would.
    """
    interp = Interpreter(generated.module)
    args: List[Any] = [0, state.n_alloc, dt, time, state.sv]
    args += [state.externals[ext]
             for ext in generated.spec.model.externals]
    if generated.spec.use_lut:
        args += list(luts)
    interp.call(generated.spec.function_name, *args)
