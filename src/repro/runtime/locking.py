"""Advisory file locking for cross-process cache and DB mutation.

The kernel cache (``repro.runtime.kernel_cache``) and the tuning DB
(``repro.tuning.database``) are shared by every process of a sweep —
and, with the supervised multiprocess tier, by worker processes too.
Their writes were already *atomic* (tmp file + ``os.replace``), which
keeps every reader seeing a valid file, but atomicity alone cannot
stop two concurrent read-modify-write cycles from dropping each
other's updates (last writer wins).  This module adds the missing
piece: an advisory ``fcntl.flock`` around each mutation, so concurrent
writers serialize instead of interleaving.

Design constraints:

* **advisory, never mandatory** — a reader that ignores the lock still
  sees a valid file thanks to the atomic-replace discipline;
* **availability over strictness** — when the lock cannot be taken
  (no ``fcntl`` on this platform, unwritable lock path, or a holder
  that outlives ``timeout``), the context still yields and the caller
  proceeds unlocked; callers that need to know receive the boolean;
* **crash-safe by construction** — ``flock`` locks die with their
  process, so a killed worker can never leave the cache wedged (the
  exact property a supervised fleet needs from its shared tiers).
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import time
from typing import Iterator, Union

try:                                    # POSIX only; gate, don't require
    import fcntl as _fcntl
except ImportError:                     # pragma: no cover - non-POSIX
    _fcntl = None

#: default seconds to wait for a held lock before proceeding unlocked
DEFAULT_LOCK_TIMEOUT = 10.0

#: seconds between lock-acquisition attempts
_POLL_INTERVAL = 0.005


def locking_available() -> bool:
    """True when this platform supports ``fcntl`` advisory locks."""
    return _fcntl is not None


@contextlib.contextmanager
def file_lock(path: Union[str, pathlib.Path],
              timeout: float = DEFAULT_LOCK_TIMEOUT,
              shared: bool = False) -> Iterator[bool]:
    """Hold an advisory lock on ``path`` for the duration of the block.

    Yields True when the lock was acquired, False when the caller is
    proceeding unlocked (unsupported platform, unwritable lock file, or
    acquisition timed out).  The lock file itself carries no data — it
    exists only to be flocked — and is deliberately left in place
    (unlinking a lock file open in another process reintroduces the
    race the lock exists to prevent).
    """
    if _fcntl is None:                  # pragma: no cover - non-POSIX
        yield False
        return
    path = pathlib.Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
    except OSError:
        yield False
        return
    acquired = False
    try:
        flag = _fcntl.LOCK_SH if shared else _fcntl.LOCK_EX
        deadline = time.monotonic() + timeout
        while True:
            try:
                _fcntl.flock(fd, flag | _fcntl.LOCK_NB)
                acquired = True
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(_POLL_INTERVAL)
        yield acquired
    finally:
        # closing the descriptor releases the flock atomically
        os.close(fd)
