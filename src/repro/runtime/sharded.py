"""Real multi-thread execution: shard cells across a thread pool.

The generated kernels wrap their cell loop in ``omp.parallel`` —
openCARP's compute stage is embarrassingly parallel over cells — but
until this layer that region was merely simulated (executed inline on
one thread).  :class:`ShardedRunner` honors it for real: the allocated
cell range ``[0, n_alloc)`` is split into per-thread, width-aligned
contiguous shards and each compute step submits one kernel call per
shard to a :class:`~concurrent.futures.ThreadPoolExecutor`.

Why threads work here despite the GIL: the lowered vector kernels
spend their time inside NumPy ufunc inner loops, which release the
GIL, so shards genuinely overlap (the paper's Figs. 3–4 scaling,
reproduced with wall clocks rather than a model).

Correctness invariants:

* shards are disjoint cell ranges and every model is cell-local, so
  sharded trajectories are **bitwise identical** for 1 vs N shards;
* shard bounds are multiples of the SIMD width so vector kernels see
  whole blocks;
* the buffer arena is refused — arena slots are per-kernel scratch and
  would alias across concurrently running shards.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from ..codegen.common import GeneratedKernel
from ..ir.core import Module, Operation
from ..obs import metrics as _metrics
from .executor import KernelRunner
from .state import SimulationState


def _module_has_omp(module: Module, sym_name: str) -> bool:
    """True when the kernel function contains an ``omp.parallel`` region."""

    def walk(op: Operation) -> bool:
        if op.name == "omp.parallel":
            return True
        return any(walk(inner) for region in op.regions
                   for block in region.blocks for inner in block.ops)

    for op in module.ops:
        if op.name == "func.func" and \
                op.attributes.get("sym_name") == sym_name:
            return walk(op)
    return False


def shard_bounds(n_alloc: int, n_shards: int, width: int
                 ) -> List[Tuple[int, int]]:
    """Split ``[0, n_alloc)`` into ≤ ``n_shards`` width-aligned ranges.

    Bounds land on multiples of ``width`` (vector kernels consume whole
    blocks); trailing shards may be empty and are dropped, so fewer
    shards than requested can come back for small cell counts.
    """
    if width <= 0:
        width = 1
    n_blocks = (n_alloc + width - 1) // width
    n_shards = max(1, min(n_shards, n_blocks if n_blocks else 1))
    base, extra = divmod(n_blocks, n_shards)
    bounds: List[Tuple[int, int]] = []
    block = 0
    for i in range(n_shards):
        take = base + (1 if i < extra else 0)
        start = block * width
        block += take
        end = min(block * width, n_alloc)
        if end > start:
            bounds.append((start, end))
    return bounds


class ShardedRunner(KernelRunner):
    """A :class:`KernelRunner` that executes compute steps on N threads.

    ``n_threads`` defaults to the machine's CPU count.  Use as a
    context manager (or call :meth:`close`) to shut the pool down
    promptly; an unclosed pool is reclaimed at interpreter exit.
    """

    def __init__(self, generated: GeneratedKernel, n_threads: int = 0,
                 require_omp: bool = False,
                 shard_plan: Optional[List[Tuple[int, int]]] = None,
                 **kwargs):
        if kwargs.get("arena"):
            raise ValueError("ShardedRunner cannot use the buffer arena: "
                             "arena slots would alias across shards")
        kwargs["arena"] = False
        super().__init__(generated, **kwargs)
        self.n_threads = n_threads or (os.cpu_count() or 1)
        # an explicit decomposition (e.g. the population layer sharding
        # along the instance axis) overrides the default cell split
        if shard_plan is not None:
            width = generated.spec.width
            for start, end in shard_plan:
                if start % width or (end % width and end != shard_plan[-1][1]):
                    raise ValueError(
                        f"shard_plan bound ({start}, {end}) is not "
                        f"aligned to the kernel width {width}")
                if end <= start:
                    raise ValueError(
                        f"shard_plan bound ({start}, {end}) is empty")
        self.shard_plan = shard_plan
        from ..codegen.layout import LayoutKind
        if self.layout.kind is LayoutKind.SOA and self.n_threads > 1:
            raise ValueError(
                "ShardedRunner cannot shard SoA kernels: their slot "
                "stride is the `end` argument, so they are only valid "
                "over the whole allocation (end == n_alloc)")
        if generated.module is None:
            # an AOT ArtifactKernel: no module to walk — the bundle
            # entry recorded whether the kernel was omp-marked
            self.parallel_marked = bool(
                getattr(generated, "omp_parallel", False))
        else:
            self.parallel_marked = _module_has_omp(
                generated.module, generated.spec.function_name)
        if require_omp and not self.parallel_marked:
            raise ValueError(
                f"kernel {generated.spec.function_name} has no "
                f"omp.parallel region to honor")
        self._pool: Optional[ThreadPoolExecutor] = None
        self._shards: Optional[Tuple[int, List[Tuple[int, int]]]] = None

    @property
    def execution_tier(self) -> str:
        return "threads"

    # -- pool lifecycle ------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_threads,
                thread_name_prefix="limpet-shard")
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sharded compute stage -----------------------------------------------------

    def shards_for(self, state: SimulationState) -> List[Tuple[int, int]]:
        cached = self._shards
        if cached is not None and cached[0] == state.n_alloc:
            return cached[1]
        if self.shard_plan is not None:
            if self.shard_plan[-1][1] != state.n_alloc or \
                    self.shard_plan[0][0] != 0:
                raise ValueError(
                    f"shard_plan covers "
                    f"[{self.shard_plan[0][0]}, {self.shard_plan[-1][1]})"
                    f" but the allocation is [0, {state.n_alloc})")
            bounds = list(self.shard_plan)
        else:
            bounds = shard_bounds(state.n_alloc, self.n_threads,
                                  self.spec.width)
        self._shards = (state.n_alloc, bounds)
        sizes = [end - start for start, end in bounds]
        if sizes:
            mean = sum(sizes) / len(sizes)
            _metrics.gauge("shard_count",
                           "shards of the latest decomposition"
                           ).set(len(bounds))
            _metrics.gauge("shard_imbalance_ratio",
                           "largest shard / mean shard size"
                           ).set(max(sizes) / mean if mean else 1.0)
        return bounds

    def compute_step(self, state: SimulationState, dt: float) -> None:
        """One compute-stage invocation, fanned out over cell shards."""
        shards = self.shards_for(state)
        args = self._bind_args(state, dt)
        args[3] = state.time
        if len(shards) <= 1:
            self.kernel.fn(*args)
            return
        fn = self.kernel.fn
        tail = args[2:]
        pool = self._ensure_pool()
        futures = [pool.submit(fn, start, end, *tail)
                   for start, end in shards]
        for future in futures:
            future.result()     # propagate the first kernel exception
