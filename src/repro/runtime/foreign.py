"""Foreign-function registry: the C-side helpers some models call.

openCARP ionic models may call external C functions (experiment
protocols, tabulated measurement data, coupling hooks).  The limpet
frontend and the baseline C++ backend pass such calls through; the
MLIR backend cannot vectorize an opaque call, which is (in this
reproduction) why 4 of the 47 shipped models fall outside limpetMLIR's
supported set — "43 out of 47 ionic models ... are supported" (§3.3.2).

Foreign implementations registered here are NumPy-compatible so the
scalar baseline engine can execute them per cell.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

_REGISTRY: Dict[str, Callable] = {}


def register_foreign(name: str, fn: Callable) -> None:
    """Register (or replace) a foreign function implementation."""
    _REGISTRY[name] = fn


def foreign_function(name: str) -> Callable:
    """Look up a foreign implementation; raises KeyError if missing."""
    if name not in _REGISTRY:
        raise KeyError(
            f"foreign function {name!r} is not registered; use "
            f"repro.runtime.foreign.register_foreign")
    return _REGISTRY[name]


def registered_foreign() -> Dict[str, Callable]:
    """A copy of the registry (lowering injects these into kernels)."""
    return dict(_REGISTRY)


# -- default implementations used by the unsupported-model quartet ---------


def _sac_tension(stretch):
    """Measured stretch-tension relation (piecewise-smooth saturation)."""
    with np.errstate(all="ignore"):
        s = np.maximum(stretch - 1.0, 0.0)
        return 4.5 * s / (0.08 + s)


def _ach_release(t_activity):
    """Vagal acetylcholine release protocol (experiment-driven)."""
    with np.errstate(all="ignore"):
        return 0.1 + 0.05 * np.sin(0.002 * t_activity)


def _fibro_coupling(vm, g_gap):
    """Fibroblast-myocyte gap-junction current from tabulated data."""
    with np.errstate(all="ignore"):
        return g_gap * (vm + 22.5) / (1.0 + np.exp(-(vm + 40.0) / 15.0))


def _afterload_pressure(volume):
    """Windkessel afterload pressure (external circulation model)."""
    with np.errstate(all="ignore"):
        return 10.0 + 120.0 * np.maximum(volume, 0.0) ** 1.2 / \
            (1.0 + np.maximum(volume, 0.0) ** 1.2)


register_foreign("sac_tension", _sac_tension)
register_foreign("ach_release", _ach_release)
register_foreign("fibro_coupling", _fibro_coupling)
register_foreign("afterload_pressure", _afterload_pressure)
