"""Runtime side of multimodel support: parent/offspring simulations.

A :class:`HierarchicalSimulation` couples one *parent* ionic model
(e.g. a ventricular membrane model) with any number of *plugin* models
(e.g. a stretch-activated channel, an IK,ACh plugin, an active-stress
model) whose cells read the parent's ``Vm`` and accumulate their
currents into the parent's ``Iion`` — openCARP's plugin architecture
(§3.3.2 "Multimodel support").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..codegen import generate_limpet_mlir
from ..codegen.multimodel import generate_plugin
from ..frontend.model import IonicModel
from ..ir.passes import default_pipeline
from ..ir.verifier import verify_module
from .executor import KernelRunner, Stimulus
from .lowering import lower_function
from .lut_runtime import build_all_luts
from .state import SimulationState, allocate_state


@dataclass
class PluginInstance:
    """One plugin model attached to (a subset of) the parent's cells."""

    model: IonicModel
    kernel: object                 # CompiledKernel
    state: SimulationState
    parent_map: np.ndarray         # offspring cell -> parent cell (or -1)
    luts: List
    use_lut: bool


class HierarchicalSimulation:
    """Parent model + plugins sharing external variables."""

    def __init__(self, parent_model: IonicModel, n_cells: int,
                 width: int = 8, perturbation: float = 0.0):
        self.width = width
        self.parent = KernelRunner(generate_limpet_mlir(parent_model, width))
        self.state = self.parent.make_state(n_cells,
                                            perturbation=perturbation)
        self.plugins: List[PluginInstance] = []
        self.time = 0.0

    # -- construction -----------------------------------------------------------

    def attach_plugin(self, model: IonicModel,
                      parent_map: Sequence[int],
                      use_lut: bool = True) -> PluginInstance:
        """Attach ``model`` with one offspring cell per map entry.

        ``parent_map[i]`` is the parent cell offspring i couples to, or
        -1 for an uncoupled (standalone) offspring cell.
        """
        parent_map = np.asarray(parent_map, dtype=np.int64)
        if parent_map.ndim != 1:
            raise ValueError("parent_map must be one-dimensional")
        if (parent_map >= self.state.n_cells).any():
            raise ValueError("parent_map points past the parent's cells")
        generated = generate_plugin(model, self.width, use_lut=use_lut)
        default_pipeline(verify_each=False).run(generated.module,
                                                fixed_point=True)
        verify_module(generated.module)
        kernel = lower_function(generated.module,
                                generated.spec.function_name)
        state = allocate_state(model, generated.layout, len(parent_map),
                               width=self.width)
        padded_map = np.full(state.n_alloc, -1, dtype=np.int64)
        padded_map[:len(parent_map)] = parent_map
        plugin = PluginInstance(model=model, kernel=kernel, state=state,
                                parent_map=padded_map, luts=[],
                                use_lut=use_lut)
        self.plugins.append(plugin)
        return plugin

    # -- stepping ----------------------------------------------------------------

    def _plugin_luts(self, plugin: PluginInstance, dt: float) -> List:
        if not plugin.use_lut:
            return []
        if not plugin.luts:
            plugin.luts = build_all_luts(plugin.model, dt=dt)
        return plugin.luts

    def step(self, dt: float = 0.01,
             stimulus: Optional[Stimulus] = None) -> None:
        """One coupled step: parent compute, plugins accumulate, solve."""
        self.parent.compute_step(self.state, dt)
        for plugin in self.plugins:
            ps = plugin.state
            args = [0, ps.n_alloc, dt, self.time, ps.sv]
            args += [ps.externals[ext] for ext in plugin.model.externals]
            args += self._plugin_luts(plugin, dt)
            args.append(plugin.parent_map)
            for ext in plugin.model.externals:
                parent_array = self.state.externals.get(ext)
                if parent_array is None:
                    # the parent does not expose this external: plugins
                    # fall through to their local storage for it
                    parent_array = ps.externals[ext]
                args.append(parent_array)
            plugin.kernel.fn(*args)
        self.parent.solver_step(self.state, dt, stimulus)
        self.time += dt
        self.state.time = self.time
        self.state.steps_done += 1

    def run(self, n_steps: int, dt: float = 0.01,
            stimulus: Optional[Stimulus] = None) -> None:
        for _ in range(n_steps):
            self.step(dt, stimulus)

    # -- views -------------------------------------------------------------------

    def parent_vm(self) -> np.ndarray:
        return self.state.external("Vm")

    def plugin_state(self, idx: int, name: str) -> np.ndarray:
        return self.plugins[idx].state.state_of(name)
