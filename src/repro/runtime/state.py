"""Simulation state: cell state buffers and external-variable arrays.

The shared read-only values (parameters) were folded at compile time;
what remains at runtime is the per-cell private state (in one of the
§3.4.1 layouts) and the external arrays (``Vm``, ``Iion``) that couple
the compute stage to the solver stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..codegen.layout import Layout, pack_state, unpack_state
from ..frontend.model import IonicModel


@dataclass
class StateCheckpoint:
    """A deep copy of everything :meth:`SimulationState.restore` needs.

    Taken by the numerical watchdog at every healthy scan so a diverged
    segment can be rolled back and retried with a smaller dt.
    """

    sv: np.ndarray
    externals: Dict[str, np.ndarray]
    time: float
    steps_done: int


@dataclass
class SimulationState:
    """All mutable arrays of one simulation."""

    model: IonicModel
    layout: Layout
    n_cells: int
    n_alloc: int                    # padded to a whole number of blocks
    sv: np.ndarray                  # flat state buffer, layout-encoded
    externals: Dict[str, np.ndarray]
    time: float = 0.0
    steps_done: int = 0
    #: per-cell arrays for the model's promoted parameters (population
    #: batching).  Read-only at runtime: never checkpointed, restored
    #: or moved to shared memory — forked workers inherit them.
    params: Dict[str, np.ndarray] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.params is None:
            self.params = {}

    # -- views -------------------------------------------------------------------

    def state_matrix(self) -> np.ndarray:
        """(n_cells, n_states) copy of the current state."""
        return unpack_state(self.sv, self.layout, self.n_alloc)[:self.n_cells]

    def state_of(self, name: str) -> np.ndarray:
        """Current values of one state variable across cells."""
        slot = self.model.states.index(name)
        return self.state_matrix()[:, slot]

    def set_state(self, values: np.ndarray) -> None:
        """Overwrite the state from a (n_cells, n_states) matrix."""
        full = np.empty((self.n_alloc, len(self.model.states)))
        full[:self.n_cells] = values
        # padding lanes replicate the last real cell so they stay finite
        full[self.n_cells:] = values[-1] if len(values) else 0.0
        # in place: buffer identity is load-bearing — shared-memory
        # views held by supervised workers and prebound kernel args
        # must keep seeing this state
        self.sv[...] = pack_state(full, self.layout)

    def external(self, name: str) -> np.ndarray:
        return self.externals[name][:self.n_cells]

    # -- checkpoint/restore --------------------------------------------------------

    def checkpoint(self) -> StateCheckpoint:
        """Deep-copy the mutable arrays + clock for later :meth:`restore`."""
        return StateCheckpoint(
            sv=self.sv.copy(),
            externals={k: v.copy() for k, v in self.externals.items()},
            time=self.time, steps_done=self.steps_done)

    def restore(self, checkpoint: StateCheckpoint) -> None:
        """Roll back to ``checkpoint`` in place (buffers keep identity,
        so a compiled kernel holding no stale references is required —
        the runner passes arrays per call, which satisfies that)."""
        self.sv[...] = checkpoint.sv
        for name, saved in checkpoint.externals.items():
            self.externals[name][...] = saved
        self.time = checkpoint.time
        self.steps_done = checkpoint.steps_done

    def snapshot(self) -> Dict[str, np.ndarray]:
        """State + externals as plain arrays (for comparisons/tests)."""
        result = {name: self.state_of(name).copy()
                  for name in self.model.states}
        for name, array in self.externals.items():
            result[name] = array[:self.n_cells].copy()
        return result


def allocate_state(model: IonicModel, layout: Layout, n_cells: int,
                   width: int = 1, vm_init: Optional[float] = None,
                   rng: Optional[np.random.Generator] = None,
                   perturbation: float = 0.0,
                   param_values: Optional[Dict[str, object]] = None
                   ) -> SimulationState:
    """Allocate and initialize state per the model's ``_init`` values.

    ``width`` is the kernel's SIMD width: the allocation is padded so
    the vector cell loop never runs past the buffers (padding lanes
    replicate the last real cell).  ``perturbation`` adds reproducible
    per-cell jitter (drawn per real cell, independent of padding or
    layout, so runs under different backends start identically) —
    useful for exercising LUT interpolation across rows.

    ``param_values`` supplies per-cell values for the model's promoted
    parameters: scalar (broadcast) or a length-``n_cells`` array
    (padding lanes replicate the last real cell).  Promoted params not
    named default to the model's declared value.
    """
    padded = -(-n_cells // max(width, 1)) * max(width, 1)
    n_alloc = layout.padded_cells(padded)
    n_states = len(model.states)
    values = np.empty((n_alloc, n_states), dtype=np.float64)
    for slot, state in enumerate(model.states):
        values[:, slot] = model.init_values[state]
    if perturbation and n_states:
        rng = rng or np.random.default_rng(0)
        jitter = rng.uniform(-perturbation, perturbation,
                             (n_cells, n_states))
        # relative jitter only: sign-preserving, so concentrations and
        # gate fractions keep their physical ranges
        values[:n_cells] *= 1.0 + jitter
        values[n_cells:] = values[n_cells - 1]
    sv = pack_state(values, layout)
    externals: Dict[str, np.ndarray] = {}
    vm_rng = np.random.default_rng(1) if rng is None else rng
    for name in model.externals:
        default = model.external_init.get(name, 0.0)
        if name == "Vm" and vm_init is not None:
            default = vm_init
        array = np.full(n_alloc, default, dtype=np.float64)
        if perturbation and name == "Vm":
            array[:n_cells] += (vm_rng.uniform(-1.0, 1.0, n_cells)
                                * perturbation * 10.0)
            array[n_cells:] = array[n_cells - 1]
        externals[name] = array
    params: Dict[str, np.ndarray] = {}
    param_values = param_values or {}
    unknown = set(param_values) - set(model.promoted_params)
    if unknown:
        raise ValueError(
            f"param_values for non-promoted parameter(s): "
            f"{sorted(unknown)} (promoted: "
            f"{list(model.promoted_params) or '(none)'})")
    for pname in model.promoted_params:
        given = param_values.get(pname, model.params[pname])
        array = np.empty(n_alloc, dtype=np.float64)
        values_p = np.asarray(given, dtype=np.float64)
        if values_p.ndim == 0:
            array[:] = values_p
        else:
            if values_p.shape != (n_cells,):
                raise ValueError(
                    f"param {pname!r}: expected a scalar or shape "
                    f"({n_cells},), got {values_p.shape}")
            array[:n_cells] = values_p
            array[n_cells:] = values_p[-1] if n_cells else 0.0
        params[pname] = array
    return SimulationState(model=model, layout=layout, n_cells=n_cells,
                           n_alloc=n_alloc, sv=sv, externals=externals,
                           params=params)
