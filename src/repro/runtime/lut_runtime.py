"""Runtime lookup tables and their interpolation kernels (§3.4.2).

A :class:`LUTData` tabulates every column of a frontend
:class:`~repro.frontend.model.LUTTable` over its declared grid.  At
simulation time a row is reconstructed by linear interpolation:

* :func:`lut_interp_row` — the scalar routine the baseline C code calls
  per cell (``LUT_interpRow`` in Listing 2);
* :func:`lut_interp_row_vec` — the fully vectorized version limpetMLIR
  emits (``LUT_interpRow_n_elements_vec`` in Listing 3), here one NumPy
  pass over all lanes.

Out-of-range keys clamp to the table ends, matching openCARP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..frontend.model import LUTTable
from .expr_eval import eval_expr


@dataclass
class LUTData:
    """A tabulated lookup table: ``rows[i, c]`` = column c at key lo+i*step."""

    var: str
    lo: float
    step: float
    rows: np.ndarray              # shape (n_rows, n_cols), float64
    column_names: List[str]

    @property
    def n_rows(self) -> int:
        return int(self.rows.shape[0])

    @property
    def n_cols(self) -> int:
        return int(self.rows.shape[1])

    @property
    def hi(self) -> float:
        return self.lo + (self.n_rows - 1) * self.step

    def memory_bytes(self) -> int:
        return self.rows.nbytes


def build_lut(table: LUTTable, constants: Dict[str, float],
              dt: float = 0.01) -> LUTData:
    """Tabulate all columns of ``table`` over its declared grid.

    ``constants`` carries parameters and preprocessor-folded values the
    column expressions may reference.  Columns may reference earlier
    columns (evaluation order is the plan order).  ``dt`` resolves the
    synthetic Rush–Larsen decay columns; tables must be rebuilt when
    the time step changes, exactly as in openCARP.
    """
    spec = table.spec
    grid = spec.lo + spec.step * np.arange(spec.n_rows, dtype=np.float64)
    env: Dict[str, object] = dict(constants)
    env[table.var] = grid
    env.setdefault("dt", dt)
    columns = []
    for comp in table.columns:
        value = eval_expr(comp.expr, env)
        value = np.broadcast_to(np.asarray(value, dtype=np.float64),
                                grid.shape).copy()
        env[comp.target] = value
        columns.append(value)
    rows = np.stack(columns, axis=1)
    return LUTData(table.var, spec.lo, spec.step, rows,
                   [c.target for c in table.columns])


def lut_interp_row(lut: LUTData, x: float) -> Tuple[float, ...]:
    """Scalar linear interpolation of one row (baseline code path)."""
    position = (x - lut.lo) / lut.step
    if position <= 0.0:
        idx, frac = 0, 0.0
    elif position >= lut.n_rows - 1:
        idx, frac = lut.n_rows - 2, 1.0
    elif position != position:          # NaN key -> NaN row
        idx, frac = 0, float("nan")
    else:
        idx = int(position)
        frac = position - idx
    low = lut.rows[idx]
    high = lut.rows[idx + 1]
    return tuple(low[c] + frac * (high[c] - low[c])
                 for c in range(lut.n_cols))


def lut_interp_row_vec(lut: LUTData, x: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Vectorized row interpolation — one lane per cell (Listing 3)."""
    position = (np.asarray(x, dtype=np.float64) - lut.lo) / lut.step
    position = np.clip(position, 0.0, float(lut.n_rows - 1))
    with np.errstate(invalid="ignore"):
        safe = np.where(np.isnan(position), 0.0, position)
        idx = np.minimum(safe.astype(np.int64), lut.n_rows - 2)
        frac = position - idx           # NaN keys propagate NaN rows
    low = lut.rows[idx]           # (n, n_cols) gather
    high = lut.rows[idx + 1]
    row = low + frac[..., None] * (high - low)
    return tuple(row[..., c] for c in range(lut.n_cols))


def build_all_luts(model, dt: float = 0.01,
                   extra_constants: Dict[str, float] = None
                   ) -> List[LUTData]:
    """Tabulate every LUT of an analyzed model for time step ``dt``."""
    constants = dict(model.params)
    constants.update(model.folded_constants)
    constants.update(extra_constants or {})
    return [build_lut(table, constants, dt) for table in model.lut_tables]


# ---------------------------------------------------------------------------
# Spline interpolation (paper §7: "an efficient spline interpolation
# method to replace or complement in some cases the currently used
# linear interpolation")
# ---------------------------------------------------------------------------


def _spline_indices(lut: "LUTData", position):
    """Bracketing index + parameter for Catmull-Rom evaluation."""
    position = np.clip(position, 0.0, float(lut.n_rows - 1))
    with np.errstate(invalid="ignore"):
        safe = np.where(np.isnan(position), 0.0, position)
        idx = np.minimum(safe.astype(np.int64), lut.n_rows - 2)
        t = position - idx
    return idx, t


def lut_interp_row_spline_vec(lut: LUTData, x: np.ndarray):
    """Catmull-Rom cubic interpolation of one row, vectorized.

    Uses the two bracketing rows plus one neighbor on each side
    (clamped at the table ends).  Exact at grid points like the linear
    interpolation, but with O(h^4) error between them — so tables can
    use much coarser steps for the same accuracy (the §7 motivation).
    """
    position = (np.asarray(x, dtype=np.float64) - lut.lo) / lut.step
    idx, t = _spline_indices(lut, position)
    i0 = np.maximum(idx - 1, 0)
    i3 = np.minimum(idx + 2, lut.n_rows - 1)
    p0, p1 = lut.rows[i0], lut.rows[idx]
    p2, p3 = lut.rows[idx + 1], lut.rows[i3]
    t = t[..., None]
    # Catmull-Rom basis (tension 0.5)
    a = 2.0 * p1
    b = p2 - p0
    c = 2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3
    d = -p0 + 3.0 * p1 - 3.0 * p2 + p3
    row = 0.5 * (a + b * t + c * t * t + d * t * t * t)
    return tuple(row[..., col] for col in range(lut.n_cols))


def lut_interp_row_spline(lut: LUTData, x: float):
    """Scalar Catmull-Rom interpolation (baseline spline mode)."""
    result = lut_interp_row_spline_vec(lut, np.float64(x))
    return tuple(float(v) for v in result)
