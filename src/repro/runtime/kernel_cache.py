"""Persistent kernel cache: content-addressed lowered sources on disk.

Constructing a :class:`~repro.runtime.executor.KernelRunner` normally
pays for a full fixed-point pass pipeline, module verification, and
lowering — per kernel, on every process.  For sweep workloads over the
47-model suite that construction cost dominates short runs, so this
module caches the *product* of that work (the lowered Python source
plus its metadata) under a content address combining:

* the generated module's printed IR (pre-pipeline) — any change to the
  model source or code generator changes the text;
* the kernel spec (backend mode, width, layout, LUT options);
* the pass pipeline fingerprint
  (:meth:`~repro.ir.passes.pass_manager.PassManager.fingerprint`);
* the lowering version (:data:`~repro.runtime.lowering.LOWERING_VERSION`)
  and the fuse/arena lowering flags.

A hit skips passes, verification and lowering entirely: the cached
source is exec'd directly.  Hit/miss/eviction counters persist in the
cache directory (``stats.json``) so ``limpet-bench cache-stats`` can
report across processes.

Crash safety (the cache is shared by every process of a sweep, and by
supervised worker processes):

* every entry carries a **sha256 checksum** over its payload, verified
  on read — a torn or tampered entry is **quarantined** (moved to
  ``<root>/quarantine/``, recorded as a
  :class:`~repro.resilience.diagnostics.Diagnostic` and a
  ``kernel_cache_corrupt_total`` metric) instead of poisoning every
  later consumer, then treated as a miss and rebuilt;
* mutations (store, evict, stats bumps) run under an **advisory
  ``flock``** (:mod:`repro.runtime.locking`) so concurrent writers
  serialize — stats counts are exact, not best-effort;
* an **unwritable-but-readable cache root** (a read-only
  ``$LIMPET_CACHE_DIR`` mount, the shared AOT artifact tier) degrades
  to **read-only operation**: disk hits keep being served with no LRU
  touches, no ``stats.json`` bumps and no lock attempts, while stores
  land in an in-memory overlay for this process only;
* a cache root that cannot even be read (a path under a file, a full
  disk at mkdir time) degrades further to an in-memory dict — in both
  cases with a logged Diagnostic instead of raising at first write.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..ir.printer import print_module
from ..obs import metrics as _metrics
from .locking import file_lock

#: bump to invalidate every existing cache entry at once
#: (v2: entries carry a payload checksum, verified on read)
CACHE_FORMAT_VERSION = 2

_ENV_DIR = "LIMPET_CACHE_DIR"
_ENV_DISABLE = "LIMPET_KERNEL_CACHE"

#: subdirectory corrupt entries are moved into (never scanned by LRU)
QUARANTINE_DIR = "quarantine"


@dataclass
class CacheStats:
    """Counters for one cache (in-memory view; persisted to disk)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


def kernel_cache_key(generated, pipeline_fingerprint: str,
                     fuse: bool, arena: bool, verify: bool,
                     population: str = "") -> str:
    """Content address for one (module, spec, pipeline, lowering) point.

    ``generated`` is a :class:`~repro.codegen.common.GeneratedKernel`
    whose module has NOT been run through the pipeline yet — the
    pipeline's effect is captured by its fingerprint instead, so the
    key can be computed before any optimization work happens.

    ``population`` is the population-shape fingerprint (promoted
    parameter names + instance count, never the swept values): sweeps
    of the same shape share one compiled kernel.  The line is only
    added when set, so pre-population keys are unchanged.
    """
    from .lowering import LOWERING_VERSION
    spec = generated.spec
    lines = [
        f"format={CACHE_FORMAT_VERSION}",
        f"model={spec.model.name}",
        f"mode={spec.mode.value}",
        f"width={spec.width}",
        f"layout={generated.layout}",
        f"use_lut={spec.use_lut}",
        f"lut_interpolation={spec.lut_interpolation}",
        f"function={spec.function_name}",
        f"pipeline={pipeline_fingerprint}",
        f"lowering=v{LOWERING_VERSION};fuse={fuse};arena={arena}",
        f"verify={verify}",
    ]
    if population:
        lines.append(f"population={population}")
    lines += ["module:", print_module(generated.module)]
    material = "\n".join(lines)
    return hashlib.sha256(material.encode()).hexdigest()


def payload_checksum(payload: Dict) -> str:
    """sha256 over the canonical JSON of ``payload`` minus ``checksum``."""
    material = {k: v for k, v in payload.items() if k != "checksum"}
    return hashlib.sha256(
        json.dumps(material, sort_keys=True).encode()).hexdigest()


class KernelCache:
    """A directory of content-addressed lowered-kernel entries.

    Each entry is one JSON file ``<key>.json`` holding the lowered
    source and the metadata :func:`~repro.runtime.lowering.compile_kernel_source`
    needs.  The cache is LRU-bounded by entry count (file mtime is the
    recency signal), checksum-verified on read (corrupt entries are
    quarantined, not served), flock-serialized on write, and falls
    back to an in-memory dict when the directory is unwritable.
    """

    def __init__(self, root, max_entries: int = 512,
                 read_only: bool = False):
        self.root = pathlib.Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: non-None once the cache degraded to memory-only operation
        self._memory: Optional[Dict[str, Dict]] = None
        #: absorbs stores while the cache operates read-only
        self._overlay: Dict[str, Dict] = {}
        self._read_only = bool(read_only)
        if self._read_only:
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as err:
            if self.root.is_dir() and os.access(self.root, os.R_OK):
                self._fall_back_to_read_only(err)
            else:
                self._fall_back_to_memory(err)
            return
        if not os.access(self.root, os.W_OK):
            self._fall_back_to_read_only(None)

    # -- degraded (read-only / in-memory) modes ------------------------------------

    def _fall_back_to_read_only(self,
                                error: Optional[BaseException]) -> None:
        """Serve disk hits, absorb writes in memory; record why.

        The middle rung of the degradation ladder: the root cannot be
        written (read-only mount, permissions) but its entries are
        still perfectly readable, so — unlike the memory fallback —
        every previously stored kernel keeps hitting.
        """
        if self._read_only:
            return
        self._read_only = True
        from ..resilience.diagnostics import (Diagnostic, Severity,
                                              log_diagnostic)
        log_diagnostic(Diagnostic(
            stage="cache", component="kernel_cache",
            message=(f"cache root {self.root} is not writable; "
                     "continuing read-only (stores kept in memory)"),
            severity=Severity.WARNING,
            data={"root": str(self.root),
                  "error": repr(error) if error is not None else None}))
        _metrics.counter(
            "cache_readonly_fallbacks_total",
            "persistent tiers degraded to read-only operation").inc()

    def _fall_back_to_memory(self, error: BaseException) -> None:
        """Degrade to an in-memory dict; record why, never raise."""
        if self._memory is not None:
            return
        self._memory = {}
        from ..resilience.diagnostics import (Diagnostic, Severity,
                                              log_diagnostic)
        log_diagnostic(Diagnostic.from_exception(
            stage="cache", component="kernel_cache", exc=error,
            severity=Severity.WARNING, with_traceback=False,
            root=str(self.root)))
        _metrics.counter(
            "cache_memory_fallbacks_total",
            "persistent tiers degraded to in-memory operation").inc()

    @property
    def in_memory(self) -> bool:
        """True when the cache degraded to memory-only operation."""
        return self._memory is not None

    @property
    def read_only(self) -> bool:
        """True when the cache serves disk reads but never writes."""
        return self._read_only

    # -- entries -----------------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def _lock_path(self) -> pathlib.Path:
        return self.root / ".lock"

    def _quarantine(self, path: pathlib.Path, reason: str,
                    move: bool = True) -> None:
        """Move a corrupt entry aside so it cannot poison later reads.

        With ``move=False`` (the read-only cache mode) the entry is
        left in place — we must not mutate a shared read-only mount —
        and only the diagnostic and counters are recorded.
        """
        self.stats.corrupt += 1
        target = None
        if move:
            try:
                qdir = self.root / QUARANTINE_DIR
                qdir.mkdir(parents=True, exist_ok=True)
                target = qdir / path.name
                os.replace(path, target)
            except OSError:
                try:                    # quarantine failed: drop instead
                    path.unlink()
                except OSError:
                    pass
        from ..resilience.diagnostics import (Diagnostic, Severity,
                                              log_diagnostic)
        verb = "quarantined" if move else "left in place (read-only)"
        log_diagnostic(Diagnostic(
            stage="cache", component="kernel_cache",
            message=f"corrupt entry {path.name} {verb}: {reason}",
            severity=Severity.WARNING,
            data={"entry": path.name,
                  "quarantined_to": str(target) if target else None}))
        _metrics.counter("kernel_cache_corrupt_total",
                         "corrupt kernel-cache entries quarantined").inc()

    def load(self, key: str) -> Optional[Dict]:
        """The cached payload for ``key``, or None (counts hit/miss).

        A missing entry is a plain miss; an unreadable, torn, or
        checksum-mismatching entry is quarantined first, then counted
        as a miss.
        """
        if self._memory is not None:
            payload = self._memory.get(key)
            if payload is None:
                self.stats.misses += 1
                _metrics.counter("kernel_cache_misses_total",
                                 "persistent kernel-cache misses").inc()
                return None
            self.stats.hits += 1
            _metrics.counter("kernel_cache_hits_total",
                             "persistent kernel-cache hits").inc()
            return payload
        if self._read_only and key in self._overlay:
            self.stats.hits += 1
            _metrics.counter("kernel_cache_hits_total",
                             "persistent kernel-cache hits").inc()
            return self._overlay[key]
        path = self._path(key)
        payload = None
        corrupt_reason = None
        try:
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                corrupt_reason = "payload is not an object"
            elif payload.get("format") != CACHE_FORMAT_VERSION:
                corrupt_reason = None       # stale format: silent miss
                payload = None
            elif payload.get("checksum") != payload_checksum(payload):
                corrupt_reason = "checksum mismatch"
        except FileNotFoundError:
            pass
        except (OSError, ValueError) as err:
            if path.exists():
                corrupt_reason = f"unreadable ({type(err).__name__})"
        if corrupt_reason is not None:
            self._quarantine(path, corrupt_reason,
                             move=not self._read_only)
            payload = None
        if payload is None:
            self.stats.misses += 1
            if not self._read_only:
                self._bump("misses")
            _metrics.counter("kernel_cache_misses_total",
                             "persistent kernel-cache misses").inc()
            return None
        if not self._read_only:
            try:
                path.touch()              # refresh LRU recency
            except OSError:
                pass
            self._bump("hits")
        self.stats.hits += 1
        _metrics.counter("kernel_cache_hits_total",
                         "persistent kernel-cache hits").inc()
        return payload

    def store(self, key: str, source: str, mode: str, width: int,
              arg_names: List[str], function_name: str,
              fused: bool, arena: bool) -> None:
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "function_name": function_name,
            "source": source,
            "mode": mode,
            "width": width,
            "arg_names": list(arg_names),
            "fused": fused,
            "arena": arena,
        }
        payload["checksum"] = payload_checksum(payload)
        if self._memory is not None:
            self._memory[key] = payload
            return
        if self._read_only:
            self._overlay[key] = payload
            return
        tmp = self._path(key).with_suffix(".tmp")
        try:
            with file_lock(self._lock_path()):
                tmp.write_text(json.dumps(payload))
                os.replace(tmp, self._path(key))
                self._evict()
        except OSError as err:
            try:
                tmp.unlink()
            except OSError:
                pass
            if self.root.is_dir() and os.access(self.root, os.R_OK):
                self._fall_back_to_read_only(err)
                self._overlay[key] = payload
            else:
                self._fall_back_to_memory(err)
                self._memory[key] = payload

    def _evict(self) -> None:
        entries = sorted((p for p in self.root.glob("*.json")
                          if p.name != "stats.json"),
                         key=lambda p: p.stat().st_mtime)
        excess = len(entries) - self.max_entries
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            self._bump("evictions")
            _metrics.counter("kernel_cache_evictions_total",
                             "persistent kernel-cache LRU evictions").inc()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self._memory is not None:
            removed = len(self._memory)
            self._memory.clear()
            return removed
        if self._read_only:
            removed = len(self._overlay)
            self._overlay.clear()
            return removed
        with file_lock(self._lock_path()):
            for path in self.root.glob("*.json"):
                if path.name == "stats.json":
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    # -- statistics --------------------------------------------------------------

    def _stats_path(self) -> pathlib.Path:
        return self.root / "stats.json"

    def _bump(self, counter: str) -> None:
        """Increment one persistent counter.

        Read-modify-write under the cache's advisory flock, written
        atomically via tmp file + ``os.replace``: concurrent processes
        serialize on the lock, so counts are exact, and a torn write
        can never corrupt ``stats.json`` for later readers.  (If the
        lock is unavailable the update still happens atomically and
        merely degrades to best-effort, the pre-lock behaviour.)
        """
        if self._memory is not None or self._read_only:
            return
        path = self._stats_path()
        tmp = path.with_name(
            f"stats.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with file_lock(self._lock_path()):
                try:
                    data = json.loads(path.read_text())
                    if not isinstance(data, dict):
                        data = {}
                except (OSError, ValueError):
                    data = {}
                data[counter] = int(data.get(counter, 0)) + 1
                tmp.write_text(json.dumps(data))
                os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def persistent_stats(self) -> CacheStats:
        """Counters accumulated across every process using this dir."""
        if self._memory is not None:
            return CacheStats(hits=self.stats.hits,
                              misses=self.stats.misses,
                              evictions=self.stats.evictions,
                              entries=len(self._memory),
                              bytes=0, corrupt=self.stats.corrupt)
        try:
            data = json.loads(self._stats_path().read_text())
        except (OSError, ValueError):
            data = {}
        entries = [p for p in self.root.glob("*.json")
                   if p.name != "stats.json"]
        quarantined = 0
        qdir = self.root / QUARANTINE_DIR
        if qdir.is_dir():
            quarantined = sum(1 for _ in qdir.glob("*.json"))
        return CacheStats(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            evictions=int(data.get("evictions", 0)),
            entries=len(entries),
            bytes=sum(p.stat().st_size for p in entries),
            corrupt=quarantined)


_DEFAULT_CACHE: Optional[KernelCache] = None


def default_cache_dir() -> pathlib.Path:
    """``$LIMPET_CACHE_DIR`` or ``~/.cache/limpet-repro/kernels``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "limpet-repro" / "kernels"


def default_cache() -> Optional[KernelCache]:
    """The process-wide cache (None when ``LIMPET_KERNEL_CACHE=off``)."""
    global _DEFAULT_CACHE
    if os.environ.get(_ENV_DISABLE, "").lower() in ("off", "0", "no"):
        return None
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = KernelCache(default_cache_dir())
    return _DEFAULT_CACHE
