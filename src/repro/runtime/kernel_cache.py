"""Persistent kernel cache: content-addressed lowered sources on disk.

Constructing a :class:`~repro.runtime.executor.KernelRunner` normally
pays for a full fixed-point pass pipeline, module verification, and
lowering — per kernel, on every process.  For sweep workloads over the
47-model suite that construction cost dominates short runs, so this
module caches the *product* of that work (the lowered Python source
plus its metadata) under a content address combining:

* the generated module's printed IR (pre-pipeline) — any change to the
  model source or code generator changes the text;
* the kernel spec (backend mode, width, layout, LUT options);
* the pass pipeline fingerprint
  (:meth:`~repro.ir.passes.pass_manager.PassManager.fingerprint`);
* the lowering version (:data:`~repro.runtime.lowering.LOWERING_VERSION`)
  and the fuse/arena lowering flags.

A hit skips passes, verification and lowering entirely: the cached
source is exec'd directly.  Hit/miss/eviction counters persist in the
cache directory (``stats.json``) so ``limpet-bench cache-stats`` can
report across processes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..ir.printer import print_module
from ..obs import metrics as _metrics

#: bump to invalidate every existing cache entry at once
CACHE_FORMAT_VERSION = 1

_ENV_DIR = "LIMPET_CACHE_DIR"
_ENV_DISABLE = "LIMPET_KERNEL_CACHE"


@dataclass
class CacheStats:
    """Counters for one cache (in-memory view; persisted to disk)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    entries: int = 0
    bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


def kernel_cache_key(generated, pipeline_fingerprint: str,
                     fuse: bool, arena: bool, verify: bool) -> str:
    """Content address for one (module, spec, pipeline, lowering) point.

    ``generated`` is a :class:`~repro.codegen.common.GeneratedKernel`
    whose module has NOT been run through the pipeline yet — the
    pipeline's effect is captured by its fingerprint instead, so the
    key can be computed before any optimization work happens.
    """
    from .lowering import LOWERING_VERSION
    spec = generated.spec
    material = "\n".join([
        f"format={CACHE_FORMAT_VERSION}",
        f"model={spec.model.name}",
        f"mode={spec.mode.value}",
        f"width={spec.width}",
        f"layout={generated.layout}",
        f"use_lut={spec.use_lut}",
        f"lut_interpolation={spec.lut_interpolation}",
        f"function={spec.function_name}",
        f"pipeline={pipeline_fingerprint}",
        f"lowering=v{LOWERING_VERSION};fuse={fuse};arena={arena}",
        f"verify={verify}",
        "module:",
        print_module(generated.module),
    ])
    return hashlib.sha256(material.encode()).hexdigest()


class KernelCache:
    """A directory of content-addressed lowered-kernel entries.

    Each entry is one JSON file ``<key>.json`` holding the lowered
    source and the metadata :func:`~repro.runtime.lowering.compile_kernel_source`
    needs.  The cache is LRU-bounded by entry count (file mtime is the
    recency signal) and safe against corrupt entries (treated as a
    miss and overwritten).
    """

    def __init__(self, root, max_entries: int = 512):
        self.root = pathlib.Path(root)
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- entries -----------------------------------------------------------------

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict]:
        """The cached payload for ``key``, or None (counts hit/miss)."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("stale cache format")
        except (OSError, ValueError):
            self.stats.misses += 1
            self._bump("misses")
            _metrics.counter("kernel_cache_misses_total",
                             "persistent kernel-cache misses").inc()
            return None
        path.touch()                      # refresh LRU recency
        self.stats.hits += 1
        self._bump("hits")
        _metrics.counter("kernel_cache_hits_total",
                         "persistent kernel-cache hits").inc()
        return payload

    def store(self, key: str, source: str, mode: str, width: int,
              arg_names: List[str], function_name: str,
              fused: bool, arena: bool) -> None:
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "function_name": function_name,
            "source": source,
            "mode": mode,
            "width": width,
            "arg_names": list(arg_names),
            "fused": fused,
            "arena": arena,
        }
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self._path(key))
        self._evict()

    def _evict(self) -> None:
        entries = sorted((p for p in self.root.glob("*.json")
                          if p.name != "stats.json"),
                         key=lambda p: p.stat().st_mtime)
        excess = len(entries) - self.max_entries
        for path in entries[:max(excess, 0)]:
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            self._bump("evictions")
            _metrics.counter("kernel_cache_evictions_total",
                             "persistent kernel-cache LRU evictions").inc()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            if path.name == "stats.json":
                continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # -- statistics --------------------------------------------------------------

    def _stats_path(self) -> pathlib.Path:
        return self.root / "stats.json"

    def _bump(self, counter: str) -> None:
        """Increment one persistent counter (best-effort).

        Written atomically via the same tmp-file + ``os.replace`` dance
        as kernel payloads: concurrent sharded runs bump concurrently,
        and a torn in-place write would corrupt ``stats.json`` for
        every later reader.  The tmp name is pid+thread-unique (and not
        ``*.json``, so the LRU scan never sees it); updates may still
        race each other — last writer wins, counts are best-effort —
        but the file is always valid JSON.
        """
        path = self._stats_path()
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
        data[counter] = int(data.get(counter, 0)) + 1
        tmp = path.with_name(
            f"stats.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            tmp.write_text(json.dumps(data))
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def persistent_stats(self) -> CacheStats:
        """Counters accumulated across every process using this dir."""
        try:
            data = json.loads(self._stats_path().read_text())
        except (OSError, ValueError):
            data = {}
        entries = [p for p in self.root.glob("*.json")
                   if p.name != "stats.json"]
        return CacheStats(
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            evictions=int(data.get("evictions", 0)),
            entries=len(entries),
            bytes=sum(p.stat().st_size for p in entries))


_DEFAULT_CACHE: Optional[KernelCache] = None


def default_cache_dir() -> pathlib.Path:
    """``$LIMPET_CACHE_DIR`` or ``~/.cache/limpet-repro/kernels``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "limpet-repro" / "kernels"


def default_cache() -> Optional[KernelCache]:
    """The process-wide cache (None when ``LIMPET_KERNEL_CACHE=off``)."""
    global _DEFAULT_CACHE
    if os.environ.get(_ENV_DISABLE, "").lower() in ("off", "0", "no"):
        return None
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = KernelCache(default_cache_dir())
    return _DEFAULT_CACHE
