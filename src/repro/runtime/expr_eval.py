"""Direct NumPy evaluation of EasyML expressions.

Used to precompute lookup-table rows (tabulation happens once, outside
the generated kernel) and as the reference oracle in differential
tests: kernels produced by either backend must agree with this
evaluator.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Union

import numpy as np

from ..easyml.ast_nodes import (Binary, Call, Expr, Name, Number, Ternary,
                                Unary)
from ..easyml.errors import SemanticError

ArrayLike = Union[float, np.ndarray]

_FUNCTIONS = {
    "exp": np.exp,
    "expm1": np.expm1,
    "log": np.log,
    "ln": np.log,
    "log10": np.log10,
    "log2": np.log2,
    "log1p": np.log1p,
    "sqrt": np.sqrt,
    "cbrt": np.cbrt,
    "sin": np.sin,
    "cos": np.cos,
    "tan": np.tan,
    "asin": np.arcsin,
    "acos": np.arccos,
    "atan": np.arctan,
    "sinh": np.sinh,
    "cosh": np.cosh,
    "tanh": np.tanh,
    "fabs": np.abs,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
    "pow": np.power,
    "atan2": np.arctan2,
    "square": lambda x: x * x,
    "cube": lambda x: x * x * x,
    "min": np.minimum,
    "max": np.maximum,
}


def _erf(x: ArrayLike) -> ArrayLike:
    if isinstance(x, np.ndarray):
        from ..ir.dialects.math import _erf as vec_erf
        return vec_erf(x)
    return math.erf(x)


_FUNCTIONS["erf"] = _erf


def eval_expr(expr: Expr, env: Mapping[str, ArrayLike]) -> ArrayLike:
    """Evaluate ``expr`` with IEEE semantics over scalars or arrays."""
    with np.errstate(all="ignore"):
        return _eval(expr, env)


def _eval(expr: Expr, env: Mapping[str, ArrayLike]) -> ArrayLike:
    if isinstance(expr, Number):
        return expr.value
    if isinstance(expr, Name):
        try:
            return env[expr.identifier]
        except KeyError:
            raise SemanticError(
                f"evaluation: unbound variable {expr.identifier!r}")
    if isinstance(expr, Unary):
        value = _eval(expr.operand, env)
        if expr.op == "-":
            return -value
        return np.where(value == 0.0, 1.0, 0.0) \
            if isinstance(value, np.ndarray) else float(value == 0.0)
    if isinstance(expr, Binary):
        return _eval_binary(expr, env)
    if isinstance(expr, Ternary):
        cond = _eval(expr.cond, env)
        then = _eval(expr.then, env)
        otherwise = _eval(expr.otherwise, env)
        if isinstance(cond, np.ndarray):
            return np.where(cond != 0.0, then, otherwise)
        return then if cond else otherwise
    if isinstance(expr, Call):
        fn = _FUNCTIONS.get(expr.callee)
        if fn is None:
            from .foreign import _REGISTRY
            fn = _REGISTRY.get(expr.callee)
        if fn is None:
            raise SemanticError(f"evaluation: unknown function "
                                f"{expr.callee!r}")
        return fn(*(_eval(a, env) for a in expr.args))
    raise SemanticError(f"evaluation: unsupported node {expr!r}")


def _eval_binary(expr: Binary, env: Mapping[str, ArrayLike]) -> ArrayLike:
    lhs = _eval(expr.lhs, env)
    rhs = _eval(expr.rhs, env)
    op = expr.op
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
            return lhs / rhs
        # IEEE semantics for scalars too (inf/nan, never an exception)
        return float(np.float64(lhs) / np.float64(rhs))
    if op == "%":
        return np.fmod(lhs, rhs)
    comparisons = {"<": np.less, "<=": np.less_equal, ">": np.greater,
                   ">=": np.greater_equal, "==": np.equal,
                   "!=": np.not_equal}
    if op in comparisons:
        result = comparisons[op](lhs, rhs)
        return result.astype(np.float64) if isinstance(result, np.ndarray) \
            else float(result)
    if op == "and":
        result = np.logical_and(np.asarray(lhs) != 0, np.asarray(rhs) != 0)
        return result.astype(np.float64) if result.ndim else float(result)
    if op == "or":
        result = np.logical_or(np.asarray(lhs) != 0, np.asarray(rhs) != 0)
        return result.astype(np.float64) if result.ndim else float(result)
    raise SemanticError(f"evaluation: unknown operator {op!r}")


def evaluate_plan(computations, env: Dict[str, ArrayLike]) -> None:
    """Evaluate an ordered computation plan in place, extending ``env``."""
    for comp in computations:
        env[comp.target] = eval_expr(comp.expr, env)
