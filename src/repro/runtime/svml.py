"""The SVML analog: vectorized math for the lowered kernels.

The paper links the generated code against Intel's Short Vector Math
Library — "we rely on Intel's SVML library for the vectorization of
mathematical functions" (§4.1 footnote) — and credits it for the
outsized speedups of math-heavy models like ISAC_Hu.  In this
reproduction NumPy's C-implemented ufuncs play SVML's role: one call
evaluates a transcendental over every lane.

This module is the single source of truth for the mapping from IR
``math.*`` ops to their vectorized implementations; the lowering embeds
these expression templates into the generated kernels, and the machine
model prices the same ops with per-ISA SVML throughput classes
(:mod:`repro.machine.arch`).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

#: IR op -> python expression template over vectorized operands
VECTOR_MATH_TEMPLATES: Dict[str, str] = {
    "math.exp": "np.exp({0})",
    "math.expm1": "np.expm1({0})",
    "math.log": "np.log({0})",
    "math.log10": "np.log10({0})",
    "math.log2": "np.log2({0})",
    "math.log1p": "np.log1p({0})",
    "math.sqrt": "np.sqrt({0})",
    "math.cbrt": "np.cbrt({0})",
    "math.sin": "np.sin({0})",
    "math.cos": "np.cos({0})",
    "math.tan": "np.tan({0})",
    "math.asin": "np.arcsin({0})",
    "math.acos": "np.arccos({0})",
    "math.atan": "np.arctan({0})",
    "math.sinh": "np.sinh({0})",
    "math.cosh": "np.cosh({0})",
    "math.tanh": "np.tanh({0})",
    "math.absf": "np.abs({0})",
    "math.floor": "np.floor({0})",
    "math.ceil": "np.ceil({0})",
    "math.erf": "_np_erf({0})",
    "math.round": "np.round({0})",
    "math.trunc": "np.trunc({0})",
    "math.powf": "np.power({0}, {1})",
    "math.atan2": "np.arctan2({0}, {1})",
    "math.copysign": "np.copysign({0}, {1})",
    "math.fmod": "np.fmod({0}, {1})",
}


def vector_math_ufunc(op_name: str):
    """The NumPy ufunc backing one IR math op (for direct callers)."""
    mapping = {
        "math.exp": np.exp, "math.log": np.log, "math.sqrt": np.sqrt,
        "math.tanh": np.tanh, "math.powf": np.power, "math.sin": np.sin,
        "math.cos": np.cos, "math.atan": np.arctan,
    }
    if op_name not in mapping:
        raise KeyError(f"no registered ufunc for {op_name}")
    return mapping[op_name]
