"""Runtime: lowering to executable kernels, state, LUTs, the driver."""

from .executor import (KernelRunner, RunResult, Stimulus,
                       TrajectoryComparison, compare_trajectories)
from .lowering import (LOWERING_VERSION, BufferArena, CompiledKernel,
                       LoweringError, compile_kernel_source,
                       lower_function)
from .kernel_cache import (CacheStats, KernelCache, default_cache,
                           default_cache_dir, kernel_cache_key)
from .sharded import ShardedRunner, shard_bounds
from .supervised import (SupervisedExecutionError, SupervisedRunner,
                         SupervisionConfig, close_all_runners,
                         multiprocess_supported)
from .locking import file_lock, locking_available
from .shutdown import (install_signal_handlers, register_cleanup,
                       run_cleanups, unregister_cleanup)
from .lut_runtime import (LUTData, build_all_luts, build_lut,
                          lut_interp_row, lut_interp_row_vec)
from .state import SimulationState, StateCheckpoint, allocate_state
from .expr_eval import eval_expr, evaluate_plan
from .hierarchy import HierarchicalSimulation, PluginInstance
from .foreign import foreign_function, register_foreign, registered_foreign
from .interpreter import Interpreter, InterpreterError, interpret_kernel

__all__ = ["KernelRunner", "RunResult", "Stimulus", "TrajectoryComparison",
           "compare_trajectories",
           "CompiledKernel", "LoweringError", "lower_function",
           "LOWERING_VERSION", "BufferArena", "compile_kernel_source",
           "CacheStats", "KernelCache", "default_cache",
           "default_cache_dir", "kernel_cache_key",
           "ShardedRunner", "shard_bounds",
           "SupervisedRunner", "SupervisedExecutionError",
           "SupervisionConfig", "close_all_runners",
           "multiprocess_supported", "file_lock", "locking_available",
           "install_signal_handlers", "register_cleanup",
           "run_cleanups", "unregister_cleanup", "LUTData",
           "build_all_luts", "build_lut", "lut_interp_row",
           "lut_interp_row_vec", "SimulationState", "StateCheckpoint",
           "allocate_state",
           "eval_expr", "evaluate_plan", "HierarchicalSimulation",
           "PluginInstance", "foreign_function", "register_foreign",
           "registered_foreign", "Interpreter", "InterpreterError",
           "interpret_kernel"]
