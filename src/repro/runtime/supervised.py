"""Supervised multiprocess execution: crash-isolated worker shards.

The thread tier (:class:`~repro.runtime.sharded.ShardedRunner`) shares
one address space, so a crash anywhere — a segfaulting foreign
function, an OOM kill, a wedged extension — takes the whole sweep with
it.  This tier puts each width-aligned cell shard in its **own worker
process** over :mod:`multiprocessing.shared_memory`-backed state
arrays, supervised by the parent:

* **fork + inherited views** — workers are forked *after* the state is
  moved into shared memory, so they inherit the parent's numpy views
  of the segment (``MAP_SHARED``: child writes are visible to the
  parent with no re-attach by name, and a killed child can never leave
  the resource tracker confused about segment ownership);
* **heartbeats** — each worker beats a slot of a shared float64 array
  from a daemon thread; the parent treats a stale beat, a dead
  process, or a blown task deadline identically (restart + retry);
* **bounded retry** — a failed shard is restored from the pre-step
  backup (shards are disjoint, so only the failed slice is touched),
  the worker is respawned, and the task re-dispatched with exponential
  backoff, up to ``max_retries`` times;
* **graceful degradation** — when supervision itself gives up
  (:class:`SupervisedExecutionError`), the run restarts from its
  initial checkpoint one tier down the ladder
  (supervised-multiprocess → thread-sharded → single-process), each
  step recorded as a :class:`~repro.resilience.diagnostics.Diagnostic`
  and counted in ``degradations_total``.

Correctness invariant: shards are disjoint width-aligned cell ranges
of a cell-local model, workers run the *same compiled kernel* the
parent would (fork-inherited) and rebuild LUTs deterministically per
quantized dt, so supervised trajectories are **bitwise identical** to
single-process runs (proven by the differential tests).

Deliberately *not* a throughput feature on small machines: process
supervision buys crash isolation; the paper's scaling story stays with
the thread tier.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..codegen.common import GeneratedKernel
from ..obs import flight as _flight
from ..obs import ledger as _ledger
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from .executor import KernelRunner
from .sharded import ShardedRunner
from .state import SimulationState

try:                        # gate, don't require (minimal builds)
    from multiprocessing import shared_memory as _shm_mod
except ImportError:         # pragma: no cover - exotic platform
    _shm_mod = None

#: the degradation ladder, most to least isolated
TIERS = ("supervised", "threads", "single")


def multiprocess_supported() -> bool:
    """True when this platform can run the supervised tier (POSIX
    fork + ``multiprocessing.shared_memory``)."""
    return _shm_mod is not None and "fork" in mp.get_all_start_methods()


class SupervisedExecutionError(RuntimeError):
    """Supervision gave up on a shard: retries exhausted.

    ``run`` treats this as the signal to degrade one tier down the
    ladder; it only escapes to the caller when degradation is disabled
    or already exhausted.
    """

    def __init__(self, message: str, slot: int = -1, attempts: int = 0,
                 step: int = -1):
        super().__init__(message)
        self.slot = slot
        self.attempts = attempts
        self.step = step


@dataclass
class SupervisionConfig:
    """Tunables of the worker supervisor."""

    #: seconds between heartbeat writes in each worker
    heartbeat_interval: float = 0.05
    #: a beat older than this marks the worker as stalled
    heartbeat_timeout: float = 5.0
    #: wall-clock budget for one dispatched shard task
    task_timeout: float = 30.0
    #: per-shard retry budget within one compute step
    max_retries: int = 2
    #: base seconds of the exponential retry backoff
    retry_backoff: float = 0.05
    #: degrade down the tier ladder instead of raising
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed the interval")
        if self.task_timeout <= 0:
            raise ValueError("task_timeout must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")


@dataclass
class _WorkerFault:
    """Injected process-level fault, armed for one worker's first life."""

    kill_at_task: Optional[int] = None
    stall_at_task: Optional[int] = None
    stall_seconds: float = 30.0


def _worker_entry(runner: "SupervisedRunner", state: SimulationState,
                  slot: int, conn, heartbeats: np.ndarray,
                  config: SupervisionConfig,
                  fault: Optional[_WorkerFault],
                  trace_ctx: Optional[_trace.TraceContext] = None
                  ) -> None:
    """Worker main loop (runs in the forked child).

    Everything it needs — the compiled kernel, the shm-backed state
    views, its heartbeat slot — arrived via fork, not pickling.  It
    only ever touches its dispatched ``[start, end)`` slice, so
    concurrent workers never alias.

    With a ``trace_ctx`` the worker runs its own :class:`Tracer` under
    the parent's trace id and timebase (fork shares CLOCK_MONOTONIC),
    wraps each task in a ``shard_task`` span, and **streams** finished
    spans back piggybacked on every reply — the parent merges them as
    foreign events, so a worker killed mid-run has already delivered
    the spans of every task it completed.
    """
    stop = threading.Event()
    stalled = threading.Event()
    # drop the fork-inherited parent tracer: worker spans belong to the
    # worker's own tracer (or nowhere, when tracing is off)
    if trace_ctx is not None:
        tracer: Optional[_trace.Tracer] = _trace.Tracer(
            context=trace_ctx, process_name=f"limpet-worker-{slot}")
        _trace.activate(tracer)
    else:
        tracer = None
        _trace.deactivate(None)

    def beat() -> None:
        while not stop.is_set():
            if not stalled.is_set():
                heartbeats[slot] = time.monotonic()
            stop.wait(config.heartbeat_interval)

    threading.Thread(target=beat, daemon=True,
                     name=f"limpet-heartbeat-{slot}").start()
    fn = runner.kernel.fn
    externals = [state.externals[e] for e in runner.model.externals]
    # promoted parameter arrays are read-only: fork-inherited copies
    # are exact and never need to live in the shared segment
    param_arrays = [state.params[p] for p in runner.model.promoted_params]
    use_lut = runner.spec.use_lut
    tasks_done = 0
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, seq, start, end, dt, now = msg
            tasks_done += 1
            if fault is not None:
                if fault.kill_at_task == tasks_done:
                    os._exit(1)         # simulated crash mid-shard
                if fault.stall_at_task == tasks_done:
                    stalled.set()       # heartbeat goes quiet...
                    time.sleep(fault.stall_seconds)   # ...and so do we
            task_span = _trace.span("shard_task", slot=slot, seq=seq,
                                    start=start, end=end)
            try:
                with task_span:
                    args = [start, end, dt, now, state.sv] + externals \
                        + param_arrays
                    if use_lut:
                        # deterministic per-quantized-dt rebuild: bitwise
                        # identical to the parent's tables
                        args += runner.luts_for(dt)
                    fn(*args)
            except Exception as err:
                task_span.annotate(error=f"{type(err).__name__}: {err}")
                events = tracer.drain_events() if tracer else []
                conn.send(("err", seq, type(err).__name__, str(err),
                           events))
            else:
                events = tracer.drain_events() if tracer else []
                conn.send(("ok", seq, events))
    except (EOFError, OSError, KeyboardInterrupt):
        pass                            # parent went away: just exit
    finally:
        stop.set()


def _failure_kind(failure: str) -> str:
    """Fold a free-text failure reason into a low-cardinality label
    (labels are metric dimensions: bounded values only)."""
    if failure.startswith("worker exception"):
        return "exception"
    if failure.startswith("worker pipe"):
        return "pipe_closed"
    if failure.startswith("worker died"):
        return "died"
    if failure.startswith("heartbeat"):
        return "stalled"
    if failure.startswith("task deadline"):
        return "deadline"
    return "other"


#: every live runner, so interpreter exit / signal shutdown can reap
#: worker processes and unlink shared-memory segments
_ACTIVE_RUNNERS: "weakref.WeakSet[SupervisedRunner]" = weakref.WeakSet()


def close_all_runners() -> None:
    """Close every live :class:`SupervisedRunner` (shutdown hook)."""
    for runner in list(_ACTIVE_RUNNERS):
        try:
            runner.close()
        except Exception:               # pragma: no cover - best effort
            pass


atexit.register(close_all_runners)

from .shutdown import register_cleanup as _register_cleanup  # noqa: E402

_register_cleanup(close_all_runners, "supervised-runners")


class SupervisedRunner(ShardedRunner):
    """A runner that executes compute steps in supervised worker
    processes, degrading down the tier ladder on supervision failure.

    ``n_workers`` bounds the process count (shards are width-aligned,
    so fewer may run for small cell counts); ``fault_plan`` arms
    deterministic process-level faults
    (:class:`~repro.resilience.faultinject.FaultPlan`) for drills.
    Use as a context manager or call :meth:`close` — unclosed runners
    are reaped at interpreter exit.
    """

    def __init__(self, generated: GeneratedKernel, n_workers: int = 0,
                 config: Optional[SupervisionConfig] = None,
                 fault_plan=None, **kwargs):
        n_workers = n_workers or (os.cpu_count() or 1)
        super().__init__(generated, n_threads=n_workers, **kwargs)
        self.n_workers = n_workers
        self.config = config or SupervisionConfig()
        self.fault_plan = fault_plan
        self.diagnostics: List = []
        self._tier = TIERS[0]
        self._seq = 0
        self._procs: List[Optional[mp.process.BaseProcess]] = []
        self._conns: List = []
        self._spawns: List[int] = []
        self._hb_shm = None
        self._hb_view: Optional[np.ndarray] = None
        self._state_shm = None
        self._attached: Optional[SimulationState] = None
        self._orig_arrays: Optional[tuple] = None
        # register the counters up front so they show in snapshots
        # even before the first fault (operators see zeros, not gaps)
        _metrics.counter("worker_restarts_total",
                         "supervised workers killed and respawned")
        _metrics.counter("shard_retries_total",
                         "shard tasks re-dispatched after a failure")
        _metrics.counter("degradations_total",
                         "execution-tier downgrades taken")
        _metrics.gauge("supervised_workers",
                       "live worker processes of the supervised tier")
        if not multiprocess_supported():    # pragma: no cover - POSIX CI
            self._record_degradation(
                TIERS[1], RuntimeError(
                    "platform lacks fork/shared_memory"))
        _ACTIVE_RUNNERS.add(self)

    @property
    def tier(self) -> str:
        """The execution tier currently in effect."""
        return self._tier

    @property
    def execution_tier(self) -> str:
        """Ledger-facing tier name (overrides the static base names)."""
        return self._tier

    # -- the degradation ladder ----------------------------------------------------

    def _record_degradation(self, target: str, error: BaseException) -> None:
        from ..resilience.diagnostics import (Diagnostic, Severity,
                                              log_diagnostic)
        # which shard failed at which step, when supervision knows
        slot = getattr(error, "slot", None)
        step = getattr(error, "step", None)
        attempts = getattr(error, "attempts", None)
        diag = Diagnostic.from_exception(
            stage="run", component="supervised", exc=error,
            severity=Severity.WARNING, with_traceback=False,
            from_tier=self._tier, to_tier=target, model=self.model.name,
            slot=slot, step=step, attempts=attempts)
        diag.message = (f"degrading {self._tier} -> {target}: "
                        f"{diag.message}")
        log_diagnostic(diag)
        self.diagnostics.append(diag)
        from_tier = self._tier
        self._tier = target
        _metrics.counter("degradations_total",
                         "execution-tier downgrades taken").inc()
        _metrics.gauge("supervised_workers",
                       "live worker processes of the supervised "
                       "tier").set(0)
        _flight.dump("degradation",
                     extra={"from_tier": from_tier, "to_tier": target,
                            "model": self.model.name, "slot": slot,
                            "step": step, "attempts": attempts})
        _ledger.record_event("degradation", model=self.model.name,
                             tier=target, from_tier=from_tier,
                             disposition="degraded", slot=slot,
                             step=step, attempts=attempts)

    def _degrade(self, target: str, error: BaseException):
        """Step down to ``target``, or re-raise when already there."""
        if not self.config.degrade or \
                TIERS.index(target) <= TIERS.index(self._tier):
            raise error
        self._record_degradation(target, error)

    # -- run: attach state, supervise, degrade on failure --------------------------

    def run(self, state: SimulationState, n_steps: int, dt: float = 0.01,
            stimulus=None, record_vm: bool = False, watchdog=None,
            step_hook=None, time_breakdown: bool = False):
        from ..resilience.watchdog import NumericalDivergenceError
        if self._tier != "supervised":
            return super().run(state, n_steps, dt, stimulus, record_vm,
                               watchdog, step_hook, time_breakdown)
        initial = state.checkpoint()
        while True:
            try:
                if self._tier == "supervised":
                    self._attach_state(state)
                    try:
                        self._ensure_workers(state)
                        return super().run(state, n_steps, dt, stimulus,
                                           record_vm, watchdog,
                                           step_hook, time_breakdown)
                    finally:
                        self._detach_state()
                return super().run(state, n_steps, dt, stimulus,
                                   record_vm, watchdog, step_hook,
                                   time_breakdown)
            except NumericalDivergenceError:
                raise           # a watchdog verdict, not an infra failure
            except SupervisedExecutionError as err:
                self._shutdown_workers()
                state.restore(initial)
                self._degrade("threads", err)
            except Exception as err:
                self._shutdown_workers()
                state.restore(initial)
                self._degrade("single", err)

    # -- compute-step dispatch -----------------------------------------------------

    def compute_step(self, state: SimulationState, dt: float) -> None:
        if self._tier == "supervised" and self._procs \
                and state is self._attached:
            self._supervised_step(state, dt)
        elif self._tier == "threads":
            ShardedRunner.compute_step(self, state, dt)
        else:
            KernelRunner.compute_step(self, state, dt)

    def _supervised_step(self, state: SimulationState, dt: float) -> None:
        shards = self.shards_for(state)
        if len(shards) <= 1:
            KernelRunner.compute_step(self, state, dt)
            return
        # pre-step backup: a failed shard restores only its own slice
        # before re-dispatch, so retried kernels re-run from identical
        # inputs (idempotent re-execution)
        backup_sv = state.sv.copy()
        backup_ext = {k: v.copy() for k, v in state.externals.items()}
        now = state.time
        pending: Dict[int, Tuple[int, int, int]] = {}
        deadlines: Dict[int, float] = {}
        attempts: Dict[int, int] = {}
        for slot, (start, end) in enumerate(shards):
            pending[slot] = (self._dispatch(slot, start, end, dt, now),
                             start, end)
            deadlines[slot] = time.monotonic() + self.config.task_timeout
            attempts[slot] = 0
        while pending:
            for slot in list(pending):
                seq, start, end = pending[slot]
                failure = self._poll_slot(slot, seq, deadlines[slot])
                if failure == "pending":
                    continue
                if failure is None:
                    del pending[slot]
                    continue
                attempts[slot] += 1
                _metrics.counter(
                    "shard_retries_total",
                    "shard tasks re-dispatched after a failure").inc()
                kind = _failure_kind(failure)
                _metrics.counter(
                    "worker_failures_total",
                    "supervised worker failures by shard and reason",
                    labelnames=("shard", "reason")).labels(
                        shard=str(slot), reason=kind).inc()
                _trace.instant("shard_failure", slot=slot,
                               attempt=attempts[slot], reason=failure)
                _flight.record("worker_failure", slot=slot,
                               step=state.steps_done, reason=kind,
                               detail=failure,
                               heartbeat_age=self._heartbeat_age(slot),
                               attempt=attempts[slot])
                if attempts[slot] > self.config.max_retries:
                    raise SupervisedExecutionError(
                        f"shard {slot} [{start}, {end}) failed "
                        f"{attempts[slot]} times at step "
                        f"{state.steps_done} ({failure})",
                        slot=slot, attempts=attempts[slot],
                        step=state.steps_done)
                self._restart_worker(slot, failure,
                                     step=state.steps_done)
                self._restore_shard(state, backup_sv, backup_ext,
                                    start, end)
                time.sleep(self.config.retry_backoff
                           * (2 ** (attempts[slot] - 1)))
                pending[slot] = (self._dispatch(slot, start, end, dt,
                                                now), start, end)
                deadlines[slot] = (time.monotonic()
                                   + self.config.task_timeout)

    def _poll_slot(self, slot: int, seq: int,
                   deadline: float) -> Optional[str]:
        """None = task done; "pending" = keep waiting; else the
        failure reason."""
        conn = self._conns[slot]
        try:
            while conn.poll(0.01):
                reply = conn.recv()
                self._harvest_events(reply)
                if reply[1] != seq:
                    continue            # stale reply from a pre-retry task
                if reply[0] == "ok":
                    return None
                return f"worker exception {reply[2]}: {reply[3]}"
        except (EOFError, OSError):
            return "worker pipe closed"
        proc = self._procs[slot]
        if proc is None or not proc.is_alive():
            code = proc.exitcode if proc is not None else None
            return f"worker died (exit code {code})"
        age = time.monotonic() - float(self._hb_view[slot])
        if age > self.config.heartbeat_timeout:
            return f"heartbeat stalled ({age:.2f}s old)"
        if time.monotonic() > deadline:
            return "task deadline exceeded"
        return "pending"

    def _restore_shard(self, state: SimulationState,
                       backup_sv: np.ndarray, backup_ext: Dict,
                       start: int, end: int) -> None:
        """Roll one shard's slice back to the pre-step backup.

        Shard bounds are width-aligned, so for AoS and AoSoA the cell
        range ``[start, end)`` is exactly the flat sv slice
        ``[start * n_states, end * n_states)``; SoA never reaches here
        (refused for >1 worker at construction).
        """
        n_states = len(self.model.states)
        state.sv[start * n_states:end * n_states] = \
            backup_sv[start * n_states:end * n_states]
        for name, saved in backup_ext.items():
            state.externals[name][start:end] = saved[start:end]

    def _dispatch(self, slot: int, start: int, end: int, dt: float,
                  now: float) -> int:
        self._seq += 1
        try:
            self._conns[slot].send(("step", self._seq, start, end, dt,
                                    now))
        except (OSError, BrokenPipeError):
            pass    # the poll path will see the dead worker and retry
        return self._seq

    # -- worker lifecycle ----------------------------------------------------------

    def _ensure_workers(self, state: SimulationState) -> None:
        if self._procs:
            return
        shards = self.shards_for(state)
        if len(shards) <= 1:
            return                      # nothing to supervise: inline
        n = len(shards)
        self._hb_shm = _shm_mod.SharedMemory(create=True,
                                             size=max(8 * n, 8))
        self._hb_view = np.ndarray((n,), dtype=np.float64,
                                   buffer=self._hb_shm.buf)
        self._hb_view[:] = time.monotonic()
        self._procs = [None] * n
        self._conns = [None] * n
        self._spawns = [0] * n
        ctx = mp.get_context("fork")
        for slot in range(n):
            self._spawn_worker(ctx, slot)
        _metrics.gauge("supervised_workers",
                       "live worker processes of the supervised "
                       "tier").set(n)

    def _fault_for_slot(self, slot: int) -> Optional[_WorkerFault]:
        plan = self.fault_plan
        if plan is None or self._spawns[slot] > 0:
            return None                 # faults arm only the first life
        kill_at = getattr(plan, "kill_worker_at_task", None) \
            if getattr(plan, "kill_worker", None) == slot else None
        stall_at = getattr(plan, "stall_worker_at_task", None) \
            if getattr(plan, "stall_worker", None) == slot else None
        if kill_at is None and stall_at is None:
            return None
        return _WorkerFault(
            kill_at_task=kill_at, stall_at_task=stall_at,
            stall_seconds=getattr(plan, "stall_worker_seconds", 30.0))

    def _spawn_worker(self, ctx, slot: int) -> None:
        fault = self._fault_for_slot(slot)
        self._spawns[slot] += 1
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        # hand the worker the parent's trace identity (fork start
        # method: the TraceContext object travels in-memory)
        tracer = _trace.active_tracer()
        trace_ctx = tracer.context() if tracer is not None else None
        proc = ctx.Process(
            target=_worker_entry,
            args=(self, self._attached, slot, child_conn, self._hb_view,
                  self.config, fault, trace_ctx),
            daemon=True, name=f"limpet-worker-{slot}")
        proc.start()
        child_conn.close()
        self._hb_view[slot] = time.monotonic()  # fresh grace period
        self._procs[slot] = proc
        self._conns[slot] = parent_conn

    def _restart_worker(self, slot: int, reason: str,
                        step: int = -1) -> None:
        self._kill_worker(slot)
        _metrics.counter("worker_restarts_total",
                         "supervised workers killed and "
                         "respawned").inc()
        from ..resilience.diagnostics import (Diagnostic, Severity,
                                              log_diagnostic)
        diag = Diagnostic(
            stage="run", component="supervised",
            message=f"restarted worker {slot}: {reason}",
            severity=Severity.WARNING,
            data={"slot": slot, "reason": reason, "step": step,
                  "model": self.model.name})
        log_diagnostic(diag)
        self.diagnostics.append(diag)
        # black-box the moments before the death; the respawn marker
        # lands in the merged trace next to the dead worker's spans
        _flight.dump("worker_death",
                     extra={"slot": slot, "reason": reason,
                            "step": step, "model": self.model.name,
                            "spawns": self._spawns[slot]})
        self._spawn_worker(mp.get_context("fork"), slot)
        _trace.instant("worker_respawn", slot=slot, reason=reason,
                       spawn=self._spawns[slot])

    def _heartbeat_age(self, slot: int) -> Optional[float]:
        if self._hb_view is None or slot >= len(self._hb_view):
            return None
        return round(time.monotonic() - float(self._hb_view[slot]), 3)

    def _harvest_events(self, reply) -> None:
        """Merge the span events piggybacked on a worker reply into the
        parent tracer (every reply is harvested, even stale ones — a
        pre-retry task's spans are still real work that happened)."""
        if reply and isinstance(reply[-1], list) and reply[-1]:
            tracer = _trace.active_tracer()
            if tracer is not None:
                tracer.add_foreign_events(reply[-1])

    def _drain_conn(self, conn) -> None:
        """Best-effort harvest of every reply still queued on a pipe.

        Called before a worker's pipe is closed (kill, restart, or
        shutdown — including the SIGTERM path, which runs the cleanup
        hooks *before* the tracer is flushed and written), so span
        buffers in flight when a run is interrupted reach the merged
        trace instead of dying with the pipe.
        """
        if conn is None:
            return
        try:
            while conn.poll(0):
                self._harvest_events(conn.recv())
        except (EOFError, OSError):
            pass                        # sender already gone

    def _kill_worker(self, slot: int) -> None:
        conn = self._conns[slot]
        if conn is not None:
            self._drain_conn(conn)
            try:
                conn.close()
            except OSError:
                pass
            self._conns[slot] = None
        proc = self._procs[slot]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
                if proc.is_alive():     # pragma: no cover - stubborn
                    proc.kill()
                    proc.join(timeout=1.0)
            self._procs[slot] = None

    def _shutdown_workers(self) -> None:
        for slot, conn in enumerate(self._conns):
            if conn is not None:
                try:
                    conn.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
        for slot, proc in enumerate(self._procs):
            if proc is not None:
                proc.join(timeout=0.5)
            self._kill_worker(slot)
        self._procs = []
        self._conns = []
        self._spawns = []
        if self._hb_shm is not None:
            self._hb_view = None
            try:
                self._hb_shm.close()
            except BufferError:         # pragma: no cover - exported view
                pass
            try:
                self._hb_shm.unlink()
            except FileNotFoundError:   # pragma: no cover - already gone
                pass
            self._hb_shm = None
        _metrics.gauge("supervised_workers",
                       "live worker processes of the supervised "
                       "tier").set(0)

    # -- shared-memory state attach/detach -----------------------------------------

    def _attach_state(self, state: SimulationState) -> None:
        """Move ``state``'s arrays into one shared-memory segment and
        rebind the state to views of it (workers fork after this, so
        they inherit the views)."""
        if self._attached is state:
            return
        if self._attached is not None:
            self._detach_state()
        total = state.sv.nbytes + sum(a.nbytes
                                      for a in state.externals.values())
        self._state_shm = _shm_mod.SharedMemory(create=True,
                                                size=max(total, 1))
        buf = self._state_shm.buf
        offset = 0
        sv_view = np.ndarray(state.sv.shape, dtype=state.sv.dtype,
                             buffer=buf, offset=offset)
        sv_view[...] = state.sv
        offset += state.sv.nbytes
        ext_views: Dict[str, np.ndarray] = {}
        for name, array in state.externals.items():
            view = np.ndarray(array.shape, dtype=array.dtype,
                              buffer=buf, offset=offset)
            view[...] = array
            offset += array.nbytes
            ext_views[name] = view
        self._orig_arrays = (state.sv, dict(state.externals))
        state.sv = sv_view
        state.externals.update(ext_views)
        self._attached = state
        self._bound = None              # stale prebound args hold old arrays

    def _detach_state(self) -> None:
        """Shut the workers down, copy the shared segment back into the
        original arrays, rebind the state, and unlink the segment."""
        state = self._attached
        if state is None:
            return
        self._shutdown_workers()        # workers hold views of this segment
        orig_sv, orig_ext = self._orig_arrays
        orig_sv[...] = state.sv
        for name, array in orig_ext.items():
            array[...] = state.externals[name]
        state.sv = orig_sv
        state.externals.update(orig_ext)
        self._attached = None
        self._orig_arrays = None
        self._bound = None              # release view refs before close
        try:
            self._state_shm.close()
        except BufferError:             # pragma: no cover - exported view
            pass
        try:
            self._state_shm.unlink()
        except FileNotFoundError:       # pragma: no cover - already gone
            pass
        self._state_shm = None

    # -- lifecycle ------------------------------------------------------------------

    def close(self) -> None:
        self._detach_state()
        self._shutdown_workers()
        _ACTIVE_RUNNERS.discard(self)
        super().close()

    def __enter__(self) -> "SupervisedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
