"""``limpet-bench`` — the command-line front door.

Subcommands:

* ``list`` — the 43-model suite with size classes;
* ``describe MODEL`` — the frontend's analysis of one model;
* ``ir MODEL`` — print the generated IR (``--pretty`` for MLIR-like
  sugar, ``--backend`` to pick the code generator);
* ``run MODEL`` — execute a real simulation and report wall time
  (resilient by default: backend fallback chain + optional watchdog;
  ``--strict`` fails fast instead, for CI);
* ``compare MODEL`` — run baseline and limpetMLIR engines, check the
  trajectories agree and report the measured speedup;
* ``figure {fig2,fig3,fig4,fig5,fig6}`` — regenerate a paper figure's
  data from the modeled Cascade Lake bench;
* ``perf`` — measured performance-layer comparison (baseline / fused /
  fused+cached / sharded) with the steady-state harness;
* ``tune`` — the cost-model-guided kernel autotuner: tune one workload
  (``--model``), run the BENCH_PR3 ablation (``--report``), or clear
  the persistent tuning DB (``--clear``);
* ``sweep MODEL --param NAME=lo:hi:N`` — population-batched parameter
  sweep: one kernel advances all N parameter-perturbed instances,
  timed against the loop-of-N shape it replaces (BENCH_PR7), with a
  bitwise differential gate between the two;
* ``build-all`` — AOT-compile the whole model zoo (plus tuned variants
  recorded in the tuning DB) into a versioned artifact bundle; any
  process pointed at it via ``$LIMPET_ARTIFACT_DIR`` cold-starts with
  zero compile work (see :mod:`repro.aot` and DESIGN.md §12);
* ``artifacts {audit,list}`` — staleness audit of a bundle (re-derives
  keys, flags pipeline/lowering/tuning/source drift, quarantines
  corrupt entries; nonzero exit when anything drifted) / manifest
  listing;
* ``coldstart`` — the BENCH_PR8 measurement: JIT vs artifact-bundle
  time-to-first-step in fresh child processes, with bitwise and
  zero-compile-span proof;
* ``cache-stats`` — kernel-cache and LUT-cache statistics;
* ``trace MODEL`` — compile + run one model under the tracer and emit
  the span tree (parse -> frontend -> irgen -> passes -> lowering ->
  run, with per-pass op-count deltas) plus Chrome trace-event JSON
  loadable in ``chrome://tracing`` / https://ui.perfetto.dev;
  ``--profile`` adds the measured per-op hot table;
* ``metrics`` — run a small representative workload and dump the
  process metrics registry (``--json`` snapshot or ``--prom``
  Prometheus text exposition);
* ``faults`` — the fault-injection drill: deterministically break a
  pass, corrupt IR, poison a run with NaNs, fail backends, kill and
  stall supervised workers, corrupt on-disk cache entries — then
  check the resilience layer recovers from every one;
* ``ledger`` — inspect the append-only run ledger ($LIMPET_LEDGER):
  every run/compile/degradation row, ``--summary`` per-model rollup;
* ``flight`` — show/list crash flight-recorder dumps (the bounded ring
  of recent spans/metrics written on worker death, degradation,
  quarantine or unhandled exception).

``perf --baseline BENCH_PR8.json`` switches ``perf`` into the
regression gate: re-measure the baseline's configuration and exit
non-zero when a tracked metric regressed beyond ``--tolerance``
(``--inject-slowdown`` self-tests the trip wire).  ``trace MODEL
--workers N`` runs on the supervised tier and merges worker spans into
one multi-pid trace; ``trace --merge DIR`` stitches per-process
``trace-*.json`` files offline.

``run --workers N`` executes on the supervised multiprocess tier
(crash-isolated worker processes over shared memory; see
:mod:`repro.runtime.supervised`).

Setting ``$LIMPET_TRACE=<dir>`` captures a Chrome trace from *any*
subcommand into ``<dir>/trace-<command>-<pid>.json``; SIGINT/SIGTERM
reap workers, unlink shared memory and still flush the trace.

Exit codes are structured for CI: 0 success, 1 result failure
(mismatch / not vectorizable), 2 usage (argparse), 3 compiled only via
a fallback tier, 4 compile failed outright, 5 numerical divergence
unrecovered, 6 fault-injection drill failed, 130 interrupted.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import List, Optional

from .bench import (figure_isa_sweep, figure_roofline, figure_scaling,
                    figure_speedups, format_isa_sweep, format_scaling_table,
                    format_speedup_table, format_sweep_table,
                    generate_variant, resilient_sweep)
from .codegen import check_simd_legality
from .ir import print_module, verify_module
from .ir.passes import default_pipeline
from .machine import format_roofline_table
from .models import (ALL_MODELS, UNSUPPORTED_MODELS,
                     all_model_files, list_models, load_model)
from .resilience import (FaultInjector, FaultPlan, NumericalDivergenceError,
                         ResilientCompileError, WatchdogConfig,
                         compile_resilient, format_trail, load_reproducer)
from .runtime import Stimulus, compare_trajectories

#: structured exit codes (documented above; mapped from Diagnostics)
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_FELL_BACK = 3
EXIT_COMPILE_FAILED = 4
EXIT_NUMERICAL = 5
EXIT_FAULTS = 6

#: chain starting points: requesting a tier tries it, then weaker tiers
_CHAINS = {
    "limpet_mlir": ("limpet_mlir", "icc_simd", "baseline"),
    "icc_simd": ("icc_simd", "baseline"),
    "baseline": ("baseline",),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0.0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_model_argument(parser: argparse.ArgumentParser,
                        include_unsupported: bool = False) -> None:
    choices = all_model_files() if include_unsupported else ALL_MODELS
    parser.add_argument("model", choices=choices, metavar="MODEL",
                        help="ionic model name (see 'limpet-bench list')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="limpet-bench",
        description="limpetMLIR reproduction bench (CGO'23)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the 43-model suite")
    list_cmd.set_defaults(func=lambda args: cmd_list())

    describe = sub.add_parser("describe", help="frontend analysis summary")
    _add_model_argument(describe, include_unsupported=True)
    describe.set_defaults(func=lambda args: cmd_describe(args.model))

    legality = sub.add_parser(
        "legality", help="check the paper's SIMD criteria (paper section 5)")
    _add_model_argument(legality, include_unsupported=True)
    legality.set_defaults(func=lambda args: cmd_legality(args.model))

    ir_cmd = sub.add_parser("ir", help="print generated IR")
    _add_model_argument(ir_cmd)
    ir_cmd.add_argument("--backend", default="limpet_mlir",
                        choices=("baseline", "limpet_mlir", "icc_simd"))
    ir_cmd.add_argument("--width", type=int, default=8,
                        choices=(2, 4, 8))
    ir_cmd.add_argument("--pretty", action="store_true",
                        help="MLIR-like sugared syntax")
    ir_cmd.add_argument("--no-opt", action="store_true",
                        help="skip the pass pipeline")
    ir_cmd.set_defaults(func=lambda args: cmd_ir(
        args.model, args.backend, args.width, args.pretty, args.no_opt))

    run_cmd = sub.add_parser("run", help="run a real simulation")
    _add_model_argument(run_cmd, include_unsupported=True)
    run_cmd.add_argument("--backend", default="limpet_mlir",
                         choices=("baseline", "limpet_mlir", "icc_simd"))
    run_cmd.add_argument("--width", type=int, default=8, choices=(2, 4, 8))
    run_cmd.add_argument("--cells", type=_positive_int, default=1024)
    run_cmd.add_argument("--steps", type=_positive_int, default=200)
    run_cmd.add_argument("--dt", type=_positive_float, default=0.01)
    run_cmd.add_argument("--strict", action="store_true",
                         help="disable the backend fallback chain "
                              "(fail fast, for CI)")
    run_cmd.add_argument("--watchdog", default="off",
                         choices=("off", "raise", "halve_dt",
                                  "abort_cell_report"),
                         help="numerical watchdog policy (default: off)")
    run_cmd.add_argument("--workers", type=_positive_int, default=None,
                         help="run on the supervised multiprocess tier "
                              "with this many crash-isolated worker "
                              "processes (default: in-process)")
    run_cmd.set_defaults(func=lambda args: cmd_run(
        args.model, args.backend, args.width, args.cells, args.steps,
        args.dt, args.strict, args.watchdog, args.workers))

    compare = sub.add_parser(
        "compare", help="baseline vs limpetMLIR: equivalence + speedup")
    _add_model_argument(compare)
    compare.add_argument("--cells", type=_positive_int, default=512)
    compare.add_argument("--steps", type=_positive_int, default=100)
    compare.add_argument("--strict", action="store_true",
                         help="disable the backend fallback chain")
    compare.set_defaults(func=lambda args: cmd_compare(
        args.model, args.cells, args.steps, args.strict))

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("which",
                        choices=("fig2", "fig3", "fig4", "fig5", "fig6"))
    figure.set_defaults(func=lambda args: cmd_figure(args.which))

    perf = sub.add_parser(
        "perf", help="measured performance-layer comparison "
                     "(baseline / fused / fused+cached / sharded)")
    perf.add_argument("--model", default=None, metavar="MODEL",
                      choices=ALL_MODELS,
                      help="model to benchmark (default: the canonical "
                           "config's model)")
    perf.add_argument("--cells", type=_positive_int, default=None)
    perf.add_argument("--steps", type=_positive_int, default=None)
    perf.add_argument("--dt", type=_positive_float, default=None)
    perf.add_argument("--width", type=int, default=None,
                      choices=(2, 4, 8),
                      help="vector width for the limpetMLIR variants "
                           "(default: the canonical width, 8)")
    perf.add_argument("--threads", type=_positive_int, default=4,
                      help="shard count for the sharded variant")
    perf.add_argument("--runs", type=_positive_int, default=5,
                      help="timing runs per variant (paper protocol: 5)")
    perf.add_argument("--json", default=None, metavar="PATH",
                      help="also write the report as JSON (BENCH_PR2)")
    perf.add_argument("--check", action="store_true",
                      help="fail (exit 1) unless fused >= unfused and "
                           "the cache hit sped up construction")
    perf.add_argument("--baseline", default=None, metavar="PATH",
                      help="regression-gate mode: re-measure the given "
                           "BENCH_*.json's configuration and fail "
                           "(exit 1) on any metric regressed beyond "
                           "--tolerance")
    perf.add_argument("--tolerance", type=_positive_float, default=0.15,
                      help="allowed fractional regression per metric "
                           "in --baseline mode (default: 0.15)")
    perf.add_argument("--repeats", type=_positive_int, default=2,
                      help="--baseline mode: best-of-N re-measurements "
                           "for noisy cold-start benchmarks (default 2)")
    perf.add_argument("--inject-slowdown", type=_positive_float,
                      default=None, metavar="FACTOR", dest="slowdown",
                      help="--baseline mode self-test: synthetically "
                           "degrade every current metric by FACTOR so "
                           "the gate demonstrably trips")
    perf.set_defaults(func=lambda args: cmd_perf(
        args.model, args.cells, args.steps, args.dt, args.threads,
        args.runs, args.json, args.check, args.width, args.baseline,
        args.tolerance, args.repeats, args.slowdown))

    tune = sub.add_parser(
        "tune", help="cost-model-guided kernel autotuner "
                     "(enumerate / rank / measure / persist)")
    tune.add_argument("--model", default=None, metavar="MODEL",
                      choices=ALL_MODELS,
                      help="workload model to tune (omit with --report "
                           "or --clear)")
    tune.add_argument("--cells", type=_positive_int, default=None,
                      help="workload cell count (default: 512; "
                           "--report: 4096)")
    tune.add_argument("--steps", type=_positive_int, default=None,
                      help="steps per timed sample (default: 20; "
                           "--report: 10)")
    tune.add_argument("--dt", type=_positive_float, default=0.01)
    tune.add_argument("--top-k", type=_positive_int, default=5,
                      help="cost-model candidates to measure-refine")
    tune.add_argument("--repeats", type=_positive_int, default=5,
                      help="timed samples per candidate")
    tune.add_argument("--db", default=None, metavar="PATH",
                      help="tuning DB path (default: $LIMPET_TUNE_DB or "
                           "~/.cache/limpet-repro/tuning.json)")
    tune.add_argument("--json", default=None, metavar="PATH",
                      help="also write the result as JSON "
                           "(--report: BENCH_PR3)")
    tune.add_argument("--force", action="store_true",
                      help="re-measure even on a tuning-DB hit")
    tune.add_argument("--clear", action="store_true",
                      help="delete all tuning-DB records first")
    tune.add_argument("--report", action="store_true",
                      help="BENCH_PR3 ablation over the five "
                           "representative models")
    tune.add_argument("--check", action="store_true",
                      help="fail (exit 1) unless the acceptance "
                           "criteria hold")
    tune.set_defaults(func=lambda args: cmd_tune(
        args.model, args.cells, args.steps, args.dt, args.top_k,
        args.repeats, args.db, args.json, args.force, args.clear,
        args.report, args.check))

    sweep_cmd = sub.add_parser(
        "sweep", help="population-batched parameter sweep: one kernel "
                      "advancing N parameter-perturbed instances, timed "
                      "against the loop-of-N shape (BENCH_PR7)")
    _add_model_argument(sweep_cmd)
    sweep_cmd.add_argument("--param", action="append", default=None,
                           metavar="NAME=lo:hi:N", dest="params",
                           help="parameter range to sweep; repeatable. "
                                "lo/hi scale the model default unless "
                                "--absolute; N defaults to 16")
    sweep_cmd.add_argument("--absolute", action="store_true",
                           help="range bounds are absolute values, not "
                                "multiples of the model default")
    sweep_cmd.add_argument("--cells", type=_positive_int, default=256,
                           help="cells per instance (default 256)")
    sweep_cmd.add_argument("--steps", type=_positive_int, default=50)
    sweep_cmd.add_argument("--dt", type=_positive_float, default=0.01)
    sweep_cmd.add_argument("--runs", type=_positive_int, default=5,
                           help="timing runs per variant")
    sweep_cmd.add_argument("--width", type=int, default=8,
                           choices=(2, 4, 8))
    sweep_cmd.add_argument("--json", default=None, metavar="PATH",
                           help="also write the report as JSON "
                                "(BENCH_PR7)")
    sweep_cmd.add_argument("--check", action="store_true",
                           help="fail (exit 1) unless batched beats the "
                                "loop by >= 1.5x with warm-cache reuse")
    sweep_cmd.set_defaults(func=lambda args: cmd_sweep(
        args.model, args.params, args.absolute, args.cells, args.steps,
        args.dt, args.runs, args.width, args.json, args.check))

    build_all = sub.add_parser(
        "build-all", help="AOT-compile the model zoo into a versioned "
                          "artifact bundle (zero-compile cold start)")
    build_all.add_argument("--dest", default=None, metavar="DIR",
                           help="bundle directory (default: "
                                "$LIMPET_ARTIFACT_DIR)")
    build_all.add_argument("--models", nargs="+", default=None,
                           metavar="MODEL", choices=all_model_files(),
                           help="subset to build (default: all models)")
    build_all.add_argument("--width", type=int, default=8,
                           choices=(2, 4, 8))
    build_all.add_argument("--no-tuned", action="store_true",
                           help="skip tuned variants recorded in the "
                                "tuning DB")
    build_all.add_argument("--db", default=None, metavar="PATH",
                           help="tuning DB path (default: "
                                "$LIMPET_TUNE_DB)")
    build_all.set_defaults(func=lambda args: cmd_build_all(
        args.dest, args.models, args.width, args.no_tuned, args.db))

    artifacts = sub.add_parser(
        "artifacts", help="inspect / audit an AOT artifact bundle")
    artifacts.add_argument("action", choices=("audit", "list"))
    artifacts.add_argument("--dir", default=None, metavar="DIR",
                           help="bundle directory (default: "
                                "$LIMPET_ARTIFACT_DIR)")
    artifacts.add_argument("--db", default=None, metavar="PATH",
                           help="tuning DB path for tuning-drift checks")
    artifacts.add_argument("--no-deep", action="store_true",
                           help="audit: skip key re-derivation "
                                "(metadata checks only)")
    artifacts.add_argument("--json", default=None, metavar="PATH",
                           help="also write the report as JSON")
    artifacts.set_defaults(func=lambda args: cmd_artifacts(
        args.action, args.dir, args.db, args.no_deep, args.json))

    coldstart = sub.add_parser(
        "coldstart", help="JIT vs AOT-bundle cold start in fresh child "
                          "processes (BENCH_PR8)")
    coldstart.add_argument("--models", nargs="+", default=None,
                           metavar="MODEL", choices=ALL_MODELS,
                           help="models to measure (default: the "
                                "representative set)")
    coldstart.add_argument("--bundle", default=None, metavar="DIR",
                           help="existing bundle to mount (default: "
                                "build a fresh one into a temp dir)")
    coldstart.add_argument("--cells", type=_positive_int, default=64)
    coldstart.add_argument("--steps", type=_positive_int, default=50)
    coldstart.add_argument("--width", type=int, default=8,
                           choices=(2, 4, 8))
    coldstart.add_argument("--json", default=None, metavar="PATH",
                           help="also write the report as JSON "
                                "(BENCH_PR8)")
    coldstart.add_argument("--check", action="store_true",
                           help="fail (exit 1) unless bitwise identity, "
                                "zero compile spans, and >= 5x on >= 3 "
                                "models hold")
    coldstart.set_defaults(func=lambda args: cmd_coldstart(
        args.models, args.bundle, args.cells, args.steps, args.width,
        args.json, args.check))

    cache_stats = sub.add_parser(
        "cache-stats", help="kernel-cache and LUT-cache statistics")
    cache_stats.add_argument("--cache-dir", default=None,
                             help="kernel cache directory (default: "
                                  "$LIMPET_CACHE_DIR or "
                                  "~/.cache/limpet-repro/kernels)")
    cache_stats.add_argument("--clear", action="store_true",
                             help="delete all cached kernel entries")
    cache_stats.set_defaults(func=lambda args: cmd_cache_stats(
        args.cache_dir, args.clear))

    trace_cmd = sub.add_parser(
        "trace", help="compile + run one model under the tracer; "
                      "emit the span tree and Chrome trace JSON")
    trace_cmd.add_argument("model", nargs="?", default=None,
                           choices=ALL_MODELS, metavar="MODEL",
                           help="ionic model name (see 'limpet-bench "
                                "list'); optional with --merge")
    trace_cmd.add_argument("--backend", default="limpet_mlir",
                           choices=("baseline", "limpet_mlir", "icc_simd"))
    trace_cmd.add_argument("--width", type=int, default=8,
                           choices=(2, 4, 8))
    trace_cmd.add_argument("--cells", type=_positive_int, default=256)
    trace_cmd.add_argument("--steps", type=_positive_int, default=50)
    trace_cmd.add_argument("--dt", type=_positive_float, default=0.01)
    trace_cmd.add_argument("--workers", type=_positive_int, default=0,
                           metavar="N",
                           help="run on the supervised tier with N "
                                "forked workers; their spans stream "
                                "back into one multi-pid trace")
    trace_cmd.add_argument("--merge", default=None, metavar="DIR",
                           help="instead of running: stitch every "
                                "trace-*.json under DIR into one "
                                "wall-clock-aligned trace (--out)")
    trace_cmd.add_argument("--out", default=None, metavar="PATH",
                           help="trace-event JSON output path "
                                "(default: trace_MODEL.json)")
    trace_cmd.add_argument("--profile", action="store_true",
                           help="lower in profile mode and print the "
                                "measured per-op hot table")
    trace_cmd.set_defaults(func=lambda args: cmd_trace(
        args.model, args.backend, args.width, args.cells, args.steps,
        args.dt, args.out, args.profile, args.workers, args.merge))

    metrics_cmd = sub.add_parser(
        "metrics", help="run a representative workload and dump the "
                        "process metrics registry")
    metrics_fmt = metrics_cmd.add_mutually_exclusive_group()
    metrics_fmt.add_argument("--json", action="store_true",
                             help="JSON snapshot (the default)")
    metrics_fmt.add_argument("--prom", action="store_true",
                             help="Prometheus text exposition format")
    metrics_cmd.set_defaults(func=lambda args: cmd_metrics(args.prom))

    faults = sub.add_parser(
        "faults", help="fault-injection drill for the resilience layer")
    faults.add_argument("--smoke", action="store_true",
                        help="fast subset (CI smoke job)")
    faults.add_argument("--reproducer-dir", default=None,
                        help="where quarantined passes write reproducer "
                             "bundles (default: a temporary directory)")
    faults.set_defaults(func=lambda args: cmd_faults(
        args.smoke, args.reproducer_dir))

    ledger_cmd = sub.add_parser(
        "ledger", help="inspect the append-only run ledger "
                       "($LIMPET_LEDGER)")
    ledger_cmd.add_argument("--path", default=None, metavar="PATH",
                            help="ledger file (default: $LIMPET_LEDGER)")
    ledger_cmd.add_argument("--tail", type=_positive_int, default=None,
                            metavar="N", help="only the last N rows")
    ledger_cmd.add_argument("--model", default=None, metavar="MODEL",
                            help="only rows for this model")
    ledger_cmd.add_argument("--event", default=None, metavar="EVENT",
                            help="only rows of this event kind "
                                 "(run / compile / degradation / ...)")
    ledger_fmt = ledger_cmd.add_mutually_exclusive_group()
    ledger_fmt.add_argument("--json", action="store_true",
                            help="raw rows as JSON lines")
    ledger_fmt.add_argument("--summary", action="store_true",
                            help="per-model rollup (events, "
                                 "dispositions, tiers, best rates)")
    ledger_cmd.set_defaults(func=lambda args: cmd_ledger(
        args.path, args.tail, args.model, args.event, args.json,
        args.summary))

    flight_cmd = sub.add_parser(
        "flight", help="inspect crash flight-recorder dumps")
    flight_cmd.add_argument("action", nargs="?", default="show",
                            choices=("show", "list"),
                            help="'show' the latest dump (default) or "
                                 "'list' all dumps")
    flight_cmd.add_argument("--dir", default=None, metavar="DIR",
                            help="dump directory (default: "
                                 "$LIMPET_FLIGHT_DIR or "
                                 "~/.cache/limpet-repro/flight)")
    flight_cmd.add_argument("--last", type=_positive_int, default=40,
                            metavar="N",
                            help="events shown from the end of the "
                                 "ring (default 40)")
    flight_cmd.add_argument("--json", action="store_true",
                            help="raw dump payload as JSON")
    flight_cmd.set_defaults(func=lambda args: cmd_flight(
        args.action, args.dir, args.last, args.json))
    return parser


def cmd_list() -> int:
    print(f"{'model':<24} {'class':<8} {'limpetMLIR':<11} {'source'}")
    for entry in list_models():
        source = "literature" if entry.hand_written else "synthesized"
        print(f"{entry.name:<24} {entry.size_class:<8} {'yes':<11} "
              f"{source}")
    for name in UNSUPPORTED_MODELS:
        print(f"{name:<24} {'small':<8} {'no (foreign)':<11} literature")
    print(f"\n{len(all_model_files())} models shipped, "
          f"{len(ALL_MODELS)} limpetMLIR-supported "
          f"(8 small / 22 medium / 13 large), 4 baseline-only — "
          f"matching the paper (section 3.3.2, section 4.1)")
    return EXIT_OK


def cmd_legality(model_name: str) -> int:
    report = check_simd_legality(load_model(model_name))
    print(report.describe())
    return EXIT_OK if report.vectorizable else EXIT_FAILURE


def cmd_describe(model_name: str) -> int:
    model = load_model(model_name)
    print(model.describe())
    for warning in model.warnings:
        print(f"warning: {warning}")
    return EXIT_OK


def cmd_ir(model_name: str, backend: str, width: int, pretty: bool,
           no_opt: bool) -> int:
    model = load_model(model_name)
    kernel = generate_variant(model, backend, width)
    if not no_opt:
        default_pipeline(verify_each=False).run(kernel.module,
                                                fixed_point=True)
    sys.stdout.write(print_module(kernel.module, pretty=pretty))
    return EXIT_OK


def cmd_run(model_name: str, backend: str, width: int, cells: int,
            steps: int, dt: float, strict: bool = False,
            watchdog: str = "off", workers: Optional[int] = None) -> int:
    chain = _CHAINS[backend]
    try:
        compiled = compile_resilient(model_name, chain=chain, width=width,
                                     strict=strict)
    except ResilientCompileError as err:
        print(format_trail(err.diagnostics))
        print(f"{model_name}: all backend tiers failed", file=sys.stderr)
        return EXIT_COMPILE_FAILED
    except Exception as err:  # noqa: BLE001 - strict mode fails fast
        print(f"{model_name}: compile failed ({type(err).__name__}): {err}",
              file=sys.stderr)
        return EXIT_COMPILE_FAILED
    runner = compiled.runner
    supervised = None
    if workers and workers > 1:
        from .runtime import SupervisedRunner
        supervised = SupervisedRunner(compiled.kernel, n_workers=workers)
        runner = supervised
    guard = None if watchdog == "off" else WatchdogConfig(policy=watchdog)
    try:
        result = None
        seconds = float("inf")
        for _ in range(3):              # the paper's best-of-N protocol
            result = runner.simulate(cells, steps, dt, watchdog=guard)
            seconds = min(seconds, result.elapsed_seconds)
    except NumericalDivergenceError as err:
        print(err.report.summary())
        print(f"{model_name}: numerical divergence unrecovered: {err}",
              file=sys.stderr)
        return EXIT_NUMERICAL
    finally:
        if supervised is not None:
            supervised.close()
    per_cell_step = seconds / (cells * steps) * 1e9
    tier = f", {supervised.tier} x{workers}" if supervised else ""
    print(f"{model_name} [{compiled.backend}, width "
          f"{compiled.kernel.spec.width}{tier}]: "
          f"{cells} cells x {steps} steps in {seconds * 1e3:.1f} ms "
          f"({per_cell_step:.1f} ns/cell-step)")
    if supervised is not None and supervised.diagnostics:
        print(format_trail(supervised.diagnostics))
    if result.health is not None:
        print(result.health.summary())
    if compiled.fell_back:
        print(f"note: requested {backend!r} unavailable, "
              f"fell back to {compiled.backend!r}:")
        print(format_trail([d for d in compiled.diagnostics
                            if d.error_type]))
        return EXIT_FELL_BACK
    if result.health is not None and not result.health.ok:
        return EXIT_NUMERICAL
    return EXIT_OK


def cmd_compare(model_name: str, cells: int, steps: int,
                strict: bool = False) -> int:
    model = load_model(model_name)
    try:
        base = compile_resilient(model, chain=("baseline",), strict=strict)
        vec = compile_resilient(model, width=8, strict=strict)
    except Exception as err:  # noqa: BLE001 - strict mode fails fast
        print(f"{model_name}: compile failed ({type(err).__name__}): {err}",
              file=sys.stderr)
        return EXIT_COMPILE_FAILED
    stim = Stimulus(amplitude=-20.0 if
                    abs(model.external_init.get("Vm", 0.0)) > 5 else -0.3,
                    duration=1.0, period=400.0)
    res_base = base.runner.simulate(cells, steps, stimulus=stim,
                                    perturbation=0.005)
    res_vec = vec.runner.simulate(cells, steps, stimulus=stim,
                                  perturbation=0.005)
    comparison = compare_trajectories(res_base.state, res_vec.state)
    speedup = res_base.elapsed_seconds / res_vec.elapsed_seconds
    print(f"{model_name}: baseline {res_base.elapsed_seconds * 1e3:.1f} ms, "
          f"limpetMLIR {res_vec.elapsed_seconds * 1e3:.1f} ms "
          f"-> measured speedup {speedup:.1f}x")
    print(f"trajectories equivalent: {bool(comparison)}")
    if not comparison:
        print(comparison.describe())
    if vec.fell_back:
        print(f"note: limpetMLIR tier unavailable, compared against "
              f"{vec.backend!r}")
        return EXIT_FELL_BACK
    return EXIT_OK if comparison else EXIT_FAILURE


def cmd_figure(which: str) -> int:
    if which == "fig2":
        bars = figure_speedups(threads=1)
        print(format_speedup_table(
            bars, "Fig. 2 — speedup vs baseline, 1 thread, AVX-512 "
            "(modeled testbed)"))
    elif which == "fig3":
        bars = figure_speedups(threads=32)
        print(format_speedup_table(
            bars, "Fig. 3 — speedup vs baseline, 32 threads, AVX-512 "
            "(modeled testbed)"))
    elif which == "fig4":
        print(format_scaling_table(figure_scaling()))
    elif which == "fig5":
        print(format_isa_sweep(figure_isa_sweep()))
    elif which == "fig6":
        points, ceilings = figure_roofline()
        print("Fig. 6 — roofline, 32 cores AVX-512 (modeled testbed)")
        print(format_roofline_table(points, ceilings))
    return EXIT_OK


def cmd_perf(model: Optional[str], cells: Optional[int],
             steps: Optional[int], dt: Optional[float], threads: int,
             runs: int, json_path: Optional[str], check: bool,
             width: Optional[int] = None,
             baseline: Optional[str] = None, tolerance: float = 0.15,
             repeats: int = 2,
             slowdown: Optional[float] = None) -> int:
    if baseline is not None:
        return _perf_gate(baseline, tolerance, repeats, slowdown,
                          runs if runs != 5 else None, json_path)
    from .bench.perf import (CANONICAL_CELLS, CANONICAL_DT,
                             CANONICAL_MODEL, CANONICAL_STEPS,
                             CANONICAL_WIDTH, check_report, perf_report,
                             write_report)
    from .bench.report import format_perf_table
    report = perf_report(model_name=model or CANONICAL_MODEL,
                         n_cells=cells or CANONICAL_CELLS,
                         n_steps=steps or CANONICAL_STEPS,
                         dt=dt or CANONICAL_DT,
                         threads=threads, runs=runs,
                         width=width or CANONICAL_WIDTH)
    print(format_perf_table(report))
    if json_path:
        write_report(report, json_path)
        print(f"report written to {json_path}")
    if check:
        failures = check_report(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return EXIT_FAILURE
        print("checks passed: fused >= unfused, cache hit sped up "
              "construction")
    return EXIT_OK


def _perf_gate(baseline_path: str, tolerance: float, repeats: int,
               slowdown: Optional[float],
               runs: Optional[int], json_path: Optional[str]) -> int:
    """``perf --baseline``: the regression gate (exit 1 on regression)."""
    import json as _json

    from .bench.regress import format_gate_table, perf_gate
    if not os.path.isfile(baseline_path):
        print(f"perf: baseline {baseline_path!r} not found",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        rows, failures, current = perf_gate(
            baseline_path, tolerance=tolerance, slowdown=slowdown,
            repeats=repeats, runs=runs)
    except ValueError as exc:        # unsupported benchmark schema
        print(f"perf: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(format_gate_table(rows, tolerance,
                            os.path.basename(baseline_path)))
    if json_path:
        with open(json_path, "w") as fh:
            _json.dump(current, fh, indent=2)
        print(f"current measurements written to {json_path}")
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    if failures:
        return EXIT_FAILURE
    missing = [r.name for r in rows if r.status == "missing"]
    if missing:
        print("perf: metrics missing from the current run: "
              + ", ".join(missing), file=sys.stderr)
        return EXIT_FAILURE
    print("perf gate passed")
    return EXIT_OK


def cmd_sweep(model: str, param_specs: Optional[List[str]],
              absolute: bool, cells: int, steps: int, dt: float,
              runs: int, width: int, json_path: Optional[str],
              check: bool) -> int:
    from .bench.perf import check_sweep_report, sweep_report, write_report
    from .bench.report import format_sweep_report

    if not param_specs:
        print("sweep: at least one --param NAME=lo:hi:N is required",
              file=sys.stderr)
        return EXIT_USAGE
    params = {}
    for spec in param_specs:
        name, sep, rng = spec.partition("=")
        if not sep or not name or not rng:
            print(f"sweep: malformed --param {spec!r} "
                  f"(expected NAME=lo:hi:N)", file=sys.stderr)
            return EXIT_USAGE
        params[name] = rng
    from .easyml.errors import EasyMLError
    try:
        report = sweep_report(model_name=model, params=params,
                              cells_per_instance=cells, n_steps=steps,
                              dt=dt, runs=runs, width=width,
                              absolute=absolute)
    except (ValueError, EasyMLError) as exc:  # unknown param, bad range
        print(f"sweep: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(format_sweep_report(report))
    if json_path:
        write_report(report, json_path)
        print(f"report written to {json_path}")
    if check:
        failures = check_sweep_report(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return EXIT_FAILURE
        print("checks passed: batched >= 1.5x loop, compile reused "
              "across same-shape sweeps")
    return EXIT_OK


def cmd_tune(model: Optional[str], cells: Optional[int],
             steps: Optional[int], dt: float, top_k: int, repeats: int,
             db_path: Optional[str], json_path: Optional[str],
             force: bool, clear: bool, report: bool,
             check: bool) -> int:
    import json as _json

    from .tuning import (SLOWDOWN_TOLERANCE, TuningDB, autotune,
                         check_tuning_report, format_tuning_table,
                         tuning_report)
    db = TuningDB(path=db_path)
    if clear:
        removed = db.clear()
        print(f"cleared {removed} tuning record(s) from {db.path}")
        if model is None and not report:
            return EXIT_OK
    if report:
        data = tuning_report(n_cells=cells or 4096, n_steps=steps or 10,
                             dt=dt, top_k=top_k, repeats=repeats, db=db)
        print(format_tuning_table(data))
        if json_path:
            with open(json_path, "w") as fh:
                _json.dump(data, fh, indent=2)
            print(f"report written to {json_path}")
        if check:
            failures = check_tuning_report(data)
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            if failures:
                return EXIT_FAILURE
            print("checks passed: tuned never slower than default; "
                  "speedup and cost-model agreement bars met")
        return EXIT_OK
    if model is None:
        print("tune: --model is required (or use --report / --clear)",
              file=sys.stderr)
        return EXIT_USAGE
    result = autotune(model, n_cells=cells or 512, dt=dt,
                      n_steps=steps or 20, top_k=top_k, repeats=repeats,
                      db=db, force=force)
    print(result.describe())
    measured = sorted((c for c in result.candidates
                       if c.measured_seconds is not None),
                      key=lambda c: c.measured_seconds)
    for c in measured:
        marker = " (default)" if c.is_default else ""
        print(f"  {c.measured_seconds * 1e3:8.2f} ms  "
              f"predicted #{c.predicted_rank + 1:<3} "
              f"{c.config.describe()}{marker}")
    if json_path:
        with open(json_path, "w") as fh:
            _json.dump(result.as_dict(), fh, indent=2)
        print(f"result written to {json_path}")
    if check and not result.from_db:
        speedup = result.speedup_vs_default
        if speedup is not None and speedup < 1.0 - SLOWDOWN_TOLERANCE:
            print(f"CHECK FAILED: tuned config {1 / speedup:.3f}x "
                  f"slower than default", file=sys.stderr)
            return EXIT_FAILURE
    return EXIT_OK


def cmd_build_all(dest: Optional[str], models: Optional[List[str]],
                  width: int, no_tuned: bool,
                  db_path: Optional[str]) -> int:
    from .aot import build_bundle, default_artifact_dir
    target = dest or default_artifact_dir()
    if target is None:
        print("build-all: no destination — pass --dest or set "
              "$LIMPET_ARTIFACT_DIR", file=sys.stderr)
        return EXIT_USAGE
    db = None
    if not no_tuned:
        from .tuning import TuningDB
        db = TuningDB(path=db_path)
    report = build_bundle(target, models=models, db=db, width=width,
                          include_tuned=not no_tuned)
    print(report.describe())
    for entry in report.failed:
        print(f"FAILED {entry.model} [{entry.variant}]: {entry.error}",
              file=sys.stderr)
    return EXIT_OK if report.ok else EXIT_COMPILE_FAILED


def cmd_artifacts(action: str, bundle_dir: Optional[str],
                  db_path: Optional[str], no_deep: bool,
                  json_path: Optional[str]) -> int:
    import json as _json

    from .aot import ArtifactStore, audit_bundle, default_artifact_dir
    root = bundle_dir or default_artifact_dir()
    if root is None:
        print("artifacts: no bundle — pass --dir or set "
              "$LIMPET_ARTIFACT_DIR", file=sys.stderr)
        return EXIT_USAGE
    if action == "list":
        manifest = ArtifactStore(root).manifest()
        if manifest is None:
            print(f"artifacts: no readable bundle at {root}",
                  file=sys.stderr)
            return EXIT_FAILURE
        entries = manifest.get("entries", {})
        built = manifest.get("created_at")
        if isinstance(built, (int, float)):
            import datetime
            built = datetime.datetime.fromtimestamp(built) \
                .strftime("%Y-%m-%d %H:%M:%S")
        print(f"bundle {root}: {len(entries)} kernel(s), pipeline "
              f"{manifest.get('pipeline_fingerprint', '?')[:12]}, "
              f"built {built or '?'}")
        print(f"{'model':<24} {'backend':<12} {'width':>5} "
              f"{'variant':<28} {'key':<12}")
        for key, meta in sorted(entries.items(),
                                key=lambda kv: (kv[1]['model'],
                                                kv[1]['variant'])):
            variant = meta["variant"]
            if len(variant) > 28:
                variant = variant[:25] + "..."
            print(f"{meta['model']:<24} {meta['backend']:<12} "
                  f"{meta['width']:>5} {variant:<28} {key[:12]}")
        return EXIT_OK
    db = None
    if db_path is not None:
        from .tuning import TuningDB
        db = TuningDB(path=db_path)
    report = audit_bundle(root, db=db, deep=not no_deep)
    print(report.describe())
    if json_path:
        with open(json_path, "w") as fh:
            _json.dump(report.as_dict(), fh, indent=2)
        print(f"report written to {json_path}")
    return EXIT_OK if report.ok else EXIT_FAILURE


def cmd_coldstart(models: Optional[List[str]], bundle: Optional[str],
                  cells: int, steps: int, width: int,
                  json_path: Optional[str], check: bool) -> int:
    from .bench.coldstart import (REPRESENTATIVE, check_coldstart_report,
                                  coldstart_report, format_coldstart_table)
    from .bench.perf import write_report
    report = coldstart_report(models=models or REPRESENTATIVE,
                              bundle=bundle, n_cells=cells,
                              n_steps=steps, width=width)
    print(format_coldstart_table(report))
    if json_path:
        write_report(report, json_path)
        print(f"report written to {json_path}")
    if check:
        failures = check_coldstart_report(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if failures:
            return EXIT_FAILURE
        print("checks passed: bitwise identity, zero compile spans, "
              "cold-start speedup bar met")
    return EXIT_OK


def cmd_cache_stats(cache_dir: Optional[str], clear: bool) -> int:
    from .runtime.kernel_cache import KernelCache, default_cache_dir
    root = cache_dir or default_cache_dir()
    cache = KernelCache(root)
    if clear:
        removed = cache.clear()
        print(f"cleared {removed} cached kernel(s) from {root}")
    stats = cache.persistent_stats()
    print(f"kernel cache [{root}]")
    print(f"  entries:   {stats.entries}")
    print(f"  bytes:     {stats.bytes}")
    print(f"  hits:      {stats.hits}")
    print(f"  misses:    {stats.misses}")
    print(f"  evictions: {stats.evictions}")
    # The LUT cache is per-runner and dt-keyed; show what one runner
    # holds after a representative build so its footprint is visible.
    from .codegen import generate_limpet_mlir
    from .runtime import KernelRunner
    runner = KernelRunner(generate_limpet_mlir(load_model("LuoRudy91")))
    runner.luts_for(0.01)
    lut = runner.lut_cache_stats()
    print("LUT cache (per-runner, dt-keyed; shown for LuoRudy91 @ "
          "dt=0.01)")
    print(f"  entries:   {lut['entries']}")
    print(f"  bytes:     {lut['bytes']}")
    print(f"  hits:      {lut['hits']}")
    print(f"  misses:    {lut['misses']}")
    print(f"  evictions: {lut['evictions']}")
    return EXIT_OK


def cmd_trace(model_name: Optional[str], backend: str, width: int,
              cells: int, steps: int, dt: float, out: Optional[str],
              profile: bool, workers: int = 0,
              merge: Optional[str] = None) -> int:
    import glob as _glob

    from .obs import trace as _trace
    if merge is not None:
        paths = sorted(_glob.glob(os.path.join(merge, "trace-*.json")))
        if not paths:
            print(f"trace: no trace-*.json files under {merge!r}",
                  file=sys.stderr)
            return EXIT_FAILURE
        path = out or os.path.join(merge, "trace-merged.json")
        _trace.merge_files(paths, out=path)
        print(f"merged {len(paths)} trace file(s) into {path}")
        return EXIT_OK
    if model_name is None:
        print("trace: a MODEL is required unless --merge is given",
              file=sys.stderr)
        return EXIT_USAGE
    from .runtime import KernelRunner
    # the model registry caches parsed models; re-parse so the trace
    # captures the parse/frontend spans too
    load_model.cache_clear()
    tracer = _trace.Tracer()
    previous = _trace.activate(tracer)
    try:
        model = load_model(model_name)
        generated = generate_variant(model, backend, width)
        if workers:
            # supervised tier: forked workers join the trace via the
            # injected TraceContext and stream their spans back over
            # the reply pipes; the merged file has one lane per pid
            from .runtime import SupervisedRunner, multiprocess_supported
            if not multiprocess_supported():
                print("trace: --workers needs the fork start method "
                      "(unavailable on this platform)", file=sys.stderr)
                return EXIT_FAILURE
            runner = SupervisedRunner(generated, n_workers=workers)
            try:
                state = runner.make_state(cells)
                runner.run(state, steps, dt)
            finally:
                runner.close()
        else:
            runner = KernelRunner(generated, profile=profile)
            state = runner.make_state(cells)
            runner.run(state, steps, dt)
    finally:
        _trace.deactivate(previous)
    print(tracer.summary_tree())
    if profile and not workers:
        print()
        print(runner.profile_report(invocations=steps).hot_table())
    path = tracer.write(out or f"trace_{model_name}.json")
    print(f"\ntrace written to {path} "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    return EXIT_OK


def cmd_metrics(prom: bool) -> int:
    """Exercise cache / sharding / run paths, then dump the registry."""
    import json as _json

    from .codegen import generate_limpet_mlir
    from .obs import metrics as _metrics
    from .runtime import (KernelRunner, ShardedRunner, SupervisedRunner,
                          multiprocess_supported)
    from .runtime.kernel_cache import KernelCache
    _metrics.reset()
    model = load_model("Plonsey")
    with tempfile.TemporaryDirectory() as tmp:
        cache = KernelCache(tmp)
        # fresh generation per runner: the cache key hashes the
        # pre-pipeline module, so the second build is a pure hit
        KernelRunner(generate_limpet_mlir(model), cache=cache)
        runner = KernelRunner(generate_limpet_mlir(model), cache=cache)
        runner.run(runner.make_state(64), 20, 0.01)
    with tempfile.TemporaryDirectory() as tmp:
        # artifact tier: one build, one hit, one miss
        from .aot import ArtifactStore, build_bundle
        build_bundle(tmp, models=["Plonsey"], include_tuned=False)
        store = ArtifactStore(tmp)
        KernelRunner(generate_limpet_mlir(model), cache=None,
                     artifacts=store)
        KernelRunner(generate_limpet_mlir(load_model("FitzHughNagumo")),
                     cache=None, artifacts=store)
    with ShardedRunner(generate_limpet_mlir(model),
                       n_threads=2) as sharded:
        sharded.run(sharded.make_state(64), 10, 0.01)
    if multiprocess_supported():
        with SupervisedRunner(generate_limpet_mlir(model),
                              n_workers=2) as supervised:
            supervised.run(supervised.make_state(64), 10, 0.01)
    if prom:
        sys.stdout.write(_metrics.to_prometheus())
    else:
        print(_json.dumps(_metrics.snapshot(), indent=2))
    return EXIT_OK


def cmd_ledger(path: Optional[str], tail: Optional[int],
               model: Optional[str], event: Optional[str],
               as_json: bool, summary: bool) -> int:
    import json as _json

    from .obs import ledger as _ledger
    path = path or os.environ.get(_ledger.LEDGER_ENV)
    if not path:
        print("ledger: no ledger file (--path or $LIMPET_LEDGER)",
              file=sys.stderr)
        return EXIT_USAGE
    book = _ledger.RunLedger(path)
    rows = book.read(tail=tail, model=model, event=event)
    if not rows:
        print(f"ledger: no rows in {path}"
              + (f" matching model={model!r}" if model else "")
              + (f" event={event!r}" if event else ""),
              file=sys.stderr)
        return EXIT_FAILURE
    if summary:
        per_model = _ledger.summarize(rows)
        print(f"{'model':<24} {'rows':>5}  {'dispositions':<28} "
              f"{'tiers':<22} {'best steps/s':>12}")
        for name in sorted(per_model):
            info = per_model[name]
            disp = ", ".join(f"{k}:{v}" for k, v in
                             sorted(info["dispositions"].items()))
            tiers = ",".join(info["tiers"]) or "-"
            best = info.get("best_steps_per_second")
            best_s = f"{best:,.0f}" if best else "-"
            print(f"{name:<24} {info['rows']:>5}  {disp:<28} "
                  f"{tiers:<22} {best_s:>12}")
        return EXIT_OK
    if as_json:
        for row in rows:
            print(_json.dumps(row, sort_keys=True))
        return EXIT_OK
    print(f"{'when':<20} {'event':<12} {'model':<22} {'tier':<10} "
          f"{'cache':<9} {'disposition':<16} {'steps/s':>10}")
    import time as _time
    for row in rows:
        when = _time.strftime("%Y-%m-%d %H:%M:%S",
                              _time.localtime(row.get("ts_unix", 0)))
        sps = row.get("steps_per_second")
        print(f"{when:<20} {row.get('event', '?'):<12} "
              f"{row.get('model', '-'):<22} {row.get('tier', '-'):<10} "
              f"{row.get('cache', '-'):<9} "
              f"{row.get('disposition', '-'):<16} "
              f"{sps and f'{sps:,.0f}' or '-':>10}")
    print(f"{len(rows)} row(s) from {path}")
    return EXIT_OK


def cmd_flight(action: str, directory: Optional[str], last: int,
               as_json: bool) -> int:
    import json as _json

    from .obs import flight as _flight
    if action == "list":
        dumps = _flight.list_dumps(directory)
        if not dumps:
            print("flight: no dumps recorded", file=sys.stderr)
            return EXIT_FAILURE
        for path in dumps:
            payload = _flight.load_dump(path)
            reason = payload.get("reason", "?") if payload else "corrupt"
            n = len(payload.get("events", [])) if payload else 0
            print(f"{path}  reason={reason} events={n}")
        return EXIT_OK
    latest = _flight.latest_dump(directory)
    if latest is None:
        print("flight: no dumps recorded", file=sys.stderr)
        return EXIT_FAILURE
    payload = _flight.load_dump(latest)
    if payload is None:
        print(f"flight: {latest} is corrupt or not a flight dump",
              file=sys.stderr)
        return EXIT_FAILURE
    if as_json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"flight dump: {latest}")
    print(_flight.format_dump(payload, last=last))
    return EXIT_OK


# ---------------------------------------------------------------------------
# The fault-injection drill (``limpet-bench faults``)
# ---------------------------------------------------------------------------


def _drill_pass_exception(reproducer_dir) -> str:
    """A pass that raises must be quarantined with a loadable bundle."""
    inject = FaultInjector(FaultPlan(fail_pass="cse"))
    compiled = compile_resilient("Plonsey", inject=inject,
                                 reproducer_dir=reproducer_dir)
    assert "cse" in compiled.sandbox.quarantined, "cse not quarantined"
    assert compiled.sandbox.reproducers, "no reproducer bundle written"
    module, meta = load_reproducer(compiled.sandbox.reproducers[0])
    assert meta["pass"] == "cse" and module.funcs(), "bundle did not load"
    clean = compile_resilient("Plonsey")
    r_faulty = compiled.runner.simulate(16, 30, perturbation=0.01)
    r_clean = clean.runner.simulate(16, 30, perturbation=0.01)
    comparison = compare_trajectories(r_faulty.state, r_clean.state)
    assert comparison, f"rolled-back module diverged: {comparison.describe()}"
    return (f"pass exception: quarantined 'cse', bundle "
            f"{compiled.sandbox.reproducers[0].name}, trajectories intact")


def _drill_ir_corruption(reproducer_dir) -> str:
    """A pass that corrupts IR must be rolled back by the verifier."""
    inject = FaultInjector(FaultPlan(corrupt_after_pass="canonicalize"))
    compiled = compile_resilient("Plonsey", inject=inject,
                                 reproducer_dir=reproducer_dir)
    assert "canonicalize" in compiled.sandbox.quarantined
    verify_module(compiled.kernel.module)   # rolled-back module verifies
    diag = [d for d in compiled.diagnostics if d.stage == "verify"]
    assert diag, "no verify diagnostic recorded"
    return "ir corruption: verifier caught it, module rolled back + verifies"


def _drill_runtime_nan() -> str:
    """An injected NaN must be recovered by dt-halving within budget."""
    compiled = compile_resilient("Plonsey")
    inject = FaultInjector(FaultPlan(nan_at_step=30, nan_cells=(0, 1)))
    state = compiled.runner.make_state(16)
    result = compiled.runner.run(
        state, 100, 0.01, watchdog=WatchdogConfig(check_interval=10),
        step_hook=inject.step_hook)
    health = result.health
    assert health.ok and health.retries >= 1, health.summary()
    return f"runtime nan: {health.summary()}"


def _drill_fallback_foreign(smoke: bool) -> str:
    """Foreign-function models must land on baseline with diagnostics."""
    names = UNSUPPORTED_MODELS[:1] if smoke else UNSUPPORTED_MODELS
    for name in names:
        compiled = compile_resilient(name)
        assert compiled.backend == "baseline", (name, compiled.backend)
        skipped = [d for d in compiled.diagnostics
                   if d.error_type == "UnsupportedModelError"]
        assert skipped, f"{name}: no explanatory diagnostic"
    return (f"foreign fallback: {', '.join(names)} -> baseline with "
            f"explanatory diagnostics")


def _drill_sweep(smoke: bool, reproducer_dir) -> str:
    """A sweep under injected faults must finish with per-model records."""
    names = (["Plonsey", "FitzHughNagumo", "AlievPanfilov", "ARPF"]
             if smoke else all_model_files())

    def factory(name: str):
        # deterministic per-model faults: every 3rd model loses its
        # strongest backend, every 4th gets a NaN poke mid-run,
        # every 5th (and the second) has a worker crash mid-shard
        idx = names.index(name)
        plan = FaultPlan(
            fail_backends=("limpet_mlir",) if idx % 3 == 0 else (),
            nan_at_step=20 if idx % 4 == 0 else None,
            kill_worker=0 if idx % 5 == 1 else None,
            kill_worker_at_task=2)
        return FaultInjector(plan)

    records = resilient_sweep(names, n_cells=16, n_steps=30,
                              watchdog=WatchdogConfig(check_interval=10),
                              reproducer_dir=reproducer_dir,
                              inject_factory=factory, workers=2)
    assert len(records) == len(names)
    failed = [r.model for r in records if not r.ok]
    assert not failed, "sweep records not ok:\n" + \
        format_sweep_table(records)
    n_fb = sum(1 for r in records if r.fell_back)
    n_rec = sum(1 for r in records if r.health and r.health.retries)
    n_sup = sum(1 for r in records if r.tier == "supervised")
    return (f"sweep: {len(records)}/{len(names)} models completed "
            f"({n_fb} via fallback, {n_rec} recovered by dt-halving, "
            f"{n_sup} on the supervised tier under worker kills)")


def _drill_worker_crash() -> str:
    """A killed worker must be respawned; the trajectory stays bitwise
    identical to a single-process run."""
    from .codegen import generate_limpet_mlir
    from .runtime import (KernelRunner, SupervisedRunner,
                          SupervisionConfig, multiprocess_supported)
    if not multiprocess_supported():    # pragma: no cover - POSIX CI
        return "worker crash: skipped (no fork/shared_memory)"
    model = load_model("Plonsey")
    plan = FaultPlan(kill_worker=0, kill_worker_at_task=2)
    with SupervisedRunner(generate_limpet_mlir(model), n_workers=2,
                          fault_plan=plan,
                          config=SupervisionConfig(
                              task_timeout=10.0)) as sup:
        state = sup.make_state(24, perturbation=0.01)
        sup.run(state, 60, 0.01)
        assert sup.tier == "supervised", f"degraded to {sup.tier}"
        restarts = [d for d in sup.diagnostics
                    if "restarted worker" in d.message]
        assert restarts, "worker kill did not trigger a restart"
    base = KernelRunner(generate_limpet_mlir(model))
    ref = base.make_state(24, perturbation=0.01)
    base.run(ref, 60, 0.01)
    comparison = compare_trajectories(ref, state, rtol=0, atol=0)
    assert comparison, f"not bitwise: {comparison.describe()}"
    return ("worker crash: killed worker respawned, shard retried, "
            "trajectory bitwise identical")


def _drill_worker_stall() -> str:
    """A stalled heartbeat must be detected and the worker replaced."""
    from .codegen import generate_limpet_mlir
    from .runtime import (SupervisedRunner, SupervisionConfig,
                          multiprocess_supported)
    if not multiprocess_supported():    # pragma: no cover - POSIX CI
        return "worker stall: skipped (no fork/shared_memory)"
    plan = FaultPlan(stall_worker=1, stall_worker_at_task=2,
                     stall_worker_seconds=20.0)
    config = SupervisionConfig(heartbeat_interval=0.02,
                               heartbeat_timeout=0.3, task_timeout=1.0)
    with SupervisedRunner(generate_limpet_mlir(load_model("Plonsey")),
                          n_workers=2, fault_plan=plan,
                          config=config) as sup:
        state = sup.make_state(24)
        sup.run(state, 40, 0.01)
        assert sup.tier == "supervised", f"degraded to {sup.tier}"
        restarts = [d for d in sup.diagnostics
                    if "restarted worker" in d.message]
        assert restarts, "stalled heartbeat not detected"
    return "worker stall: stale heartbeat detected, worker replaced"


def _drill_degradation() -> str:
    """Exhausted supervision retries must degrade down the tier ladder,
    not fail the run."""
    from .codegen import generate_limpet_mlir
    from .runtime import (SupervisedRunner, SupervisionConfig,
                          multiprocess_supported)
    if not multiprocess_supported():    # pragma: no cover - POSIX CI
        return "degradation: skipped (no fork/shared_memory)"
    plan = FaultPlan(kill_worker=0, kill_worker_at_task=1)
    config = SupervisionConfig(max_retries=0, task_timeout=5.0)
    with SupervisedRunner(generate_limpet_mlir(load_model("Plonsey")),
                          n_workers=2, fault_plan=plan,
                          config=config) as sup:
        state = sup.make_state(24)
        result = sup.run(state, 40, 0.01)
        assert result.n_steps == 40
        assert sup.tier == "threads", f"expected threads, got {sup.tier}"
        downgrades = [d for d in sup.diagnostics
                      if "degrading" in d.message]
        assert downgrades, "no degradation diagnostic recorded"
    return ("degradation: retry budget exhausted -> thread tier, run "
            "completed with a diagnostic trail")


def _drill_cache_corruption() -> str:
    """A corrupt on-disk cache entry must be quarantined and rebuilt."""
    from .codegen import generate_limpet_mlir
    from .resilience import corrupt_cache_entry
    from .runtime import KernelRunner
    from .runtime.kernel_cache import KernelCache
    model = load_model("Plonsey")
    with tempfile.TemporaryDirectory() as tmp:
        cache = KernelCache(tmp)
        KernelRunner(generate_limpet_mlir(model), cache=cache)
        corrupted = corrupt_cache_entry(cache, mode="truncate")
        assert corrupted is not None, "no cache entry to corrupt"
        runner = KernelRunner(generate_limpet_mlir(model), cache=cache)
        assert not runner.cache_hit, "served a truncated entry"
        stats = cache.persistent_stats()
        assert stats.corrupt >= 1, "corrupt entry not quarantined"
        rebuilt = KernelRunner(generate_limpet_mlir(model), cache=cache)
        assert rebuilt.cache_hit, "rebuilt entry not re-cached"
    return ("cache corruption: truncated entry quarantined, kernel "
            "rebuilt and re-cached")


def cmd_faults(smoke: bool = False,
               reproducer_dir: Optional[str] = None) -> int:
    """Run the fault-injection drill; nonzero exit if anything leaks."""
    with tempfile.TemporaryDirectory() as tmp:
        target = reproducer_dir or tmp
        drills = [
            ("pass-exception", lambda: _drill_pass_exception(target)),
            ("ir-corruption", lambda: _drill_ir_corruption(target)),
            ("runtime-nan", _drill_runtime_nan),
            ("fallback-foreign", lambda: _drill_fallback_foreign(smoke)),
            ("worker-crash", _drill_worker_crash),
            ("worker-stall", _drill_worker_stall),
            ("degradation", _drill_degradation),
            ("cache-corruption", _drill_cache_corruption),
            ("sweep", lambda: _drill_sweep(smoke, target)),
        ]
        failures = 0
        for name, drill in drills:
            try:
                detail = drill()
            except Exception as err:  # noqa: BLE001 - drill must report
                failures += 1
                print(f"FAIL {name:<18} {type(err).__name__}: {err}")
            else:
                print(f"PASS {name:<18} {detail}")
        mode = "smoke" if smoke else "full"
        print(f"\nfault drill ({mode}): "
              f"{len(drills) - failures}/{len(drills)} scenarios passed")
    return EXIT_OK if failures == 0 else EXIT_FAULTS


#: conventional exit code for a SIGINT-terminated process (128 + 2)
EXIT_INTERRUPTED = 130


def main(argv: Optional[List[str]] = None) -> int:
    from .runtime import shutdown as _shutdown
    args = build_parser().parse_args(argv)
    _shutdown.install_signal_handlers()
    trace_dir = os.environ.get("LIMPET_TRACE")
    tracer = previous = None
    trace_path = None
    if trace_dir:
        from .obs import trace as _trace
        tracer = _trace.Tracer()
        previous = _trace.activate(tracer)
        trace_path = os.path.join(
            trace_dir, f"trace-{args.command}-{os.getpid()}.json")
        # the signal handler flushes open spans and writes here, so an
        # interrupted run still lands its trace on disk
        _shutdown.set_trace_flush_path(trace_path)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # workers reaped, shm unlinked and trace flushed by the signal
        # handler before KeyboardInterrupt was raised
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except Exception as err:
        # land the last seconds of telemetry next to the crash
        # ('limpet-bench flight show' replays them), then re-raise for
        # the normal traceback
        from .obs import flight as _flight
        _flight.dump("unhandled_exception",
                     extra={"command": args.command,
                            "error": f"{type(err).__name__}: {err}"})
        raise
    except BrokenPipeError:
        # downstream pager/head closed the pipe; not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK
    finally:
        if tracer is not None:
            from .obs import trace as _trace
            _shutdown.set_trace_flush_path(None)
            _trace.deactivate(previous)
            path = tracer.write(trace_path)
            print(f"trace written to {path}", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
