"""``limpet-bench`` — the command-line front door.

Subcommands:

* ``list`` — the 43-model suite with size classes;
* ``describe MODEL`` — the frontend's analysis of one model;
* ``ir MODEL`` — print the generated IR (``--pretty`` for MLIR-like
  sugar, ``--backend`` to pick the code generator);
* ``run MODEL`` — execute a real simulation and report wall time;
* ``compare MODEL`` — run baseline and limpetMLIR engines, check the
  trajectories agree and report the measured speedup;
* ``figure {fig2,fig3,fig4,fig5,fig6}`` — regenerate a paper figure's
  data from the modeled Cascade Lake bench.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .bench import (figure_isa_sweep, figure_roofline,
                    figure_scaling, figure_speedups, format_isa_sweep,
                    format_scaling_table, format_speedup_table,
                    generate_variant, run_measured)
from .codegen import (check_simd_legality, generate_baseline, generate_limpet_mlir)
from .ir import print_module
from .ir.passes import default_pipeline
from .machine import format_roofline_table
from .models import (ALL_MODELS, UNSUPPORTED_MODELS,
                     all_model_files, list_models, load_model)
from .runtime import KernelRunner, Stimulus, compare_trajectories


def _add_model_argument(parser: argparse.ArgumentParser,
                        include_unsupported: bool = False) -> None:
    choices = all_model_files() if include_unsupported else ALL_MODELS
    parser.add_argument("model", choices=choices, metavar="MODEL",
                        help="ionic model name (see 'limpet-bench list')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="limpet-bench",
        description="limpetMLIR reproduction bench (CGO'23)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 43-model suite")

    describe = sub.add_parser("describe", help="frontend analysis summary")
    _add_model_argument(describe, include_unsupported=True)

    legality = sub.add_parser(
        "legality", help="check the paper's SIMD criteria (paper section 5)")
    _add_model_argument(legality, include_unsupported=True)

    ir_cmd = sub.add_parser("ir", help="print generated IR")
    _add_model_argument(ir_cmd)
    ir_cmd.add_argument("--backend", default="limpet_mlir",
                        choices=("baseline", "limpet_mlir", "icc_simd"))
    ir_cmd.add_argument("--width", type=int, default=8,
                        choices=(2, 4, 8))
    ir_cmd.add_argument("--pretty", action="store_true",
                        help="MLIR-like sugared syntax")
    ir_cmd.add_argument("--no-opt", action="store_true",
                        help="skip the pass pipeline")

    run_cmd = sub.add_parser("run", help="run a real simulation")
    _add_model_argument(run_cmd)
    run_cmd.add_argument("--backend", default="limpet_mlir",
                         choices=("baseline", "limpet_mlir", "icc_simd"))
    run_cmd.add_argument("--width", type=int, default=8, choices=(2, 4, 8))
    run_cmd.add_argument("--cells", type=int, default=1024)
    run_cmd.add_argument("--steps", type=int, default=200)
    run_cmd.add_argument("--dt", type=float, default=0.01)

    compare = sub.add_parser(
        "compare", help="baseline vs limpetMLIR: equivalence + speedup")
    _add_model_argument(compare)
    compare.add_argument("--cells", type=int, default=512)
    compare.add_argument("--steps", type=int, default=100)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("which",
                        choices=("fig2", "fig3", "fig4", "fig5", "fig6"))
    return parser


def cmd_list() -> int:
    print(f"{'model':<24} {'class':<8} {'limpetMLIR':<11} {'source'}")
    for entry in list_models():
        source = "literature" if entry.hand_written else "synthesized"
        print(f"{entry.name:<24} {entry.size_class:<8} {'yes':<11} "
              f"{source}")
    for name in UNSUPPORTED_MODELS:
        print(f"{name:<24} {'small':<8} {'no (foreign)':<11} literature")
    print(f"\n{len(all_model_files())} models shipped, "
          f"{len(ALL_MODELS)} limpetMLIR-supported "
          f"(8 small / 22 medium / 13 large), 4 baseline-only — "
          f"matching the paper (section 3.3.2, section 4.1)")
    return 0


def cmd_legality(model_name: str) -> int:
    report = check_simd_legality(load_model(model_name))
    print(report.describe())
    return 0 if report.vectorizable else 1


def cmd_describe(model_name: str) -> int:
    model = load_model(model_name)
    print(model.describe())
    for warning in model.warnings:
        print(f"warning: {warning}")
    return 0


def cmd_ir(model_name: str, backend: str, width: int, pretty: bool,
           no_opt: bool) -> int:
    model = load_model(model_name)
    kernel = generate_variant(model, backend, width)
    if not no_opt:
        default_pipeline(verify_each=False).run(kernel.module,
                                                fixed_point=True)
    sys.stdout.write(print_module(kernel.module, pretty=pretty))
    return 0


def cmd_run(model_name: str, backend: str, width: int, cells: int,
            steps: int, dt: float) -> int:
    result = run_measured(model_name, backend, width, cells, steps, dt,
                          runs=3)
    per_cell_step = result.seconds / (cells * steps) * 1e9
    print(f"{model_name} [{backend}, width {width}]: "
          f"{cells} cells x {steps} steps in {result.seconds * 1e3:.1f} ms "
          f"({per_cell_step:.1f} ns/cell-step)")
    return 0


def cmd_compare(model_name: str, cells: int, steps: int) -> int:
    model = load_model(model_name)
    base = KernelRunner(generate_baseline(model))
    vec = KernelRunner(generate_limpet_mlir(model, 8))
    stim = Stimulus(amplitude=-20.0 if
                    abs(model.external_init.get("Vm", 0.0)) > 5 else -0.3,
                    duration=1.0, period=400.0)
    res_base = base.simulate(cells, steps, stimulus=stim, perturbation=0.005)
    res_vec = vec.simulate(cells, steps, stimulus=stim, perturbation=0.005)
    equal = compare_trajectories(res_base.state, res_vec.state)
    speedup = res_base.elapsed_seconds / res_vec.elapsed_seconds
    print(f"{model_name}: baseline {res_base.elapsed_seconds * 1e3:.1f} ms, "
          f"limpetMLIR {res_vec.elapsed_seconds * 1e3:.1f} ms "
          f"-> measured speedup {speedup:.1f}x")
    print(f"trajectories equivalent: {equal}")
    return 0 if equal else 1


def cmd_figure(which: str) -> int:
    if which == "fig2":
        bars = figure_speedups(threads=1)
        print(format_speedup_table(
            bars, "Fig. 2 — speedup vs baseline, 1 thread, AVX-512 "
            "(modeled testbed)"))
    elif which == "fig3":
        bars = figure_speedups(threads=32)
        print(format_speedup_table(
            bars, "Fig. 3 — speedup vs baseline, 32 threads, AVX-512 "
            "(modeled testbed)"))
    elif which == "fig4":
        print(format_scaling_table(figure_scaling()))
    elif which == "fig5":
        print(format_isa_sweep(figure_isa_sweep()))
    elif which == "fig6":
        points, ceilings = figure_roofline()
        print("Fig. 6 — roofline, 32 cores AVX-512 (modeled testbed)")
        print(format_roofline_table(points, ceilings))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "describe":
        return cmd_describe(args.model)
    if args.command == "legality":
        return cmd_legality(args.model)
    if args.command == "ir":
        return cmd_ir(args.model, args.backend, args.width, args.pretty,
                      args.no_opt)
    if args.command == "run":
        return cmd_run(args.model, args.backend, args.width, args.cells,
                       args.steps, args.dt)
    if args.command == "compare":
        return cmd_compare(args.model, args.cells, args.steps)
    if args.command == "figure":
        return cmd_figure(args.which)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
