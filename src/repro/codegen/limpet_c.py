"""Baseline code generator — the limpetC++ analog.

Produces the straightforward scalar translation openCARP ships
(Listing 2 of the paper): one cell per loop iteration, AoS state
access, scalar LUT interpolation, and the integration updates emitted
inline.  The loop is annotated ``omp parallel for schedule(static)``
like the original; vectorization is left to "the compiler", i.e. it
does not happen.
"""

from __future__ import annotations

from typing import Dict

from ..frontend.model import IonicModel
from ..ir.builder import IRBuilder
from ..ir.core import Module, Value
from ..ir.dialects import arith, func as func_dialect, memref, scf
from ..ir.types import f64, index, memref_of
from ..obs import trace as _trace
from .common import BackendMode, ExprEmitter, GeneratedKernel, KernelSpec
from .integrators import emit_state_updates
from .layout import Layout, aos
from .lut import LUT_MEMREF, declare_interp_functions, emit_scalar_interp

STATE_MEMREF = memref_of(f64)
EXT_MEMREF = memref_of(f64)


def generate_baseline(model: IonicModel, use_lut: bool = True,
                      lut_interpolation: str = "linear",
                      function_name: str = None) -> GeneratedKernel:
    """Generate the scalar baseline compute kernel for ``model``."""
    if lut_interpolation not in ("linear", "spline"):
        raise ValueError(f"unknown LUT interpolation {lut_interpolation!r}")
    spec = KernelSpec(model=model, mode=BackendMode.BASELINE, width=1,
                      layout=aos(model.n_states), use_lut=use_lut,
                      lut_interpolation=lut_interpolation,
                      function_name=function_name or f"compute_{model.name}")
    return _emit(spec)


def _emit(spec: KernelSpec) -> GeneratedKernel:
    with _trace.span("irgen", model=spec.model.name,
                     backend=spec.mode.value, width=spec.width):
        return _emit_traced(spec)


def _emit_traced(spec: KernelSpec) -> GeneratedKernel:
    model = spec.model
    layout: Layout = spec.layout
    module = Module(f"{model.name}_baseline")
    if spec.use_lut and model.lut_tables:
        declare_interp_functions(module, model, vectorized=False, width=1,
                                 spline=spec.lut_interpolation == "spline")
    _declare_foreign_functions(module, model)

    arg_types = [index, index, f64, f64, STATE_MEMREF]
    arg_types += [EXT_MEMREF] * len(model.externals)
    arg_types += [EXT_MEMREF] * len(model.promoted_params)
    if spec.use_lut:
        arg_types += [LUT_MEMREF] * len(model.lut_tables)
    arg_names = spec.argument_names()
    kernel = func_dialect.func(module, spec.function_name, arg_types, [],
                               arg_hints=arg_names)
    args = dict(zip(arg_names, kernel.args))
    b = IRBuilder(kernel.entry)

    start, end = args["start"], args["end"]
    dt = args["dt"]
    one = b.constant(1, index)
    n_states = b.constant(model.n_states, index)

    loop = scf.for_op(b, start, end, one, iv_hint="i")
    loop.op.attributes["cell_loop"] = True
    loop.op.attributes["vector_width"] = 1
    loop.op.attributes["layout"] = str(layout)
    loop.op.attributes["parallel"] = True  # '#pragma omp parallel for'
    with b.at_end_of(loop.body):
        i = loop.induction_var
        env: Dict[str, Value] = {}
        # Initialize the ext vars to current values (Listing 2, line 5).
        for ext in model.externals:
            env[ext] = memref.load(b, args[f"{ext}_ext"], [i])
        # Promoted parameters read from per-cell linear arrays (the
        # population layer broadcasts instance values over cells).
        for pname in model.promoted_params:
            env[pname] = memref.load(b, args[f"param_{pname}"], [i])
        # Retrieve the per-cell state struct: sv = sv_base + __i (AoS).
        base = arith.muli(b, i, n_states)
        for slot, state in enumerate(model.states):
            offset = arith.addi(b, base, b.constant(slot, index))
            env[state] = memref.load(b, args["sv"], [offset])
        # Compute lookup tables (Listing 2, lines 6-8), scalar interp.
        lut_served = set()
        if spec.use_lut:
            for table in model.lut_tables:
                emit_scalar_interp(b, table, args[f"lut_{table.var}"],
                                   env[table.var], env,
                                   spline=spec.lut_interpolation == "spline")
                lut_served.update(table.column_names)
        # Compute storevars and external modvars.
        emitter = ExprEmitter(b, env, width=1,
                              foreign=model.foreign_functions)
        # Constant-qualified values the preprocessor folded (§3.2) are
        # still nameable (e.g. a constant gate time constant); bind them
        # as constants — DCE erases the unused ones.
        for const_name, const_value in {**model.params,
                                        **model.folded_constants}.items():
            if const_name in model.promoted_params:
                continue  # bound above from the per-instance array
            env[const_name] = emitter._const(const_value)
        for comp in model.computations:
            if comp.target in lut_served:
                continue
            env[comp.target] = emitter.emit(comp.expr)
        # Complete the integration updates.
        new_values = emit_state_updates(b, model, env, width=1, dt=dt)
        # Finish the update: write the state struct back.
        for slot, state in enumerate(model.states):
            offset = arith.addi(b, base, b.constant(slot, index))
            memref.store(b, new_values[state], args["sv"], [offset])
        # Save all external vars (Listing 2, line 31).
        for ext in model.outputs:
            memref.store(b, env[ext], args[f"{ext}_ext"], [i])
        scf.yield_op(b)
    func_dialect.ret(b)
    return GeneratedKernel(module=module, spec=spec, layout=layout)


def _declare_foreign_functions(module: Module, model: IonicModel) -> None:
    """``func.func private`` declarations for foreign (external C) calls."""
    from ..easyml.ast_nodes import Call, walk_expr

    arities: Dict[str, int] = {}
    exprs = [c.expr for c in model.computations]
    exprs += list(model.diffs.values())
    for expr in exprs:
        for node in walk_expr(expr):
            if isinstance(node, Call) and \
                    node.callee in model.foreign_functions:
                arities[node.callee] = len(node.args)
    for name, arity in sorted(arities.items()):
        func_dialect.func(module, f"foreign_{name}", [f64] * arity, [f64],
                          declaration=True)
