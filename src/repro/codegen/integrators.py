"""IR emission for the six integration methods (paper §3.3.2).

Each method advances one state variable by ``dt`` given the model's
``diff_`` expression.  Multi-stage methods (rk2, rk4, sundnes,
markov_be) re-evaluate the derivative at intermediate state values by
re-emitting the state-dependent slice of the computation plan with the
state name rebound — exactly what openCARP's generated C does in
Listing 2 (lines 20–26) for the rk2 update of ``u1``.

All emissions are width-agnostic: they produce scalar IR in the
baseline backend and ``vector<Wxf64>`` IR in limpetMLIR, which is how
the paper implements the methods "directly in MLIR".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..easyml.ast_nodes import Expr
from ..easyml.errors import SemanticError
from ..frontend.model import GateInfo, IonicModel
from ..frontend.symbols import Method
from ..ir.builder import IRBuilder
from ..ir.core import Value
from ..ir.dialects import arith, math as math_dialect, scf
from ..ir.types import index
from .common import ExprEmitter


class IntegratorEmitter:
    """Emits the state-update IR for every integration method."""

    #: fixed-point refinement sweeps for the implicit markov_be method
    MARKOV_BE_ITERATIONS = 4

    def __init__(self, builder: IRBuilder, model: IonicModel,
                 env: Dict[str, Value], width: int, dt: Value):
        self.b = builder
        self.model = model
        self.env = env
        self.width = width
        self.dt = dt

    # -- entry -------------------------------------------------------------------

    def emit_update(self, state: str) -> Value:
        """Return the new value of ``state`` after one ``dt`` step."""
        method = self.model.methods[state]
        x = self.env[state]
        handlers = {
            Method.FE: self._emit_fe,
            Method.RK2: self._emit_rk2,
            Method.RK4: self._emit_rk4,
            Method.RUSH_LARSEN: self._emit_rush_larsen,
            Method.SUNDNES: self._emit_sundnes,
            Method.MARKOV_BE: self._emit_markov_be,
        }
        return handlers[method](state, x)

    # -- derivative evaluation ------------------------------------------------------

    def _emitter(self, env: Dict[str, Value]) -> ExprEmitter:
        return ExprEmitter(self.b, env, self.width,
                           foreign=self.model.foreign_functions)

    def _diff(self, state: str, x: Optional[Value] = None) -> Value:
        """Evaluate diff_state, optionally at a substituted state value.

        With ``x is None`` the precomputed derivative (if the plan
        already carries it) is reused; otherwise the state-dependent
        computations are re-emitted against the substituted value.
        """
        if x is None:
            cached = self.env.get(f"diff_{state}")
            if cached is not None:
                return cached
            return self._emitter(self.env).emit(self.model.diffs[state])
        stage_env = dict(self.env)
        stage_env[state] = x
        emitter = self._emitter(stage_env)
        for comp in self.model.stage_computations(state):
            stage_env[comp.target] = emitter.emit(comp.expr)
        return emitter.emit(self.model.diffs[state])

    def _gate_rates(self, state: str,
                    env: Dict[str, Value]) -> tuple[Value, Value]:
        """(x_inf, tau) for a gate, derived from alpha/beta if needed."""
        gate: GateInfo = self.model.gates[state]
        if gate.form == "inf_tau":
            return env[gate.inf], env[gate.tau]
        alpha, beta = env[gate.alpha], env[gate.beta]
        rate_sum = arith.addf(self.b, alpha, beta)
        inf = arith.divf(self.b, alpha, rate_sum)
        tau = arith.divf(self.b, self._const(1.0), rate_sum)
        return inf, tau

    def _const(self, value: float) -> Value:
        return self._emitter(self.env)._const(value)

    # -- explicit methods -----------------------------------------------------------

    def _emit_fe(self, state: str, x: Value) -> Value:
        """Forward Euler: x + dt * f(x)."""
        k1 = self._diff(state)
        return arith.addf(self.b, x, arith.mulf(self.b, self.dt, k1))

    def _emit_rk2(self, state: str, x: Value) -> Value:
        """Midpoint RK2: x + dt * f(x + dt/2 * f(x))  (Listing 2)."""
        k1 = self._diff(state)
        half_dt = arith.mulf(self.b, self.dt, self._const(0.5))
        x_mid = arith.addf(self.b, x, arith.mulf(self.b, half_dt, k1))
        k2 = self._diff(state, x_mid)
        return arith.addf(self.b, x, arith.mulf(self.b, self.dt, k2))

    def _emit_rk4(self, state: str, x: Value) -> Value:
        """Classic RK4: x + dt/6 * (k1 + 2 k2 + 2 k3 + k4)."""
        half_dt = arith.mulf(self.b, self.dt, self._const(0.5))
        k1 = self._diff(state)
        x2 = arith.addf(self.b, x, arith.mulf(self.b, half_dt, k1))
        k2 = self._diff(state, x2)
        x3 = arith.addf(self.b, x, arith.mulf(self.b, half_dt, k2))
        k3 = self._diff(state, x3)
        x4 = arith.addf(self.b, x, arith.mulf(self.b, self.dt, k3))
        k4 = self._diff(state, x4)
        two = self._const(2.0)
        total = arith.addf(self.b, k1, arith.mulf(self.b, two, k2))
        total = arith.addf(self.b, total, arith.mulf(self.b, two, k3))
        total = arith.addf(self.b, total, k4)
        sixth = arith.divf(self.b, self.dt, self._const(6.0))
        return arith.addf(self.b, x, arith.mulf(self.b, sixth, total))

    # -- gate methods ------------------------------------------------------------------

    def _emit_rush_larsen(self, state: str, x: Value) -> Value:
        """Rush–Larsen: x_inf + (x - x_inf) * exp(-dt / tau).

        Exact for the locally linearized gate equation; unconditionally
        stable, which is why it is "the preferred method for simulating
        gates" (§3.3.2).  When the gate's rates are tabulated, the
        precomputed ``_rl_inf``/``_rl_decay`` LUT columns replace the
        runtime exponential (the time step is fixed per run, so
        openCARP tabulates the whole update factor).
        """
        decay = self.env.get(f"_rl_decay_{state}")
        if decay is not None:
            gate = self.model.gates[state]
            inf = (self.env[gate.inf] if gate.form == "inf_tau"
                   else self.env[f"_rl_inf_{state}"])
        else:
            inf, tau = self._gate_rates(state, self.env)
            decay = math_dialect.exp(
                self.b,
                arith.negf(self.b, arith.divf(self.b, self.dt, tau)))
        delta = arith.subf(self.b, x, inf)
        return arith.addf(self.b, inf, arith.mulf(self.b, delta, decay))

    def _emit_sundnes(self, state: str, x: Value) -> Value:
        """Sundnes et al.: second-order Rush–Larsen (SRL).

        A half RL step produces x*, the rates are re-evaluated at x*
        (for rates that depend on the gate itself; voltage-only rates
        are unchanged) and a full RL step is taken with the midpoint
        rates — the second-order extension of RL the paper lists.
        """
        inf, tau = self._gate_rates(state, self.env)
        half_dt = arith.mulf(self.b, self.dt, self._const(0.5))
        decay_half = math_dialect.exp(
            self.b, arith.negf(self.b, arith.divf(self.b, half_dt, tau)))
        delta = arith.subf(self.b, x, inf)
        x_half = arith.addf(self.b, inf,
                            arith.mulf(self.b, delta, decay_half))
        stage_env = dict(self.env)
        stage_env[state] = x_half
        emitter = self._emitter(stage_env)
        for comp in self.model.stage_computations(state):
            stage_env[comp.target] = emitter.emit(comp.expr)
        inf_mid, tau_mid = self._gate_rates(state, stage_env)
        decay = math_dialect.exp(
            self.b, arith.negf(self.b, arith.divf(self.b, self.dt, tau_mid)))
        delta_mid = arith.subf(self.b, x, inf_mid)
        return arith.addf(self.b, inf_mid,
                          arith.mulf(self.b, delta_mid, decay))

    # -- implicit method -----------------------------------------------------------------

    def _emit_markov_be(self, state: str, x: Value) -> Value:
        """Backward Euler with fixed-point refinement, clamped to [0, 1].

        Solves x' = x + dt * f(x') by iterating y <- x + dt * f(y); the
        refinement keeps Markov-state occupancies "as precise as
        possible" and the clamp enforces the [0, 1] requirement (§3.3.2).
        """
        k1 = self._diff(state)
        y0 = arith.addf(self.b, x, arith.mulf(self.b, self.dt, k1))
        zero = self.b.constant(0, index)
        upper = self.b.constant(self.MARKOV_BE_ITERATIONS - 1, index)
        one = self.b.constant(1, index)
        loop = scf.for_op(self.b, zero, upper, one, [y0], iv_hint="be_iter")
        with self.b.at_end_of(loop.body):
            y = loop.iter_args[0]
            fy = self._diff(state, y)
            y_next = arith.addf(self.b, x,
                                arith.mulf(self.b, self.dt, fy))
            scf.yield_op(self.b, [y_next])
        refined = loop.results[0]
        clamped = arith.maximumf(self.b, refined, self._const(0.0))
        return arith.minimumf(self.b, clamped, self._const(1.0))


def emit_state_updates(builder: IRBuilder, model: IonicModel,
                       env: Dict[str, Value], width: int,
                       dt: Value) -> Dict[str, Value]:
    """Emit updates for every state; returns state -> new value.

    All new values are computed before any store so that states reading
    each other observe a consistent time level (the generated C in
    Listing 2 does the same: ``u1_new``/``u2_new``/``u3_new`` are
    assigned before the final struct writes).
    """
    integrator = IntegratorEmitter(builder, model, env, width, dt)
    return {state: integrator.emit_update(state) for state in model.states}
