"""IR emission for lookup-table interpolation (paper §3.4.2).

Three call shapes are generated:

* baseline — one scalar ``LUT_interpRow`` call per cell, the routine
  "the compiler could not automatically vectorize";
* limpetMLIR — one ``LUT_interpRow_n_elements_vec`` call per vector of
  cells, the manually vectorized implementation (Listing 3, line 21);
* icc_simd — per-lane scalar calls stitched together with
  ``vector.extract``/``vector.insert``: how a serialized call inside an
  ``omp simd`` loop behaves, which is precisely why icc's speedup stays
  at 2.19x (§5).
"""

from __future__ import annotations

from typing import Dict, List

from ..frontend.model import IonicModel, LUTTable
from ..ir.builder import IRBuilder
from ..ir.core import Module, Value
from ..ir.dialects import func as func_dialect, vector as vector_dialect
from ..ir.types import f64, memref_of, vector_of

SCALAR_INTERP = "LUT_interpRow"
VECTOR_INTERP = "LUT_interpRow_n_elements_vec"
SCALAR_SPLINE = "LUT_interpRowSpline"
VECTOR_SPLINE = "LUT_interpRowSpline_n_elements_vec"

#: element type of a LUT argument: rows x columns of f64
LUT_MEMREF = memref_of(f64, None, None)


def interp_symbol(table: LUTTable, vectorized: bool, width: int = 0,
                  spline: bool = False) -> str:
    """The callee symbol for a table, e.g. LUT_interpRow_Vm."""
    if vectorized:
        base = VECTOR_SPLINE if spline else VECTOR_INTERP
        return f"{base}_{width}xf64_{table.var}"
    return f"{SCALAR_SPLINE if spline else SCALAR_INTERP}_{table.var}"


def declare_interp_functions(module: Module, model: IonicModel,
                             vectorized: bool, width: int,
                             spline: bool = False) -> None:
    """Add ``func.func private`` declarations for each table's routine."""
    for table in model.lut_tables:
        n_cols = table.n_columns
        if vectorized:
            vec = vector_of(width, f64)
            func_dialect.func(module,
                              interp_symbol(table, True, width, spline),
                              [LUT_MEMREF, vec], [vec] * n_cols,
                              declaration=True)
        else:
            func_dialect.func(module,
                              interp_symbol(table, False, spline=spline),
                              [LUT_MEMREF, f64], [f64] * n_cols,
                              declaration=True)


def emit_scalar_interp(builder: IRBuilder, table: LUTTable, lut_arg: Value,
                       key: Value, env: Dict[str, Value],
                       spline: bool = False) -> None:
    """Baseline path: scalar row interpolation, results into ``env``."""
    call = func_dialect.call(builder,
                             interp_symbol(table, False, spline=spline),
                             [lut_arg, key], [f64] * table.n_columns)
    for name, result in zip(table.column_names, call.results):
        env[name] = result


def emit_vector_interp(builder: IRBuilder, table: LUTTable, lut_arg: Value,
                       key_vec: Value, env: Dict[str, Value],
                       width: int, spline: bool = False) -> None:
    """limpetMLIR path: one vectorized interpolation for all lanes."""
    vec = vector_of(width, f64)
    call = func_dialect.call(builder,
                             interp_symbol(table, True, width, spline),
                             [lut_arg, key_vec], [vec] * table.n_columns)
    for name, result in zip(table.column_names, call.results):
        env[name] = result


def emit_serialized_interp(builder: IRBuilder, table: LUTTable,
                           lut_arg: Value, key_vec: Value,
                           env: Dict[str, Value], width: int) -> None:
    """icc_simd path: the vector call is serialized lane by lane.

    Each lane's key is extracted, the scalar routine is called, and the
    scalar results are inserted back into result vectors — the code an
    auto-vectorizer produces for a function call it cannot vectorize.
    """
    lane_results: List[List[Value]] = [[] for _ in range(table.n_columns)]
    for lane in range(width):
        key = vector_dialect.extract(builder, key_vec, lane)
        call = func_dialect.call(builder, interp_symbol(table, False),
                                 [lut_arg, key], [f64] * table.n_columns)
        for col, result in enumerate(call.results):
            lane_results[col].append(result)
    zero = builder.constant(0.0, f64)
    for col, name in enumerate(table.column_names):
        vec = vector_dialect.broadcast(builder, zero, width)
        for lane, scalar in enumerate(lane_results[col]):
            vec = vector_dialect.insert(builder, scalar, vec, lane)
        env[name] = vec
