"""GPU (SIMT) code generation — the §7 heterogeneous extension.

Emits the compute kernel as a ``gpu.launch`` with a grid-stride loop:
each GPU thread owns one cell per stride, executing *scalar* per-cell
code (the SIMT model — the warp, not the instruction, provides the
parallelism).  Consequences faithful to real GPU ports of openCARP-like
codes:

* the state layout is **SoA** (coalescing wants consecutive threads on
  consecutive cells of the same variable — the GPU analog of §3.4.1);
* LUT interpolation is the scalar routine per thread (texture-style
  gathers in the cost model);
* math calls map to the device's libdevice equivalents.

The runtime executes SIMT kernels with the same lane-flattening trick
as the vector backend: every thread's scalar op becomes one NumPy
element.  The V100-class cost model in :mod:`repro.machine.gpu` prices
the same IR for Fig.-style CPU-vs-GPU comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..frontend.model import IonicModel
from ..ir.builder import IRBuilder
from ..ir.core import Module, Value
from ..ir.dialects import arith, func as func_dialect, gpu, memref, scf
from ..ir.types import f64, index, memref_of
from .common import (BackendMode, ExprEmitter, GeneratedKernel, KernelSpec,
                     UnsupportedModelError)
from .integrators import emit_state_updates
from .layout import soa
from .lut import LUT_MEMREF, declare_interp_functions, emit_scalar_interp

STATE_MEMREF = memref_of(f64)
EXT_MEMREF = memref_of(f64)

#: CUDA-style launch geometry: enough resident threads to cover the
#: paper's 8192-cell meshes in one stride
DEFAULT_BLOCK_SIZE = 128
DEFAULT_GRID_SIZE = 64


def generate_gpu(model: IonicModel, use_lut: bool = True,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 grid_size: int = DEFAULT_GRID_SIZE,
                 function_name: Optional[str] = None) -> GeneratedKernel:
    """Generate the SIMT compute kernel for ``model``."""
    if model.foreign_functions:
        raise UnsupportedModelError(
            f"model {model.name}: foreign function(s) "
            f"{sorted(model.foreign_functions)} have no device "
            f"implementation; GPU execution is unsupported")
    if model.promoted_params:
        raise UnsupportedModelError(
            f"model {model.name}: promoted parameter(s) "
            f"{sorted(model.promoted_params)} are not supported by the "
            f"GPU backend; use the population layer's CPU kernels")
    layout = soa(model.n_states)
    spec = KernelSpec(model=model, mode=BackendMode.LIMPET_MLIR, width=1,
                      layout=layout, use_lut=use_lut,
                      function_name=function_name
                      or f"compute_gpu_{model.name}")
    module = Module(f"{model.name}_gpu")
    if spec.use_lut and model.lut_tables:
        declare_interp_functions(module, model, vectorized=False, width=1)

    arg_types = [index, index, f64, f64, STATE_MEMREF]
    arg_types += [EXT_MEMREF] * len(model.externals)
    if spec.use_lut:
        arg_types += [LUT_MEMREF] * len(model.lut_tables)
    arg_names = spec.argument_names()
    kernel = func_dialect.func(module, spec.function_name, arg_types, [],
                               arg_hints=arg_names)
    args = dict(zip(arg_names, kernel.args))
    b = IRBuilder(kernel.entry)

    launch = gpu.launch(b, grid_size, block_size)
    with b.at_end_of(launch.body):
        b.set_insertion_point_before(launch.body.terminator)
        tid = gpu.global_id(b)
        stride = gpu.grid_dim(b)
        # grid-stride loop: for (i = start + tid; i < end; i += stride)
        first = arith.addi(b, args["start"], tid)
        loop = scf.for_op(b, first, args["end"], stride, iv_hint="i")
        loop.op.attributes["cell_loop"] = True
        loop.op.attributes["vector_width"] = 1
        loop.op.attributes["layout"] = str(layout)
        loop.op.attributes["simt"] = True
        with b.at_end_of(loop.body):
            i = loop.induction_var
            env: Dict[str, Value] = {}
            for ext in model.externals:
                env[ext] = memref.load(b, args[f"{ext}_ext"], [i])
            # SoA addressing: offset = slot * n_alloc + i; n_alloc is
            # the padded allocation, which equals `end` for GPU runs
            for slot, state in enumerate(model.states):
                offset = arith.addi(
                    b, arith.muli(b, b.constant(slot, index), args["end"]),
                    i)
                env[state] = memref.load(b, args["sv"], [offset])
            lut_served = set()
            if spec.use_lut:
                for table in model.lut_tables:
                    emit_scalar_interp(b, table, args[f"lut_{table.var}"],
                                       env[table.var], env)
                    lut_served.update(table.column_names)
            emitter = ExprEmitter(b, env, width=1)
            for const_name, const_value in {**model.params,
                                            **model.folded_constants}.items():
                env[const_name] = emitter._const(const_value)
            for comp in model.computations:
                if comp.target in lut_served:
                    continue
                env[comp.target] = emitter.emit(comp.expr)
            new_values = emit_state_updates(b, model, env, width=1,
                                            dt=args["dt"])
            for slot, state in enumerate(model.states):
                offset = arith.addi(
                    b, arith.muli(b, b.constant(slot, index), args["end"]),
                    i)
                memref.store(b, new_values[state], args["sv"], [offset])
            for ext in model.outputs:
                memref.store(b, env[ext], args[f"{ext}_ext"], [i])
            scf.yield_op(b)
    func_dialect.ret(b)
    return GeneratedKernel(module=module, spec=spec, layout=layout)
