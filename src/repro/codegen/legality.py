"""SIMD-friendliness analysis — the §5 generalization criteria, as code.

The paper's discussion section states when the technique applies:

  "our proposal is applicable and beneficial to a parallel loop whose
  body has the following properties: (i) the code (or DSL) can be
  expressed using MLIR dialects; (ii) loop iterations should perform
  regular access to data stored in arrays ...; and (iii) if the code
  contains control flow operations, it has to be SIMD-friendly for the
  vectorization to be efficient."

This module turns those three properties into a checkable report for
any analyzed ionic model.  The CLI exposes it as
``limpet-bench legality MODEL``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..easyml.ast_nodes import Call, Name, Ternary, walk_expr
from ..frontend.model import IonicModel
from ..ir.dialects.math import EASYML_FUNCTIONS

_BUILTIN_CALLS = set(EASYML_FUNCTIONS) | {"square", "cube", "min", "max",
                                          "pow"}

#: fraction of select-guarded work above which masked execution starts
#: to hurt ("may lead to performance degradation in large portions of
#: conditional code", §5)
CONDITIONAL_WARN_FRACTION = 0.4


@dataclass
class Finding:
    """One legality finding: which §5 property, and how severe."""

    criterion: str                # "expressible" | "regular-access"
    #                             # | "simd-friendly-control-flow"
    severity: str                 # "blocker" | "warning"
    message: str


@dataclass
class LegalityReport:
    """The §5 checklist evaluated for one model."""

    model: str
    findings: List[Finding] = field(default_factory=list)

    @property
    def vectorizable(self) -> bool:
        return not any(f.severity == "blocker" for f in self.findings)

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def describe(self) -> str:
        lines = [f"SIMD legality of {self.model} (paper §5 criteria):"]
        verdict = "VECTORIZABLE" if self.vectorizable else "NOT VECTORIZABLE"
        lines.append(f"  verdict: {verdict}")
        if not self.findings:
            lines.append("  all three §5 properties hold cleanly")
        for finding in self.findings:
            lines.append(f"  [{finding.severity}] ({finding.criterion}) "
                         f"{finding.message}")
        return "\n".join(lines)


def check_simd_legality(model: IonicModel) -> LegalityReport:
    """Evaluate the three §5 properties on an analyzed model."""
    report = LegalityReport(model=model.name)
    _check_expressible(model, report)
    _check_regular_access(model, report)
    _check_control_flow(model, report)
    return report


def check_population_legality(model: IonicModel,
                              param_names) -> LegalityReport:
    """Is promoting ``param_names`` to per-instance arrays legal?

    Promotion is never a hard error for a *valid* request: foreign
    models fall back to the batched scalar kernel (a warning, not a
    blocker), and params that also feed ``_init`` expressions keep
    their default there (the starting state is shared across the
    population).  The only blocker is naming something that is not a
    declared ``.param()``.
    """
    report = LegalityReport(model=model.name)
    param_names = list(dict.fromkeys(param_names))
    for name in param_names:
        if name not in model.params:
            report.findings.append(Finding(
                criterion="expressible", severity="blocker",
                message=f"{name!r} is not a declared .param() of "
                        f"{model.name} (params: "
                        f"{', '.join(sorted(model.params)) or '(none)'})"))
    if model.foreign_functions:
        report.findings.append(Finding(
            criterion="expressible", severity="warning",
            message=f"foreign function(s) "
                    f"{sorted(model.foreign_functions)}: the population "
                    f"advances through the batched scalar baseline "
                    f"kernel instead of the vectorized one"))
    promoted = model.promoted_params or tuple(
        p for p in param_names if p in model.params)
    for name in promoted:
        if name in model.init_param_uses:
            report.findings.append(Finding(
                criterion="regular-access", severity="warning",
                message=f"param {name!r} also appears in _init "
                        f"expressions; initial values stay at the "
                        f"default, per-instance values only shape the "
                        f"dynamics"))
    if model.promoted_params:
        used: set = set()
        for expr in _all_exprs(model):
            for node in walk_expr(expr):
                if isinstance(node, Name):
                    used.add(node.identifier)
        for table in model.lut_tables:
            for column in table.columns:
                used.update(n.identifier
                            for n in walk_expr(column.expr)
                            if isinstance(n, Name))
        for name in model.promoted_params:
            if name not in used and name not in model.init_param_uses:
                report.findings.append(Finding(
                    criterion="regular-access", severity="warning",
                    message=f"param {name!r} is promoted but unused by "
                            f"any runtime computation; sweeping it "
                            f"cannot change the trajectories"))
    return report


def _all_exprs(model: IonicModel):
    for comp in model.computations:
        yield comp.expr
    yield from model.diffs.values()


def _check_expressible(model: IonicModel, report: LegalityReport) -> None:
    """(i) expressible in MLIR dialects: no opaque foreign calls."""
    for name in sorted(model.foreign_functions):
        used = any(isinstance(node, Call) and node.callee == name
                   for expr in _all_exprs(model)
                   for node in walk_expr(expr))
        if used:
            report.findings.append(Finding(
                criterion="expressible", severity="blocker",
                message=f"foreign function {name!r} has no dialect "
                        f"representation; the call serializes the lane"))
    for expr in _all_exprs(model):
        for node in walk_expr(expr):
            if isinstance(node, Call) and \
                    node.callee not in _BUILTIN_CALLS and \
                    node.callee not in model.foreign_functions:
                report.findings.append(Finding(
                    criterion="expressible", severity="blocker",
                    message=f"unknown function {node.callee!r}"))


def _check_regular_access(model: IonicModel,
                          report: LegalityReport) -> None:
    """(ii) regular array access: state/external layout is uniform.

    EasyML models always access per-cell state through the generated
    accessors, so this property holds by construction; the check
    documents boundary costs (very wide state makes the AoS gather
    fallback expensive if the layout flag is off).
    """
    if model.n_states > 32:
        report.findings.append(Finding(
            criterion="regular-access", severity="warning",
            message=f"{model.n_states} state variables: the AoS gather "
                    f"fallback strides {model.n_states * 8} bytes; keep "
                    f"the AoSoA layout transformation enabled"))


def _check_control_flow(model: IonicModel,
                        report: LegalityReport) -> None:
    """(iii) SIMD-friendly control flow: bounded select fractions."""
    total_nodes = 0
    guarded_nodes = 0
    for expr in _all_exprs(model):
        for node in walk_expr(expr):
            total_nodes += 1
            if isinstance(node, Ternary):
                branch_size = sum(1 for _ in walk_expr(node.then)) + \
                    sum(1 for _ in walk_expr(node.otherwise))
                guarded_nodes += branch_size
    if not total_nodes:
        return
    fraction = guarded_nodes / total_nodes
    if fraction > CONDITIONAL_WARN_FRACTION:
        report.findings.append(Finding(
            criterion="simd-friendly-control-flow", severity="warning",
            message=f"{fraction:.0%} of the computation sits under "
                    f"if-converted selects; both branches execute on "
                    f"every lane (§5), expect masked-execution overhead"))
