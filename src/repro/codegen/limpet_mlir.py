"""limpetMLIR: the vectorized code generator (paper §3.3–§3.4).

Emits the compute kernel with SIMD execution as an *intrinsic* feature
rather than an optimization left to the compiler: the cell loop steps
by the vector width and every operation works on ``vector<Wxf64>``
values, one cell per lane (Listing 3).  Data access goes through
accessor patterns selected by the state layout:

* AoSoA (the §3.4.1 data-layout transformation, default) — contiguous
  ``vector.load``/``vector.store`` blocks;
* AoS (transformation disabled, for the §4.4 ablation) — strided
  ``vector.gather``/``vector.scatter``;
* SoA (fully transposed, for the autotuner's layout axis) — contiguous
  loads with the slot stride taken from the ``end`` argument, so the
  kernel must always be invoked over the whole allocation
  (``end == n_alloc``; the ShardedRunner therefore refuses SoA);

and LUT rows are interpolated by the vectorized routine (§3.4.2).

A third mode, ``icc_simd``, models the icc ``#pragma omp simd``
comparator of §5: vector arithmetic and vector math calls (SVML), but
AoS layout and serialized scalar LUT calls.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..frontend.model import IonicModel
from ..ir.builder import IRBuilder
from ..ir.core import Module, Value
from ..ir.dialects import (arith, func as func_dialect, omp, scf,
                           vector as vector_dialect)
from ..ir.types import f64, index, memref_of
from ..obs import trace as _trace
from .common import BackendMode, ExprEmitter, GeneratedKernel, KernelSpec
from .integrators import emit_state_updates
from .layout import Layout, LayoutKind, aos, aosoa, soa
from .lut import (LUT_MEMREF, declare_interp_functions,
                  emit_serialized_interp, emit_vector_interp)

STATE_MEMREF = memref_of(f64)
EXT_MEMREF = memref_of(f64)


def generate_limpet_mlir(model: IonicModel, width: int = 8,
                         data_layout_opt: bool = True, use_lut: bool = True,
                         lut_interpolation: str = "linear",
                         layout: Optional[str] = None,
                         function_name: Optional[str] = None
                         ) -> GeneratedKernel:
    """Generate the vectorized limpetMLIR kernel.

    ``width`` is the SIMD width in doubles (2 = SSE, 4 = AVX2,
    8 = AVX-512).  ``data_layout_opt`` toggles the AoS -> AoSoA
    transformation (§3.4.1), exposed "through a compiler flag" in the
    paper.  ``layout`` overrides it with an explicit choice
    (``"aos"``/``"soa"``/``"aosoa"``) — the autotuner's layout axis.
    """
    if lut_interpolation not in ("linear", "spline"):
        raise ValueError(f"unknown LUT interpolation {lut_interpolation!r}")
    if layout is None:
        resolved = aosoa(model.n_states, width) if data_layout_opt \
            else aos(model.n_states)
    elif layout == "aosoa":
        resolved = aosoa(model.n_states, width)
    elif layout == "aos":
        resolved = aos(model.n_states)
    elif layout == "soa":
        resolved = soa(model.n_states)
    else:
        raise ValueError(f"unknown layout {layout!r}; "
                         f"one of 'aos', 'soa', 'aosoa'")
    layout = resolved
    spec = KernelSpec(model=model, mode=BackendMode.LIMPET_MLIR, width=width,
                      layout=layout, use_lut=use_lut,
                      lut_interpolation=lut_interpolation,
                      function_name=function_name or f"compute_{model.name}")
    return _emit_vectorized(spec)


def generate_icc_simd(model: IonicModel, width: int = 8,
                      use_lut: bool = True,
                      function_name: Optional[str] = None) -> GeneratedKernel:
    """Generate the icc ``omp simd`` comparator kernel (§5)."""
    spec = KernelSpec(model=model, mode=BackendMode.ICC_SIMD, width=width,
                      layout=aos(model.n_states), use_lut=use_lut,
                      function_name=function_name or f"compute_{model.name}")
    return _emit_vectorized(spec)


def _emit_vectorized(spec: KernelSpec) -> GeneratedKernel:
    with _trace.span("irgen", model=spec.model.name,
                     backend=spec.mode.value, width=spec.width):
        return _emit_vectorized_traced(spec)


def _emit_vectorized_traced(spec: KernelSpec) -> GeneratedKernel:
    model = spec.model
    if model.foreign_functions:
        from .common import UnsupportedModelError
        raise UnsupportedModelError(
            f"model {model.name}: calls foreign function(s) "
            f"{sorted(model.foreign_functions)} that cannot be vectorized "
            f"(43 of 47 models are limpetMLIR-supported, paper §3.3.2); "
            f"use generate_baseline")
    width = spec.width
    layout: Layout = spec.layout
    module = Module(f"{model.name}_{spec.mode.value}")
    if spec.use_lut and model.lut_tables:
        vectorized_lut = spec.mode is BackendMode.LIMPET_MLIR
        declare_interp_functions(module, model, vectorized=vectorized_lut,
                                 width=width,
                                 spline=spec.lut_interpolation == "spline")

    arg_types = [index, index, f64, f64, STATE_MEMREF]
    arg_types += [EXT_MEMREF] * len(model.externals)
    arg_types += [EXT_MEMREF] * len(model.promoted_params)
    if spec.use_lut:
        arg_types += [LUT_MEMREF] * len(model.lut_tables)
    arg_names = spec.argument_names()
    kernel = func_dialect.func(module, spec.function_name, arg_types, [],
                               arg_hints=arg_names)
    args = dict(zip(arg_names, kernel.args))
    b = IRBuilder(kernel.entry)

    start, end = args["start"], args["end"]
    step = b.constant(width, index)
    n_states = b.constant(model.n_states, index)
    # Broadcast loop-invariant scalars once; LICM would hoist them anyway.
    dt_vec = vector_dialect.broadcast(b, args["dt"], width)

    par = omp.parallel(b, schedule="static")
    with b.at_end_of(par.body):
        b.set_insertion_point_before(par.body.terminator)
        loop = scf.for_op(b, start, end, step, iv_hint="i")
        loop.op.attributes["cell_loop"] = True
        loop.op.attributes["vector_width"] = width
        loop.op.attributes["layout"] = str(layout)
        loop.op.attributes["parallel"] = True
        with b.at_end_of(loop.body):
            i = loop.induction_var
            env: Dict[str, Value] = {}
            # External variables live in per-cell linear arrays: a
            # contiguous vector load regardless of the state layout.
            for ext in model.externals:
                env[ext] = vector_dialect.load(b, args[f"{ext}_ext"], [i],
                                               width)
            # Promoted parameters are per-cell linear arrays too
            # (population batching broadcasts each instance's value over
            # its cells), so the same contiguous load applies.
            for pname in model.promoted_params:
                env[pname] = vector_dialect.load(
                    b, args[f"param_{pname}"], [i], width)
            _load_states(b, spec, args["sv"], i, n_states, end, env)
            lut_served = set()
            if spec.use_lut:
                for table in model.lut_tables:
                    lut_arg = args[f"lut_{table.var}"]
                    key = env[table.var]
                    if spec.mode is BackendMode.LIMPET_MLIR:
                        emit_vector_interp(
                            b, table, lut_arg, key, env, width,
                            spline=spec.lut_interpolation == "spline")
                    else:
                        emit_serialized_interp(b, table, lut_arg, key, env,
                                               width)
                    lut_served.update(table.column_names)
            emitter = ExprEmitter(b, env, width=width)
            # Folded constant-qualified values stay nameable (§3.2);
            # unused ones are erased by DCE, used ones hoisted by LICM.
            for const_name, const_value in {**model.params,
                                            **model.folded_constants}.items():
                if const_name in model.promoted_params:
                    continue  # bound above from the per-instance array
                env[const_name] = emitter._const(const_value)
            for comp in model.computations:
                if comp.target in lut_served:
                    continue
                env[comp.target] = emitter.emit(comp.expr)
            new_values = emit_state_updates(b, model, env, width=width,
                                            dt=dt_vec)
            _store_states(b, spec, args["sv"], i, n_states, end, new_values)
            for ext in model.outputs:
                vector_dialect.store(b, env[ext], args[f"{ext}_ext"], [i])
            scf.yield_op(b)
    func_dialect.ret(b)
    return GeneratedKernel(module=module, spec=spec, layout=layout)


def _load_states(b: IRBuilder, spec: KernelSpec, sv: Value, i: Value,
                 n_states: Value, end: Value,
                 env: Dict[str, Value]) -> None:
    """Emit the layout-appropriate accessor for every state variable."""
    model = spec.model
    width = spec.width
    if spec.layout.kind is LayoutKind.SOA:
        # SoA: slot s of cells i..i+W-1 sits at s*n_alloc + i, so the
        # lane block is one contiguous load.  The slot stride is the
        # ``end`` argument — SoA kernels are only valid over the whole
        # allocation (end == n_alloc), which the runtime guarantees by
        # refusing to shard SoA kernels.
        for slot, state in enumerate(model.states):
            stride = arith.muli(b, end, b.constant(slot, index))
            offset = arith.addi(b, stride, i)
            env[state] = vector_dialect.load(b, sv, [offset], width)
        return
    if spec.layout.kind is LayoutKind.AOSOA:
        # AoSoA: lanes of one slot are contiguous.  Since i is a block
        # start (i % W == 0): offset = i*n_states + slot*W  (the
        # memref.view + load_struct_to_vec pattern of Listing 3).
        base = arith.muli(b, i, n_states)
        for slot, state in enumerate(model.states):
            offset = arith.addi(b, base,
                                b.constant(slot * width, index))
            env[state] = vector_dialect.load(b, sv, [offset], width)
        return
    # AoS: same slot of consecutive cells is n_states apart -> gather
    # with an index vector (i + lane)*n_states + slot.
    lanes = vector_dialect.step(b, width)
    stride = vector_dialect.broadcast(b, n_states, width)
    lane_offsets = arith.muli(b, lanes, stride)
    base = arith.muli(b, i, n_states)
    for slot, state in enumerate(model.states):
        scalar_base = arith.addi(b, base, b.constant(slot, index))
        base_vec = vector_dialect.broadcast(b, scalar_base, width)
        indices = arith.addi(b, base_vec, lane_offsets)
        env[state] = vector_dialect.gather(b, sv, indices)


def _store_states(b: IRBuilder, spec: KernelSpec, sv: Value, i: Value,
                  n_states: Value, end: Value,
                  new_values: Dict[str, Value]) -> None:
    model = spec.model
    width = spec.width
    if spec.layout.kind is LayoutKind.SOA:
        for slot, state in enumerate(model.states):
            stride = arith.muli(b, end, b.constant(slot, index))
            offset = arith.addi(b, stride, i)
            vector_dialect.store(b, new_values[state], sv, [offset])
        return
    if spec.layout.kind is LayoutKind.AOSOA:
        base = arith.muli(b, i, n_states)
        for slot, state in enumerate(model.states):
            offset = arith.addi(b, base,
                                b.constant(slot * width, index))
            vector_dialect.store(b, new_values[state], sv, [offset])
        return
    lanes = vector_dialect.step(b, width)
    stride = vector_dialect.broadcast(b, n_states, width)
    lane_offsets = arith.muli(b, lanes, stride)
    base = arith.muli(b, i, n_states)
    for slot, state in enumerate(model.states):
        scalar_base = arith.addi(b, base, b.constant(slot, index))
        base_vec = vector_dialect.broadcast(b, scalar_base, width)
        indices = arith.addi(b, base_vec, lane_offsets)
        vector_dialect.scatter(b, new_values[state], sv, indices)
